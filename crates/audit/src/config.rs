//! Policy-file validation: `scripts/audit_allow.json` (the lint
//! allowlist) and `scripts/perf_floors.json` (the perf-gate floors).
//!
//! Both files are checked-in policy, so drift is treated as a hard
//! error, not a warning: unknown keys (typos silently disabling an
//! entry), allowlist paths that no longer exist (stale suppressions),
//! and allowlist entries no finding matched (dead suppressions) all
//! fail the audit. The floors file is validated against the shape
//! `crates/load/src/gate.rs` parses, so a malformed edit fails here in
//! the required audit step instead of inside the optional perf leg.

use crate::report::Finding;
use serde::{map_get, Value};
use std::path::Path;

/// One allowlist entry: suppress `lint` findings in `path`.
///
/// L3 entries may carry a `sites` budget: the exact number of raw
/// spawn sites the entry sanctions. A budget makes the suppression
/// precise — a new `thread::spawn` sneaking into an allowlisted file
/// changes the count and fails the audit instead of riding the
/// existing blanket suppression.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub lint: String,
    pub path: String,
    pub reason: String,
    pub sites: Option<u64>,
}

#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse and schema-check the allowlist. Returns the list plus any
    /// schema findings (findings make the run fail).
    pub fn load(text: &str, rel_path: &str, root: &Path) -> (Allowlist, Vec<Finding>) {
        let mut findings = Vec::new();
        let mut entries = Vec::new();
        let file_err = |msg: &str| Finding::new("config", rel_path, 0, msg);

        let value: Value = match serde_json::from_str(text) {
            Ok(v) => v,
            Err(e) => {
                return (
                    Allowlist::default(),
                    vec![file_err(&format!("not valid JSON: {e:?}"))],
                )
            }
        };
        let Some(map) = value.as_map() else {
            return (
                Allowlist::default(),
                vec![file_err("top level must be an object")],
            );
        };
        for (key, _) in map {
            if key != "comment" && key != "allow" {
                findings.push(file_err(&format!("unknown top-level key `{key}`")));
            }
        }
        let Ok(allow) = map_get(map, "allow") else {
            findings.push(file_err("missing required key `allow`"));
            return (Allowlist::default(), findings);
        };
        let Some(seq) = allow.as_seq() else {
            findings.push(file_err("`allow` must be an array"));
            return (Allowlist::default(), findings);
        };
        for (i, entry) in seq.iter().enumerate() {
            let entry_err =
                |msg: String| Finding::new("config", rel_path, 0, &format!("allow[{i}]: {msg}"));
            let Some(emap) = entry.as_map() else {
                findings.push(entry_err("must be an object".into()));
                continue;
            };
            for (key, _) in emap {
                if !matches!(key.as_str(), "lint" | "path" | "reason" | "sites") {
                    findings.push(entry_err(format!("unknown key `{key}`")));
                }
            }
            let lint = map_get(emap, "lint").ok().and_then(|v| v.as_str());
            let path = map_get(emap, "path").ok().and_then(|v| v.as_str());
            let reason = map_get(emap, "reason").ok().and_then(|v| v.as_str());
            let (Some(lint), Some(path), Some(reason)) = (lint, path, reason) else {
                findings.push(entry_err("needs string `lint`, `path`, `reason`".into()));
                continue;
            };
            if !matches!(lint, "L1" | "L2" | "L3" | "L4" | "L5" | "L6") {
                findings.push(entry_err(format!("unknown lint `{lint}`")));
                continue;
            }
            if reason.trim().is_empty() {
                findings.push(entry_err("`reason` must not be empty".into()));
            }
            let sites = match map_get(emap, "sites") {
                Err(_) => None,
                Ok(v) => match v.as_num() {
                    Some(n) if n >= 1.0 && n.fract() == 0.0 => {
                        if lint != "L3" {
                            findings.push(entry_err(
                                "`sites` is only valid on L3 entries (spawn-site budget)".into(),
                            ));
                        }
                        Some(n as u64)
                    }
                    _ => {
                        findings.push(entry_err("`sites` must be a positive integer".into()));
                        None
                    }
                },
            };
            if !root.join(path).is_file() {
                findings.push(entry_err(format!(
                    "dangling path `{path}` — file does not exist"
                )));
                continue;
            }
            entries.push(AllowEntry {
                lint: lint.to_string(),
                path: path.to_string(),
                reason: reason.to_string(),
                sites,
            });
        }
        (Allowlist { entries }, findings)
    }

    /// Apply the allowlist: drop suppressed findings, flag any entry
    /// that suppressed nothing as dead policy, and enforce each L3
    /// entry's `sites` budget — suppressing more (or fewer) spawn
    /// findings than budgeted is itself a finding.
    pub fn filter(&self, findings: Vec<Finding>, rel_path: &str) -> Vec<Finding> {
        let mut used = vec![0usize; self.entries.len()];
        let mut kept: Vec<Finding> = Vec::new();
        for f in findings {
            let suppressed = self.entries.iter().enumerate().any(|(i, e)| {
                let hit = e.lint == f.lint && e.path == f.path;
                if hit {
                    used[i] += 1;
                }
                hit
            });
            if !suppressed {
                kept.push(f);
            }
        }
        for (i, e) in self.entries.iter().enumerate() {
            if used[i] == 0 {
                kept.push(Finding::new(
                    "config",
                    rel_path,
                    0,
                    &format!(
                        "unused allowlist entry ({} in `{}`) — remove it or re-justify",
                        e.lint, e.path
                    ),
                ));
            } else if let Some(sites) = e.sites {
                if used[i] as u64 != sites {
                    kept.push(Finding::new(
                        "config",
                        rel_path,
                        0,
                        &format!(
                            "allowlist entry ({} in `{}`) suppressed {} finding(s) but budgets \
                             `sites: {}` — a new raw spawn appeared or the budget is stale",
                            e.lint, e.path, used[i], sites
                        ),
                    ));
                }
            }
        }
        kept
    }
}

/// Validate `scripts/perf_floors.json` against the schema the perf
/// gate parses: unknown keys anywhere are hard errors.
pub fn validate_floors(text: &str, rel_path: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let file_err = |msg: &str| Finding::new("config", rel_path, 0, msg);

    let value: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return vec![file_err(&format!("not valid JSON: {e:?}"))],
    };
    let Some(map) = value.as_map() else {
        return vec![file_err("top level must be an object")];
    };
    for (key, _) in map {
        if !matches!(key.as_str(), "comment" | "tolerance" | "backends") {
            findings.push(file_err(&format!("unknown top-level key `{key}`")));
        }
    }
    match map_get(map, "tolerance").ok().and_then(|v| v.as_num()) {
        Some(t) if (0.0..1.0).contains(&t) => {}
        Some(t) => findings.push(file_err(&format!("`tolerance` {t} outside [0, 1)"))),
        None => findings.push(file_err("missing numeric `tolerance`")),
    }
    let Some(backends) = map_get(map, "backends").ok().and_then(|v| v.as_seq()) else {
        findings.push(file_err("missing array `backends`"));
        return findings;
    };
    for (i, entry) in backends.iter().enumerate() {
        let entry_err =
            |msg: String| Finding::new("config", rel_path, 0, &format!("backends[{i}]: {msg}"));
        let Some(emap) = entry.as_map() else {
            findings.push(entry_err("must be an object".into()));
            continue;
        };
        for (key, _) in emap {
            if !matches!(
                key.as_str(),
                "backend"
                    | "scenario"
                    | "min_throughput_rps"
                    | "max_p99_ns"
                    | "min_throughput_frac_of"
                    | "min_pmf_cache_hit_rate"
            ) {
                findings.push(entry_err(format!("unknown key `{key}`")));
            }
        }
        if map_get(emap, "backend")
            .ok()
            .and_then(|v| v.as_str())
            .is_none()
        {
            findings.push(entry_err("needs string `backend`".into()));
        }
        match map_get(emap, "min_throughput_rps")
            .ok()
            .and_then(|v| v.as_num())
        {
            Some(rps) if rps > 0.0 => {}
            Some(rps) => {
                findings.push(entry_err(format!("`min_throughput_rps` {rps} must be > 0")))
            }
            None => findings.push(entry_err("needs numeric `min_throughput_rps`".into())),
        }
        match map_get(emap, "max_p99_ns").ok().and_then(|v| v.as_map()) {
            Some(p99) => {
                for (op, v) in p99 {
                    match v.as_num() {
                        Some(ns) if ns > 0.0 => {}
                        _ => findings.push(entry_err(format!(
                            "`max_p99_ns.{op}` must be a positive number"
                        ))),
                    }
                }
            }
            None => findings.push(entry_err("needs object `max_p99_ns`".into())),
        }
        if let Ok(rate) = map_get(emap, "min_pmf_cache_hit_rate") {
            match rate.as_num() {
                Some(r) if r > 0.0 && r <= 1.0 => {}
                _ => findings.push(entry_err(
                    "`min_pmf_cache_hit_rate` must be in (0, 1]".into(),
                )),
            }
        }
        if let Ok(frac_of) = map_get(emap, "min_throughput_frac_of") {
            let Some(fmap) = frac_of.as_map() else {
                findings.push(entry_err(
                    "`min_throughput_frac_of` must be an object".into(),
                ));
                continue;
            };
            for (key, _) in fmap {
                if !matches!(key.as_str(), "backend" | "scenario" | "frac") {
                    findings.push(entry_err(format!(
                        "unknown key `min_throughput_frac_of.{key}`"
                    )));
                }
            }
            if map_get(fmap, "backend")
                .ok()
                .and_then(|v| v.as_str())
                .is_none()
            {
                findings.push(entry_err(
                    "`min_throughput_frac_of` needs string `backend`".into(),
                ));
            }
            match map_get(fmap, "frac").ok().and_then(|v| v.as_num()) {
                Some(frac) if frac > 0.0 && frac <= 1.0 => {}
                _ => findings.push(entry_err(
                    "`min_throughput_frac_of.frac` must be in (0, 1]".into(),
                )),
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Finding;
    use std::path::Path;

    #[test]
    fn allowlist_unknown_key_and_dangling_path_are_errors() {
        let text = r#"{"allow": [
            {"lint": "L3", "path": "does/not/exist.rs", "reason": "x"},
            {"lint": "L3", "path": "Cargo.toml", "reason": "x", "extra": 1}
        ]}"#;
        let (_, findings) =
            Allowlist::load(text, "scripts/audit_allow.json", Path::new("/root/repo"));
        assert!(findings.iter().any(|f| f.message.contains("dangling path")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("unknown key `extra`")));
    }

    #[test]
    fn sites_budget_is_schema_checked() {
        // Valid: integer budget on an L3 entry.
        let ok = r#"{"allow": [
            {"lint": "L3", "path": "Cargo.toml", "reason": "spawn point", "sites": 2}
        ]}"#;
        let (allow, findings) = Allowlist::load(ok, "a.json", Path::new("/root/repo"));
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(allow.entries[0].sites, Some(2));

        // Invalid: non-L3 entry, zero, and fractional budgets.
        let bad = r#"{"allow": [
            {"lint": "L1", "path": "Cargo.toml", "reason": "x", "sites": 1},
            {"lint": "L3", "path": "Cargo.toml", "reason": "x", "sites": 0},
            {"lint": "L3", "path": "Cargo.toml", "reason": "x", "sites": 1.5}
        ]}"#;
        let (_, findings) = Allowlist::load(bad, "a.json", Path::new("/root/repo"));
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("only valid on L3")),
            "{findings:?}"
        );
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.message.contains("positive integer"))
                .count(),
            2,
            "{findings:?}"
        );
    }

    #[test]
    fn sites_budget_enforces_exact_spawn_count() {
        let text = r#"{"allow": [
            {"lint": "L3", "path": "Cargo.toml", "reason": "spawn point", "sites": 1}
        ]}"#;
        let (allow, schema) = Allowlist::load(text, "a.json", Path::new("/root/repo"));
        assert!(schema.is_empty(), "{schema:?}");

        // Exactly on budget: both findings suppressed cleanly.
        let on_budget = vec![Finding::new("L3", "Cargo.toml", 4, "spawn")];
        assert!(allow.filter(on_budget, "a.json").is_empty());

        // A second spawn site blows the budget even though both match.
        let over = vec![
            Finding::new("L3", "Cargo.toml", 4, "spawn"),
            Finding::new("L3", "Cargo.toml", 9, "spawn"),
        ];
        let kept = allow.filter(over, "a.json");
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert!(
            kept[0].message.contains("suppressed 2 finding(s)")
                && kept[0].message.contains("sites: 1"),
            "{kept:?}"
        );
    }

    #[test]
    fn unused_allowlist_entries_are_flagged_used_ones_suppress() {
        let text = r#"{"allow": [
            {"lint": "L3", "path": "Cargo.toml", "reason": "spawn point"},
            {"lint": "L1", "path": "Cargo.toml", "reason": "never fires"}
        ]}"#;
        let (allow, schema) = Allowlist::load(text, "a.json", Path::new("/root/repo"));
        assert!(schema.is_empty(), "{schema:?}");
        let raw = vec![Finding::new("L3", "Cargo.toml", 4, "spawn")];
        let kept = allow.filter(raw, "a.json");
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert!(kept[0].message.contains("unused allowlist entry"));
        assert!(kept[0].message.contains("L1"));
    }

    #[test]
    fn floors_schema_catches_typos() {
        let good = std::fs::read_to_string(
            Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scripts/perf_floors.json"),
        )
        .expect("checked-in floors");
        assert!(validate_floors(&good, "scripts/perf_floors.json").is_empty());

        let typo = good.replace("min_throughput_rps", "min_thruput_rps");
        let findings = validate_floors(&typo, "scripts/perf_floors.json");
        assert!(findings
            .iter()
            .any(|f| f.message.contains("unknown key `min_thruput_rps`")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("needs numeric `min_throughput_rps`")));
    }

    #[test]
    fn floors_bounds_are_enforced() {
        let text = r#"{"tolerance": 1.5, "backends": [
            {"backend": "in_process", "min_throughput_rps": -1,
             "max_p99_ns": {"price": 0},
             "min_pmf_cache_hit_rate": 1.5,
             "min_throughput_frac_of": {"backend": "x", "frac": 2.0}}
        ]}"#;
        let findings = validate_floors(text, "f.json");
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("outside [0, 1)")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("must be > 0")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("max_p99_ns.price")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("frac")), "{msgs:?}");
        assert!(
            msgs.iter()
                .any(|m| m.contains("min_pmf_cache_hit_rate` must be in (0, 1]")),
            "{msgs:?}"
        );
    }
}
