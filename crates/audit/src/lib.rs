//! ft-audit — the workspace invariant checker.
//!
//! A deliberately small static-analysis pass over the workspace's own
//! sources (vendored stand-ins excluded) enforcing the invariants the
//! compiler can't: justification comments on `unsafe` and relaxed
//! atomics, the thread-spawn budget, the metric-name grammar, the span-name
//! grammar, and the serving tier's mutex-poisoning policy — plus schema validation of
//! the checked-in policy files so a typo in an allowlist or perf floor
//! fails the build instead of silently disabling a gate.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p ft-audit            # human output, exit 1 on findings
//! cargo run -p ft-audit -- --json  # machine output (CI artifact)
//! ```
//!
//! The dynamic complement — the lock-order witness — lives in
//! `ft_core::lockcheck` and runs in its own CI leg under
//! `RUSTFLAGS="--cfg lockcheck"`.

pub mod config;
pub mod lints;
pub mod report;
pub mod scan;

use report::{Finding, Report};
use std::path::PathBuf;

/// Workspace-relative locations of the policy files.
pub const ALLOW_PATH: &str = "scripts/audit_allow.json";
pub const FLOORS_PATH: &str = "scripts/perf_floors.json";

/// Audit options; `Default` matches the CI invocation.
#[derive(Debug, Default)]
pub struct Options {
    /// Workspace root (defaults to the current directory).
    pub root: Option<PathBuf>,
    /// Override the allowlist location (tests use fixture copies).
    pub allow_path: Option<PathBuf>,
    /// Override the floors location.
    pub floors_path: Option<PathBuf>,
}

/// Run the full audit: schema-check both policy files, scan every
/// workspace `.rs` file, apply the allowlist.
pub fn run(opts: &Options) -> std::io::Result<Report> {
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => std::env::current_dir()?,
    };
    let mut findings: Vec<Finding> = Vec::new();

    // Policy files first: a malformed allowlist must fail loudly, not
    // silently suppress nothing.
    let allow_abs = opts
        .allow_path
        .clone()
        .unwrap_or_else(|| root.join(ALLOW_PATH));
    let allowlist = match std::fs::read_to_string(&allow_abs) {
        Ok(text) => {
            let (allowlist, schema_findings) = config::Allowlist::load(&text, ALLOW_PATH, &root);
            findings.extend(schema_findings);
            allowlist
        }
        Err(e) => {
            findings.push(Finding::new(
                "config",
                ALLOW_PATH,
                0,
                &format!("unreadable: {e}"),
            ));
            config::Allowlist::default()
        }
    };
    let floors_abs = opts
        .floors_path
        .clone()
        .unwrap_or_else(|| root.join(FLOORS_PATH));
    match std::fs::read_to_string(&floors_abs) {
        Ok(text) => findings.extend(config::validate_floors(&text, FLOORS_PATH)),
        Err(e) => findings.push(Finding::new(
            "config",
            FLOORS_PATH,
            0,
            &format!("unreadable: {e}"),
        )),
    }

    let files = scan::workspace_files(&root)?;
    let files_scanned = files.len();
    let mut lint_findings: Vec<Finding> = Vec::new();
    for abs in &files {
        let rel = abs
            .strip_prefix(&root)
            .unwrap_or(abs)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(abs)?;
        let source = scan::scan_source(&rel, abs, &text);
        lint_findings.extend(lints::run_all(&source));
    }
    findings.extend(allowlist.filter(lint_findings, ALLOW_PATH));

    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.lint.as_str()).cmp(&(b.path.as_str(), b.line, b.lint.as_str()))
    });
    Ok(Report {
        findings,
        files_scanned,
    })
}
