//! The six repo-specific lints.
//!
//! All lints run over the comment/string-aware line model from
//! [`crate::scan`], so text inside comments or literals never trips a
//! token check and a justification inside a string never satisfies one.
//!
//! | lint | invariant |
//! |------|-----------|
//! | L1 | every `unsafe` block/fn/impl carries a `// SAFETY:` justification |
//! | L2 | every `Ordering::Relaxed` — and any `Acquire`/`Release` whose counterpart is not in the same function — carries `// ORDERING:` |
//! | L3 | `std::thread::spawn` / `thread::Builder` only in allowlisted spawn points |
//! | L4 | metric names registered on `MetricsRegistry` follow `ft_<crate>_<what>_<unit or total>` |
//! | L5 | no `unwrap()`/`expect()` on `Mutex::lock` in `crates/server` (poisoning policy) |
//! | L6 | span names handed to `ft_trace` follow `<crate>.<component>.<verb>` |
//!
//! L1 applies everywhere (test `unsafe` is still `unsafe`); L2–L6 apply
//! to production code only — integration tests, benches, examples and
//! in-file `#[cfg(test)]` regions are exempt.

use crate::report::Finding;
use crate::scan::SourceFile;

/// How many code-free lines above a site the justification comment may
/// sit (attributes and blank lines in between are skipped).
const COMMENT_LOOKBACK: usize = 8;

pub fn run_all(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    lint_l1_unsafe_safety(file, &mut findings);
    lint_l2_ordering(file, &mut findings);
    lint_l3_thread_spawn(file, &mut findings);
    lint_l4_metric_names(file, &mut findings);
    lint_l5_lock_unwrap(file, &mut findings);
    lint_l6_span_names(file, &mut findings);
    findings
}

/// Does the site at `idx` carry a justification comment containing
/// `marker` — on the same line, or in the contiguous comment/attribute
/// block immediately above it?
///
/// A code line containing `run_token` does not break the block: one
/// justification covers a contiguous run of same-kind sites (paired
/// `unsafe impl Send/Sync`, an adjacent pair of relaxed stores).
/// Continuation heads of a wrapped statement (`let x =` above an
/// `unsafe { … }`) don't break it either.
fn has_justification(file: &SourceFile, idx: usize, marker: &str, run_token: &str) -> bool {
    if file.lines[idx].comment.contains(marker) {
        return true;
    }
    let mut looked = 0;
    for j in (0..idx).rev() {
        let line = &file.lines[j];
        if line.comment.contains(marker) {
            return true;
        }
        let code = line.code.trim();
        if !code.is_empty()
            && !code.starts_with("#[")
            && !code.starts_with("#!")
            && !code.contains(run_token)
            && (code.ends_with(';') || code.ends_with('}') || code.ends_with('{'))
        {
            return false;
        }
        looked += 1;
        if looked >= COMMENT_LOOKBACK {
            return false;
        }
    }
    false
}

/// Is `token` present in `code` with identifier-boundary on both sides?
fn has_token(code: &str, token: &str) -> bool {
    token_pos(code, token).is_some()
}

fn token_pos(code: &str, token: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(token) {
        let pos = from + rel;
        let before_ok = pos == 0
            || !code[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = pos + token.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(pos);
        }
        from = pos + token.len();
    }
    None
}

/// L1: `unsafe` needs `// SAFETY:`. Applies to test code too — the
/// compiler's proof obligation does not care where the block lives.
fn lint_l1_unsafe_safety(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if !has_token(&line.code, "unsafe") {
            continue;
        }
        if !has_justification(file, idx, "SAFETY:", "unsafe") {
            findings.push(Finding::new(
                "L1",
                &file.rel_path,
                idx + 1,
                "`unsafe` without a `// SAFETY:` justification",
            ));
        }
    }
}

/// Function regions for the L2 counterpart heuristic: the file split at
/// lines introducing a `fn`. Approximate (nested fns merge into their
/// parent's tail region) but deterministic, and exact for this
/// workspace's flat function bodies.
fn fn_region(file: &SourceFile, idx: usize) -> (usize, usize) {
    let is_fn_line = |line: &str| has_token(line, "fn") && line.contains('(');
    let mut start = 0;
    for j in (0..=idx).rev() {
        if is_fn_line(&file.lines[j].code) {
            start = j;
            break;
        }
    }
    let mut end = file.lines.len();
    for (j, line) in file.lines.iter().enumerate().skip(idx + 1) {
        if is_fn_line(&line.code) {
            end = j;
            break;
        }
    }
    (start, end)
}

/// L2: `Ordering::Relaxed` always needs `// ORDERING:`; `Acquire`,
/// `Release` and `AcqRel` need it only when their counterpart is not
/// visible in the same function (a paired load/store a few lines apart
/// documents itself; a release whose matching acquire lives in another
/// function does not).
fn lint_l2_ordering(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if !file.is_prod_line(idx) {
            continue;
        }
        let relaxed = line.code.contains("Ordering::Relaxed");
        let acquire = line.code.contains("Ordering::Acquire");
        let release = line.code.contains("Ordering::Release");
        let acqrel = line.code.contains("Ordering::AcqRel");
        if !(relaxed || acquire || release || acqrel) {
            continue;
        }
        if has_justification(file, idx, "ORDERING:", "Ordering::") {
            continue;
        }
        if relaxed {
            findings.push(Finding::new(
                "L2",
                &file.rel_path,
                idx + 1,
                "`Ordering::Relaxed` without an `// ORDERING:` justification",
            ));
            continue;
        }
        // Acquire/Release: exempt when the counterpart is in the same
        // function. AcqRel pairs with anything (including itself).
        let (start, end) = fn_region(file, idx);
        let counterpart_here =
            |needle: &str| (start..end).any(|j| j != idx && file.lines[j].code.contains(needle));
        let paired = if acqrel {
            counterpart_here("Ordering::Acquire")
                || counterpart_here("Ordering::Release")
                || counterpart_here("Ordering::AcqRel")
        } else {
            (acquire
                && (counterpart_here("Ordering::Release") || counterpart_here("Ordering::AcqRel")))
                || (release
                    && (counterpart_here("Ordering::Acquire")
                        || counterpart_here("Ordering::AcqRel")))
        };
        if !paired {
            findings.push(Finding::new(
                "L2",
                &file.rel_path,
                idx + 1,
                "acquire/release with its counterpart in another function and no `// ORDERING:` justification",
            ));
        }
    }
}

/// L3: raw thread creation is reserved for the ft-exec pool and the
/// server's spawn points; everything else rides the shared pool.
/// Violations are suppressed per-file via `scripts/audit_allow.json`.
/// Scoped `thread::scope` spawns are structured (joined before return)
/// and stay legal.
fn lint_l3_thread_spawn(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if !file.is_prod_line(idx) {
            continue;
        }
        if line.code.contains("thread::spawn") || line.code.contains("thread::Builder") {
            findings.push(Finding::new(
                "L3",
                &file.rel_path,
                idx + 1,
                "raw thread creation outside the sanctioned spawn points (ft-exec pool, server reactor, router acceptor)",
            ));
        }
    }
}

const HISTOGRAM_UNITS: [&str; 6] = ["_ns", "_us", "_ms", "_seconds", "_bytes", "_cents"];

/// L4: metric-name grammar. A name registered from `crates/<dir>/…`
/// must read `ft_<dir>_<what>` with the instrument's suffix: counters
/// end `_total`, histograms end in a unit, gauges are instantaneous
/// levels and need only the prefix. A `{label="…"}` suffix is stripped
/// before checking (`{{`/`}}` in `format!` strings included).
fn lint_l4_metric_names(file: &SourceFile, findings: &mut Vec<Finding>) {
    let Some(crate_dir) = file.crate_dir.as_deref() else {
        return;
    };
    let prefix = format!("ft_{}_", crate_dir.replace('-', "_"));
    for (idx, line) in file.lines.iter().enumerate() {
        if !file.is_prod_line(idx) {
            continue;
        }
        for kind in ["counter", "gauge", "histogram"] {
            // Registration call: `.counter(` / `.gauge(` / `.histogram(`.
            let needle = format!(".{kind}(");
            let Some(dot) = line.code.find(&needle) else {
                continue;
            };
            let call = dot + 1;
            // The name literal is the first string at or after the call
            // — possibly on a following line (`format!` wraps).
            let literal = line
                .strings
                .iter()
                .find(|(off, _)| *off > call)
                .map(|(_, s)| s.clone())
                .or_else(|| {
                    (idx + 1..(idx + 4).min(file.lines.len()))
                        .find_map(|j| file.lines[j].strings.first().map(|(_, s)| s.clone()))
                });
            let Some(raw_name) = literal else {
                continue; // dynamically built name — out of scope
            };
            let name = raw_name.split('{').next().unwrap_or("").to_string();
            let bad = if !name.starts_with(&prefix) {
                Some(format!(
                    "metric name `{name}` must start with `{prefix}` (defining crate)"
                ))
            } else if kind == "counter" && !name.ends_with("_total") {
                Some(format!("counter `{name}` must end `_total`"))
            } else if kind == "histogram" && !HISTOGRAM_UNITS.iter().any(|u| name.ends_with(u)) {
                Some(format!(
                    "histogram `{name}` must end in a unit suffix ({})",
                    HISTOGRAM_UNITS.join(", ")
                ))
            } else {
                None
            };
            if let Some(msg) = bad {
                findings.push(Finding::new("L4", &file.rel_path, idx + 1, &msg));
            }
        }
    }
}

/// L5: in `crates/server`, `Mutex::lock` results must not be
/// `unwrap()`/`expect()`ed — a worker panic while holding a queue lock
/// would cascade poison panics through the serving tier. The policy is
/// `unwrap_or_else(|e| e.into_inner())`: the guarded structures are
/// valid after any partial update a panicking holder could make.
fn lint_l5_lock_unwrap(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.crate_dir.as_deref() != Some("server") {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if !file.is_prod_line(idx) {
            continue;
        }
        let code = &line.code;
        let Some(pos) = code.find(".lock()") else {
            continue;
        };
        let after = code[pos + ".lock()".len()..].trim_start();
        let offends = if after.starts_with(".unwrap()") || after.starts_with(".expect(") {
            true
        } else if after.is_empty() || after == ";" {
            // Chain continues on the next code line.
            (idx + 1..file.lines.len())
                .find(|j| !file.lines[*j].code.trim().is_empty())
                .is_some_and(|j| {
                    let next = file.lines[j].code.trim();
                    next.starts_with(".unwrap()") || next.starts_with(".expect(")
                })
        } else {
            false
        };
        if offends {
            findings.push(Finding::new(
                "L5",
                &file.rel_path,
                idx + 1,
                "`unwrap()`/`expect()` on `Mutex::lock` in the serving tier — use `unwrap_or_else(|e| e.into_inner())` (poisoning policy)",
            ));
        }
    }
}

/// The `ft_trace` call sites whose first string literal is a span name.
const TRACE_NEEDLES: [&str; 4] = [
    "ft_trace::span(",
    "ft_trace::record(",
    "ft_trace::begin_at(",
    "ft_trace::begin_with(",
];

/// L6: span-name grammar. A name handed to `ft_trace` from
/// `crates/<dir>/…` must read `<dir>.<component>.<verb>` — exactly
/// three dot-separated `[a-z0-9_]+` segments, the first naming the
/// defining crate (`-` → `_`) — so every trace renders with a stable
/// crate → component → verb hierarchy and tooling can prefix-match a
/// crate's spans. Mirrors the L4 metric-name grammar; `crates/trace`
/// itself is exempt (it defines the API, and its docs and tests
/// exercise other crates' namespaces).
fn lint_l6_span_names(file: &SourceFile, findings: &mut Vec<Finding>) {
    let Some(crate_dir) = file.crate_dir.as_deref() else {
        return;
    };
    if crate_dir == "trace" {
        return;
    }
    let crate_seg = crate_dir.replace('-', "_");
    for (idx, line) in file.lines.iter().enumerate() {
        if !file.is_prod_line(idx) {
            continue;
        }
        for needle in TRACE_NEEDLES {
            let Some(pos) = line.code.find(needle) else {
                continue;
            };
            let call = pos + needle.len() - 1;
            // The name literal is the first string after the opening
            // paren — possibly on a following line (wrapped call).
            let literal = line
                .strings
                .iter()
                .find(|(off, _)| *off > call)
                .map(|(_, s)| s.clone())
                .or_else(|| {
                    (idx + 1..(idx + 4).min(file.lines.len()))
                        .find_map(|j| file.lines[j].strings.first().map(|(_, s)| s.clone()))
                });
            let Some(name) = literal else {
                continue; // dynamically built name — out of scope
            };
            let segments: Vec<&str> = name.split('.').collect();
            let well_formed = segments.len() == 3
                && segments.iter().all(|seg| {
                    !seg.is_empty()
                        && seg
                            .chars()
                            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                });
            let bad = if !well_formed {
                Some(format!(
                    "span name `{name}` must be `<crate>.<component>.<verb>` \
                     (three dot-separated lowercase segments)"
                ))
            } else if segments[0] != crate_seg {
                Some(format!(
                    "span name `{name}` must start `{crate_seg}.` (defining crate)"
                ))
            } else {
                None
            };
            if let Some(msg) = bad {
                findings.push(Finding::new("L6", &file.rel_path, idx + 1, &msg));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;
    use std::path::Path;

    fn scan_at(rel: &str, text: &str) -> SourceFile {
        scan_source(rel, Path::new(rel), text)
    }

    #[test]
    fn l1_accepts_preceding_and_trailing_safety_comments() {
        let ok = scan_at(
            "crates/demo/src/lib.rs",
            "// SAFETY: pointer is valid for the call\nunsafe { work(p) };\nlet x = unsafe { go() }; // SAFETY: inline proof",
        );
        assert!(run_all(&ok).iter().all(|f| f.lint != "L1"));
        let bad = scan_at("crates/demo/src/lib.rs", "unsafe { work(p) };");
        assert_eq!(run_all(&bad).iter().filter(|f| f.lint == "L1").count(), 1);
    }

    #[test]
    fn l1_comment_block_is_broken_by_code() {
        let bad = scan_at(
            "crates/demo/src/lib.rs",
            "// SAFETY: for the other block\nlet y = 1;\nunsafe { work(p) };",
        );
        assert_eq!(run_all(&bad).iter().filter(|f| f.lint == "L1").count(), 1);
    }

    #[test]
    fn l2_relaxed_needs_ordering_everywhere_but_tests() {
        let bad = scan_at(
            "crates/demo/src/lib.rs",
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }",
        );
        assert_eq!(run_all(&bad).iter().filter(|f| f.lint == "L2").count(), 1);
        let test_code = scan_at(
            "crates/demo/tests/t.rs",
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }",
        );
        assert!(run_all(&test_code).iter().all(|f| f.lint != "L2"));
    }

    #[test]
    fn l2_same_function_pair_is_exempt_cross_function_is_not() {
        let paired = scan_at(
            "crates/demo/src/lib.rs",
            "fn swap(a: &AtomicU64) -> u64 {\n    let old = a.load(Ordering::Acquire);\n    a.store(7, Ordering::Release);\n    old\n}",
        );
        assert!(run_all(&paired).iter().all(|f| f.lint != "L2"));
        let split = scan_at(
            "crates/demo/src/lib.rs",
            "fn publish(a: &AtomicU64) {\n    a.store(7, Ordering::Release);\n}\nfn read(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Acquire)\n}",
        );
        assert_eq!(run_all(&split).iter().filter(|f| f.lint == "L2").count(), 2);
    }

    #[test]
    fn l3_flags_spawn_and_builder_in_prod_only() {
        let bad = scan_at(
            "crates/demo/src/lib.rs",
            "fn go() { std::thread::spawn(|| {}); }\nfn go2() { thread::Builder::new(); }",
        );
        assert_eq!(run_all(&bad).iter().filter(|f| f.lint == "L3").count(), 2);
        let test_code = scan_at(
            "crates/demo/tests/t.rs",
            "fn go() { std::thread::spawn(|| {}); }",
        );
        assert!(run_all(&test_code).iter().all(|f| f.lint != "L3"));
    }

    #[test]
    fn l4_grammar_per_instrument() {
        let src = concat!(
            "fn wire(m: &MetricsRegistry) {\n",
            "    m.counter(\"ft_demo_requests_total\");\n",
            "    m.counter(\"ft_demo_requests\");\n",
            "    m.histogram(\"ft_demo_wait_ns\");\n",
            "    m.histogram(\"ft_demo_wait\");\n",
            "    m.gauge(\"ft_demo_conns_active\");\n",
            "    m.counter(\"ft_other_requests_total\");\n",
            "    m.counter(\"ft_demo_reqs_total{op=\\\"solve\\\"}\");\n",
            "}\n"
        );
        let f = scan_at("crates/demo/src/lib.rs", src);
        let l4: Vec<usize> = run_all(&f)
            .into_iter()
            .filter(|f| f.lint == "L4")
            .map(|f| f.line)
            .collect();
        assert_eq!(
            l4,
            vec![3, 5, 7],
            "bare counter, unitless histogram, wrong crate"
        );
    }

    #[test]
    fn l4_reads_the_literal_from_a_multiline_format_call() {
        let src = "fn wire(m: &MetricsRegistry) {\n    m.counter(&format!(\n        \"ft_demo_requests_total{{op=\\\"{}\\\"}}\",\n        op\n    ));\n}\n";
        let f = scan_at("crates/demo/src/lib.rs", src);
        assert!(run_all(&f).iter().all(|f| f.lint != "L4"));
    }

    #[test]
    fn l5_server_lock_unwrap_same_line_and_chained() {
        let bad = scan_at(
            "crates/server/src/demo.rs",
            "fn f(q: &Mutex<u32>) {\n    let a = q.lock().unwrap();\n    let b = q\n        .lock()\n        .expect(\"poisoned\");\n}",
        );
        assert_eq!(run_all(&bad).iter().filter(|f| f.lint == "L5").count(), 2);
        let ok = scan_at(
            "crates/server/src/demo.rs",
            "fn f(q: &Mutex<u32>) { let a = q.lock().unwrap_or_else(|e| e.into_inner()); }",
        );
        assert!(run_all(&ok).iter().all(|f| f.lint != "L5"));
        let other_crate = scan_at(
            "crates/core/src/demo.rs",
            "fn f(q: &Mutex<u32>) { let a = q.lock().unwrap(); }",
        );
        assert!(run_all(&other_crate).iter().all(|f| f.lint != "L5"));
    }

    #[test]
    fn l6_span_name_grammar() {
        let src = concat!(
            "fn solve() {\n",
            "    let _ok = ft_trace::span(\"demo.solver.sweep\");\n",
            "    let _wrong_crate = ft_trace::span(\"other.solver.sweep\");\n",
            "    let _two_segments = ft_trace::span(\"demo.sweep\");\n",
            "    ft_trace::record(\"demo.solver.Sweep\", 0, 1);\n",
            "    let _ok_root = ft_trace::begin_at(7, \"demo.request.serve\", 0);\n",
            "}\n"
        );
        let f = scan_at("crates/demo/src/lib.rs", src);
        let l6: Vec<usize> = run_all(&f)
            .into_iter()
            .filter(|f| f.lint == "L6")
            .map(|f| f.line)
            .collect();
        assert_eq!(l6, vec![3, 4, 5], "wrong crate, two segments, uppercase");
    }

    /// The work-stealing/batched-solving instruments are the names CI
    /// greps dashboards for; pin the grammar on the real names (accept)
    /// and on the mistakes a refactor would most plausibly introduce
    /// (reject: registering from the wrong crate, dotted-name drift).
    #[test]
    fn l4_l6_pin_the_steal_and_batch_instrument_names() {
        let exec_ok = scan_at(
            "crates/exec/src/metrics.rs",
            concat!(
                "fn wire(m: &MetricsRegistry) {\n",
                "    m.counter(\"ft_exec_steals_total\");\n",
                "    m.counter(\"ft_exec_deque_overflow_total\");\n",
                "}\n",
                "fn steal() { let _s = ft_trace::span(\"exec.pool.steal\"); }\n"
            ),
        );
        assert!(
            run_all(&exec_ok)
                .iter()
                .all(|f| f.lint != "L4" && f.lint != "L6"),
            "exec instrument names must satisfy their own grammar"
        );
        let core_ok = scan_at(
            "crates/core/src/scheduler.rs",
            concat!(
                "fn wire(m: &MetricsRegistry) {\n",
                "    m.counter(\"ft_core_batched_solves_total\");\n",
                "    m.counter(\"ft_core_pmf_cache_hits_total\");\n",
                "}\n",
                "fn wait() { let _s = ft_trace::span(\"core.service.batch_wait\"); }\n"
            ),
        );
        assert!(
            run_all(&core_ok)
                .iter()
                .all(|f| f.lint != "L4" && f.lint != "L6"),
            "core scheduler instrument names must satisfy their own grammar"
        );
        // Reject: the steal counter registered from ft-core (a metrics
        // consolidation would silently re-crate the name), and the two
        // likeliest span-name regressions.
        let wrong_crate = scan_at(
            "crates/core/src/scheduler.rs",
            "fn wire(m: &MetricsRegistry) { m.counter(\"ft_exec_steals_total\"); }\n",
        );
        assert_eq!(
            run_all(&wrong_crate)
                .iter()
                .filter(|f| f.lint == "L4")
                .count(),
            1
        );
        let bad_spans = scan_at(
            "crates/exec/src/pool.rs",
            concat!(
                "fn f() {\n",
                "    let _two_segments = ft_trace::span(\"exec.steal\");\n",
                "    let _foreign = ft_trace::span(\"core.service.batch_wait\");\n",
                "}\n"
            ),
        );
        assert_eq!(
            run_all(&bad_spans)
                .iter()
                .filter(|f| f.lint == "L6")
                .count(),
            2
        );
    }

    #[test]
    fn l6_exempts_tests_the_trace_crate_and_dynamic_names() {
        let test_code = scan_at(
            "crates/demo/tests/t.rs",
            "fn f() { let _s = ft_trace::span(\"x\"); }",
        );
        assert!(run_all(&test_code).iter().all(|f| f.lint != "L6"));
        let own_crate = scan_at(
            "crates/trace/src/lib.rs",
            "fn f() { let _s = ft_trace::span(\"x\"); }",
        );
        assert!(run_all(&own_crate).iter().all(|f| f.lint != "L6"));
        let dynamic = scan_at(
            "crates/demo/src/lib.rs",
            "fn f(name: &'static str) { let _s = ft_trace::span(name); }",
        );
        assert!(run_all(&dynamic).iter().all(|f| f.lint != "L6"));
    }
}
