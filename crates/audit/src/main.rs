//! CLI for the workspace invariant checker.
//!
//! ```text
//! ft-audit [--root PATH] [--json] [--allow PATH] [--floors PATH]
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

use ft_audit::{run, Options};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut opts = Options::default();
    let mut json = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match argv.next() {
                Some(v) => opts.root = Some(PathBuf::from(v)),
                None => return usage("--root needs a value"),
            },
            "--allow" => match argv.next() {
                Some(v) => opts.allow_path = Some(PathBuf::from(v)),
                None => return usage("--allow needs a value"),
            },
            "--floors" => match argv.next() {
                Some(v) => opts.floors_path = Some(PathBuf::from(v)),
                None => return usage("--floors needs a value"),
            },
            "--help" | "-h" => {
                println!("usage: ft-audit [--root PATH] [--json] [--allow PATH] [--floors PATH]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ft-audit: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ft-audit: {msg}");
    eprintln!("usage: ft-audit [--root PATH] [--json] [--allow PATH] [--floors PATH]");
    ExitCode::from(2)
}
