//! Findings and the two output formats (human lines, `--json`).

use serde::Value;

/// One lint violation at a specific site.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Lint id: `L1`..`L6`, or `config` for policy-file schema errors.
    pub lint: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line, 0 for file-level findings.
    pub line: usize,
    pub message: String,
}

impl Finding {
    pub fn new(lint: &str, path: &str, line: usize, message: &str) -> Self {
        Finding {
            lint: lint.to_string(),
            path: path.to_string(),
            line,
            message: message.to_string(),
        }
    }

    pub fn human(&self) -> String {
        if self.line == 0 {
            format!("{}: {}: {}", self.lint, self.path, self.message)
        } else {
            format!(
                "{}: {}:{}: {}",
                self.lint, self.path, self.line, self.message
            )
        }
    }
}

/// A completed audit run.
#[derive(Debug)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// Files scanned (after exclusions).
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Stable machine-readable form, archived as a CI artifact.
    pub fn to_json(&self) -> String {
        let findings = self
            .findings
            .iter()
            .map(|f| {
                Value::Map(vec![
                    ("lint".into(), Value::Str(f.lint.clone())),
                    ("path".into(), Value::Str(f.path.clone())),
                    ("line".into(), Value::Num(f.line as f64)),
                    ("message".into(), Value::Str(f.message.clone())),
                ])
            })
            .collect();
        let mut counts: Vec<(String, Value)> = Vec::new();
        for f in &self.findings {
            match counts.iter_mut().find(|(k, _)| *k == f.lint) {
                Some((_, Value::Num(n))) => *n += 1.0,
                Some(_) => unreachable!("counts hold numbers"),
                None => counts.push((f.lint.clone(), Value::Num(1.0))),
            }
        }
        let root = Value::Map(vec![
            (
                "files_scanned".into(),
                Value::Num(self.files_scanned as f64),
            ),
            ("clean".into(), Value::Bool(self.is_clean())),
            ("counts_by_lint".into(), Value::Map(counts)),
            ("findings".into(), Value::Seq(findings)),
        ]);
        serde_json::to_string(&root).expect("report serializes")
    }

    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.human());
            out.push('\n');
        }
        out.push_str(&format!(
            "ft-audit: {} file(s) scanned, {} finding(s)\n",
            self.files_scanned,
            self.findings.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_and_counts() {
        let report = Report {
            findings: vec![
                Finding::new("L1", "crates/x/src/lib.rs", 3, "m"),
                Finding::new("L1", "crates/x/src/lib.rs", 9, "m"),
                Finding::new("L5", "crates/server/src/a.rs", 1, "n"),
            ],
            files_scanned: 2,
        };
        let parsed: Value = serde_json::from_str(&report.to_json()).expect("valid json");
        let map = parsed.as_map().expect("object");
        let counts = serde::map_get(map, "counts_by_lint")
            .expect("counts")
            .as_map()
            .expect("object")
            .to_vec();
        assert_eq!(counts[0], ("L1".to_string(), Value::Num(2.0)));
        assert_eq!(counts[1], ("L5".to_string(), Value::Num(1.0)));
        let findings = serde::map_get(map, "findings")
            .expect("findings")
            .as_seq()
            .expect("seq");
        assert_eq!(findings.len(), 3);
    }
}
