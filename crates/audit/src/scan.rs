//! Source model: a comment/string-aware line scanner.
//!
//! The lints are token-level, so the one thing the scanner must get
//! right is **what is code**: comments and the *contents* of string and
//! char literals are blanked out of the code view (quotes are kept so
//! token boundaries survive), comment text is collected per line, and
//! string literals are collected per line in order of appearance. A
//! `Relaxed` inside a doc comment or an error message must never trip
//! L2; a `SAFETY:` inside a string must never satisfy L1.
//!
//! The scanner also classifies lines as test or production code:
//! in-file `#[cfg(test)] mod … { … }` regions are brace-matched, and
//! whole files are classified by path (`tests/`, `benches/`,
//! `examples/`, or a `tests.rs` module included under `#[cfg(test)]`).

use std::path::{Path, PathBuf};

/// One scanned line, split into its three views.
#[derive(Debug, Default)]
pub struct Line {
    /// Source text with comments removed and literal contents blanked.
    pub code: String,
    /// Comment text appearing on this line (line and block comments,
    /// doc comments included), concatenated.
    pub comment: String,
    /// String literals starting on this line, in order, with their
    /// byte offset in `code` (the position of the opening quote).
    pub strings: Vec<(usize, String)>,
    /// Inside an in-file `#[cfg(test)] mod … { … }` region.
    pub in_test_mod: bool,
}

/// A scanned file plus the path-derived facts lints key on.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (forward slashes).
    pub rel_path: String,
    pub abs_path: PathBuf,
    /// Crate short name from `crates/<dir>/…` (e.g. `core`, `server`),
    /// `None` for the root `src/`/`tests/`/`examples/`.
    pub crate_dir: Option<String>,
    /// Whole file is test/bench/example code (path-classified).
    pub is_test_code: bool,
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Is the 0-indexed line production code for lints scoped to it?
    pub fn is_prod_line(&self, idx: usize) -> bool {
        !self.is_test_code && !self.lines[idx].in_test_mod
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Scan one file's text into the line model.
pub fn scan_source(rel_path: &str, abs_path: &Path, text: &str) -> SourceFile {
    let mut lines: Vec<Line> = Vec::new();
    let mut state = State::Code;

    for raw in text.lines() {
        let mut line = Line::default();
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        let mut current_string: Option<(usize, String)> = None;

        // A string/raw-string/block-comment may continue from the
        // previous line; `Str` state at line start means an unterminated
        // (multi-line) string — its continuation is not code.
        while i < bytes.len() {
            let c = bytes[i];
            match state {
                State::Code => {
                    if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
                        line.comment.push_str(&raw[char_off(raw, i)..]);
                        state = State::LineComment;
                        break; // rest of the line is comment
                    } else if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
                        state = State::BlockComment(1);
                        i += 2;
                        continue;
                    } else if c == '"' {
                        line.code.push('"');
                        current_string = Some((line.code.len() - 1, String::new()));
                        state = State::Str;
                        i += 1;
                        continue;
                    } else if c == 'r'
                        && !prev_is_ident(&line.code)
                        && raw_string_hashes(&bytes, i + 1).is_some()
                    {
                        let hashes = raw_string_hashes(&bytes, i + 1).unwrap();
                        line.code.push('"');
                        current_string = Some((line.code.len() - 1, String::new()));
                        state = State::RawStr(hashes);
                        i += 2 + hashes as usize; // r, #*, "
                        continue;
                    } else if c == '\'' {
                        // Char literal vs lifetime: a literal is '\…' or
                        // 'X' (single char then closing quote).
                        let is_char_literal = match bytes.get(i + 1) {
                            Some('\\') => true,
                            Some(_) => bytes.get(i + 2) == Some(&'\''),
                            None => false,
                        };
                        if is_char_literal {
                            line.code.push_str("' '");
                            // Skip to the closing quote.
                            let mut j = i + 1;
                            if bytes[j] == '\\' {
                                j += 2; // escape + escaped char
                                while j < bytes.len() && bytes[j] != '\'' {
                                    j += 1; // \u{..}
                                }
                            } else {
                                j += 1;
                            }
                            i = j + 1;
                            continue;
                        }
                        line.code.push('\'');
                        i += 1;
                        continue;
                    }
                    line.code.push(c);
                    i += 1;
                }
                State::LineComment => unreachable!("line comments end the line"),
                State::BlockComment(depth) => {
                    if c == '*' && bytes.get(i + 1) == Some(&'/') {
                        if depth == 1 {
                            state = State::Code;
                        } else {
                            state = State::BlockComment(depth - 1);
                        }
                        i += 2;
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = State::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        line.comment.push(c);
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        if let Some((_, s)) = current_string.as_mut() {
                            s.push(c);
                            if let Some(&n) = bytes.get(i + 1) {
                                s.push(n);
                            }
                        }
                        i += 2;
                    } else if c == '"' {
                        line.code.push('"');
                        if let Some(done) = current_string.take() {
                            line.strings.push(done);
                        }
                        state = State::Code;
                        i += 1;
                    } else {
                        if let Some((_, s)) = current_string.as_mut() {
                            s.push(c);
                        }
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw(&bytes, i + 1, hashes) {
                        line.code.push('"');
                        if let Some(done) = current_string.take() {
                            line.strings.push(done);
                        }
                        state = State::Code;
                        i += 1 + hashes as usize;
                    } else {
                        if let Some((_, s)) = current_string.as_mut() {
                            s.push(c);
                        }
                        i += 1;
                    }
                }
            }
        }
        // A string still open at end of line continues next line; its
        // collected-so-far content is recorded when it closes, on the
        // closing line — good enough for L4, which never spans lines.
        if state == State::LineComment {
            state = State::Code;
        }
        if let Some(open) = current_string.take() {
            if matches!(state, State::Str | State::RawStr(_)) {
                line.strings.push(open);
            }
        }
        lines.push(line);
    }

    mark_test_mods(&mut lines);

    let crate_dir = rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .map(|s| s.to_string());
    let is_test_code = path_is_test_code(rel_path);

    SourceFile {
        rel_path: rel_path.to_string(),
        abs_path: abs_path.to_path_buf(),
        crate_dir,
        is_test_code,
        lines,
    }
}

/// Byte offset of the `i`-th char of `raw`.
fn char_off(raw: &str, i: usize) -> usize {
    raw.char_indices().nth(i).map_or(raw.len(), |(o, _)| o)
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// If `bytes[from..]` is `#*"` (a raw-string opener after `r`/`br`),
/// the number of hashes.
fn raw_string_hashes(bytes: &[char], from: usize) -> Option<u32> {
    let mut j = from;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&'"')).then_some(hashes)
}

fn closes_raw(bytes: &[char], from: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| bytes.get(from + k) == Some(&'#'))
}

/// Path-level test-code classification: integration tests, benches,
/// examples, and `tests.rs` modules (included under `#[cfg(test)]` by
/// their parent, so the marker is outside the file).
fn path_is_test_code(rel_path: &str) -> bool {
    let components: Vec<&str> = rel_path.split('/').collect();
    components
        .iter()
        .any(|c| *c == "tests" || *c == "benches" || *c == "examples")
        || components.last().is_some_and(|f| *f == "tests.rs")
}

/// Mark lines inside `#[cfg(test)] mod … { … }` regions by brace
/// matching on the code view.
fn mark_test_mods(lines: &mut [Line]) {
    let mut pending_cfg_test = false;
    let mut region_depth: Option<i64> = None; // brace depth at region entry
    let mut depth: i64 = 0;

    for line in lines.iter_mut() {
        let code = &line.code;
        let trimmed = code.trim();
        let entering = region_depth.is_none()
            && pending_cfg_test
            && trimmed.starts_with("mod ")
            && code.contains('{');
        if region_depth.is_none() && trimmed.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        } else if region_depth.is_none()
            && !entering
            && !trimmed.is_empty()
            && !trimmed.starts_with("#[")
        {
            pending_cfg_test = false;
        }
        if entering {
            region_depth = Some(depth);
            pending_cfg_test = false;
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(entry_depth) = region_depth {
            line.in_test_mod = true;
            if depth <= entry_depth {
                region_depth = None;
            }
        }
    }
}

/// Walk the workspace for lintable `.rs` files. Excluded: `target/`
/// build output, `crates/vendor/` (offline stand-ins for third-party
/// crates — not this repo's code, and intentionally mirroring foreign
/// idiom), and the audit crate's own `tests/fixtures/` (deliberate
/// violations).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                if name == "vendor" && dir.file_name().is_some_and(|d| d == "crates") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn scan(text: &str) -> SourceFile {
        scan_source("crates/demo/src/lib.rs", Path::new("lib.rs"), text)
    }

    #[test]
    fn comments_and_strings_leave_the_code_view() {
        let f = scan("let x = \"unsafe\"; // unsafe trailing\nlet y = 1; /* unsafe */ let z = 2;");
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[0].comment.contains("unsafe trailing"));
        assert_eq!(f.lines[0].strings[0].1, "unsafe");
        assert!(!f.lines[1].code.contains("unsafe"));
        assert!(f.lines[1].code.contains("let z"));
    }

    #[test]
    fn raw_strings_and_lifetimes_are_handled() {
        let f = scan("let p = r#\"a \"quoted\" unsafe\"#;\nfn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(!f.lines[0].code.contains("unsafe"));
        assert_eq!(f.lines[0].strings[0].1, "a \"quoted\" unsafe");
        assert!(f.lines[1].code.contains("fn f<'a>"));
        assert!(!f.lines[1].code.contains('x'.to_string().repeat(2).as_str()));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f =
            scan("/* outer /* inner */ still comment */ let a = 1;\n/* open\nstill\n*/ let b = 2;");
        assert!(f.lines[0].code.contains("let a"));
        assert!(!f.lines[0].code.contains("still comment"));
        assert!(f.lines[2].code.is_empty());
        assert!(f.lines[3].code.contains("let b"));
    }

    #[test]
    fn cfg_test_mod_regions_are_marked() {
        let text = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn also_prod() {}";
        let f = scan(text);
        assert!(f.is_prod_line(0));
        assert!(!f.is_prod_line(3));
        assert!(f.is_prod_line(5));
    }

    #[test]
    fn path_classification() {
        assert!(path_is_test_code("crates/exec/tests/pool.rs"));
        assert!(path_is_test_code("crates/bench/benches/registry_shard.rs"));
        assert!(path_is_test_code("examples/http_server.rs"));
        assert!(path_is_test_code("crates/core/src/registry/tests.rs"));
        assert!(!path_is_test_code("crates/core/src/registry/store.rs"));
    }
}
