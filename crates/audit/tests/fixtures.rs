//! Fixture harness: one reject tree per lint (the audit must find the
//! seeded violation and exit non-zero), one accept tree covering every
//! lint's compliant form (the audit must run clean), and the self-check
//! that keeps the real workspace clean under its checked-in policy.
//!
//! Exit codes are exercised through the actual `ft-audit` binary
//! (`CARGO_BIN_EXE_ft-audit`) — the same artifact CI runs — not just
//! the library API.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

/// Run the real binary against a fixture tree with an explicit
/// allowlist (path relative to the fixtures dir).
fn audit_with(tree: &str, allow: &str) -> Output {
    let fixtures = fixtures_dir();
    Command::new(env!("CARGO_BIN_EXE_ft-audit"))
        .arg("--root")
        .arg(fixtures.join(tree))
        .arg("--allow")
        .arg(fixtures.join(allow))
        .arg("--floors")
        .arg(fixtures.join("policy/perf_floors.json"))
        .arg("--json")
        .output()
        .expect("ft-audit runs")
}

/// Run the real binary against a fixture tree with the shared policy
/// files.
fn audit_fixture(tree: &str) -> Output {
    audit_with(tree, "policy/audit_allow.json")
}

/// Parse the `--json` report into (exit_code, findings as
/// `(lint, path)` pairs).
fn report(output: &Output) -> (i32, Vec<(String, String)>) {
    let stdout = String::from_utf8_lossy(&output.stdout);
    let value: serde::Value = serde_json::from_str(stdout.trim()).expect("valid --json output");
    let map = value.as_map().expect("report object");
    let findings = serde::map_get(map, "findings")
        .expect("findings key")
        .as_seq()
        .expect("findings array")
        .iter()
        .map(|f| {
            let fmap = f.as_map().expect("finding object");
            (
                serde::map_get(fmap, "lint")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string(),
                serde::map_get(fmap, "path")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string(),
            )
        })
        .collect();
    (output.status.code().expect("exit code"), findings)
}

fn assert_rejects(tree: &str, lint: &str, path_fragment: &str) {
    let (code, findings) = report(&audit_fixture(tree));
    assert_eq!(code, 1, "{tree}: reject fixture must exit 1, got {code}");
    assert!(
        findings
            .iter()
            .any(|(l, p)| l == lint && p.contains(path_fragment)),
        "{tree}: expected a {lint} finding in *{path_fragment}*, got {findings:?}"
    );
    assert!(
        findings.iter().all(|(l, _)| l == lint),
        "{tree}: only {lint} violations are seeded, got {findings:?}"
    );
}

#[test]
fn l1_reject_fixture_fails() {
    assert_rejects("reject_l1", "L1", "src/lib.rs");
}

#[test]
fn l2_reject_fixture_fails() {
    let (code, findings) = report(&audit_fixture("reject_l2"));
    assert_eq!(code, 1);
    let l2: Vec<_> = findings.iter().filter(|(l, _)| l == "L2").collect();
    // The bare Relaxed plus both halves of the cross-function split.
    assert_eq!(l2.len(), 3, "{findings:?}");
}

#[test]
fn l3_reject_fixture_fails() {
    let (code, findings) = report(&audit_fixture("reject_l3"));
    assert_eq!(code, 1);
    assert_eq!(
        findings.iter().filter(|(l, _)| l == "L3").count(),
        2,
        "spawn and Builder: {findings:?}"
    );
}

#[test]
fn l4_reject_fixture_fails() {
    let (code, findings) = report(&audit_fixture("reject_l4"));
    assert_eq!(code, 1);
    assert_eq!(
        findings.iter().filter(|(l, _)| l == "L4").count(),
        5,
        "bare counter, unitless histogram, wrong crate, missing prefix, \
         backend name in the router crate: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|(l, p)| l == "L4" && p.contains("crates/router/")),
        "router-crate prefix violation must be caught: {findings:?}"
    );
}

#[test]
fn l5_reject_fixture_fails() {
    let (code, findings) = report(&audit_fixture("reject_l5"));
    assert_eq!(code, 1);
    assert_eq!(
        findings.iter().filter(|(l, _)| l == "L5").count(),
        2,
        "same-line and wrapped chain: {findings:?}"
    );
}

#[test]
fn l6_reject_fixture_fails() {
    let (code, findings) = report(&audit_fixture("reject_l6"));
    assert_eq!(code, 1);
    assert_eq!(
        findings.iter().filter(|(l, _)| l == "L6").count(),
        5,
        "wrong crate, two segments, four segments, uppercase, \
         backend span name in the router crate: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|(l, p)| l == "L6" && p.contains("crates/router/")),
        "router-crate span violation must be caught: {findings:?}"
    );
}

/// The L3 `sites` budget: an allowlist entry sanctioning exactly the
/// spawn sites present is clean; a stale budget (fewer sites than the
/// file actually has) fails even though every finding matches the
/// entry.
#[test]
fn l3_sites_budget_on_budget_is_clean() {
    let (code, findings) = report(&audit_with(
        "router_sites",
        "router_sites_policy/on_budget.json",
    ));
    assert_eq!(code, 0, "on-budget policy must be clean: {findings:?}");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn l3_sites_budget_stale_count_fails() {
    let (code, findings) = report(&audit_with(
        "router_sites",
        "router_sites_policy/stale_budget.json",
    ));
    assert_eq!(code, 1, "stale budget must fail: {findings:?}");
    assert!(
        findings.iter().any(|(l, _)| l == "config"),
        "budget drift is a config finding: {findings:?}"
    );
}

/// Malformed policy files are findings in their own right: unknown
/// keys, dangling paths, unknown lints, out-of-range floors.
#[test]
fn config_reject_fixture_fails() {
    let fixtures = fixtures_dir();
    let output = Command::new(env!("CARGO_BIN_EXE_ft-audit"))
        .arg("--root")
        .arg(fixtures.join("accept"))
        .arg("--allow")
        .arg(fixtures.join("reject_config/audit_allow.json"))
        .arg("--floors")
        .arg(fixtures.join("reject_config/perf_floors.json"))
        .arg("--json")
        .output()
        .expect("ft-audit runs");
    let (code, findings) = report(&output);
    assert_eq!(code, 1);
    let config: Vec<_> = findings.iter().filter(|(l, _)| l == "config").collect();
    assert!(
        config.len() >= 5,
        "typo key, dangling path, unknown lint, floors typo (x2), tolerance: {findings:?}"
    );
}

/// The accept tree exercises every lint's compliant form — SAFETY'd
/// unsafe impls, justified and self-documenting orderings, scoped
/// threads, grammatical metric names, poison-recovering locks, and
/// cfg(test) exemptions — and must come back clean through the binary.
#[test]
fn accept_fixture_is_clean() {
    let output = audit_fixture("accept");
    let (code, findings) = report(&output);
    assert_eq!(code, 0, "accept fixture must exit 0: {findings:?}");
    assert!(findings.is_empty(), "{findings:?}");
}

/// Self-check: the real workspace, under its checked-in policy files,
/// is audit-clean. This is the test-suite twin of the required CI step.
#[test]
fn workspace_is_audit_clean() {
    let report = ft_audit::run(&ft_audit::Options {
        root: Some(workspace_root()),
        ..Default::default()
    })
    .expect("audit runs");
    assert!(
        report.is_clean(),
        "workspace must stay audit-clean:\n{}",
        report.human()
    );
    // The walker found the real tree, not an empty directory.
    assert!(report.files_scanned > 100, "{} files", report.files_scanned);
}
