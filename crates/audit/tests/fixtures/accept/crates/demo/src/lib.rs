//! Accept fixture: every lint's *compliant* form in one tree. The
//! harness asserts ft-audit reports zero findings here.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Wrapper(*mut u64);

// SAFETY: the pointee is owned by the wrapper and only ever touched
// from one thread at a time (fixture invariant).
unsafe impl Send for Wrapper {}
unsafe impl Sync for Wrapper {}

pub fn bump(counter: &AtomicU64) {
    // ORDERING: Relaxed — a pure tally, nothing is published through it.
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn publish_and_read(flag: &AtomicU64) -> u64 {
    // Same-function acquire/release pair: self-documenting, no
    // ORDERING comment required.
    flag.store(1, Ordering::Release);
    flag.load(Ordering::Acquire)
}

pub fn cross_function_release(flag: &AtomicU64) {
    // ORDERING: Release pairs with the Acquire in `bump`'s caller.
    flag.store(1, Ordering::Release);
}

pub fn wire(metrics: &MetricsRegistry) {
    metrics.counter("ft_demo_requests_total");
    metrics.gauge("ft_demo_connections_active");
    metrics.histogram("ft_demo_wait_ns");
    metrics.counter("ft_demo_requests_by_op_total{op=\"solve\"}");
}

pub fn traced_solve(dynamic_name: &'static str) {
    // Grammatical span names: <crate>.<component>.<verb>, crate first.
    let _root = ft_trace::begin_at(7, "demo.request.serve", 0);
    let _sweep = ft_trace::span("demo.solver.sweep");
    ft_trace::record("demo.solver.induct_layer", 0, 1);
    // Dynamically built names are out of L6's scope.
    let _dynamic = ft_trace::span(dynamic_name);
}

pub fn scoped_threads_are_fine(work: impl Fn() + Sync) {
    std::thread::scope(|s| {
        s.spawn(&work);
    });
}

pub struct MetricsRegistry;
impl MetricsRegistry {
    pub fn counter(&self, _name: &str) {}
    pub fn gauge(&self, _name: &str) {}
    pub fn histogram(&self, _name: &str) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt_from_l2_l3() {
        let c = AtomicU64::new(0);
        c.fetch_add(1, Ordering::Relaxed);
        std::thread::spawn(|| {}).join().unwrap();
    }
}
