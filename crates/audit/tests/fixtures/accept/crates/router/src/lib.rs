//! Accept fixture for the router tier's grammars: `ft_router_*`
//! metric names and `router.<component>.<verb>` span names, in the
//! same forms the real crate uses (including `format!`-built labelled
//! names).

pub fn wire(metrics: &MetricsRegistry) {
    metrics.counter("ft_router_retries_total");
    metrics.counter("ft_router_requests_total{endpoint=\"quote\"}");
    metrics.gauge("ft_router_nodes_alive");
    metrics.histogram("ft_router_request_ns");
    metrics.histogram(&format!(
        "ft_router_request_ns{{endpoint=\"{}\"}}",
        "campaigns"
    ));
}

pub fn proxied() {
    let _root = ft_trace::begin_at(7, "router.request.serve", 0);
    let _hop = ft_trace::span("router.backend.proxy");
    ft_trace::record("router.fleet.merge", 0, 1);
}

pub struct MetricsRegistry;
impl MetricsRegistry {
    pub fn counter(&self, _name: &str) {}
    pub fn gauge(&self, _name: &str) {}
    pub fn histogram(&self, _name: &str) {}
}
