//! Accept fixture for L5: the serving tier recovers poisoned mutexes
//! instead of unwrapping them.

use std::sync::Mutex;

pub fn drain(queue: &Mutex<Vec<u32>>) -> Vec<u32> {
    std::mem::take(&mut *queue.lock().unwrap_or_else(|e| e.into_inner()))
}
