//! Reject fixture for L1: `unsafe` without a `// SAFETY:` comment.

pub fn read_first(data: &[u64]) -> u64 {
    unsafe { *data.as_ptr() }
}
