//! Reject fixture for L2: a bare `Ordering::Relaxed` and a
//! cross-function acquire/release split, both unjustified.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn publish(flag: &AtomicU64) {
    flag.store(1, Ordering::Release);
}

pub fn consume(flag: &AtomicU64) -> u64 {
    flag.load(Ordering::Acquire)
}
