//! Reject fixture for L3: raw thread creation outside the sanctioned
//! spawn points, with no allowlist entry.

pub fn fire_and_forget(work: impl FnOnce() + Send + 'static) {
    std::thread::spawn(work);
}

pub fn named(work: impl FnOnce() + Send + 'static) {
    let _ = std::thread::Builder::new().name("rogue".into()).spawn(work);
}
