//! Reject fixture for L4: every way a metric name can break the
//! `ft_<crate>_<what>_<unit|total>` grammar.

pub fn wire(metrics: &MetricsRegistry) {
    metrics.counter("ft_demo_requests"); // counter without _total
    metrics.histogram("ft_demo_wait"); // histogram without a unit
    metrics.counter("ft_other_requests_total"); // wrong crate segment
    metrics.gauge("demo_connections_active"); // missing ft_ prefix
}

pub struct MetricsRegistry;
impl MetricsRegistry {
    pub fn counter(&self, _name: &str) {}
    pub fn gauge(&self, _name: &str) {}
    pub fn histogram(&self, _name: &str) {}
}
