//! Reject fixture for L4 in the router crate: a metric registered
//! from `crates/router` must carry the `ft_router_` prefix — a
//! backend-crate name proxied through is still a violation.

pub fn wire(metrics: &MetricsRegistry) {
    metrics.counter("ft_server_proxied_total"); // wrong crate segment
}

pub struct MetricsRegistry;
impl MetricsRegistry {
    pub fn counter(&self, _name: &str) {}
}
