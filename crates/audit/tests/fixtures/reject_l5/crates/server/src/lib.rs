//! Reject fixture for L5: unwrap/expect on `Mutex::lock` in the
//! serving tier, same-line and wrapped-chain forms.

use std::sync::Mutex;

pub fn push(queue: &Mutex<Vec<u32>>, item: u32) {
    queue.lock().unwrap().push(item);
}

pub fn drain(queue: &Mutex<Vec<u32>>) -> Vec<u32> {
    let mut guard = queue
        .lock()
        .expect("queue poisoned");
    std::mem::take(&mut *guard)
}
