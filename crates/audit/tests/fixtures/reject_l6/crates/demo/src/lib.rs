//! Reject fixture for L6: every way a span name can break the
//! `<crate>.<component>.<verb>` grammar.

pub fn solve() {
    let _wrong_crate = ft_trace::span("other.solver.sweep");
    let _two_segments = ft_trace::span("demo.sweep");
    ft_trace::record("demo.solver.sweep.inner", 0, 1);
    let _bad_chars = ft_trace::begin_at(7, "demo.Solver.sweep", 0);
}
