//! Reject fixture for L6 in the router crate: a span recorded from
//! `crates/router` must start `router.` — emitting a backend's span
//! name for a proxied hop is still a violation.

pub fn proxied() {
    let _hop = ft_trace::span("server.request.serve");
}
