//! Sites-budget fixture: exactly two raw spawn sites, mirroring the
//! real router acceptor (per-worker `Builder` threads plus the one
//! joiner thread). The companion policies budget `sites: 2` (clean)
//! and `sites: 1` (stale budget — must fail).

pub fn spawn_workers() {
    let builder = std::thread::Builder::new();
    let _ = builder.spawn(|| {});
    let _joiner = std::thread::spawn(|| {});
}
