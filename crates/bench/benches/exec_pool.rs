//! Persistent-pool dispatch vs the pre-PR-4 spawn-per-region executor.
//!
//! The solver kernel opens one parallel region per induction layer, so
//! dispatch overhead is paid `n_steps` times per solve. This bench
//! isolates that cost three ways:
//!
//! - `layer_dispatch/*` — a synthetic 64-layer sweep over a 4096-cell
//!   row of cheap cells: `spawn_per_layer` reproduces the old
//!   `std::thread::scope` executor verbatim, `pooled` runs the same
//!   decomposition on `ft-exec`'s parked workers, `serial` is the
//!   inline floor.
//! - `join_tree/*` — a depth-6 fork-join recursion (the Algorithm 2
//!   monotone-divide shape): scoped spawns vs steal-back pool joins.
//! - `budget_regrain/*` — a real Theorem 4 budget MDP solve wide
//!   enough (width 8001) to fan out at the PR 4 grain of 512; `serial`
//!   pins one thread, `pooled` uses the machine budget. On a 1-core
//!   host both degrade to the same inline loop; the pair is the
//!   multicore re-capture target.
//!
//! Snapshot alongside `BENCH_solver.json`:
//! `CRITERION_JSON=... cargo bench -p ft-bench --bench exec_pool`.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_core::kernel::budget::{BudgetMdpModel, IntegerActions};
use ft_core::kernel::{run, Direction, KernelConfig, Sweep};
use ft_core::ActionSet;
use ft_market::{LogitAcceptance, PriceGrid};
use std::hint::black_box;

const LAYERS: usize = 64;
const WIDTH: usize = 4096;
const GRAIN: usize = 512;

/// The cheap budget-DP-shaped cell both layer benches compute.
#[inline]
fn cell(layer: usize, i: usize, x: u64) -> u64 {
    x.wrapping_mul(2654435761)
        .wrapping_add((layer * WIDTH + i) as u64)
        .rotate_left(7)
}

/// The old `ft-exec`: fresh scoped threads per parallel region, with
/// the exact chunk decomposition the crate still uses.
fn spawn_per_layer_chunks(data: &mut [u64], layer: usize, threads: usize) {
    let len = data.len();
    let n_chunks = threads.min(len.div_ceil(GRAIN));
    if n_chunks <= 1 {
        for (i, x) in data.iter_mut().enumerate() {
            *x = cell(layer, i, *x);
        }
        return;
    }
    let chunk_len = len.div_ceil(n_chunks);
    std::thread::scope(|s| {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            s.spawn(move || {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = cell(layer, ci * chunk_len + j, *x);
                }
            });
        }
    });
}

fn layer_dispatch(c: &mut Criterion) {
    let threads = ft_exec::available_threads();
    let mut group = c.benchmark_group("exec_pool/layer_dispatch");
    group.sample_size(10);

    group.bench_function("serial", |b| {
        let mut data = vec![1u64; WIDTH];
        b.iter(|| {
            for layer in 0..LAYERS {
                for (i, x) in data.iter_mut().enumerate() {
                    *x = cell(layer, i, *x);
                }
            }
            black_box(data[0])
        })
    });

    group.bench_function("spawn_per_layer", |b| {
        let mut data = vec![1u64; WIDTH];
        b.iter(|| {
            for layer in 0..LAYERS {
                spawn_per_layer_chunks(&mut data, layer, threads);
            }
            black_box(data[0])
        })
    });

    group.bench_function("pooled", |b| {
        let mut data = vec![1u64; WIDTH];
        b.iter(|| {
            for layer in 0..LAYERS {
                ft_exec::par_chunks_mut(&mut data, GRAIN, 0, |start, chunk| {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x = cell(layer, start + j, *x);
                    }
                });
            }
            black_box(data[0])
        })
    });

    group.finish();
}

fn join_tree(c: &mut Criterion) {
    fn scoped_tree(depth: u32) -> u64 {
        if depth == 0 {
            return black_box(17u64).wrapping_mul(2654435761);
        }
        let (a, b) = std::thread::scope(|s| {
            let hb = s.spawn(move || scoped_tree(depth - 1));
            let ra = scoped_tree(depth - 1);
            (ra, hb.join().expect("joined task panicked"))
        });
        a.wrapping_add(b)
    }

    fn pooled_tree(depth: u32) -> u64 {
        if depth == 0 {
            return black_box(17u64).wrapping_mul(2654435761);
        }
        let (a, b) = ft_exec::join(|| pooled_tree(depth - 1), || pooled_tree(depth - 1));
        a.wrapping_add(b)
    }

    let mut group = c.benchmark_group("exec_pool/join_tree");
    group.sample_size(10);
    group.bench_function("scoped_spawn", |b| b.iter(|| black_box(scoped_tree(6))));
    group.bench_function("pooled_join", |b| b.iter(|| black_box(pooled_tree(6))));
    group.finish();
}

fn budget_regrain(c: &mut Criterion) {
    let acc = LogitAcceptance::new(5.0, 0.0, 25.0);
    let set = ActionSet::from_grid(PriceGrid::new(1, 18), &acc);
    let acts = IntegerActions::from_action_set(&set, "bench").unwrap();
    let (n_tasks, b_max) = (40u32, 8000usize);

    let mut group = c.benchmark_group("exec_pool/budget_mdp");
    group.sample_size(10);
    for (label, cfg) in [
        ("serial", KernelConfig::serial()),
        ("pooled", KernelConfig::default()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let model = BudgetMdpModel::new(&acts, n_tasks, b_max);
                let (values, _) = run(&model, Sweep::Dense, Direction::Forward, &cfg);
                black_box(values.row(n_tasks as usize)[b_max])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, layer_dispatch, join_tree, budget_regrain);
criterion_main!(benches);
