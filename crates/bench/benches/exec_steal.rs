//! Work-stealing dispatch on the per-worker deque executor.
//!
//! PR 10 rebuilt `ft-exec` around Chase–Lev-style per-worker deques:
//! the dispatching worker pushes chunks to its own deque bottom (LIFO)
//! and idle siblings steal from the top (FIFO), with the injector
//! demoted to an overflow/submission channel. This bench isolates what
//! that buys and costs:
//!
//! - `uniform/*` — a flat 64-layer fan-out of equal-cost chunks:
//!   `serial` is the inline floor, `external` dispatches from a
//!   non-worker thread (injector submission), `worker` dispatches from
//!   inside a pool worker (`run_on_worker`), the deque path whose
//!   chunks siblings steal.
//! - `skewed/*` — the same fan-out with the final chunk ~16× heavier:
//!   the shape stealing exists to rebalance. On a 1-core host both
//!   degrade to the inline loop; the pair is the multicore re-capture
//!   target.
//!
//! After each group the steal counter delta is printed so a capture
//! records whether steals actually happened on the host that ran it.
//!
//! Snapshot alongside `BENCH_solver.json`:
//! `CRITERION_JSON=... cargo bench -p ft-bench --bench exec_steal`.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_exec::Pool;
use std::hint::black_box;

const LAYERS: usize = 64;
const WIDTH: usize = 4096;
const GRAIN: usize = 256;

/// The cheap cell every chunk computes.
#[inline]
fn cell(layer: usize, i: usize, x: u64) -> u64 {
    x.wrapping_mul(2654435761)
        .wrapping_add((layer * WIDTH + i) as u64)
        .rotate_left(7)
}

/// A deliberately heavier cell for the skewed tail chunk.
#[inline]
fn heavy_cell(layer: usize, i: usize, x: u64) -> u64 {
    let mut v = x;
    for _ in 0..16 {
        v = cell(layer, i, v);
    }
    v
}

fn sweep(data: &mut [u64], skewed: bool, pooled: Option<&Pool>) {
    let heavy_from = WIDTH - GRAIN;
    for layer in 0..LAYERS {
        match pooled {
            Some(pool) => pool.par_chunks_mut(data, GRAIN, 0, |start, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    let i = start + j;
                    *x = if skewed && i >= heavy_from {
                        heavy_cell(layer, i, *x)
                    } else {
                        cell(layer, i, *x)
                    };
                }
            }),
            None => {
                for (i, x) in data.iter_mut().enumerate() {
                    *x = if skewed && i >= heavy_from {
                        heavy_cell(layer, i, *x)
                    } else {
                        cell(layer, i, *x)
                    };
                }
            }
        }
    }
}

fn steal_dispatch(c: &mut Criterion) {
    let pool = Pool::global();
    for skewed in [false, true] {
        let name = if skewed { "skewed" } else { "uniform" };
        let mut group = c.benchmark_group(&format!("exec_steal/{name}"));
        group.sample_size(10);
        let steals_before = pool.steals();

        group.bench_function("serial", |b| {
            let mut data = vec![1u64; WIDTH];
            b.iter(|| {
                sweep(&mut data, skewed, None);
                black_box(data[0])
            })
        });

        // External dispatch: the bench thread is not a pool worker, so
        // every fan-out goes through the injector submission channel.
        group.bench_function("external", |b| {
            let mut data = vec![1u64; WIDTH];
            b.iter(|| {
                sweep(&mut data, skewed, Some(pool));
                black_box(data[0])
            })
        });

        // Worker dispatch: the fan-out starts from inside a worker, so
        // chunks land on the owner's deque bottom and idle siblings
        // steal from the top — the path the solvers' nested layers use.
        group.bench_function("worker", |b| {
            b.iter(|| {
                let out = pool.run_on_worker(|| {
                    let mut data = vec![1u64; WIDTH];
                    sweep(&mut data, skewed, Some(pool));
                    data[0]
                });
                black_box(out)
            })
        });

        group.finish();
        println!(
            "exec_steal/{name}: {} workers, {} steals during the group",
            pool.workers(),
            pool.steals() - steals_before
        );
    }
}

criterion_group!(benches, steal_dispatch);
criterion_main!(benches);
