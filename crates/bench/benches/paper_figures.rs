//! Benchmarks that regenerate the paper's *figures* (printing the series
//! once, in fast mode) and time the core computation behind each:
//!
//! - `fig1`: tracker trace generation.
//! - `fig5`: utility-choice acceptance sweep.
//! - `fig7a`/`fig7b`/`fig8abc`: the deadline MDP solve + calibration that
//!   powers the effectiveness and trend plots.
//! - `fig8d`: granularity sensitivity (one coarse + one fine solve).
//! - `fig9`/`fig10`: policy evaluation under mis-specified dynamics.
//! - `fig11`: budget-strategy completion-time sampling.
//! - `fig12`/`fig15`: the event-driven live marketplace simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_core::{calibrate_penalty, solve_truncated, CalibrateOptions};
use ft_market::{LogitAcceptance, TrackerConfig, TrackerTrace};
use ft_sim::{run_by_id, ExpConfig, PaperScenario};
use std::hint::black_box;
use std::sync::Once;

fn print_once(flag: &'static Once, id: &str) {
    flag.call_once(|| {
        if let Some(reports) = run_by_id(id, ExpConfig::fast()) {
            for rep in reports {
                println!("{}", rep.to_ascii());
            }
        }
    });
}

fn scenario() -> PaperScenario {
    PaperScenario::new(20140827)
}

fn fig1(c: &mut Criterion) {
    static PRINTED: Once = Once::new();
    print_once(&PRINTED, "fig1");
    c.bench_function("paper_figures/fig1_trace_generation", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = ft_stats::rng::stream_rng(1, i);
            black_box(TrackerTrace::generate(TrackerConfig::january_2014(), &mut rng).total())
        })
    });
}

fn fig5(c: &mut Criterion) {
    static PRINTED: Once = Once::new();
    print_once(&PRINTED, "fig5");
    use ft_market::logit::{UtilitySim, UtilitySimConfig};
    let sim = UtilitySim::new(UtilitySimConfig {
        samples_per_price: 2_000,
        ..Default::default()
    });
    c.bench_function("paper_figures/fig5_utility_sweep_point", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = ft_stats::rng::stream_rng(5, i);
            black_box(sim.acceptance_at(60.0, &mut rng))
        })
    });
}

fn fig7a(c: &mut Criterion) {
    static PRINTED: Once = Once::new();
    print_once(&PRINTED, "fig7a");
    let s = scenario();
    let problem = s.deadline_problem(100.0);
    c.bench_function("paper_figures/fig7a_paper_scale_solve", |b| {
        b.iter(|| {
            black_box(
                solve_truncated(&problem, 1e-9)
                    .unwrap()
                    .expected_total_cost(),
            )
        })
    });
    c.bench_function("paper_figures/fig7a_calibration", |b| {
        b.iter(|| {
            let cal = calibrate_penalty(
                &problem,
                0.2,
                CalibrateOptions {
                    truncation_eps: 1e-8,
                    max_iters: 12,
                    ..Default::default()
                },
            )
            .unwrap();
            black_box(cal.outcome.expected_paid)
        })
    });
}

fn fig7b_fig8(c: &mut Criterion) {
    static PRINTED7B: Once = Once::new();
    print_once(&PRINTED7B, "fig7b");
    static PRINTED8: Once = Once::new();
    print_once(&PRINTED8, "fig8abc");
    static PRINTED8D: Once = Once::new();
    print_once(&PRINTED8D, "fig8d");
    let s = scenario();
    // The Fig. 7(b)/8 sweeps repeat one comparison per grid point; time
    // that unit.
    let problem = s.deadline_problem(100.0);
    c.bench_function("paper_figures/fig7b_fig8_one_comparison", |b| {
        b.iter(|| {
            let cmp = ft_sim::compare_dynamic_vs_fixed(
                &problem,
                0.999,
                CalibrateOptions {
                    truncation_eps: 1e-7,
                    max_iters: 10,
                    ..Default::default()
                },
            )
            .unwrap();
            black_box(cmp.reduction)
        })
    });
    // Fig. 8(d): fine vs coarse interval solves.
    let mut coarse = s.clone();
    coarse.interval_minutes = 120.0;
    let p_fine = s.deadline_problem(100.0);
    let p_coarse = coarse.deadline_problem(100.0);
    c.bench_function("paper_figures/fig8d_fine_20min_solve", |b| {
        b.iter(|| {
            black_box(
                solve_truncated(&p_fine, 1e-9)
                    .unwrap()
                    .expected_total_cost(),
            )
        })
    });
    c.bench_function("paper_figures/fig8d_coarse_120min_solve", |b| {
        b.iter(|| {
            black_box(
                solve_truncated(&p_coarse, 1e-9)
                    .unwrap()
                    .expected_total_cost(),
            )
        })
    });
}

fn fig9_fig10(c: &mut Criterion) {
    static PRINTED9: Once = Once::new();
    print_once(&PRINTED9, "fig9");
    static PRINTED10: Once = Once::new();
    print_once(&PRINTED10, "fig10");
    let s = scenario();
    let problem = s.deadline_problem(100.0);
    let policy = solve_truncated(&problem, 1e-9).unwrap();
    let truth = LogitAcceptance::new(15.0, -0.39 + 0.4, 2000.0);
    c.bench_function("paper_figures/fig9_fig10_misspecified_evaluation", |b| {
        b.iter(|| {
            let out = policy.evaluate_against(
                &problem.interval_arrivals,
                |cc| truth.p_f64(cc),
                &problem.penalty,
            );
            black_box(out.expected_remaining)
        })
    });
}

fn fig11(c: &mut Criterion) {
    static PRINTED: Once = Once::new();
    print_once(&PRINTED, "fig11");
    use ft_core::budget::{solve_budget_hull, BudgetProblem};
    use ft_market::ArrivalRate;
    use ft_sim::experiments::fig11_budget::sample_completion_hours;
    let s = scenario();
    let problem = BudgetProblem::new(
        200,
        2500.0,
        ft_core::ActionSet::from_grid(s.grid, &s.acceptance),
        s.trained_rate.mean_rate(0.0, 168.0),
    );
    let sol = solve_budget_hull(&problem).unwrap();
    let seq = sol.strategy.price_sequence();
    c.bench_function("paper_figures/fig11_completion_time_sample", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = ft_stats::rng::stream_rng(11, i);
            black_box(sample_completion_hours(
                &seq,
                &s.acceptance,
                &s.trained_rate,
                &mut rng,
            ))
        })
    });
    c.bench_function("paper_figures/fig11_hull_solve", |b| {
        b.iter(|| black_box(solve_budget_hull(&problem).unwrap().expected_arrivals))
    });
}

fn fig12_fig15(c: &mut Criterion) {
    static PRINTED12: Once = Once::new();
    print_once(&PRINTED12, "fig12");
    static PRINTED15: Once = Once::new();
    print_once(&PRINTED15, "fig15");
    use ft_market::sim::{run_live_sim, FixedGroup, LiveSimConfig};
    use ft_sim::experiments::fig12_live::live_arrival_rate;
    let config = LiveSimConfig::default();
    let arrival = live_arrival_rate(1.0);
    c.bench_function("paper_figures/fig12_fig15_live_trial_5000_tasks", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = ft_stats::rng::stream_rng(12, i);
            let out = run_live_sim(&config, &arrival, 7900.0, &mut FixedGroup(20), &mut rng);
            black_box(out.tasks_completed)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig1, fig5, fig7a, fig7b_fig8, fig9_fig10, fig11, fig12_fig15
}
criterion_main!(benches);
