//! Benchmarks that regenerate the paper's *tables* (printing the rows
//! once) and time the computation behind each:
//!
//! - `tab1`: Poisson truncation points (Table 1).
//! - `tab2`: HIT-snapshot regression (Table 2, with Fig. 6 data).
//! - `tab34`: live-simulation answer-accuracy tables (Tables 3/4, with
//!   the Fig. 13/14 CDFs).

use criterion::{criterion_group, criterion_main, Criterion};
use ft_sim::{run_by_id, ExpConfig};
use ft_stats::Poisson;
use std::hint::black_box;
use std::sync::Once;

fn print_once(flag: &'static Once, id: &str) {
    flag.call_once(|| {
        if let Some(reports) = run_by_id(id, ExpConfig::fast()) {
            for rep in reports {
                println!("{}", rep.to_ascii());
            }
        }
    });
}

fn tab1(c: &mut Criterion) {
    static PRINTED: Once = Once::new();
    print_once(&PRINTED, "tab1");
    c.bench_function("paper_tables/tab1_truncation_points", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &lambda in &[10.0, 20.0, 50.0] {
                acc += Poisson::new(black_box(lambda)).truncation_point(1e-9);
            }
            acc
        })
    });
}

fn tab2(c: &mut Criterion) {
    static PRINTED: Once = Once::new();
    print_once(&PRINTED, "fig6");
    use ft_market::tracker::{generate_snapshots, SnapshotConfig};
    use ft_stats::{seeded_rng, SimpleOls};
    let mut rng = seeded_rng(6);
    let obs = generate_snapshots(100, &SnapshotConfig::default(), &mut rng);
    c.bench_function("paper_tables/tab2_snapshot_regression", |b| {
        b.iter(|| {
            let xs: Vec<f64> = obs.iter().map(|o| o.wage_per_sec).collect();
            let ys: Vec<f64> = obs.iter().map(|o| o.workload_per_hour.ln()).collect();
            black_box(SimpleOls::fit(&xs, &ys))
        })
    });
}

fn tab34(c: &mut Criterion) {
    static PRINTED: Once = Once::new();
    print_once(&PRINTED, "tab34");
    use ft_market::sim::{run_live_sim, FixedGroup, LiveSimConfig};
    use ft_sim::experiments::fig12_live::live_arrival_rate;
    use ft_stats::rng::stream_rng;
    let config = LiveSimConfig {
        total_tasks: 1000,
        ..Default::default()
    };
    let arrival = live_arrival_rate(0.2);
    c.bench_function("paper_tables/tab34_live_accuracy_trial", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = stream_rng(34, i);
            let out = run_live_sim(&config, &arrival, 1800.0, &mut FixedGroup(20), &mut rng);
            black_box(out.hit_accuracies(Some(20)).len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = tab1, tab2, tab34
}
criterion_main!(benches);
