//! Shard-count ablation for the campaign registry's hot paths: the
//! same quote/observe/churn mix against a 1-shard store (the
//! historical single global map) and the default sharded store. The
//! checked-in `BENCH_registry.json` at the workspace root is a
//! snapshot of this bench (regenerate with
//! `CRITERION_JSON=$PWD/BENCH_registry.json cargo bench -p ft-bench
//! --bench registry_shard`).
//!
//! NOTE (1-core host): on the single-core dev container the contended
//! figures measure lock hand-off latency, not parallel throughput —
//! the shard split's point is that on a multicore host quote readers
//! on different campaigns stop serializing behind one map lock at all.
//! Re-capture on a ≥4-core host.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_core::registry::{
    CampaignObservation, CampaignRegistry, CampaignSpec, ObservedState, RegistryConfig,
};
use ft_core::{ActionSet, BudgetProblem};
use ft_market::{LogitAcceptance, PriceGrid};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const FLEET: u64 = 64;

fn budget_spec() -> CampaignSpec {
    CampaignSpec::Budget {
        problem: BudgetProblem::new(
            10,
            60.0,
            ActionSet::from_grid(PriceGrid::new(1, 12), &LogitAcceptance::new(4.0, 0.0, 20.0)),
            100.0,
        ),
    }
}

/// A solved fleet of small budget campaigns on ids `1..=FLEET`.
fn fleet(shards: usize) -> Arc<CampaignRegistry> {
    let registry = Arc::new(CampaignRegistry::with_registry_config(RegistryConfig {
        shards,
        ..RegistryConfig::default()
    }));
    for _ in 0..FLEET {
        let id = registry.register(budget_spec());
        registry.solve(id).unwrap();
    }
    registry
}

fn probe(i: u64) -> (u64, ObservedState) {
    (
        1 + i % FLEET,
        ObservedState::Budget {
            remaining: 1 + (i % 9) as u32,
            budget_cents: 20 + (i % 40) as usize,
        },
    )
}

/// Uncontended quotes rotating across the fleet: the shard routing
/// itself must not cost anything measurable vs the single map.
fn quote_rotation(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_shard");
    for shards in [1usize, 16] {
        let registry = fleet(shards);
        group.bench_function(format!("quote/shards{shards}"), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                let (id, state) = probe(i);
                black_box(registry.quote(id, state).unwrap())
            })
        });
    }
    group.finish();
}

/// Quotes racing register/evict/purge churn and observe writers: the
/// mix every shard of a live fleet serves. With one shard every quote
/// lookup serializes behind the churners' map write lock; with 16 the
/// collisions are ~1/16th.
fn quote_under_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_shard");
    group.sample_size(10);
    for shards in [1usize, 16] {
        let registry = fleet(shards);
        let stop = Arc::new(AtomicBool::new(false));
        let mut churners = Vec::new();
        for worker in 0..2u64 {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            churners.push(std::thread::spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Acquire) {
                    // Map-write churn on ids disjoint from the fleet…
                    let id = 10_000 + worker * 1_000 + (round % 500);
                    registry.register_at(id, budget_spec());
                    registry.purge(id);
                    // …plus writer-lock traffic on a fleet campaign.
                    let _ = registry.observe(
                        1 + (round % FLEET),
                        CampaignObservation::Budget {
                            completions: 0,
                            spent_cents: 0,
                            posted: None,
                            offers: None,
                        },
                    );
                    round += 1;
                }
            }));
        }
        group.bench_function(format!("quote_contended/shards{shards}"), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                let (id, state) = probe(i);
                black_box(registry.quote(id, state).unwrap())
            })
        });
        stop.store(true, Ordering::Release);
        for churner in churners {
            churner.join().unwrap();
        }
    }
    group.finish();
}

/// Fleet aggregates: the counter-based status sum vs walking the maps
/// (what `/healthz` pays per hit).
fn status_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_shard");
    for shards in [1usize, 16] {
        let registry = fleet(shards);
        group.bench_function(format!("status_counts/shards{shards}"), |b| {
            b.iter(|| black_box(registry.status_counts()))
        });
    }
    group.finish();
}

criterion_group!(benches, quote_rotation, quote_under_churn, status_counts);
criterion_main!(benches);
