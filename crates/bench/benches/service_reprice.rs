//! The serving hot path: `reprice`/`quote` latency against a registry
//! holding solved paper-scale campaigns, plus the amortized cost of
//! campaign churn (register + solve + evict). The checked-in
//! `BENCH_service.json` at the workspace root is a snapshot of this
//! bench (regenerate with `CRITERION_JSON=$PWD/BENCH_service.json
//! cargo bench -p ft-bench --bench service_reprice`).

use criterion::{criterion_group, criterion_main, Criterion};
use ft_core::registry::{CampaignRegistry, CampaignSpec, ObservedState};
use ft_core::{ActionSet, BudgetProblem, DeadlineProblem, PenaltyModel, PricingService};
use ft_market::{ConstantRate, LogitAcceptance, PriceGrid};
use std::hint::black_box;

fn paper_deadline() -> DeadlineProblem {
    DeadlineProblem::from_market(
        200,
        24.0,
        72,
        &ConstantRate::new(5100.0),
        PriceGrid::new(0, 40),
        &LogitAcceptance::paper_eq13(),
        PenaltyModel::Linear { per_task: 1000.0 },
    )
}

fn paper_budget() -> BudgetProblem {
    BudgetProblem::new(
        200,
        2500.0,
        ActionSet::from_grid(PriceGrid::new(1, 40), &LogitAcceptance::paper_eq13()),
        5100.0,
    )
}

/// `PricingService::reprice` — the `O(1)` facade hot path.
fn service_reprice(c: &mut Criterion) {
    let service = PricingService::new();
    service.solve_batch(vec![
        (
            0,
            CampaignSpec::Deadline {
                problem: paper_deadline(),
                eps: None,
            },
        ),
        (
            1,
            CampaignSpec::Budget {
                problem: paper_budget(),
            },
        ),
    ]);
    let mut group = c.benchmark_group("service_reprice");
    group.bench_function("deadline", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(
                service
                    .reprice(
                        0,
                        ObservedState::Deadline {
                            remaining: 1 + i % 200,
                            interval: (i % 72) as usize,
                        },
                    )
                    .unwrap(),
            )
        })
    });
    group.bench_function("budget", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(
                service
                    .reprice(
                        1,
                        ObservedState::Budget {
                            remaining: 1 + i % 200,
                            budget_cents: 40 + (i % 2400) as usize,
                        },
                    )
                    .unwrap(),
            )
        })
    });
    group.finish();
}

/// `CampaignRegistry::quote` — the generation-tagged registry path the
/// HTTP server sits on.
fn registry_quote(c: &mut Criterion) {
    let registry = CampaignRegistry::new();
    let id = registry.register(CampaignSpec::Deadline {
        problem: paper_deadline(),
        eps: None,
    });
    registry.solve(id).unwrap();
    let mut group = c.benchmark_group("service_reprice");
    group.bench_function("registry_quote", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(
                registry
                    .quote(
                        id,
                        ObservedState::Deadline {
                            remaining: 1 + i % 200,
                            interval: (i % 72) as usize,
                        },
                    )
                    .unwrap(),
            )
        })
    });
    group.finish();
}

/// One full campaign lifecycle turn — register + solve + evict — the
/// amortized cost of campaign churn around the hot path.
fn registry_churn(c: &mut Criterion) {
    let registry = CampaignRegistry::new();
    let mut group = c.benchmark_group("service_reprice");
    group.sample_size(10);
    group.bench_function("register_solve_evict", |b| {
        b.iter(|| {
            let id = registry.register(CampaignSpec::Deadline {
                problem: paper_deadline(),
                eps: None,
            });
            black_box(registry.solve(id).unwrap());
            registry.evict(id);
            registry.purge(id);
        })
    });
    group.finish();
}

criterion_group!(benches, service_reprice, registry_quote, registry_churn);
criterion_main!(benches);
