//! Solver ablations for the design choices Section 3.2 / 4.3 call out:
//!
//! - `deadline_dp`: Algorithm 1 (simple) vs Poisson truncation vs
//!   Algorithm 2 (monotone divide-and-conquer), across batch sizes.
//! - `truncation_eps`: cost of the truncated solve vs ε.
//! - `budget`: Algorithm 3 (convex hull) vs the Theorem 6 exact DP.
//! - `tradeoff`: the two Section 6 tradeoff formulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_core::extensions::{solve_tradeoff_fixed_rate, solve_tradeoff_worker_arrival};
use ft_core::{
    solve_budget_exact, solve_budget_hull, solve_efficient, solve_simple, solve_truncated,
    ActionSet, BudgetProblem, DeadlineProblem, PenaltyModel,
};
use ft_market::{ConstantRate, LogitAcceptance, PriceGrid};
use std::hint::black_box;

fn problem(n_tasks: u32) -> DeadlineProblem {
    DeadlineProblem::from_market(
        n_tasks,
        24.0,
        72,
        &ConstantRate::new(5100.0),
        PriceGrid::new(0, 40),
        &LogitAcceptance::paper_eq13(),
        PenaltyModel::Linear { per_task: 200.0 },
    )
}

fn deadline_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_ablation/deadline_dp");
    group.sample_size(10);
    for &n in &[25u32, 50, 100, 200] {
        let p = problem(n);
        // The O(N²·N_T·C) simple solver only at small N (it is the point
        // of the ablation that it does not scale).
        if n <= 50 {
            group.bench_with_input(BenchmarkId::new("simple", n), &p, |b, p| {
                b.iter(|| black_box(solve_simple(p).unwrap().expected_total_cost()))
            });
        }
        group.bench_with_input(BenchmarkId::new("truncated_1e-9", n), &p, |b, p| {
            b.iter(|| black_box(solve_truncated(p, 1e-9).unwrap().expected_total_cost()))
        });
        group.bench_with_input(BenchmarkId::new("efficient_1e-9", n), &p, |b, p| {
            b.iter(|| black_box(solve_efficient(p, 1e-9).unwrap().expected_total_cost()))
        });
    }
    group.finish();
}

fn truncation_eps(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_ablation/truncation_eps");
    group.sample_size(10);
    let p = problem(200);
    let exact_cost = solve_truncated(&p, 1e-14).unwrap().expected_total_cost();
    println!("truncation_eps: reference cost at eps=1e-14 is {exact_cost:.4}");
    for &exp in &[3i32, 6, 9, 12] {
        let eps = 10f64.powi(-exp);
        let cost = solve_truncated(&p, eps).unwrap().expected_total_cost();
        println!(
            "truncation_eps: eps=1e-{exp} → cost {cost:.4} (gap {:.2e})",
            exact_cost - cost
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("1e-{exp}")),
            &eps,
            |b, &eps| b.iter(|| black_box(solve_truncated(&p, eps).unwrap().expected_total_cost())),
        );
    }
    group.finish();
}

fn budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_ablation/budget");
    group.sample_size(10);
    let p = BudgetProblem::new(
        200,
        2500.0,
        ActionSet::from_grid(PriceGrid::new(1, 40), &LogitAcceptance::paper_eq13()),
        5100.0,
    );
    let hull = solve_budget_hull(&p).unwrap();
    println!(
        "budget: hull strategy {:?} (E[W] = {:.0}, gap ≤ {:.2})",
        hull.strategy.counts(),
        hull.expected_arrivals,
        hull.rounding_gap_bound
    );
    group.bench_function("hull_algorithm3", |b| {
        b.iter(|| black_box(solve_budget_hull(&p).unwrap().expected_arrivals))
    });
    group.bench_function("exact_theorem6_dp", |b| {
        b.iter(|| black_box(solve_budget_exact(&p).unwrap().total_cost()))
    });
    group.finish();
}

fn tradeoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_ablation/tradeoff");
    let actions = ActionSet::from_grid(PriceGrid::new(1, 40), &LogitAcceptance::paper_eq13());
    group.bench_function("worker_arrival", |b| {
        b.iter(|| {
            black_box(
                solve_tradeoff_worker_arrival(&actions, 200, 5100.0, 500.0)
                    .unwrap()
                    .total(),
            )
        })
    });
    group.bench_function("fixed_rate", |b| {
        b.iter(|| {
            black_box(
                solve_tradeoff_fixed_rate(&actions, 200, 120.0, 500.0)
                    .unwrap()
                    .total(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, deadline_dp, truncation_eps, budget, tradeoff);
criterion_main!(benches);
