//! Serial vs parallel solver kernel on the Algorithm 1/2 solve path.
//!
//! The acceptance bar for the kernel refactor: ≥ 2× speedup for
//! `solve_simple`-class workloads at N ≥ 500 tasks on ≥ 4 cores. The
//! checked-in `BENCH_solver.json` at the workspace root is a snapshot of
//! this bench (regenerate with
//! `CRITERION_JSON=$PWD/BENCH_solver.json cargo bench -p ft-bench --bench solver_parallel`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_core::kernel::deadline::solve_deadline;
use ft_core::kernel::{KernelConfig, Sweep, TruncationTable};
use ft_core::{DeadlineProblem, PenaltyModel};
use ft_market::{ConstantRate, LogitAcceptance, PriceGrid};
use std::hint::black_box;

/// A paper-shaped problem with a 12-interval horizon so the exact
/// (untruncated) Algorithm 1 stays benchable at N = 2000.
fn problem(n_tasks: u32) -> DeadlineProblem {
    DeadlineProblem::from_market(
        n_tasks,
        24.0,
        12,
        &ConstantRate::new(5100.0),
        PriceGrid::new(0, 40),
        &LogitAcceptance::paper_eq13(),
        PenaltyModel::Linear { per_task: 200.0 },
    )
}

fn bench_sweep(c: &mut Criterion, group_name: &str, sweep: Sweep, eps: Option<f64>) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for &n in &[100u32, 500, 2000] {
        let p = problem(n);
        let trunc = match eps {
            Some(e) => TruncationTable::with_eps(&p, e),
            None => TruncationTable::none(&p),
        };
        for (label, cfg) in [
            ("serial", KernelConfig::serial()),
            ("parallel", KernelConfig::default()),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &p, |b, p| {
                b.iter(|| {
                    black_box(
                        solve_deadline(p, &trunc, sweep, &cfg)
                            .unwrap()
                            .expected_total_cost(),
                    )
                })
            });
        }
    }
    group.finish();
}

/// Algorithm 1 exact: the `solve_simple` workload of the acceptance bar.
fn simple_class(c: &mut Criterion) {
    bench_sweep(c, "solver_parallel/simple_dense", Sweep::Dense, None);
}

/// Algorithm 1 + Poisson truncation at 1e-9 (the production default).
fn truncated_class(c: &mut Criterion) {
    bench_sweep(
        c,
        "solver_parallel/truncated_dense",
        Sweep::Dense,
        Some(1e-9),
    );
}

/// Algorithm 2 (monotone divide-and-conquer) + truncation.
fn efficient_class(c: &mut Criterion) {
    bench_sweep(
        c,
        "solver_parallel/efficient_monotone",
        Sweep::MonotoneDivide,
        Some(1e-9),
    );
}

criterion_group!(benches, simple_class, truncated_class, efficient_class);
criterion_main!(benches);
