//! ft-bench: criterion benchmarks live in benches/.
