//! Price actions: the decision space of the MDP.
//!
//! The paper's decision variable is an integer-cent reward `c` with
//! acceptance probability `p(c)`. We generalize slightly to an ordered list
//! of `(reward, acceptance)` actions so the same solvers drive both the
//! cent-grid problem and the live experiment's grouping-size lever
//! (Section 5.4, where the five group sizes induce five effective per-task
//! prices).

use ft_market::{AcceptanceFn, PriceGrid};
use serde::{Deserialize, Serialize};

/// One pricing action: post the tasks at `reward` (cents, possibly
/// fractional for grouped HITs) yielding per-worker acceptance probability
/// `accept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceAction {
    pub reward: f64,
    pub accept: f64,
}

/// An ordered action set: rewards strictly increasing, acceptance
/// probabilities non-decreasing (more money never hurts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionSet {
    actions: Vec<PriceAction>,
}

impl ActionSet {
    /// Build from explicit actions. Sorts by reward and validates
    /// monotonicity.
    pub fn new(mut actions: Vec<PriceAction>) -> Self {
        assert!(!actions.is_empty(), "action set must be non-empty");
        actions.sort_by(|a, b| a.reward.partial_cmp(&b.reward).expect("NaN reward"));
        for a in &actions {
            assert!(
                a.reward >= 0.0 && a.reward.is_finite(),
                "rewards must be finite and non-negative, got {}",
                a.reward
            );
            assert!(
                (0.0..=1.0).contains(&a.accept),
                "acceptance must be in [0,1], got {}",
                a.accept
            );
        }
        for w in actions.windows(2) {
            assert!(
                w[1].reward > w[0].reward,
                "duplicate reward {}",
                w[0].reward
            );
            assert!(
                w[1].accept >= w[0].accept - 1e-12,
                "acceptance must be non-decreasing in reward ({} at {} vs {} at {})",
                w[0].accept,
                w[0].reward,
                w[1].accept,
                w[1].reward
            );
        }
        Self { actions }
    }

    /// Build from possibly non-monotone `(reward, acceptance)` pairs by
    /// pruning dominated actions: an action is dropped when some cheaper
    /// action has acceptance at least as high (a rational policy never
    /// plays it). Used for empirically-estimated action sets such as the
    /// live experiment's grouping-size lever.
    pub fn from_unsorted_pruned(mut actions: Vec<PriceAction>) -> Self {
        assert!(!actions.is_empty(), "action set must be non-empty");
        actions.sort_by(|a, b| {
            a.reward
                .partial_cmp(&b.reward)
                .expect("NaN reward")
                .then(b.accept.partial_cmp(&a.accept).expect("NaN acceptance"))
        });
        let mut kept: Vec<PriceAction> = Vec::with_capacity(actions.len());
        for a in actions {
            match kept.last() {
                Some(last) if (a.reward - last.reward).abs() < 1e-12 => continue,
                Some(last) if a.accept <= last.accept + 1e-15 => continue, // dominated
                _ => kept.push(a),
            }
        }
        Self::new(kept)
    }

    /// The canonical paper action set: every integer cent on `grid` with
    /// acceptance from `p(c)`.
    pub fn from_grid<A: AcceptanceFn + ?Sized>(grid: PriceGrid, acceptance: &A) -> Self {
        let actions = grid
            .iter()
            .map(|c| PriceAction {
                reward: c as f64,
                accept: acceptance.p(c),
            })
            .collect();
        Self::new(actions)
    }

    pub fn len(&self) -> usize {
        self.actions.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    pub fn get(&self, i: usize) -> PriceAction {
        self.actions[i]
    }

    pub fn iter(&self) -> impl Iterator<Item = &PriceAction> {
        self.actions.iter()
    }

    /// Maximum reward `C` (upper bound used in the Theorem 1 error bound).
    pub fn max_reward(&self) -> f64 {
        self.actions[self.actions.len() - 1].reward
    }

    pub fn min_reward(&self) -> f64 {
        self.actions[0].reward
    }

    /// Transform every acceptance probability through a monotone map
    /// (the budget drift recalibrator's "same prices, corrected market"
    /// hook). The map must be non-decreasing and land in `[0, 1]` —
    /// asserted — so the non-decreasing-in-reward invariant survives.
    pub fn map_accept(&mut self, f: impl Fn(f64) -> f64) {
        let mut prev = f64::NEG_INFINITY;
        for a in &mut self.actions {
            let mapped = f(a.accept);
            assert!(
                (0.0..=1.0).contains(&mapped),
                "mapped acceptance {mapped} outside [0, 1]"
            );
            assert!(
                mapped >= prev - 1e-12,
                "acceptance map is not monotone ({mapped} after {prev})"
            );
            prev = mapped;
            a.accept = mapped;
        }
    }

    /// Index of the action with the given reward, if present.
    pub fn index_of_reward(&self, reward: f64) -> Option<usize> {
        self.actions
            .binary_search_by(|a| a.reward.partial_cmp(&reward).unwrap())
            .ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_market::LogitAcceptance;

    #[test]
    fn from_grid_matches_acceptance() {
        let acc = LogitAcceptance::paper_eq13();
        let set = ActionSet::from_grid(PriceGrid::new(5, 30), &acc);
        assert_eq!(set.len(), 26);
        assert_eq!(set.get(0).reward, 5.0);
        assert_eq!(set.max_reward(), 30.0);
        for (i, a) in set.iter().enumerate() {
            assert_eq!(a.accept, acc.p(5 + i as u32));
        }
    }

    #[test]
    fn new_sorts_actions() {
        let set = ActionSet::new(vec![
            PriceAction {
                reward: 10.0,
                accept: 0.5,
            },
            PriceAction {
                reward: 2.0,
                accept: 0.1,
            },
        ]);
        assert_eq!(set.get(0).reward, 2.0);
        assert_eq!(set.get(1).reward, 10.0);
        assert_eq!(set.index_of_reward(10.0), Some(1));
        assert_eq!(set.index_of_reward(3.0), None);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_decreasing_acceptance() {
        ActionSet::new(vec![
            PriceAction {
                reward: 1.0,
                accept: 0.9,
            },
            PriceAction {
                reward: 2.0,
                accept: 0.1,
            },
        ]);
    }

    #[test]
    fn pruning_drops_dominated_actions() {
        let set = ActionSet::from_unsorted_pruned(vec![
            PriceAction {
                reward: 2.0,
                accept: 0.30,
            },
            PriceAction {
                reward: 5.0,
                accept: 0.25,
            }, // dominated by 2.0
            PriceAction {
                reward: 10.0,
                accept: 0.60,
            },
            PriceAction {
                reward: 10.0,
                accept: 0.55,
            }, // duplicate reward
            PriceAction {
                reward: 3.0,
                accept: 0.30,
            }, // ties cheaper: dominated
        ]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(0).reward, 2.0);
        assert_eq!(set.get(1).reward, 10.0);
        assert_eq!(set.get(1).accept, 0.60);
    }

    #[test]
    #[should_panic(expected = "duplicate reward")]
    fn rejects_duplicate_rewards() {
        ActionSet::new(vec![
            PriceAction {
                reward: 1.0,
                accept: 0.1,
            },
            PriceAction {
                reward: 1.0,
                accept: 0.2,
            },
        ]);
    }
}
