//! Adaptive arrival-rate correction — the future work the paper sketches
//! in Section 5.2.5: *"adaptive prediction techniques such as predicting
//! the arrival-rate in next few hours based on arrival rate in last few
//! hours could be useful"* for days (like their Jan 1) whose traffic
//! deviates consistently from the trained profile.
//!
//! [`AdaptivePricer`] wraps a [`DeadlineProblem`]: after each interval it
//! compares the *observed* completions against the trained model's
//! expectation at the posted price, maintains a windowed correction ratio
//! ρ̂, and periodically re-solves the remaining-horizon MDP with the
//! trained arrival masses scaled by ρ̂. Because completions are a thinned
//! view of arrivals, the ratio estimates the arrival-level deviation as
//! long as `p(c)` itself is trusted (mis-specified `p` is the Fig. 9
//! axis, handled by the base policy's own feedback).

use crate::dp::{solve_truncated, solve_truncated_with_cache};
use crate::error::{PricingError, Result};
use crate::kernel::SharedPmfCache;
use crate::policy::{DeadlinePolicy, PriceController};
use crate::problem::DeadlineProblem;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Options for the adaptive pricer.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdaptiveOptions {
    /// Sliding window length in intervals.
    pub window: usize,
    /// Re-solve the remaining-horizon MDP every this many intervals.
    pub resolve_every: usize,
    /// Clamp for the correction ratio (guards early-window noise).
    pub min_correction: f64,
    pub max_correction: f64,
    /// Poisson truncation ε for the inner solves.
    pub truncation_eps: f64,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        Self {
            window: 9, // three hours of 20-minute intervals
            resolve_every: 3,
            min_correction: 0.25,
            max_correction: 4.0,
            truncation_eps: 1e-8,
        }
    }
}

/// A stateful controller: price queries plus completion observations.
#[derive(Debug, Clone)]
pub struct AdaptivePricer {
    problem: DeadlineProblem,
    opts: AdaptiveOptions,
    /// `(expected_completion_mean, observed_completions)` per past interval.
    history: Vec<(f64, u64)>,
    /// Policy for the suffix starting at `policy_start`.
    policy: DeadlinePolicy,
    policy_start: usize,
    correction: f64,
}

impl AdaptivePricer {
    pub fn new(problem: DeadlineProblem, opts: AdaptiveOptions) -> Result<Self> {
        assert!(opts.window >= 1, "window must be at least 1");
        assert!(opts.resolve_every >= 1, "resolve period must be at least 1");
        assert!(
            opts.min_correction > 0.0 && opts.max_correction >= opts.min_correction,
            "invalid correction clamp"
        );
        let policy = solve_truncated(&problem, opts.truncation_eps)?;
        Ok(Self {
            problem,
            opts,
            history: Vec::new(),
            policy,
            policy_start: 0,
            correction: 1.0,
        })
    }

    /// Rebuild a pricer from persisted state without re-solving — the
    /// snapshot-restore path of the campaign registry. The `policy` must
    /// cover intervals `policy_start..` of `problem` (i.e. be a solve of
    /// the remaining-horizon sub-problem).
    pub fn from_parts(
        problem: DeadlineProblem,
        opts: AdaptiveOptions,
        history: Vec<(f64, u64)>,
        correction: f64,
        policy: DeadlinePolicy,
        policy_start: usize,
    ) -> Result<Self> {
        // Deserialized options bypass `new`'s asserts; a corrupted
        // snapshot must surface as a structured error, not a panic
        // (f64::clamp below panics outright when min > max).
        if opts.window < 1 || opts.resolve_every < 1 {
            return Err(PricingError::InvalidProblem(
                "window and resolve period must be at least 1".into(),
            ));
        }
        if !(opts.min_correction > 0.0
            && opts.min_correction.is_finite()
            && opts.max_correction >= opts.min_correction
            && opts.max_correction.is_finite())
        {
            return Err(PricingError::InvalidProblem(format!(
                "invalid correction clamp [{}, {}]",
                opts.min_correction, opts.max_correction
            )));
        }
        if !(opts.truncation_eps > 0.0 && opts.truncation_eps < 1.0) {
            return Err(PricingError::InvalidProblem(format!(
                "truncation eps must be in (0, 1), got {}",
                opts.truncation_eps
            )));
        }
        if !correction.is_finite() {
            return Err(PricingError::InvalidProblem(format!(
                "correction ratio {correction} is not finite"
            )));
        }
        if policy_start >= problem.n_intervals() {
            return Err(PricingError::InvalidProblem(format!(
                "policy start {policy_start} beyond horizon {}",
                problem.n_intervals()
            )));
        }
        if policy.n_intervals() != problem.n_intervals() - policy_start {
            return Err(PricingError::InvalidProblem(format!(
                "policy covers {} intervals, remaining horizon has {}",
                policy.n_intervals(),
                problem.n_intervals() - policy_start
            )));
        }
        if history.len() > problem.n_intervals() {
            return Err(PricingError::InvalidProblem(
                "history longer than the horizon".into(),
            ));
        }
        Ok(Self {
            problem,
            opts,
            history,
            policy,
            policy_start,
            correction: correction.clamp(opts.min_correction, opts.max_correction),
        })
    }

    /// The current arrival correction ratio ρ̂.
    pub fn correction(&self) -> f64 {
        self.correction
    }

    /// The problem the pricer was built over (full horizon).
    pub fn problem(&self) -> &DeadlineProblem {
        &self.problem
    }

    /// The pricer's options.
    pub fn options(&self) -> &AdaptiveOptions {
        &self.opts
    }

    /// The active remaining-horizon policy (covers intervals
    /// `policy_start()..`; index it with `t - policy_start()`).
    pub fn policy(&self) -> &DeadlinePolicy {
        &self.policy
    }

    /// First full-horizon interval the active policy covers.
    pub fn policy_start(&self) -> usize {
        self.policy_start
    }

    /// Number of intervals observed so far (the next interval to observe).
    pub fn observations(&self) -> usize {
        self.history.len()
    }

    /// The `(expected_completions, observed_completions)` history, one
    /// entry per observed interval (censored intervals are `(0.0, 0)`).
    pub fn history(&self) -> &[(f64, u64)] {
        &self.history
    }

    /// Price to post for interval `t` with `n_remaining` tasks left.
    pub fn price(&mut self, n_remaining: u32, t: usize) -> f64 {
        assert!(t < self.problem.n_intervals(), "interval out of range");
        assert!(t >= self.policy_start, "time went backwards");
        // Re-solve on schedule.
        if t - self.policy_start >= self.opts.resolve_every {
            self.resolve(t);
        }
        let n = n_remaining.min(self.problem.n_tasks);
        if n == 0 {
            return self.problem.actions.min_reward();
        }
        self.policy.price(n, t - self.policy_start)
    }

    /// Record the outcome of interval `t`: the reward that was posted and
    /// the number of completions observed.
    ///
    /// When the batch ran out of tasks mid-interval the count is
    /// right-censored (workers would have completed more had tasks
    /// remained) — use [`AdaptivePricer::observe_censored`] for those
    /// intervals so the correction ratio is not biased downward.
    pub fn observe(&mut self, posted_reward: f64, completions: u64) {
        self.try_observe(posted_reward, completions)
            .expect("posted reward not in the action set / observed past the horizon");
    }

    /// Non-panicking [`AdaptivePricer::observe`]: the serving layer's
    /// entry point, where the posted reward comes off the wire.
    pub fn try_observe(&mut self, posted_reward: f64, completions: u64) -> Result<()> {
        let t = self.history.len();
        if t >= self.problem.n_intervals() {
            return Err(PricingError::InvalidProblem(format!(
                "observed interval {t} past the {}-interval horizon",
                self.problem.n_intervals()
            )));
        }
        let idx = self.validate_posted(posted_reward)?;
        let p = self.problem.actions.get(idx).accept;
        let expected = self.problem.interval_arrivals[t] * p;
        self.history.push((expected, completions));
        self.update_correction();
        Ok(())
    }

    /// Check a posted reward against the action set without recording
    /// anything — lets the serving layer reject a bad observation
    /// *before* it mutates history (e.g. before censoring skipped
    /// intervals). Returns the action index.
    pub fn validate_posted(&self, posted_reward: f64) -> Result<usize> {
        if !posted_reward.is_finite() {
            // index_of_reward binary-searches with partial_cmp().unwrap();
            // reject NaN/∞ here instead of panicking mid-serve.
            return Err(PricingError::InvalidProblem(format!(
                "posted reward {posted_reward} is not finite"
            )));
        }
        self.problem
            .actions
            .index_of_reward(posted_reward)
            .ok_or_else(|| {
                PricingError::InvalidProblem(format!(
                    "posted reward {posted_reward} not in the action set"
                ))
            })
    }

    /// Record a right-censored interval (the batch was exhausted before
    /// the interval ended): advances time without contributing to the
    /// correction estimate.
    pub fn observe_censored(&mut self) {
        let t = self.history.len();
        assert!(t < self.problem.n_intervals(), "observed past the horizon");
        self.history.push((0.0, 0));
    }

    fn update_correction(&mut self) {
        let start = self.history.len().saturating_sub(self.opts.window);
        let mut expected = 0.0;
        let mut observed = 0.0;
        for &(e, o) in &self.history[start..] {
            expected += e;
            observed += o as f64;
        }
        // Intervals priced at near-zero acceptance carry no signal; keep
        // the previous estimate until the window has mass.
        if expected < 1.0 {
            return;
        }
        self.correction =
            (observed / expected).clamp(self.opts.min_correction, self.opts.max_correction);
    }

    /// Re-solve on the registry's schedule: if the next interval to price
    /// (`observations()`) is `resolve_every` or more intervals past the
    /// active policy's start, re-solve the remaining horizon with the
    /// current correction. Returns whether a new policy was installed —
    /// the caller's cue to bump its policy generation.
    pub fn maybe_resolve(&mut self) -> bool {
        self.maybe_resolve_with(None)
    }

    /// [`AdaptivePricer::maybe_resolve`] resolving pmf rows through an
    /// optional wave-wide [`SharedPmfCache`] — the scheduler's
    /// recalibration path, where concurrent campaigns re-derive
    /// identical Poisson rows. Bitwise identical to the uncached
    /// re-solve.
    pub fn maybe_resolve_with(&mut self, cache: Option<&Arc<SharedPmfCache>>) -> bool {
        let t = self.history.len();
        if t >= self.problem.n_intervals() || t < self.policy_start {
            return false;
        }
        if t - self.policy_start >= self.opts.resolve_every {
            return self.resolve_cached(t, cache);
        }
        false
    }

    /// Re-solve the MDP over intervals `t..` with corrected arrivals.
    /// Returns whether the policy was swapped.
    fn resolve(&mut self, t: usize) -> bool {
        self.resolve_cached(t, None)
    }

    fn resolve_cached(&mut self, t: usize, cache: Option<&Arc<SharedPmfCache>>) -> bool {
        let corrected: Vec<f64> = self.problem.interval_arrivals[t..]
            .iter()
            .map(|l| l * self.correction)
            .collect();
        if corrected.is_empty() {
            return false;
        }
        let sub = DeadlineProblem::new(
            self.problem.n_tasks,
            corrected,
            self.problem.actions.clone(),
            self.problem.penalty,
        );
        let solved = match cache {
            Some(shared) => {
                solve_truncated_with_cache(&sub, self.opts.truncation_eps, Some(Arc::clone(shared)))
            }
            None => solve_truncated(&sub, self.opts.truncation_eps),
        };
        if let Ok(policy) = solved {
            self.policy = policy;
            self.policy_start = t;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::ActionSet;
    use crate::penalty::PenaltyModel;
    use ft_market::{AcceptanceFn, LogitAcceptance, PriceGrid};
    use ft_stats::{seeded_rng, Poisson};
    use rand::rngs::StdRng;

    fn problem() -> DeadlineProblem {
        let acc = LogitAcceptance::new(4.0, 0.0, 30.0);
        DeadlineProblem::new(
            20,
            vec![50.0; 12],
            ActionSet::from_grid(PriceGrid::new(0, 20), &acc),
            PenaltyModel::Linear { per_task: 500.0 },
        )
    }

    /// Simulate a campaign where true arrivals are `ratio` × trained.
    fn run_campaign(pricer: &mut AdaptivePricer, ratio: f64, rng: &mut StdRng) -> (u32, f64) {
        let acc = LogitAcceptance::new(4.0, 0.0, 30.0);
        let p = problem();
        let mut remaining = p.n_tasks;
        let mut paid = 0.0;
        for t in 0..p.n_intervals() {
            let price = pricer.price(remaining, t);
            let idx = p.actions.index_of_reward(price).unwrap();
            let _ = idx;
            let true_mean = p.interval_arrivals[t] * ratio * acc.p(price as u32);
            let raw = Poisson::new(true_mean).sample(rng);
            let done = raw.min(remaining as u64) as u32;
            paid += done as f64 * price;
            remaining -= done;
            if raw > done as u64 || remaining == 0 {
                pricer.observe_censored();
            } else {
                pricer.observe(price, done as u64);
            }
            if remaining == 0 {
                break;
            }
        }
        (remaining, paid)
    }

    #[test]
    fn correction_converges_to_true_ratio() {
        for &ratio in &[0.5, 1.0, 1.8] {
            let mut pricer = AdaptivePricer::new(problem(), AdaptiveOptions::default()).unwrap();
            let mut rng = seeded_rng(17);
            let _ = run_campaign(&mut pricer, ratio, &mut rng);
            let est = pricer.correction();
            assert!((est - ratio).abs() < 0.45, "ratio {ratio}: estimated {est}");
        }
    }

    #[test]
    fn adaptive_beats_static_on_quiet_days() {
        // True arrivals at 50% of trained (the Jan-1 situation): the
        // adaptive pricer should strand fewer tasks than the static-trained
        // policy across many trials.
        let p = problem();
        let static_policy = solve_truncated(&p, 1e-9).unwrap();
        let acc = LogitAcceptance::new(4.0, 0.0, 30.0);
        let mut rng = seeded_rng(23);
        let trials = 60;
        let mut adaptive_rem = 0u32;
        let mut static_rem = 0u32;
        for _ in 0..trials {
            let mut pricer = AdaptivePricer::new(p.clone(), AdaptiveOptions::default()).unwrap();
            let (rem, _) = run_campaign(&mut pricer, 0.5, &mut rng);
            adaptive_rem += rem;
            // Static policy on the same kind of day.
            let mut remaining = p.n_tasks;
            for t in 0..p.n_intervals() {
                use crate::policy::PriceController;
                let price = static_policy.price(remaining, t);
                let mean = p.interval_arrivals[t] * 0.5 * acc.p(price as u32);
                let done = Poisson::new(mean).sample(&mut rng).min(remaining as u64) as u32;
                remaining -= done;
                if remaining == 0 {
                    break;
                }
            }
            static_rem += remaining;
        }
        assert!(
            adaptive_rem <= static_rem,
            "adaptive stranded {adaptive_rem} vs static {static_rem}"
        );
    }

    #[test]
    fn no_observations_means_unit_correction() {
        let pricer = AdaptivePricer::new(problem(), AdaptiveOptions::default()).unwrap();
        assert_eq!(pricer.correction(), 1.0);
    }

    #[test]
    fn correction_is_clamped() {
        let mut pricer = AdaptivePricer::new(problem(), AdaptiveOptions::default()).unwrap();
        // Observe absurdly many completions at a real price.
        let price = pricer.price(20, 0);
        pricer.observe(price, 1_000_000);
        assert!(pricer.correction() <= AdaptiveOptions::default().max_correction);
        // And absurdly few for many intervals.
        for _ in 1..10 {
            pricer.observe(price, 0);
        }
        assert!(pricer.correction() >= AdaptiveOptions::default().min_correction);
    }

    #[test]
    fn matched_model_performs_like_static() {
        // With ratio = 1 the adaptive pricer should cost about the same as
        // the static-trained policy (no signal to act on).
        let mut rng = seeded_rng(31);
        let mut adaptive_paid = 0.0;
        let trials = 40;
        for _ in 0..trials {
            let mut pricer = AdaptivePricer::new(problem(), AdaptiveOptions::default()).unwrap();
            let (_, paid) = run_campaign(&mut pricer, 1.0, &mut rng);
            adaptive_paid += paid;
        }
        let p = problem();
        let static_policy = solve_truncated(&p, 1e-9).unwrap();
        let exact = static_policy.evaluate(&p);
        let mean_adaptive = adaptive_paid / trials as f64;
        assert!(
            (mean_adaptive - exact.expected_paid).abs() / exact.expected_paid < 0.2,
            "adaptive {mean_adaptive} vs static expectation {}",
            exact.expected_paid
        );
    }
}
