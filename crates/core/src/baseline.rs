//! The Faridani et al. baseline (Section 3 / Section 5.2): binary search
//! for the smallest *fixed* task reward such that all `N` tasks complete
//! before the deadline with the required confidence.
//!
//! Under the NHPP model, the number of our tasks completed by the deadline
//! at fixed reward `c` (with unlimited supply) is
//! `X ~ Pois(Λ(T) · p(c))`; the baseline picks the smallest grid price with
//! `Pr[X ≥ N] ≥ confidence`.

use crate::actions::ActionSet;
use crate::error::{PricingError, Result};
use crate::policy::{FixedPrice, PriceController};
use ft_stats::Poisson;
use serde::{Deserialize, Serialize};

/// A solved fixed-price baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedPriceSolution {
    /// Chosen reward (cents).
    pub reward: f64,
    /// Acceptance probability at that reward (trained model).
    pub accept: f64,
    /// `Pr[all N tasks complete]` under the trained model.
    pub prob_all_done: f64,
    /// Worst-case total cost `N · reward` (every task paid at the fixed
    /// price).
    pub total_cost: f64,
}

impl FixedPriceSolution {
    pub fn controller(&self) -> FixedPrice {
        FixedPrice(self.reward)
    }
}

/// Probability that at least `n` tasks complete by the deadline when the
/// total expected arrival mass is `total_arrivals` and acceptance is `p`.
pub fn completion_confidence(total_arrivals: f64, p: f64, n: u32) -> f64 {
    Poisson::new(total_arrivals * p).sf(n as u64)
}

/// Binary search over the action set (Faridani's scheme).
///
/// Returns an error if even the highest price cannot reach the confidence.
pub fn solve_fixed_price(
    actions: &ActionSet,
    total_arrivals: f64,
    n_tasks: u32,
    confidence: f64,
) -> Result<FixedPriceSolution> {
    assert!(
        (0.0..1.0).contains(&confidence),
        "confidence must be in [0,1), got {confidence}"
    );
    assert!(total_arrivals >= 0.0, "arrivals must be non-negative");
    let last = actions.len() - 1;
    let conf_at = |i: usize| completion_confidence(total_arrivals, actions.get(i).accept, n_tasks);
    if conf_at(last) < confidence {
        return Err(PricingError::Infeasible(format!(
            "even the maximum reward {} reaches only {:.4} confidence (< {confidence})",
            actions.get(last).reward,
            conf_at(last)
        )));
    }
    // conf_at is non-decreasing in the action index (acceptance is
    // non-decreasing in reward): binary search the boundary.
    let (mut lo, mut hi) = (0usize, last);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if conf_at(mid) >= confidence {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let a = actions.get(lo);
    Ok(FixedPriceSolution {
        reward: a.reward,
        accept: a.accept,
        prob_all_done: conf_at(lo),
        total_cost: n_tasks as f64 * a.reward,
    })
}

/// Evaluate a fixed-price controller exactly under (possibly different)
/// true dynamics: returns `(expected_paid, expected_remaining,
/// prob_all_done)`.
///
/// With a fixed price the remaining-task count is a deterministic function
/// of the total completion count `X ~ Pois(Σ λ_t · p_true)`, so no interval
/// recursion is needed.
pub fn evaluate_fixed_price(
    reward: f64,
    p_true: f64,
    total_arrivals: f64,
    n_tasks: u32,
) -> (f64, f64, f64) {
    let pois = Poisson::new(total_arrivals * p_true);
    let n = n_tasks as u64;
    // E[min(X, N)] = Σ_{k<N} k·pmf(k) + N·Pr[X ≥ N].
    let mut exp_completed = 0.0;
    let mut head = 0.0;
    for k in 0..n {
        let q = pois.pmf(k);
        exp_completed += k as f64 * q;
        head += q;
    }
    let tail = (1.0 - head).max(0.0);
    exp_completed += n as f64 * tail;
    let expected_paid = exp_completed * reward;
    let expected_remaining = n_tasks as f64 - exp_completed;
    (expected_paid, expected_remaining, tail)
}

/// Convenience: fixed price as a [`PriceController`] at a given reward.
pub fn fixed_controller(reward: f64) -> impl PriceController {
    FixedPrice(reward)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_market::{LogitAcceptance, PriceGrid};

    fn paper_actions() -> ActionSet {
        ActionSet::from_grid(PriceGrid::new(0, 40), &LogitAcceptance::paper_eq13())
    }

    #[test]
    fn paper_fixed_price_is_about_16() {
        // Section 5.2.1: the fixed strategy needs reward ≈ 16 for a 99.9%
        // completion guarantee with N=200, T=24h, Eq. 13.
        let actions = paper_actions();
        let total = 5100.0 * 24.0;
        let sol = solve_fixed_price(&actions, total, 200, 0.999).unwrap();
        assert!(
            (14.0..=18.0).contains(&sol.reward),
            "fixed reward {} outside the paper's ballpark",
            sol.reward
        );
        assert!(sol.prob_all_done >= 0.999);
    }

    #[test]
    fn binary_search_finds_minimal_price() {
        let actions = paper_actions();
        let total = 5100.0 * 24.0;
        let sol = solve_fixed_price(&actions, total, 200, 0.999).unwrap();
        // One cent lower must fail the confidence.
        let idx = actions.index_of_reward(sol.reward).unwrap();
        if idx > 0 {
            let below = actions.get(idx - 1);
            assert!(completion_confidence(total, below.accept, 200) < 0.999);
        }
    }

    #[test]
    fn infeasible_when_market_too_small() {
        let actions = paper_actions();
        let err = solve_fixed_price(&actions, 50.0, 200, 0.999);
        assert!(matches!(err, Err(PricingError::Infeasible(_))));
    }

    #[test]
    fn evaluate_fixed_price_arithmetic() {
        // N=1, λp = 1: P(done) = 1−e^{−1}; expected paid = c(1−e^{−1}).
        let (paid, remaining, done) = evaluate_fixed_price(10.0, 0.5, 2.0, 1);
        let p = 1.0 - (-1.0f64).exp();
        assert!((done - p).abs() < 1e-12);
        assert!((paid - 10.0 * p).abs() < 1e-12);
        assert!((remaining - (1.0 - p)).abs() < 1e-12);
    }

    #[test]
    fn lower_true_acceptance_leaves_tasks() {
        // Fig. 9's qualitative claim: the fixed strategy fails outright
        // when the true acceptance is below the trained one.
        let actions = paper_actions();
        let total = 5100.0 * 24.0;
        let sol = solve_fixed_price(&actions, total, 200, 0.999).unwrap();
        let (_, rem_ok, _) = evaluate_fixed_price(sol.reward, sol.accept, total, 200);
        let (_, rem_bad, _) = evaluate_fixed_price(sol.reward, sol.accept * 0.6, total, 200);
        assert!(rem_ok < 0.1);
        assert!(rem_bad > 5.0, "degraded acceptance should strand tasks");
    }
}
