//! Theorem 6: the exact pseudo-polynomial DP for the fixed-budget problem.
//!
//! `f(i, b)` = minimum `Σ_{j≤i} 1/p(c_j)` over assignments of the first `i`
//! tasks using budget at most `b`. `O(N · B · C)` time, `O(N · B)` space —
//! exact but much slower than Algorithm 3; used as the optimality oracle in
//! tests and the solver-ablation bench.

use super::{BudgetProblem, StaticStrategy};
use crate::error::{PricingError, Result};
use crate::kernel::budget::{BudgetAssignModel, IntegerActions};
use crate::kernel::{run, Direction, KernelConfig, Sweep};

/// Solve exactly on the solver kernel. Requires integer rewards and an
/// integer-valued budget (fractional budgets are floored — cents are the
/// atomic unit).
pub fn solve_budget_exact(problem: &BudgetProblem) -> Result<StaticStrategy> {
    let n = problem.n_tasks as usize;
    let budget = problem.budget.floor();
    if budget < 0.0 {
        return Err(PricingError::InvalidProblem("negative budget".into()));
    }
    let b_max = budget as usize;

    let acts = IntegerActions::from_action_set(&problem.actions, "exact solver")?;
    acts.check_feasible(problem.n_tasks, b_max)?;

    // f(i, b) = best Σ 1/p over the first i tasks with spend ≤ b;
    // choice row i−1 records the price of task i at each budget level.
    let model = BudgetAssignModel::new(&acts, problem.n_tasks, b_max);
    let (values, choices) = run(
        &model,
        Sweep::Dense,
        Direction::Forward,
        &KernelConfig::default(),
    );
    let f = values.row(n);

    if !f[b_max].is_finite() {
        return Err(PricingError::Infeasible(
            "no feasible assignment (should be unreachable)".into(),
        ));
    }

    // f is non-increasing in b by construction of the ≤ constraint only if
    // we scan for the best b; do that explicitly for safety.
    let mut best_b = b_max;
    for (b, &v) in f.iter().enumerate() {
        if v < f[best_b] {
            best_b = b;
        }
    }

    // Reconstruct counts.
    let mut counts = std::collections::BTreeMap::new();
    let mut b = best_b;
    for i in (0..n).rev() {
        let c = choices.row(i)[b];
        assert!(c != u32::MAX, "reconstruction hit an unreachable cell");
        *counts.entry(c).or_insert(0u32) += 1;
        b -= c as usize;
    }
    Ok(StaticStrategy::new(counts.into_iter().collect()))
}

#[cfg(test)]
mod tests {
    use super::super::hull::solve_budget_hull;
    use super::super::test_support::tiny_budget_problem;
    use super::super::BudgetProblem;
    use super::*;
    use crate::actions::ActionSet;
    use ft_market::{AcceptanceFn, LogitAcceptance, PriceGrid};

    fn arrivals_of(problem: &BudgetProblem, s: &StaticStrategy) -> f64 {
        s.expected_arrivals(|c| {
            let i = problem.actions.index_of_reward(c as f64).unwrap();
            problem.actions.get(i).accept
        })
    }

    #[test]
    fn exact_respects_constraints() {
        let p = tiny_budget_problem();
        let s = solve_budget_exact(&p).unwrap();
        assert_eq!(s.n_tasks(), p.n_tasks);
        assert!(s.within_budget(p.budget));
    }

    #[test]
    fn exact_beats_or_matches_hull_within_gap() {
        // Exact optimum ≤ hull value; hull ≤ exact + Theorem 8 gap.
        for budget in [30.0, 45.0, 60.0, 80.0, 120.0] {
            let mut p = tiny_budget_problem();
            p.budget = budget;
            if budget < 10.0 {
                continue;
            }
            let exact = solve_budget_exact(&p).unwrap();
            let hull = solve_budget_hull(&p).unwrap();
            let e = arrivals_of(&p, &exact);
            let h = hull.expected_arrivals;
            assert!(e <= h + 1e-9, "exact {e} worse than hull {h} (B={budget})");
            assert!(
                h <= e + hull.rounding_gap_bound + 1e-9,
                "hull {h} exceeds exact {e} + gap {} (B={budget})",
                hull.rounding_gap_bound
            );
        }
    }

    #[test]
    fn exact_is_optimal_vs_brute_force() {
        // 4 tasks, prices 1..=6: enumerate all multisets and verify.
        let acc = LogitAcceptance::new(3.0, 0.0, 10.0);
        let p = BudgetProblem::new(
            4,
            14.0,
            ActionSet::from_grid(PriceGrid::new(1, 6), &acc),
            50.0,
        );
        let exact = solve_budget_exact(&p).unwrap();
        let e = arrivals_of(&p, &exact);
        // Brute force over c1 ≤ c2 ≤ c3 ≤ c4.
        let mut best = f64::INFINITY;
        for a in 1..=6u32 {
            for b in a..=6 {
                for c in b..=6 {
                    for d in c..=6 {
                        if (a + b + c + d) as f64 <= 14.0 {
                            let v: f64 = [a, b, c, d].iter().map(|&x| 1.0 / acc.p(x)).sum();
                            best = best.min(v);
                        }
                    }
                }
            }
        }
        assert!((e - best).abs() < 1e-9, "exact {e} vs brute force {best}");
    }

    #[test]
    fn infeasible_budget() {
        let mut p = tiny_budget_problem();
        p.budget = 5.0;
        assert!(matches!(
            solve_budget_exact(&p),
            Err(PricingError::Infeasible(_))
        ));
    }

    #[test]
    fn exact_optimum_uses_at_most_two_hull_prices_often() {
        // Sanity: on a convex 1/p curve the exact optimum should also
        // concentrate on ≤ 2 prices (Theorem 7 applies to the LP, but the
        // IP optimum stays close).
        let p = tiny_budget_problem();
        let s = solve_budget_exact(&p).unwrap();
        assert!(s.counts().len() <= 3);
    }
}
