//! Algorithm 3: the near-optimal static strategy via the lower convex hull
//! of `(c, 1/p(c))` (Theorem 7), with the Theorem 8 rounding bound.

use super::{BudgetProblem, StaticStrategy};
use crate::error::{PricingError, Result};
use ft_stats::convex::{lower_hull_indices, Point};
use serde::{Deserialize, Serialize};

/// Output of Algorithm 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HullSolution {
    /// The rounded two-price static strategy.
    pub strategy: StaticStrategy,
    /// Its expected worker arrivals `Σ n_c / p(c)`.
    pub expected_arrivals: f64,
    /// The LP-relaxation optimum (lower bound on any static strategy).
    pub lp_lower_bound: f64,
    /// Theorem 8's bound on the rounding gap:
    /// `1/p(c1) − 1/p(c2)` (0 when a single price is used).
    pub rounding_gap_bound: f64,
    /// Expected completion time in hours (`E[W]/λ̄`).
    pub expected_hours: f64,
}

/// Solve the fixed-budget problem with Algorithm 3.
///
/// Integer rewards are required (they index the static strategy); actions
/// with zero acceptance are ignored (they can never complete a task).
pub fn solve_budget_hull(problem: &BudgetProblem) -> Result<HullSolution> {
    let n = problem.n_tasks;
    let budget = problem.budget;

    // Candidate points (c, 1/p(c)).
    let mut prices: Vec<u32> = Vec::new();
    let mut points: Vec<Point> = Vec::new();
    for a in problem.actions.iter() {
        if a.accept <= 0.0 {
            continue;
        }
        let c = a.reward.round();
        if (a.reward - c).abs() > 1e-9 || c < 0.0 {
            return Err(PricingError::InvalidProblem(format!(
                "hull solver needs integer cent rewards, got {}",
                a.reward
            )));
        }
        prices.push(c as u32);
        points.push(Point::new(c, 1.0 / a.accept));
    }
    if points.is_empty() {
        return Err(PricingError::InvalidProblem(
            "no action with positive acceptance".into(),
        ));
    }

    let hull = lower_hull_indices(&points);
    let per_task = budget / n as f64;

    // c1 = max{c ∈ CH : c ≤ B/N}; c2 = min{c ∈ CH : c > B/N}.
    let mut i1: Option<usize> = None;
    let mut i2: Option<usize> = None;
    for &h in &hull {
        let c = prices[h] as f64;
        if c <= per_task + 1e-12 {
            i1 = Some(h);
        } else if i2.is_none() {
            i2 = Some(h);
        }
    }

    let Some(i1) = i1 else {
        return Err(PricingError::Infeasible(format!(
            "budget {budget} cannot cover {n} tasks even at the minimum price {}",
            prices[hull[0]]
        )));
    };

    let c1 = prices[i1];
    let inv_p1 = points[i1].y;

    let (strategy, expected, lp_bound, gap) = match i2 {
        None => {
            // B/N at or beyond the most expensive hull price: everything at
            // c1, no rounding gap.
            let s = StaticStrategy::uniform(c1, n);
            let e = n as f64 * inv_p1;
            (s, e, e, 0.0)
        }
        Some(i2) => {
            let c2 = prices[i2];
            let inv_p2 = points[i2].y;
            // Fractional LP split, then round n1 up (Algorithm 3).
            let n1_frac = (c2 as f64 * n as f64 - budget) / (c2 - c1) as f64;
            let lp = n1_frac * inv_p1 + (n as f64 - n1_frac) * inv_p2;
            let n1 = (n1_frac.ceil().max(0.0) as u32).min(n);
            let n2 = n - n1;
            let s = StaticStrategy::new(vec![(c1, n1), (c2, n2)]);
            let e = n1 as f64 * inv_p1 + n2 as f64 * inv_p2;
            (s, e, lp, inv_p1 - inv_p2)
        }
    };

    debug_assert!(
        strategy.within_budget(budget),
        "Algorithm 3 produced an over-budget strategy"
    );
    Ok(HullSolution {
        expected_hours: problem.arrivals_to_hours(expected),
        strategy,
        expected_arrivals: expected,
        lp_lower_bound: lp_bound,
        rounding_gap_bound: gap,
    })
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{paper_budget_problem, tiny_budget_problem};
    use super::*;

    #[test]
    fn solution_respects_constraints() {
        for p in [paper_budget_problem(), tiny_budget_problem()] {
            let sol = solve_budget_hull(&p).unwrap();
            assert_eq!(sol.strategy.n_tasks(), p.n_tasks);
            assert!(sol.strategy.within_budget(p.budget));
            // At most two distinct prices (Theorem 7).
            assert!(sol.strategy.counts().len() <= 2);
        }
    }

    #[test]
    fn theorem8_gap_contains_solution() {
        for p in [paper_budget_problem(), tiny_budget_problem()] {
            let sol = solve_budget_hull(&p).unwrap();
            assert!(sol.expected_arrivals >= sol.lp_lower_bound - 1e-9);
            assert!(
                sol.expected_arrivals <= sol.lp_lower_bound + sol.rounding_gap_bound + 1e-9,
                "rounded value exceeds LP + gap"
            );
        }
    }

    #[test]
    fn bracketing_prices_straddle_budget_per_task() {
        let p = paper_budget_problem();
        let sol = solve_budget_hull(&p).unwrap();
        let per_task = p.budget_per_task();
        let counts = sol.strategy.counts();
        if counts.len() == 2 {
            assert!((counts[0].0 as f64) <= per_task);
            assert!((counts[1].0 as f64) > per_task);
        }
    }

    #[test]
    fn generous_budget_single_top_price() {
        let mut p = tiny_budget_problem();
        p.budget = 10_000.0;
        let sol = solve_budget_hull(&p).unwrap();
        assert_eq!(sol.strategy.counts().len(), 1);
        assert_eq!(sol.rounding_gap_bound, 0.0);
    }

    #[test]
    fn infeasible_budget_rejected() {
        let mut p = tiny_budget_problem();
        p.budget = 0.5; // below N · c_min = 10 · 1
        assert!(matches!(
            solve_budget_hull(&p),
            Err(PricingError::Infeasible(_))
        ));
    }

    #[test]
    fn beats_every_uniform_strategy() {
        // The hull solution must weakly beat any single-price strategy that
        // fits the budget (they're all feasible static strategies).
        let p = tiny_budget_problem();
        let sol = solve_budget_hull(&p).unwrap();
        for a in p.actions.iter() {
            let c = a.reward as u32;
            if (c as f64) * (p.n_tasks as f64) <= p.budget && a.accept > 0.0 {
                let uniform = StaticStrategy::uniform(c, p.n_tasks);
                let e = uniform.expected_arrivals(|cc| {
                    let i = p.actions.index_of_reward(cc as f64).unwrap();
                    p.actions.get(i).accept
                });
                assert!(
                    sol.expected_arrivals <= e + sol.rounding_gap_bound + 1e-9,
                    "uniform at {c} beats hull by more than the gap"
                );
            }
        }
    }

    #[test]
    fn paper_scenario_average_near_budget_per_task() {
        // With B/N = 12.5 and Eq. 13, the chosen prices straddle 12/13.
        let p = paper_budget_problem();
        let sol = solve_budget_hull(&p).unwrap();
        let counts = sol.strategy.counts();
        let avg = sol.strategy.total_cost() / p.n_tasks as f64;
        assert!(avg <= 12.5 + 1e-9);
        assert!(avg > 10.0, "budget should be nearly exhausted, avg={avg}");
        assert!(counts.iter().all(|&(c, _)| (8..=16).contains(&c)));
    }
}
