//! The Theorem 4 worker-arrival MDP: the *dynamic* fixed-budget problem,
//! solved explicitly.
//!
//! States are `(n, b)` — remaining tasks and remaining (integer-cent)
//! budget; each transition is one worker arrival; posting price `c` moves
//! to `(n−1, b−c)` with probability `p(c)` and stays otherwise; every
//! transition costs one arrival. The optimal value function is the
//! fixed point
//!
//! `V(n, b) = min_{c ≤ b−(n−1)·c_min} [ 1 + p(c)·V(n−1, b−c) + (1−p(c))·V(n, b) ]`
//! `        = min_c [ 1/p(c) + V(n−1, b−c) ]`
//!
//! (the algebraic elimination of the self-loop is exactly the paper's
//! Theorem 4/5 argument). Solving it yields the *optimal dynamic*
//! strategy; Theorems 3–5 predict its value equals the optimal *static*
//! strategy's `Σ 1/p(c_i)` — which the test-suite verifies against the
//! Theorem 6 exact DP, confirming the paper's optimality chain
//! computationally.

use super::BudgetProblem;
use crate::error::{PricingError, Result};
use crate::kernel::budget::{BudgetMdpModel, IntegerActions};
use crate::kernel::{run, Direction, KernelConfig, Sweep};
use serde::{Deserialize, Serialize};

/// Solved worker-arrival MDP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetMdpPolicy {
    n_tasks: u32,
    budget: usize,
    /// `V(n, b)`: expected remaining worker arrivals, row-major `[n][b]`.
    value: Vec<f64>,
    /// Optimal price (cents) at `(n, b)`; `u32::MAX` marks infeasible.
    price: Vec<u32>,
}

impl BudgetMdpPolicy {
    fn idx(&self, n: u32, b: usize) -> usize {
        debug_assert!(n <= self.n_tasks && b <= self.budget);
        n as usize * (self.budget + 1) + b
    }

    /// The (floored) budget the policy was solved for, in cents — the
    /// largest `b` its tables can answer.
    pub fn budget_cents(&self) -> usize {
        self.budget
    }

    /// The batch size the policy was solved for — the largest `n` its
    /// tables can answer.
    pub fn n_tasks(&self) -> u32 {
        self.n_tasks
    }

    /// Expected total worker arrivals from the full batch and budget.
    pub fn expected_arrivals(&self) -> f64 {
        self.value[self.idx(self.n_tasks, self.budget)]
    }

    /// `V(n, b)`.
    pub fn value(&self, n: u32, b: usize) -> f64 {
        self.value[self.idx(n, b)]
    }

    /// Optimal posted price with `n` tasks and `b` cents remaining;
    /// `None` when the state is infeasible.
    pub fn price(&self, n: u32, b: usize) -> Option<u32> {
        if n == 0 {
            return None;
        }
        let p = self.price[self.idx(n, b)];
        (p != u32::MAX).then_some(p)
    }

    /// The realized price sequence when every pickup happens at the
    /// planned price: follow the greedy trajectory from `(N, B)`.
    pub fn planned_sequence(&self) -> Vec<u32> {
        let mut seq = Vec::with_capacity(self.n_tasks as usize);
        let mut n = self.n_tasks;
        let mut b = self.budget;
        while n > 0 {
            let c = self
                .price(n, b)
                .expect("trajectory left the feasible region");
            seq.push(c);
            b -= c as usize;
            n -= 1;
        }
        seq
    }
}

/// Solve the worker-arrival MDP exactly. `O(N · B · C)` like Theorem 6 —
/// the point is not speed but that the *dynamic* optimum is computed with
/// no structural assumptions, so Theorems 3–5 can be checked against it.
pub fn solve_budget_mdp(problem: &BudgetProblem) -> Result<BudgetMdpPolicy> {
    solve_budget_mdp_with(problem, &KernelConfig::default())
}

/// [`solve_budget_mdp`] with an explicit kernel configuration (the
/// pricing service passes its per-campaign thread budget here).
pub fn solve_budget_mdp_with(
    problem: &BudgetProblem,
    cfg: &KernelConfig,
) -> Result<BudgetMdpPolicy> {
    let n = problem.n_tasks;
    let b_max = problem.budget.floor();
    if b_max < 0.0 {
        return Err(PricingError::InvalidProblem("negative budget".into()));
    }
    let b_max = b_max as usize;

    let acts = IntegerActions::from_action_set(&problem.actions, "budget MDP")?;
    acts.check_feasible(n, b_max)?;

    // Kernel forward induction over task layers; the policy table has no
    // row for the terminal layer (n = 0 posts no price), so prepend one
    // of `u32::MAX` to keep the historical `(n+1) × (b_max+1)` layout.
    let model = BudgetMdpModel::new(&acts, n, b_max);
    let (values, prices) = run(&model, Sweep::Dense, Direction::Forward, cfg);
    let width = b_max + 1;
    let mut price = vec![u32::MAX; width];
    price.extend(prices.into_vec());

    Ok(BudgetMdpPolicy {
        n_tasks: n,
        budget: b_max,
        value: values.into_vec(),
        price,
    })
}

#[cfg(test)]
mod tests {
    use super::super::exact::solve_budget_exact;
    use super::super::test_support::tiny_budget_problem;
    use super::*;
    use ft_market::AcceptanceFn;

    #[test]
    fn dynamic_equals_static_optimum_theorems_3_to_5() {
        // The optimal dynamic strategy's E[W] must equal the optimal static
        // strategy's Σ 1/p(c_i): the computational confirmation of the
        // paper's central Section 4 claim.
        for budget in [30.0, 45.0, 60.0, 100.0] {
            let mut p = tiny_budget_problem();
            p.budget = budget;
            let dynamic = solve_budget_mdp(&p).unwrap();
            let static_opt = solve_budget_exact(&p).unwrap();
            let acc = |c: u32| {
                let i = p.actions.index_of_reward(c as f64).unwrap();
                p.actions.get(i).accept
            };
            let static_w = static_opt.expected_arrivals(acc);
            assert!(
                (dynamic.expected_arrivals() - static_w).abs() < 1e-9,
                "B={budget}: dynamic {} vs static {static_w}",
                dynamic.expected_arrivals()
            );
        }
    }

    #[test]
    fn planned_sequence_is_a_valid_static_strategy() {
        let p = tiny_budget_problem();
        let mdp = solve_budget_mdp(&p).unwrap();
        let seq = mdp.planned_sequence();
        assert_eq!(seq.len(), p.n_tasks as usize);
        let total: u32 = seq.iter().sum();
        assert!(total as f64 <= p.budget + 1e-9);
        // Its Theorem 5 value matches the MDP's own value.
        let acc = ft_market::LogitAcceptance::new(4.0, 0.0, 20.0);
        let w: f64 = seq.iter().map(|&c| 1.0 / acc.p(c)).sum();
        assert!((w - mdp.expected_arrivals()).abs() < 1e-9);
    }

    #[test]
    fn value_monotone_in_budget_and_tasks() {
        let p = tiny_budget_problem();
        let mdp = solve_budget_mdp(&p).unwrap();
        let b_max = p.budget as usize;
        for n in 1..=p.n_tasks {
            for b in (n as usize)..b_max {
                // More budget can only help.
                assert!(
                    mdp.value(n, b + 1) <= mdp.value(n, b) + 1e-12,
                    "V({n}, {}) > V({n}, {b})",
                    b + 1
                );
            }
        }
        for n in 1..p.n_tasks {
            // More tasks with the same budget can only hurt (when feasible).
            let v_small = mdp.value(n, b_max);
            let v_large = mdp.value(n + 1, b_max);
            assert!(v_large >= v_small - 1e-12);
        }
    }

    #[test]
    fn infeasible_states_are_marked() {
        let p = tiny_budget_problem(); // 10 tasks, min price 1
        let mdp = solve_budget_mdp(&p).unwrap();
        // 10 tasks with 5 cents: impossible.
        assert!(mdp.price(10, 5).is_none());
        assert!(mdp.value(10, 5).is_infinite());
        // 10 tasks with 10 cents: all at 1 cent.
        assert_eq!(mdp.price(10, 10), Some(1));
    }

    #[test]
    fn richer_states_price_higher() {
        // With spare budget the MDP buys speed; with a tight budget it
        // must price low.
        let p = tiny_budget_problem();
        let mdp = solve_budget_mdp(&p).unwrap();
        let tight = mdp.price(10, 12).unwrap();
        let rich = mdp.price(10, p.budget as usize).unwrap();
        assert!(rich >= tight);
    }

    #[test]
    fn infeasible_problem_rejected() {
        let mut p = tiny_budget_problem();
        p.budget = 4.0;
        assert!(matches!(
            solve_budget_mdp(&p),
            Err(PricingError::Infeasible(_))
        ));
    }
}
