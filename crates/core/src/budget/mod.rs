//! Fixed-budget pricing (Section 4): minimize expected completion time for
//! `N` tasks under a total budget `B`.
//!
//! Key results implemented here:
//! - Theorem 5: a semi-static strategy's expected worker-arrival count is
//!   `E[W] = Σ 1/p(c_i)`, independent of order (`semi_static`).
//! - Theorems 3/4: static strategies are optimal; the search reduces to
//!   choosing counts `n_c` minimizing `Σ n_c/p(c)` under
//!   `Σ n_c = N, Σ n_c·c ≤ B` ([`StaticStrategy`]).
//! - Theorem 7 / Algorithm 3: the LP relaxation puts all mass on two
//!   adjacent lower-convex-hull prices around `B/N` (`hull`).
//! - Theorem 6: a pseudo-polynomial exact DP (`exact`).
//! - Section 4.2.2: `E[T] ≈ E[W]/λ̄` converts arrivals to latency.

mod exact;
mod hull;
mod mdp;
mod semi_static;
mod static_strategy;

pub use exact::solve_budget_exact;
pub use hull::{solve_budget_hull, HullSolution};
pub use mdp::{solve_budget_mdp, solve_budget_mdp_with, BudgetMdpPolicy};
pub use semi_static::SemiStaticStrategy;
pub use static_strategy::StaticStrategy;

use crate::actions::ActionSet;
use serde::{Deserialize, Serialize};

/// A fixed-budget problem: `N` tasks, budget `B` (cents), an action set
/// (price → acceptance), and the long-run mean arrival rate λ̄
/// (workers/hour) for the latency conversion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetProblem {
    pub n_tasks: u32,
    pub budget: f64,
    pub actions: ActionSet,
    /// Mean worker arrival rate λ̄ (workers per hour).
    pub mean_rate: f64,
}

impl BudgetProblem {
    pub fn new(n_tasks: u32, budget: f64, actions: ActionSet, mean_rate: f64) -> Self {
        assert!(n_tasks > 0, "need at least one task");
        assert!(budget >= 0.0 && budget.is_finite(), "invalid budget");
        assert!(mean_rate > 0.0, "mean rate must be positive");
        Self {
            n_tasks,
            budget,
            actions,
            mean_rate,
        }
    }

    /// Per-task budget `B/N`.
    pub fn budget_per_task(&self) -> f64 {
        self.budget / self.n_tasks as f64
    }

    /// Convert an expected worker-arrival count to expected hours
    /// (Section 4.2.2 linearity: `E[T|W] = W/λ̄`).
    pub fn arrivals_to_hours(&self, expected_arrivals: f64) -> f64 {
        expected_arrivals / self.mean_rate
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    pub use crate::testkit::{paper_budget_problem, tiny_budget_problem};
}

#[cfg(test)]
mod tests {
    use super::test_support::*;

    #[test]
    fn budget_per_task() {
        let p = paper_budget_problem();
        assert!((p.budget_per_task() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn arrivals_to_hours_uses_mean_rate() {
        let p = paper_budget_problem();
        assert!((p.arrivals_to_hours(5100.0) - 1.0).abs() < 1e-12);
        assert!((p.arrivals_to_hours(122_400.0) - 24.0).abs() < 1e-12);
    }
}
