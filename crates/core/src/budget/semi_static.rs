//! Semi-static pricing strategies (Definition 2) and Theorem 5.
//!
//! A semi-static strategy posts price `c_1` until one task completes, then
//! `c_2`, and so on. Theorem 4 shows the optimal dynamic strategy has this
//! form; Theorem 5 shows its expected worker-arrival count is
//! `E[W] = Σ_i 1/p(c_i)` — independent of the order of the `c_i`, which is
//! what lets a static (descending) reordering match it.

use ft_stats::Geometric;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A semi-static strategy: the i-th price applies until the i-th task
/// completes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemiStaticStrategy {
    prices: Vec<u32>,
}

impl SemiStaticStrategy {
    pub fn new(prices: Vec<u32>) -> Self {
        assert!(!prices.is_empty(), "need at least one price");
        Self { prices }
    }

    pub fn prices(&self) -> &[u32] {
        &self.prices
    }

    pub fn n_tasks(&self) -> u32 {
        self.prices.len() as u32
    }

    /// Total monetary cost (each task pays its stage price).
    pub fn total_cost(&self) -> f64 {
        self.prices.iter().map(|&c| c as f64).sum()
    }

    /// Theorem 5: `E[W] = Σ 1/p(c_i)`.
    pub fn expected_arrivals<F: Fn(u32) -> f64>(&self, p: F) -> f64 {
        self.prices
            .iter()
            .map(|&c| {
                let pc = p(c);
                assert!(pc > 0.0, "acceptance must be positive at price {c}");
                1.0 / pc
            })
            .sum()
    }

    /// Sample the total worker-arrival count `W`: per stage `i`, arrivals
    /// until one accepts are `1 + Geom(p(c_i))` failures.
    pub fn sample_arrivals<F: Fn(u32) -> f64, R: Rng + ?Sized>(&self, p: F, rng: &mut R) -> u64 {
        self.prices
            .iter()
            .map(|&c| Geometric::new(p(c)).sample(rng) + 1)
            .sum()
    }

    /// The descending-order static reordering (the bridge in the proof of
    /// Theorem 3).
    pub fn to_static_order(&self) -> SemiStaticStrategy {
        let mut prices = self.prices.clone();
        prices.sort_unstable_by(|a, b| b.cmp(a));
        SemiStaticStrategy::new(prices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_stats::seeded_rng;

    fn p_of(c: u32) -> f64 {
        // Any increasing map into (0, 1].
        (c as f64 / (c as f64 + 10.0)).max(0.01)
    }

    #[test]
    fn theorem5_order_invariance() {
        let a = SemiStaticStrategy::new(vec![3, 9, 1, 7]);
        let b = SemiStaticStrategy::new(vec![9, 7, 3, 1]);
        let wa = a.expected_arrivals(p_of);
        let wb = b.expected_arrivals(p_of);
        assert!((wa - wb).abs() < 1e-12, "E[W] must be order-invariant");
    }

    #[test]
    fn static_reordering_descends_and_preserves_cost() {
        let s = SemiStaticStrategy::new(vec![3, 9, 1, 7]);
        let t = s.to_static_order();
        assert_eq!(t.prices(), &[9, 7, 3, 1]);
        assert_eq!(s.total_cost(), t.total_cost());
        assert!((s.expected_arrivals(p_of) - t.expected_arrivals(p_of)).abs() < 1e-12);
    }

    #[test]
    fn sampled_arrivals_match_theorem5() {
        let s = SemiStaticStrategy::new(vec![5, 5, 20]);
        let expect = s.expected_arrivals(p_of);
        let mut rng = seeded_rng(11);
        let trials = 60_000;
        let mean = (0..trials)
            .map(|_| s.sample_arrivals(p_of, &mut rng))
            .sum::<u64>() as f64
            / trials as f64;
        assert!(
            (mean - expect).abs() < 0.05 * expect,
            "sampled {mean} vs Theorem 5 {expect}"
        );
    }

    #[test]
    fn single_task_expected_arrivals() {
        let s = SemiStaticStrategy::new(vec![10]);
        assert!((s.expected_arrivals(|_| 0.25) - 4.0).abs() < 1e-12);
    }
}
