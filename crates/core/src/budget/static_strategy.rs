//! Static pricing strategies (Definition 1): per-task rewards fixed
//! up-front, not necessarily all equal.

use super::BudgetProblem;
use serde::{Deserialize, Serialize};

/// A static strategy as price → count multiplicities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticStrategy {
    /// `(reward cents, task count)` pairs with distinct rewards, count > 0.
    counts: Vec<(u32, u32)>,
}

impl StaticStrategy {
    pub fn new(mut counts: Vec<(u32, u32)>) -> Self {
        counts.retain(|&(_, n)| n > 0);
        assert!(!counts.is_empty(), "strategy must price at least one task");
        counts.sort_by_key(|&(c, _)| c);
        for w in counts.windows(2) {
            assert!(w[0].0 < w[1].0, "duplicate price {}", w[0].0);
        }
        Self { counts }
    }

    /// All tasks at a single price.
    pub fn uniform(price: u32, n_tasks: u32) -> Self {
        Self::new(vec![(price, n_tasks)])
    }

    pub fn counts(&self) -> &[(u32, u32)] {
        &self.counts
    }

    /// Total number of tasks priced.
    pub fn n_tasks(&self) -> u32 {
        self.counts.iter().map(|&(_, n)| n).sum()
    }

    /// Total monetary cost `Σ n_c · c` (every task eventually completes and
    /// pays its posted reward).
    pub fn total_cost(&self) -> f64 {
        self.counts.iter().map(|&(c, n)| c as f64 * n as f64).sum()
    }

    /// Expected total worker arrivals `E[W] = Σ n_c / p(c)` (Theorem 5
    /// applied to the descending-price execution order).
    pub fn expected_arrivals<F: Fn(u32) -> f64>(&self, p: F) -> f64 {
        self.counts
            .iter()
            .map(|&(c, n)| {
                let pc = p(c);
                assert!(pc > 0.0, "acceptance must be positive at price {c}");
                n as f64 / pc
            })
            .sum()
    }

    /// Expected completion latency in hours under a problem's mean rate.
    pub fn expected_hours(&self, problem: &BudgetProblem) -> f64 {
        let arrivals = self.expected_arrivals(|c| {
            let idx = problem
                .actions
                .index_of_reward(c as f64)
                .unwrap_or_else(|| panic!("price {c} not in action set"));
            problem.actions.get(idx).accept
        });
        problem.arrivals_to_hours(arrivals)
    }

    /// The execution-order price sequence: descending prices, since only
    /// the highest-priced tasks are picked up first (Section 4.1).
    pub fn price_sequence(&self) -> Vec<u32> {
        let mut seq = Vec::with_capacity(self.n_tasks() as usize);
        for &(c, n) in self.counts.iter().rev() {
            seq.extend(std::iter::repeat_n(c, n as usize));
        }
        seq
    }

    /// Check the budget constraint.
    pub fn within_budget(&self, budget: f64) -> bool {
        self.total_cost() <= budget + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::tiny_budget_problem;
    use super::*;

    #[test]
    fn totals() {
        let s = StaticStrategy::new(vec![(5, 3), (8, 2)]);
        assert_eq!(s.n_tasks(), 5);
        assert_eq!(s.total_cost(), 31.0);
        assert!(s.within_budget(31.0));
        assert!(!s.within_budget(30.0));
    }

    #[test]
    fn drops_zero_counts_and_sorts() {
        let s = StaticStrategy::new(vec![(9, 1), (2, 0), (4, 2)]);
        assert_eq!(s.counts(), &[(4, 2), (9, 1)]);
    }

    #[test]
    fn expected_arrivals_theorem5_form() {
        let s = StaticStrategy::new(vec![(5, 2), (10, 1)]);
        // p(5) = 0.5, p(10) = 0.25 → E[W] = 2/0.5 + 1/0.25 = 8.
        let w = s.expected_arrivals(|c| if c == 5 { 0.5 } else { 0.25 });
        assert!((w - 8.0).abs() < 1e-12);
    }

    #[test]
    fn price_sequence_descends() {
        let s = StaticStrategy::new(vec![(5, 2), (10, 1)]);
        assert_eq!(s.price_sequence(), vec![10, 5, 5]);
    }

    #[test]
    fn expected_hours_consistent() {
        let p = tiny_budget_problem();
        let s = StaticStrategy::uniform(6, 10);
        let idx = p.actions.index_of_reward(6.0).unwrap();
        let acc = p.actions.get(idx).accept;
        let expect = 10.0 / acc / p.mean_rate;
        assert!((s.expected_hours(&p) - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not in action set")]
    fn expected_hours_rejects_offgrid_price() {
        let p = tiny_budget_problem();
        StaticStrategy::uniform(99, 10).expected_hours(&p);
    }
}
