//! Penalty ↔ bound calibration (Theorem 2 / Section 3.3).
//!
//! The MDP optimizes `E[paid] + Penalty · E[remaining]`; users usually want
//! "minimize `E[paid]` subject to `E[remaining]` ≤ bound". Theorem 2 says the
//! two are equivalent for the right `Penalty`, found here by monotone
//! binary search against the exact forward evaluation of each candidate
//! policy.

use crate::dp::solve_truncated;
use crate::error::{PricingError, Result};
use crate::policy::{DeadlinePolicy, ExactOutcome};
use crate::problem::DeadlineProblem;

/// Result of a calibration run.
#[derive(Debug, Clone)]
pub struct CalibratedPolicy {
    pub policy: DeadlinePolicy,
    /// The per-task penalty that achieved the bound.
    pub penalty_per_task: f64,
    /// Exact outcome of the calibrated policy under the trained dynamics.
    pub outcome: ExactOutcome,
}

/// Calibration options.
#[derive(Debug, Clone, Copy)]
pub struct CalibrateOptions {
    /// Poisson truncation ε used for each inner solve.
    pub truncation_eps: f64,
    /// Bisection iterations after bracketing.
    pub max_iters: usize,
    /// Initial penalty guess.
    pub initial_penalty: f64,
}

impl Default for CalibrateOptions {
    fn default() -> Self {
        Self {
            truncation_eps: 1e-9,
            max_iters: 40,
            initial_penalty: 100.0,
        }
    }
}

fn expected_remaining_at(
    problem: &DeadlineProblem,
    penalty: f64,
    eps: f64,
) -> Result<(DeadlinePolicy, ExactOutcome)> {
    let prob = problem.with_penalty(problem.penalty.with_per_task(penalty));
    let policy = solve_truncated(&prob, eps)?;
    let outcome = policy.evaluate(&prob);
    Ok((policy, outcome))
}

/// Find the smallest penalty whose optimal policy leaves at most `bound`
/// tasks unfinished in expectation, and return that policy.
///
/// Errors with [`PricingError::Infeasible`] when even an enormous penalty
/// cannot push the expected remainder below `bound` (the marketplace simply
/// cannot absorb the batch at the maximum price).
pub fn calibrate_penalty(
    problem: &DeadlineProblem,
    bound: f64,
    opts: CalibrateOptions,
) -> Result<CalibratedPolicy> {
    assert!(bound >= 0.0, "bound must be non-negative");
    assert!(
        opts.initial_penalty > 0.0,
        "initial penalty must be positive"
    );

    // Bracket: find hi with E[remaining](hi) ≤ bound. The cap matters:
    // once the penalty dwarfs every achievable payment the policy is
    // saturated at the maximum price, and pushing further only destroys
    // the float precision of the Bellman argmin.
    let penalty_cap = 1e7 * problem.actions.max_reward().max(1.0);
    let mut hi = opts.initial_penalty;
    let mut hi_result = expected_remaining_at(problem, hi, opts.truncation_eps)?;
    while hi_result.1.expected_remaining > bound {
        if hi >= penalty_cap {
            return Err(PricingError::Infeasible(format!(
                "expected remaining {:.4} still above bound {bound} at penalty {hi:.3e} \
                 (the marketplace cannot absorb the batch even at the maximum price)",
                hi_result.1.expected_remaining
            )));
        }
        hi = (hi * 4.0).min(penalty_cap);
        hi_result = expected_remaining_at(problem, hi, opts.truncation_eps)?;
    }
    // Lower bracket at 0 penalty (policy pays nothing, leaves everything).
    let mut lo = 0.0f64;

    let mut best = hi_result;
    let mut best_penalty = hi;
    for _ in 0..opts.max_iters {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        let mid_result = expected_remaining_at(problem, mid, opts.truncation_eps)?;
        if mid_result.1.expected_remaining <= bound {
            hi = mid;
            best = mid_result;
            best_penalty = mid;
        } else {
            lo = mid;
        }
    }

    Ok(CalibratedPolicy {
        policy: best.0,
        penalty_per_task: best_penalty,
        outcome: best.1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::test_support::small_problem;

    #[test]
    fn calibration_meets_bound() {
        let p = small_problem(10, 5);
        for bound in [2.0, 0.5, 0.05] {
            let cal = calibrate_penalty(&p, bound, CalibrateOptions::default()).unwrap();
            assert!(
                cal.outcome.expected_remaining <= bound + 1e-9,
                "bound {bound} missed: {}",
                cal.outcome.expected_remaining
            );
        }
    }

    #[test]
    fn tighter_bound_costs_more() {
        let p = small_problem(10, 5);
        let loose = calibrate_penalty(&p, 2.0, CalibrateOptions::default()).unwrap();
        let tight = calibrate_penalty(&p, 0.05, CalibrateOptions::default()).unwrap();
        assert!(tight.outcome.expected_paid >= loose.outcome.expected_paid - 1e-9);
        assert!(tight.penalty_per_task >= loose.penalty_per_task);
    }

    #[test]
    fn theorem2_optimality_within_family() {
        // The calibrated policy must be (weakly) the cheapest among all
        // penalty-indexed policies that also meet the bound — scan a grid
        // of penalties as "competitors".
        let p = small_problem(8, 4);
        let bound = 0.3;
        let cal = calibrate_penalty(&p, bound, CalibrateOptions::default()).unwrap();
        for pen in [1.0, 5.0, 20.0, 80.0, 320.0, 1280.0, 5120.0] {
            let competitor = expected_remaining_at(&p, pen, 1e-9).unwrap().1;
            if competitor.expected_remaining <= bound {
                assert!(
                    cal.outcome.expected_paid <= competitor.expected_paid + 1e-6,
                    "penalty {pen} meets the bound more cheaply"
                );
            }
        }
    }

    #[test]
    fn infeasible_bound_detected() {
        // One worker expected in total: cannot finish 10 tasks whp.
        let mut p = small_problem(10, 2);
        p.interval_arrivals = vec![0.5, 0.5];
        let err = calibrate_penalty(&p, 1e-6, CalibrateOptions::default());
        assert!(matches!(err, Err(PricingError::Infeasible(_))));
    }
}
