//! Algorithm 2: divide-and-conquer DP exploiting price monotonicity.
//!
//! Under Conjecture 1 (`Price(n, t)` non-decreasing in `n` for fixed `t`),
//! once `Price(a, t)` and `Price(b, t)` are known for `a < m < b`, the
//! optimal action for `m` lies between them. Recursing on the midpoint
//! gives `O(log N)` levels whose action-search ranges telescope to `C` per
//! level, so each interval costs `O(N · s₀ + C log N · s₀)` backups instead
//! of `O(N · C)`.

use super::backup::{best_action, TruncationTable};
use super::validate;
use crate::error::Result;
use crate::policy::DeadlinePolicy;
use crate::problem::DeadlineProblem;

/// Solve with Algorithm 2 + Poisson truncation at `eps`.
///
/// Produces exactly the same policy as [`super::solve_truncated`] whenever
/// Conjecture 1 holds (which we have never observed violated, matching the
/// paper's experience); the test-suite cross-checks agreement.
pub fn solve_efficient(problem: &DeadlineProblem, eps: f64) -> Result<DeadlinePolicy> {
    let trunc = TruncationTable::with_eps(problem, eps);
    solve_efficient_with(problem, &trunc)
}

/// Solve with Algorithm 2 and explicit truncation table (use
/// [`TruncationTable::none`] for exact backups).
pub fn solve_efficient_with(
    problem: &DeadlineProblem,
    trunc: &TruncationTable,
) -> Result<DeadlinePolicy> {
    validate(problem)?;
    let n = problem.n_tasks as usize;
    let nt = problem.n_intervals();
    let width = n + 1;
    let n_actions = problem.actions.len();

    let mut opt = vec![0.0f64; (nt + 1) * width];
    let mut price_idx = vec![0u32; nt * width];
    for m in 0..=n {
        opt[nt * width + m] = problem.penalty.terminal_cost(m as u32);
    }

    let mut pmf_buf = vec![0.0f64; n.max(1)];
    for t in (0..nt).rev() {
        let (head, tail) = opt.split_at_mut((t + 1) * width);
        let opt_now = &mut head[t * width..(t + 1) * width];
        let opt_next = &tail[..width];
        opt_now[0] = 0.0;
        // FindOptimalPriceForTime(t, 1, N, 0, C−1).
        solve_range(
            problem,
            trunc,
            t,
            1,
            n,
            0,
            n_actions - 1,
            opt_now,
            &mut price_idx[t * width..(t + 1) * width],
            opt_next,
            &mut pmf_buf,
        );
    }

    Ok(DeadlinePolicy::new(
        problem.n_tasks,
        nt,
        price_idx,
        opt,
        problem.actions.clone(),
    ))
}

/// Recursive midpoint search over task counts `[l, r]` with the optimal
/// action known to lie in `[a_lo, a_hi]`.
#[allow(clippy::too_many_arguments)]
fn solve_range(
    problem: &DeadlineProblem,
    trunc: &TruncationTable,
    t: usize,
    l: usize,
    r: usize,
    a_lo: usize,
    a_hi: usize,
    opt_now: &mut [f64],
    price_row: &mut [u32],
    opt_next: &[f64],
    pmf_buf: &mut [f64],
) {
    if l > r {
        return;
    }
    let m = l + (r - l) / 2;
    let (best, best_q) =
        best_action(problem, trunc, t, m, a_lo, a_hi, opt_next, pmf_buf);
    opt_now[m] = best_q;
    price_row[m] = best as u32;
    if l < m {
        solve_range(
            problem, trunc, t, l, m - 1, a_lo, best, opt_now, price_row, opt_next, pmf_buf,
        );
    }
    if m < r {
        solve_range(
            problem, trunc, t, m + 1, r, best, a_hi, opt_now, price_row, opt_next, pmf_buf,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::simple::{solve_simple, solve_truncated};
    use crate::dp::test_support::{small_problem, varied_problems};
    use crate::dp::TruncationTable;

    #[test]
    fn efficient_matches_truncated_exactly() {
        for p in varied_problems() {
            for eps in [1e-6, 1e-9] {
                let a = solve_truncated(&p, eps).unwrap();
                let b = solve_efficient(&p, eps).unwrap();
                for t in 0..p.n_intervals() {
                    for m in 1..=p.n_tasks {
                        assert_eq!(
                            a.action_index(m, t),
                            b.action_index(m, t),
                            "price mismatch at (n={m}, t={t}), eps={eps}"
                        );
                    }
                }
                let d = (a.expected_total_cost() - b.expected_total_cost()).abs();
                assert!(d < 1e-9, "cost mismatch {d}");
            }
        }
    }

    #[test]
    fn efficient_without_truncation_matches_simple() {
        for p in varied_problems() {
            let a = solve_simple(&p).unwrap();
            let trunc = TruncationTable::none(&p);
            let b = solve_efficient_with(&p, &trunc).unwrap();
            for t in 0..p.n_intervals() {
                for m in 1..=p.n_tasks {
                    assert_eq!(
                        a.action_index(m, t),
                        b.action_index(m, t),
                        "price mismatch at (n={m}, t={t})"
                    );
                }
            }
        }
    }

    #[test]
    fn efficient_policy_costs_match_forward_eval() {
        let p = small_problem(14, 6);
        let policy = solve_efficient(&p, 1e-9).unwrap();
        let out = policy.evaluate(&p);
        // Truncated estimate is a slight lower bound on the true cost.
        assert!(policy.expected_total_cost() <= out.expected_total_cost() + 1e-9);
        assert!(out.expected_total_cost() - policy.expected_total_cost() < 1.0);
    }
}
