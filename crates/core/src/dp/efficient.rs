//! Algorithm 2: divide-and-conquer DP exploiting price monotonicity —
//! the kernel's [`Sweep::MonotoneDivide`] strategy.
//!
//! Under Conjecture 1 (`Price(n, t)` non-decreasing in `n` for fixed `t`),
//! once `Price(a, t)` and `Price(b, t)` are known for `a < m < b`, the
//! optimal action for `m` lies between them. Recursing on the midpoint
//! gives `O(log N)` levels whose action-search ranges telescope to `C` per
//! level, so each interval costs `O(N · s₀ + C log N · s₀)` backups instead
//! of `O(N · C)` — and the two halves of every split are independent, so
//! the kernel runs them as fork-join tasks.

use super::validate;
use crate::error::Result;
use crate::kernel::deadline::solve_deadline;
use crate::kernel::{KernelConfig, Sweep, TruncationTable};
use crate::policy::DeadlinePolicy;
use crate::problem::DeadlineProblem;

/// Solve with Algorithm 2 + Poisson truncation at `eps`.
///
/// Produces exactly the same policy as [`super::solve_truncated`] whenever
/// Conjecture 1 holds (which we have never observed violated, matching the
/// paper's experience); the test-suite cross-checks agreement.
pub fn solve_efficient(problem: &DeadlineProblem, eps: f64) -> Result<DeadlinePolicy> {
    let trunc = TruncationTable::with_eps(problem, eps);
    solve_efficient_with(problem, &trunc)
}

/// Solve with Algorithm 2 and explicit truncation table (use
/// [`TruncationTable::none`] for exact backups).
pub fn solve_efficient_with(
    problem: &DeadlineProblem,
    trunc: &TruncationTable,
) -> Result<DeadlinePolicy> {
    validate(problem)?;
    solve_deadline(
        problem,
        trunc,
        Sweep::MonotoneDivide,
        &KernelConfig::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::simple::{solve_simple, solve_truncated};
    use crate::dp::test_support::{small_problem, varied_problems};
    use crate::dp::TruncationTable;

    #[test]
    fn efficient_matches_truncated_exactly() {
        for p in varied_problems() {
            for eps in [1e-6, 1e-9] {
                let a = solve_truncated(&p, eps).unwrap();
                let b = solve_efficient(&p, eps).unwrap();
                for t in 0..p.n_intervals() {
                    for m in 1..=p.n_tasks {
                        assert_eq!(
                            a.action_index(m, t),
                            b.action_index(m, t),
                            "price mismatch at (n={m}, t={t}), eps={eps}"
                        );
                    }
                }
                let d = (a.expected_total_cost() - b.expected_total_cost()).abs();
                assert!(d < 1e-9, "cost mismatch {d}");
            }
        }
    }

    #[test]
    fn efficient_without_truncation_matches_simple() {
        for p in varied_problems() {
            let a = solve_simple(&p).unwrap();
            let trunc = TruncationTable::none(&p);
            let b = solve_efficient_with(&p, &trunc).unwrap();
            for t in 0..p.n_intervals() {
                for m in 1..=p.n_tasks {
                    assert_eq!(
                        a.action_index(m, t),
                        b.action_index(m, t),
                        "price mismatch at (n={m}, t={t})"
                    );
                }
            }
        }
    }

    #[test]
    fn efficient_policy_costs_match_forward_eval() {
        let p = small_problem(14, 6);
        let policy = solve_efficient(&p, 1e-9).unwrap();
        let out = policy.evaluate(&p);
        // Truncated estimate is a slight lower bound on the true cost.
        assert!(policy.expected_total_cost() <= out.expected_total_cost() + 1e-9);
        assert!(out.expected_total_cost() - policy.expected_total_cost() < 1.0);
    }
}
