//! Dynamic-programming solvers for the fixed-deadline MDP (Section 3).
//!
//! Three solvers share one Bellman backup, now hosted by the solver
//! kernel ([`crate::kernel`]) and executed by its parallel
//! backward-induction driver:
//!
//! - [`solve_simple`]: Algorithm 1, full enumeration — `O(N² · N_T · C)`.
//! - [`solve_truncated`]: Algorithm 1 + Poisson tail truncation
//!   (Section 3.2, Table 1, Theorem 1).
//! - [`solve_efficient`]: Algorithm 2, divide-and-conquer over the task
//!   count exploiting the monotonicity of `Price(n, t)` in `n`
//!   (Conjecture 1) — `O(N_T · N · (s₀ + C log N))`.
//!
//! All three are thin strategy selections over
//! [`crate::kernel::deadline::solve_deadline`]; results are identical to
//! the historical serial implementations for any thread count.

mod efficient;
mod simple;

pub use crate::kernel::{q_value, TruncationTable};
pub use efficient::{solve_efficient, solve_efficient_with};
pub use simple::{solve_simple, solve_truncated, solve_truncated_with_cache};

use crate::error::{PricingError, Result};
use crate::problem::DeadlineProblem;

/// Theorem 1's worst-case gap between the truncated-DP estimate and the
/// true cost of the truncated-DP policy from state `(n, t)`:
/// `n · (N_T − t) · C · ε` (each of the `N_T − t` remaining backups drops
/// at most `ε` probability mass, each worth at most `n · C`).
pub fn truncation_error_bound(problem: &DeadlineProblem, n: u32, t: usize, eps: f64) -> f64 {
    let nt = problem.n_intervals();
    assert!(t <= nt, "interval out of range");
    let c_max = problem.actions.max_reward().max(problem.penalty.per_task());
    n as f64 * (nt - t) as f64 * c_max * eps
}

/// Validate a problem before solving; shared across solvers.
pub(crate) fn validate(problem: &DeadlineProblem) -> Result<()> {
    if problem.n_tasks == 0 {
        return Err(PricingError::InvalidProblem("zero tasks".into()));
    }
    if problem.interval_arrivals.is_empty() {
        return Err(PricingError::InvalidProblem("zero intervals".into()));
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod test_support {
    pub use crate::testkit::{small_problem, varied_problems};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::small_problem;

    /// Pins the Theorem 1 formula: the bound is *linear* in `n`
    /// (`n · (N_T − t) · C · ε`), not quadratic — a regression test for a
    /// historical bug that multiplied by `n` twice.
    #[test]
    fn truncation_error_bound_is_linear_in_n() {
        let p = small_problem(10, 4);
        let c_max = p.actions.max_reward().max(p.penalty.per_task());
        let eps = 1e-6;
        for n in [1u32, 3, 10] {
            for t in [0usize, 2, 4] {
                let expect = n as f64 * (p.n_intervals() - t) as f64 * c_max * eps;
                let got = truncation_error_bound(&p, n, t, eps);
                assert!(
                    (got - expect).abs() < 1e-18,
                    "bound at (n={n}, t={t}): got {got}, want {expect}"
                );
            }
        }
        // Doubling n doubles the bound exactly.
        let b1 = truncation_error_bound(&p, 5, 0, eps);
        let b2 = truncation_error_bound(&p, 10, 0, eps);
        assert!(
            (b2 - 2.0 * b1).abs() < 1e-18,
            "bound not linear: {b1} vs {b2}"
        );
        // At the deadline no backups remain, so the bound vanishes.
        assert_eq!(truncation_error_bound(&p, 10, p.n_intervals(), eps), 0.0);
    }
}
