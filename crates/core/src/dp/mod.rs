//! Dynamic-programming solvers for the fixed-deadline MDP (Section 3).
//!
//! Three solvers share one Bellman backup:
//!
//! - [`solve_simple`]: Algorithm 1, full enumeration — `O(N² · N_T · C)`.
//! - [`solve_truncated`]: Algorithm 1 + Poisson tail truncation
//!   (Section 3.2, Table 1, Theorem 1).
//! - [`solve_efficient`]: Algorithm 2, divide-and-conquer over the task
//!   count exploiting the monotonicity of `Price(n, t)` in `n`
//!   (Conjecture 1) — `O(N_T · N · (s₀ + C log N))`.

mod backup;
mod efficient;
mod simple;

pub use backup::{q_value, TruncationTable};
pub use efficient::solve_efficient;
pub use simple::{solve_simple, solve_truncated};

use crate::error::{PricingError, Result};
use crate::problem::DeadlineProblem;

/// Theorem 1's worst-case gap between the truncated-DP estimate and the
/// true cost of the truncated-DP policy from state `(n, t)`:
/// `n · (N_T − t) · C · ε` (each of the `N_T − t` remaining backups drops
/// at most `ε` probability mass, each worth at most `n · C`).
pub fn truncation_error_bound(
    problem: &DeadlineProblem,
    n: u32,
    t: usize,
    eps: f64,
) -> f64 {
    let nt = problem.n_intervals();
    assert!(t <= nt, "interval out of range");
    let c_max = problem
        .actions
        .max_reward()
        .max(problem.penalty.per_task());
    n as f64 * (nt - t) as f64 * c_max * eps * n as f64
}

/// Validate a problem before solving; shared across solvers.
pub(crate) fn validate(problem: &DeadlineProblem) -> Result<()> {
    if problem.n_tasks == 0 {
        return Err(PricingError::InvalidProblem("zero tasks".into()));
    }
    if problem.interval_arrivals.is_empty() {
        return Err(PricingError::InvalidProblem("zero intervals".into()));
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::actions::ActionSet;
    use crate::penalty::PenaltyModel;
    use crate::problem::DeadlineProblem;
    use ft_market::{AcceptanceFn, LogitAcceptance, PriceGrid};

    /// Small instance solvable by the naive DP in test (debug) builds.
    pub fn small_problem(n_tasks: u32, n_intervals: usize) -> DeadlineProblem {
        let acc = LogitAcceptance::new(5.0, -1.0, 50.0);
        DeadlineProblem::new(
            n_tasks,
            vec![40.0; n_intervals],
            ActionSet::from_grid(PriceGrid::new(0, 20), &acc),
            PenaltyModel::Linear { per_task: 200.0 },
        )
    }

    /// A family of varied instances for cross-solver agreement tests.
    pub fn varied_problems() -> Vec<DeadlineProblem> {
        let mut out = Vec::new();
        for (n, nt, lam, pen) in [
            (5u32, 3usize, 10.0, 50.0),
            (12, 6, 25.0, 200.0),
            (20, 4, 60.0, 500.0),
            (8, 8, 5.0, 1000.0),
        ] {
            let acc = LogitAcceptance::new(4.0, 0.0, 30.0);
            out.push(DeadlineProblem::new(
                n,
                (0..nt).map(|i| lam * (1.0 + 0.3 * (i as f64).sin())).collect(),
                ActionSet::from_grid(PriceGrid::new(0, 15), &acc),
                PenaltyModel::Linear { per_task: pen },
            ));
        }
        // One with an extended penalty.
        let acc = LogitAcceptance::new(6.0, -0.5, 40.0);
        out.push(DeadlineProblem::new(
            10,
            vec![30.0, 15.0, 45.0],
            ActionSet::from_grid(PriceGrid::new(2, 18), &acc),
            PenaltyModel::Extended {
                per_task: 300.0,
                alpha: 3.0,
            },
        ));
        // One that hits acceptance saturation: very attractive task.
        let acc = LogitAcceptance::new(2.0, -2.0, 5.0);
        assert!(acc.p(18) > 0.9);
        out.push(DeadlineProblem::new(
            6,
            vec![8.0, 8.0],
            ActionSet::from_grid(PriceGrid::new(0, 18), &acc),
            PenaltyModel::Linear { per_task: 100.0 },
        ));
        out
    }
}
