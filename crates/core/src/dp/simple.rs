//! Algorithm 1: the simple backward-induction DP, with and without Poisson
//! tail truncation — a dense sweep on the solver kernel.

use super::validate;
use crate::error::Result;
use crate::kernel::deadline::{solve_deadline, solve_deadline_with_cache};
use crate::kernel::{KernelConfig, SharedPmfCache, Sweep, TruncationTable};
use crate::policy::DeadlinePolicy;
use crate::problem::DeadlineProblem;
use std::sync::Arc;

/// Solve by full enumeration (Algorithm 1): exact transition sums, every
/// action considered at every state. `O(N² · N_T · C)` work, swept in
/// parallel across the task-count axis.
pub fn solve_simple(problem: &DeadlineProblem) -> Result<DeadlinePolicy> {
    let trunc = TruncationTable::none(problem);
    solve_with_truncation(problem, &trunc)
}

/// Solve with Poisson tail truncation at mass `eps` (Section 3.2): the DP
/// ignores transition terms whose total probability is below `eps`,
/// trading a bounded cost error (Theorem 1) for a `s₀`-bounded inner loop.
pub fn solve_truncated(problem: &DeadlineProblem, eps: f64) -> Result<DeadlinePolicy> {
    let trunc = TruncationTable::with_eps(problem, eps);
    solve_with_truncation(problem, &trunc)
}

/// [`solve_truncated`] resolving pmf rows through an optional
/// wave-wide [`SharedPmfCache`] — the recalibration path, where
/// concurrent campaigns re-derive identical Poisson rows. Bitwise
/// identical to the uncached solve.
pub fn solve_truncated_with_cache(
    problem: &DeadlineProblem,
    eps: f64,
    shared: Option<Arc<SharedPmfCache>>,
) -> Result<DeadlinePolicy> {
    let trunc = TruncationTable::with_eps(problem, eps);
    validate(problem)?;
    solve_deadline_with_cache(
        problem,
        &trunc,
        Sweep::Dense,
        &KernelConfig::default(),
        shared,
    )
}

pub(crate) fn solve_with_truncation(
    problem: &DeadlineProblem,
    trunc: &TruncationTable,
) -> Result<DeadlinePolicy> {
    validate(problem)?;
    solve_deadline(problem, trunc, Sweep::Dense, &KernelConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::test_support::{small_problem, varied_problems};
    use crate::dp::truncation_error_bound;
    use crate::penalty::PenaltyModel;

    #[test]
    fn optimal_cost_matches_evaluation() {
        // Opt(N, 0) from the DP must equal the exact forward evaluation of
        // the induced policy under the same dynamics.
        let p = small_problem(10, 5);
        let policy = solve_simple(&p).unwrap();
        let out = policy.evaluate(&p);
        let diff = (policy.expected_total_cost() - out.expected_total_cost()).abs();
        assert!(diff < 1e-8, "DP cost vs forward eval differ by {diff}");
    }

    #[test]
    fn cost_to_go_monotone_in_n() {
        // More remaining tasks cannot be cheaper.
        let p = small_problem(12, 4);
        let policy = solve_simple(&p).unwrap();
        for t in 0..=4 {
            for m in 1..=12u32 {
                assert!(
                    policy.cost_to_go(m, t) >= policy.cost_to_go(m - 1, t) - 1e-9,
                    "Opt({m},{t}) < Opt({},{t})",
                    m - 1
                );
            }
        }
    }

    #[test]
    fn price_monotone_in_n_conjecture1() {
        // Conjecture 1: Price(n, t) non-decreasing in n for fixed t.
        for p in varied_problems() {
            let policy = solve_simple(&p).unwrap();
            for t in 0..p.n_intervals() {
                for m in 2..=p.n_tasks {
                    assert!(
                        policy.action_index(m, t) >= policy.action_index(m - 1, t),
                        "price not monotone at (n={m}, t={t})"
                    );
                }
            }
        }
    }

    #[test]
    fn price_monotone_in_t() {
        // Section 3.2's remark: for fixed n, price rises as the deadline
        // approaches.
        for p in varied_problems() {
            let policy = solve_simple(&p).unwrap();
            for m in 1..=p.n_tasks {
                for t in 1..p.n_intervals() {
                    assert!(
                        policy.action_index(m, t) >= policy.action_index(m, t - 1),
                        "price not monotone in t at (n={m}, t={t})"
                    );
                }
            }
        }
    }

    #[test]
    fn higher_penalty_prices_higher() {
        let base = small_problem(10, 4);
        let low =
            solve_simple(&base.with_penalty(PenaltyModel::Linear { per_task: 20.0 })).unwrap();
        let high =
            solve_simple(&base.with_penalty(PenaltyModel::Linear { per_task: 2000.0 })).unwrap();
        // At the initial state, the higher penalty must not price lower.
        assert!(high.action_index(10, 0) >= low.action_index(10, 0));
        // And it must leave fewer tasks unfinished in expectation.
        let out_low = low.evaluate(&base.with_penalty(PenaltyModel::Linear { per_task: 20.0 }));
        let out_high = high.evaluate(&base.with_penalty(PenaltyModel::Linear { per_task: 2000.0 }));
        assert!(out_high.expected_remaining <= out_low.expected_remaining + 1e-9);
    }

    #[test]
    fn truncated_matches_simple_within_theorem1_bound() {
        for p in varied_problems() {
            let exact = solve_simple(&p).unwrap();
            for eps in [1e-6, 1e-9] {
                let trunc = solve_truncated(&p, eps).unwrap();
                // Est_trunc ≤ Opt (dropping non-negative terms).
                assert!(
                    trunc.expected_total_cost() <= exact.expected_total_cost() + 1e-9,
                    "truncated estimate above exact optimum"
                );
                // True cost of the truncated policy ≥ Opt, within bound.
                let true_cost = trunc.evaluate(&p).expected_total_cost();
                let bound = truncation_error_bound(&p, p.n_tasks, 0, eps);
                assert!(
                    true_cost <= exact.expected_total_cost() + bound + 1e-9,
                    "Theorem 1 violated: {true_cost} > {} + {bound}",
                    exact.expected_total_cost()
                );
                assert!(true_cost >= exact.expected_total_cost() - 1e-9);
            }
        }
    }

    #[test]
    fn tight_truncation_equals_exact_prices() {
        // At ε = 1e-12 the truncated and exact policies should agree on
        // nearly every state; costs must agree very closely.
        let p = small_problem(15, 5);
        let exact = solve_simple(&p).unwrap();
        let trunc = solve_truncated(&p, 1e-12).unwrap();
        let d = (exact.expected_total_cost() - trunc.expected_total_cost()).abs();
        assert!(d < 1e-6, "cost gap {d}");
    }

    #[test]
    fn zero_arrivals_only_penalty() {
        // No workers → nothing completes → cost is exactly the penalty.
        let p = DeadlineProblem::new(
            4,
            vec![0.0, 0.0],
            crate::actions::ActionSet::from_grid(
                ft_market::PriceGrid::new(0, 5),
                &ft_market::LogitAcceptance::new(5.0, 0.0, 10.0),
            ),
            PenaltyModel::Linear { per_task: 77.0 },
        );
        use crate::problem::DeadlineProblem;
        let policy = solve_simple(&p).unwrap();
        assert!((policy.expected_total_cost() - 4.0 * 77.0).abs() < 1e-9);
    }
}
