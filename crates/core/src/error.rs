//! Error type for the pricing solvers.

use std::fmt;

/// Errors returned by pricing solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum PricingError {
    /// The problem is infeasible: even the cheapest configuration violates
    /// a constraint (e.g., budget below `N · c_min`).
    Infeasible(String),
    /// A required numeric search failed to converge / bracket.
    SearchFailed(String),
    /// Inconsistent or invalid problem specification.
    InvalidProblem(String),
}

impl fmt::Display for PricingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PricingError::Infeasible(msg) => write!(f, "infeasible problem: {msg}"),
            PricingError::SearchFailed(msg) => write!(f, "search failed: {msg}"),
            PricingError::InvalidProblem(msg) => write!(f, "invalid problem: {msg}"),
        }
    }
}

impl std::error::Error for PricingError {}

/// Result alias for pricing operations.
pub type Result<T> = std::result::Result<T, PricingError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = PricingError::Infeasible("budget 10 < min 20".into());
        assert!(e.to_string().contains("infeasible"));
        let e = PricingError::SearchFailed("no bracket".into());
        assert!(e.to_string().contains("search"));
        let e = PricingError::InvalidProblem("empty grid".into());
        assert!(e.to_string().contains("invalid"));
    }
}
