//! Error type for the pricing solvers and the campaign serving layer.
//!
//! Solver-side failures carry diagnostic strings (their exact shapes are
//! internal); serving-side failures are *structured* — they name the
//! campaign and the kind of mismatch — so front-ends like `ft-server` can
//! map them to protocol-level statuses without parsing messages.

use std::fmt;

/// Identifier for a campaign within the serving layer (registry/service).
pub type CampaignId = u64;

/// Errors returned by pricing solvers and the campaign serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PricingError {
    /// The problem is infeasible: even the cheapest configuration violates
    /// a constraint (e.g., budget below `N · c_min`).
    Infeasible(String),
    /// A required numeric search failed to converge / bracket.
    SearchFailed(String),
    /// Inconsistent or invalid problem specification.
    InvalidProblem(String),
    /// No campaign with this id exists in the registry.
    UnknownCampaign(CampaignId),
    /// The observed state kind doesn't match the campaign type (e.g. a
    /// budget state reported against a deadline campaign).
    StateKindMismatch {
        id: CampaignId,
        /// The campaign's kind (`"deadline"` / `"budget"`).
        expected: &'static str,
        /// The reported state's kind.
        got: &'static str,
    },
    /// The campaign exists but is not in a status that can serve the
    /// request (e.g. repricing a draft, re-solving an evicted campaign).
    NotServable {
        id: CampaignId,
        /// The campaign's current lifecycle status, lower-case
        /// (`"draft"`, `"solving"`, …).
        status: &'static str,
    },
}

impl fmt::Display for PricingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PricingError::Infeasible(msg) => write!(f, "infeasible problem: {msg}"),
            PricingError::SearchFailed(msg) => write!(f, "search failed: {msg}"),
            PricingError::InvalidProblem(msg) => write!(f, "invalid problem: {msg}"),
            PricingError::UnknownCampaign(id) => write!(f, "unknown campaign {id}"),
            PricingError::StateKindMismatch { id, expected, got } => write!(
                f,
                "campaign {id}: observed state kind `{got}` does not match campaign kind \
                 `{expected}`"
            ),
            PricingError::NotServable { id, status } => {
                write!(f, "campaign {id} is {status}, not servable")
            }
        }
    }
}

impl std::error::Error for PricingError {}

/// Result alias for pricing operations.
pub type Result<T> = std::result::Result<T, PricingError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = PricingError::Infeasible("budget 10 < min 20".into());
        assert!(e.to_string().contains("infeasible"));
        let e = PricingError::SearchFailed("no bracket".into());
        assert!(e.to_string().contains("search"));
        let e = PricingError::InvalidProblem("empty grid".into());
        assert!(e.to_string().contains("invalid"));
    }

    #[test]
    fn structured_serving_errors_name_the_campaign() {
        let e = PricingError::UnknownCampaign(42);
        assert!(e.to_string().contains("42"));
        let e = PricingError::StateKindMismatch {
            id: 7,
            expected: "deadline",
            got: "budget",
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains("deadline") && s.contains("budget"));
        let e = PricingError::NotServable {
            id: 9,
            status: "draft",
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains("draft"));
    }
}
