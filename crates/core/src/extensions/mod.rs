//! Section 6 extensions: multiple task types, cost/latency tradeoffs, and
//! quality-control integration.

pub mod multi_type;
pub mod quality;
pub mod tradeoff;

pub use multi_type::{
    solve_decomposed, solve_multi_type, MultiTypePolicy, MultiTypeProblem, TaskTypeSpec,
};
pub use quality::{MajorityVoteQc, QcPricingSession};
pub use tradeoff::{solve_tradeoff_fixed_rate, solve_tradeoff_worker_arrival, TradeoffPolicy};
