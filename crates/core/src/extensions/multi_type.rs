//! Section 6: multiple task types with a shared deadline.
//!
//! The state becomes a vector `(n₁, …, n_k, t)`. With *linear* terminal
//! penalties and independent thinned-Poisson dynamics per type, the joint
//! MDP decomposes exactly into `k` independent single-type MDPs (costs and
//! transitions are additive/independent) — the joint solver and the
//! decomposed solver must agree, which the tests verify. With the
//! *extended* penalty (`α` charged when *any* task of *any* type remains)
//! the problem no longer decomposes, and the joint solver is required.
//!
//! The joint solver is exponential in `k` (state space `Π (N_i + 1)`), so
//! it is intended for small `k` — the paper's example is `k = 2`.

use crate::actions::ActionSet;
use crate::error::{PricingError, Result};
use crate::penalty::PenaltyModel;
use crate::problem::DeadlineProblem;
use ft_stats::Poisson;
use serde::{Deserialize, Serialize};

/// One task type: its batch size and its own action set (acceptance may
/// differ per type — e.g. categorization vs. labeling tasks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskTypeSpec {
    pub n_tasks: u32,
    pub actions: ActionSet,
}

/// Multi-type deadline problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTypeProblem {
    pub types: Vec<TaskTypeSpec>,
    /// Shared per-interval worker arrival masses.
    pub interval_arrivals: Vec<f64>,
    /// Per-task penalty (linear across all types), plus an optional joint
    /// `alpha` charged once if anything at all remains (the non-decomposable
    /// extension).
    pub penalty_per_task: f64,
    pub joint_alpha: f64,
}

/// Joint policy: optimal per-type action indices for every joint state.
#[derive(Debug, Clone)]
pub struct MultiTypePolicy {
    dims: Vec<usize>,
    n_intervals: usize,
    /// `price_idx[t][state][type]` flattened.
    price_idx: Vec<u32>,
    opt0: f64,
    pub types: Vec<TaskTypeSpec>,
}

impl MultiTypePolicy {
    fn state_count(&self) -> usize {
        self.dims.iter().product()
    }

    fn encode(&self, ns: &[u32]) -> usize {
        let mut idx = 0usize;
        for (d, &n) in self.dims.iter().zip(ns) {
            debug_assert!((n as usize) < *d);
            idx = idx * d + n as usize;
        }
        idx
    }

    /// Optimal expected total cost from the full batch.
    pub fn expected_total_cost(&self) -> f64 {
        self.opt0
    }

    /// Optimal action index per type at a joint state.
    pub fn action_indices(&self, ns: &[u32], t: usize) -> Vec<usize> {
        assert_eq!(ns.len(), self.dims.len());
        assert!(t < self.n_intervals);
        let k = self.dims.len();
        let s = self.encode(ns);
        (0..k)
            .map(|j| self.price_idx[(t * self.state_count() + s) * k + j] as usize)
            .collect()
    }

    /// Posted rewards per type at a joint state.
    pub fn prices(&self, ns: &[u32], t: usize) -> Vec<f64> {
        self.action_indices(ns, t)
            .into_iter()
            .zip(&self.types)
            .map(|(a, ty)| ty.actions.get(a).reward)
            .collect()
    }
}

/// Solve the joint multi-type MDP by exhaustive backward induction.
///
/// Per-type action choices are optimized independently *given the joint
/// continuation function* via a coordinate sweep: because per-type
/// transition/cost terms interact only through the continuation value, a
/// single sweep per state is exact when the continuation separates (linear
/// penalty) and a strong heuristic otherwise; we iterate the sweep to a
/// fixed point to cover the `joint_alpha` coupling.
pub fn solve_multi_type(problem: &MultiTypeProblem) -> Result<MultiTypePolicy> {
    let k = problem.types.len();
    if k == 0 {
        return Err(PricingError::InvalidProblem("no task types".into()));
    }
    if problem.interval_arrivals.is_empty() {
        return Err(PricingError::InvalidProblem("no intervals".into()));
    }
    let dims: Vec<usize> = problem
        .types
        .iter()
        .map(|s| s.n_tasks as usize + 1)
        .collect();
    let n_states: usize = dims.iter().product();
    let nt = problem.interval_arrivals.len();
    if n_states.saturating_mul(nt) > 50_000_000 {
        return Err(PricingError::InvalidProblem(format!(
            "joint state space too large: {n_states} states × {nt} intervals"
        )));
    }

    // Decode helpers.
    let decode = |mut s: usize| -> Vec<u32> {
        let mut ns = vec![0u32; k];
        for j in (0..k).rev() {
            ns[j] = (s % dims[j]) as u32;
            s /= dims[j];
        }
        ns
    };

    // Terminal costs.
    let mut opt_next: Vec<f64> = (0..n_states)
        .map(|s| {
            let ns = decode(s);
            let total: u32 = ns.iter().sum();
            let mut cost = total as f64 * problem.penalty_per_task;
            if total > 0 {
                cost += problem.joint_alpha * problem.penalty_per_task;
            }
            cost
        })
        .collect();

    let mut price_idx = vec![0u32; nt * n_states * k];
    let mut opt_now = vec![0.0f64; n_states];

    // Scratch: per-type pmf tables for the currently considered action.
    for t in (0..nt).rev() {
        let lam = problem.interval_arrivals[t];
        for s in 0..n_states {
            let ns = decode(s);
            if ns.iter().all(|&x| x == 0) {
                opt_now[s] = 0.0;
                continue;
            }
            // Coordinate-descent over per-type actions, initialized at the
            // per-type myopic best, iterated to a fixed point.
            let mut choice: Vec<usize> = vec![0; k];
            let mut pmfs: Vec<Vec<f64>> = (0..k).map(|j| vec![0.0; ns[j] as usize + 1]).collect();
            let compute_pmf = |j: usize, a: usize, buf: &mut Vec<f64>| {
                let act = problem.types[j].actions.get(a);
                let pois = Poisson::new(lam * act.accept);
                let nj = ns[j] as usize;
                let head = pois.pmf_prefix(&mut buf[..nj]);
                buf[nj] = (1.0 - head).max(0.0); // collapsed ≥ n_j tail
            };
            // Expected joint continuation + transition cost given all
            // per-type pmfs and choices.
            let eval = |choice: &[usize], pmfs: &[Vec<f64>]| -> f64 {
                // Enumerate joint completions via mixed-radix recursion.
                let mut total = 0.0;
                let mut stack: Vec<(usize, usize, f64, f64)> = vec![(0, 0, 1.0, 0.0)];
                // (type index, encoded-partial, prob, paid) — iterative DFS.
                while let Some((j, enc, pr, paid)) = stack.pop() {
                    if pr <= 1e-14 {
                        continue;
                    }
                    if j == k {
                        total += pr * (paid + opt_next[enc]);
                        continue;
                    }
                    let nj = ns[j] as usize;
                    let c = problem.types[j].actions.get(choice[j]).reward;
                    for (s_done, &q) in pmfs[j].iter().enumerate() {
                        let completed = s_done.min(nj);
                        let remaining = nj - completed;
                        stack.push((
                            j + 1,
                            enc * dims[j] + remaining,
                            pr * q,
                            paid + completed as f64 * c,
                        ));
                    }
                }
                total
            };
            // Initialize pmfs for action 0 everywhere.
            for j in 0..k {
                compute_pmf(j, choice[j], &mut pmfs[j]);
            }
            let mut best_val = eval(&choice, &pmfs);
            // Sweep coordinates until stable (≤ 4 sweeps in practice).
            for _sweep in 0..8 {
                let mut improved = false;
                for j in 0..k {
                    let current = choice[j];
                    let mut local_best = current;
                    let mut local_val = best_val;
                    for a in 0..problem.types[j].actions.len() {
                        if a == current {
                            continue;
                        }
                        // Evaluate candidate `a` with a consistent
                        // (choice, pmf) pair for coordinate j.
                        choice[j] = a;
                        compute_pmf(j, a, &mut pmfs[j]);
                        let v = eval(&choice, &pmfs);
                        if v < local_val - 1e-12 {
                            local_val = v;
                            local_best = a;
                        }
                    }
                    choice[j] = local_best;
                    compute_pmf(j, local_best, &mut pmfs[j]);
                    if local_best != current {
                        best_val = local_val;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
            opt_now[s] = best_val;
            for j in 0..k {
                price_idx[(t * n_states + s) * k + j] = choice[j] as u32;
            }
        }
        std::mem::swap(&mut opt_next, &mut opt_now);
    }

    let full_state: Vec<u32> = problem.types.iter().map(|s| s.n_tasks).collect();
    let policy = MultiTypePolicy {
        dims,
        n_intervals: nt,
        price_idx,
        opt0: 0.0,
        types: problem.types.clone(),
    };
    let opt0 = opt_next[policy.encode(&full_state)];
    Ok(MultiTypePolicy { opt0, ..policy })
}

/// Decomposed solve for the linear-penalty case: `k` independent
/// single-type MDPs; returns their summed optimal cost.
pub fn solve_decomposed(problem: &MultiTypeProblem) -> Result<f64> {
    if problem.joint_alpha != 0.0 {
        return Err(PricingError::InvalidProblem(
            "decomposition requires joint_alpha == 0".into(),
        ));
    }
    let mut total = 0.0;
    for spec in &problem.types {
        let single = DeadlineProblem::new(
            spec.n_tasks,
            problem.interval_arrivals.clone(),
            spec.actions.clone(),
            PenaltyModel::Linear {
                per_task: problem.penalty_per_task,
            },
        );
        let policy = crate::dp::solve_simple(&single)?;
        total += policy.expected_total_cost();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_market::{LogitAcceptance, PriceGrid};

    fn two_type_problem(joint_alpha: f64) -> MultiTypeProblem {
        let acc_a = LogitAcceptance::new(4.0, 0.0, 30.0);
        let acc_b = LogitAcceptance::new(6.0, -0.5, 40.0);
        MultiTypeProblem {
            types: vec![
                TaskTypeSpec {
                    n_tasks: 5,
                    actions: ActionSet::from_grid(PriceGrid::new(0, 12), &acc_a),
                },
                TaskTypeSpec {
                    n_tasks: 4,
                    actions: ActionSet::from_grid(PriceGrid::new(0, 12), &acc_b),
                },
            ],
            interval_arrivals: vec![20.0, 10.0, 30.0],
            penalty_per_task: 150.0,
            joint_alpha,
        }
    }

    #[test]
    fn joint_matches_decomposed_for_linear_penalty() {
        let p = two_type_problem(0.0);
        let joint = solve_multi_type(&p).unwrap();
        let decomposed = solve_decomposed(&p).unwrap();
        let d = (joint.expected_total_cost() - decomposed).abs();
        assert!(
            d < 1e-6,
            "joint {} vs decomposed {decomposed} differ by {d}",
            joint.expected_total_cost()
        );
    }

    #[test]
    fn joint_alpha_increases_cost() {
        let base = solve_multi_type(&two_type_problem(0.0)).unwrap();
        let coupled = solve_multi_type(&two_type_problem(5.0)).unwrap();
        assert!(coupled.expected_total_cost() > base.expected_total_cost());
    }

    #[test]
    fn empty_state_is_free() {
        let p = two_type_problem(0.0);
        let policy = solve_multi_type(&p).unwrap();
        // All-zero joint state: no actions should cost anything — check via
        // action query not panicking and prices being defined.
        let prices = policy.prices(&[5, 4], 0);
        assert_eq!(prices.len(), 2);
        for (j, pr) in prices.iter().enumerate() {
            assert!(p.types[j].actions.index_of_reward(*pr).is_some());
        }
    }

    #[test]
    fn decomposed_rejects_joint_alpha() {
        let p = two_type_problem(1.0);
        assert!(solve_decomposed(&p).is_err());
    }

    #[test]
    fn state_space_guard() {
        let acc = LogitAcceptance::new(4.0, 0.0, 30.0);
        let p = MultiTypeProblem {
            types: (0..6)
                .map(|_| TaskTypeSpec {
                    n_tasks: 60,
                    actions: ActionSet::from_grid(PriceGrid::new(0, 5), &acc),
                })
                .collect(),
            interval_arrivals: vec![10.0; 24],
            penalty_per_task: 100.0,
            joint_alpha: 0.0,
        };
        assert!(matches!(
            solve_multi_type(&p),
            Err(PricingError::InvalidProblem(_))
        ));
    }
}
