//! Section 6: incorporating quality control for filtering tasks.
//!
//! We implement the paper's second (tractable) approximation: the
//! quality-control strategy is computed separately — here, an early-stopping
//! majority vote — and pricing operates on `N′ = Σ_tasks worstcase(x, y)`,
//! the total *worst-case* additional questions across all in-flight tasks.
//! As answers arrive, each task moves on the QC grid and `N′` shrinks;
//! the deadline policy (from Section 3) is consulted at state `(N′, t)`.

use crate::policy::{DeadlinePolicy, PriceController};
use serde::{Deserialize, Serialize};

/// An early-stopping majority-vote quality-control strategy: ask until one
/// answer reaches `k + 1` votes, never asking more than `2k + 1` total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MajorityVoteQc {
    /// Total votes budget `m = 2k + 1` (must be odd).
    pub votes: u32,
}

impl MajorityVoteQc {
    pub fn new(votes: u32) -> Self {
        assert!(
            votes % 2 == 1 && votes >= 1,
            "votes must be odd, got {votes}"
        );
        Self { votes }
    }

    /// Decision threshold `k + 1`.
    pub fn threshold(&self) -> u32 {
        self.votes / 2 + 1
    }

    /// Is the point `(x, y)` (no-votes, yes-votes) terminal?
    pub fn is_decided(&self, x: u32, y: u32) -> bool {
        x >= self.threshold() || y >= self.threshold()
    }

    /// Worst-case additional questions from point `(x, y)`: an adversarial
    /// answer sequence alternates toward the longest path, giving
    /// `m − x − y` for undecided points and `0` for decided ones.
    pub fn worst_case_questions(&self, x: u32, y: u32) -> u32 {
        if self.is_decided(x, y) {
            0
        } else {
            self.votes - x - y
        }
    }

    /// All continue (undecided) points of the strategy grid.
    pub fn continue_points(&self) -> Vec<(u32, u32)> {
        let th = self.threshold();
        let mut pts = Vec::new();
        for x in 0..th {
            for y in 0..th {
                if x + y < self.votes {
                    pts.push((x, y));
                }
            }
        }
        pts
    }
}

/// A pricing session combining a deadline policy over `N′` worst-case
/// questions with per-task majority-vote QC state.
#[derive(Debug, Clone)]
pub struct QcPricingSession {
    qc: MajorityVoteQc,
    policy: DeadlinePolicy,
    /// Per-task `(no_votes, yes_votes)`.
    points: Vec<(u32, u32)>,
}

impl QcPricingSession {
    /// `policy` must be solved for `N′ = n_items · qc.votes` tasks (the
    /// worst-case question count from the origin).
    pub fn new(qc: MajorityVoteQc, policy: DeadlinePolicy, n_items: usize) -> Self {
        assert!(n_items > 0, "need at least one item");
        let n_prime = n_items as u32 * qc.worst_case_questions(0, 0);
        assert_eq!(
            policy.n_tasks(),
            n_prime,
            "policy must be solved for N' = {n_prime} worst-case questions"
        );
        Self {
            qc,
            policy,
            points: vec![(0, 0); n_items],
        }
    }

    /// Current total worst-case remaining questions `N′`.
    pub fn remaining_questions(&self) -> u32 {
        self.points
            .iter()
            .map(|&(x, y)| self.qc.worst_case_questions(x, y))
            .sum()
    }

    /// Number of undecided items.
    pub fn undecided_items(&self) -> usize {
        self.points
            .iter()
            .filter(|&&(x, y)| !self.qc.is_decided(x, y))
            .count()
    }

    /// Record one answer for `item` (`true` = yes). Returns `Some(verdict)`
    /// when the item just got decided. Answers for decided items panic.
    pub fn record_answer(&mut self, item: usize, yes: bool) -> Option<bool> {
        let (x, y) = self.points[item];
        assert!(!self.qc.is_decided(x, y), "item {item} is already decided");
        let (x, y) = if yes { (x, y + 1) } else { (x + 1, y) };
        self.points[item] = (x, y);
        if self.qc.is_decided(x, y) {
            Some(y >= self.qc.threshold())
        } else {
            None
        }
    }

    /// Next undecided item to route a question to (lowest index first).
    pub fn next_undecided(&self) -> Option<usize> {
        self.points
            .iter()
            .position(|&(x, y)| !self.qc.is_decided(x, y))
    }

    /// Price to post at interval `t` given the current QC state: consult
    /// the deadline policy at `(N′, t)`.
    pub fn price(&self, t: usize) -> f64 {
        self.policy.price(self.remaining_questions(), t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::ActionSet;
    use crate::dp::solve_truncated;
    use crate::penalty::PenaltyModel;
    use crate::problem::DeadlineProblem;
    use ft_market::{LogitAcceptance, PriceGrid};

    #[test]
    fn majority_vote_worst_cases() {
        let qc = MajorityVoteQc::new(3);
        assert_eq!(qc.threshold(), 2);
        assert_eq!(qc.worst_case_questions(0, 0), 3);
        assert_eq!(qc.worst_case_questions(1, 1), 1);
        assert_eq!(qc.worst_case_questions(0, 1), 2);
        assert_eq!(qc.worst_case_questions(2, 0), 0); // decided
        assert!(qc.is_decided(0, 2));
        assert!(!qc.is_decided(1, 1));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_votes() {
        MajorityVoteQc::new(4);
    }

    #[test]
    fn continue_points_count() {
        // m=3, k+1=2: continue points are (0,0),(0,1),(1,0),(1,1) → 4.
        let qc = MajorityVoteQc::new(3);
        assert_eq!(qc.continue_points().len(), 4);
        // m=5: x,y < 3, x+y<5 → 9 points minus... all 3×3 satisfy x+y<5
        // except (2,2)? 2+2=4 < 5, so all 9.
        assert_eq!(MajorityVoteQc::new(5).continue_points().len(), 9);
    }

    fn session(n_items: usize) -> QcPricingSession {
        let qc = MajorityVoteQc::new(3);
        let n_prime = (n_items * 3) as u32;
        let problem = DeadlineProblem::new(
            n_prime,
            vec![50.0; 4],
            ActionSet::from_grid(PriceGrid::new(0, 15), &LogitAcceptance::new(4.0, 0.0, 30.0)),
            PenaltyModel::Linear { per_task: 300.0 },
        );
        let policy = solve_truncated(&problem, 1e-9).unwrap();
        QcPricingSession::new(qc, policy, n_items)
    }

    #[test]
    fn paper_example_state_arithmetic() {
        // The Section 6 worked example: 10 items, majority-of-3.
        // Start: N' = 30. After 5 items reach (1,1), 2 reach (2,0), 3 reach
        // (0,2): N' = 5·1 + 2·0 + 3·0 = 5.
        let mut s = session(10);
        assert_eq!(s.remaining_questions(), 30);
        for item in 0..5 {
            assert_eq!(s.record_answer(item, true), None);
            assert_eq!(s.record_answer(item, false), None);
        }
        for item in 5..7 {
            assert_eq!(s.record_answer(item, false), None);
            assert_eq!(s.record_answer(item, false), Some(false));
        }
        for item in 7..10 {
            assert_eq!(s.record_answer(item, true), None);
            assert_eq!(s.record_answer(item, true), Some(true));
        }
        assert_eq!(s.remaining_questions(), 5);
        assert_eq!(s.undecided_items(), 5);
    }

    #[test]
    fn deciding_everything_zeroes_questions() {
        let mut s = session(3);
        while let Some(i) = s.next_undecided() {
            s.record_answer(i, true);
        }
        assert_eq!(s.remaining_questions(), 0);
        assert_eq!(s.undecided_items(), 0);
    }

    #[test]
    fn price_decreases_as_work_shrinks() {
        // Fewer worst-case questions remaining → price can only stay or
        // drop (Conjecture 1 on the wrapped policy).
        let mut s = session(6);
        let p_start = s.price(0);
        for item in 0..6 {
            s.record_answer(item, true);
            s.record_answer(item, true);
        }
        let p_end = s.price(0);
        assert!(p_end <= p_start);
    }

    #[test]
    #[should_panic(expected = "already decided")]
    fn rejects_answers_for_decided_items() {
        let mut s = session(2);
        s.record_answer(0, true);
        s.record_answer(0, true); // decided now
        s.record_answer(0, true); // panics
    }
}
