//! Section 6: optimizing a linear combination of cost and latency,
//! `Q = E[cost] + α · E[latency]`, with neither a deadline nor a budget.
//!
//! Two formulations are implemented:
//!
//! - **Fixed-rate** (`λ(t) = λ`): decisions per *time interval*; the
//!   interval is short enough that at most one task completes. From the
//!   Bellman equation `Opt(n) = min_c [q·(Opt(n−1)+c+α) +
//!   (1−q)(Opt(n)+α)]` with `q(c) = e^{−λp(c)}·λp(c)` one solves
//!   `Opt(n) = min_c [Opt(n−1) + c + α/q(c)]`.
//! - **Worker-arrival** (linearity relaxation, Section 4.2.2): decisions
//!   per *worker arrival*; each arrival accepts with `p(c)`, latency is
//!   charged at `α/λ̄` per arrival, giving
//!   `Opt(n) = min_c [Opt(n−1) + c + (α/λ̄)/p(c)]`.
//!
//! Both are `O(N · C)`.

use crate::actions::ActionSet;
use crate::error::{PricingError, Result};
use serde::{Deserialize, Serialize};

/// A solved cost/latency tradeoff: per-remaining-count optimal prices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPolicy {
    /// `prices[n]` is the optimal reward with `n` tasks remaining
    /// (index 0 unused).
    pub prices: Vec<f64>,
    /// `opt[n]` = minimum expected objective from `n` remaining tasks.
    pub opt: Vec<f64>,
}

impl TradeoffPolicy {
    /// Objective value from the full batch.
    pub fn total(&self) -> f64 {
        *self.opt.last().expect("non-empty")
    }

    pub fn price(&self, n_remaining: u32) -> f64 {
        assert!(n_remaining >= 1 && (n_remaining as usize) < self.opt.len());
        self.prices[n_remaining as usize]
    }
}

fn solve_generic<F: Fn(f64) -> f64>(
    actions: &ActionSet,
    n_tasks: u32,
    per_task_increment: F,
) -> Result<TradeoffPolicy> {
    if n_tasks == 0 {
        return Err(PricingError::InvalidProblem("zero tasks".into()));
    }
    // Both formulations decompose: Opt(n) = Opt(n−1) + min_c inc(c), with
    // the same minimizer at every n. We still store per-n tables for API
    // uniformity (and because callers may inspect them).
    let mut best_inc = f64::INFINITY;
    let mut best_price = actions.get(0).reward;
    for a in actions.iter() {
        let inc = per_task_increment(a.reward);
        if inc < best_inc {
            best_inc = inc;
            best_price = a.reward;
        }
    }
    if !best_inc.is_finite() {
        return Err(PricingError::Infeasible(
            "every action has zero completion probability".into(),
        ));
    }
    let n = n_tasks as usize;
    let mut opt = vec![0.0f64; n + 1];
    let mut prices = vec![0.0f64; n + 1];
    for m in 1..=n {
        opt[m] = opt[m - 1] + best_inc;
        prices[m] = best_price;
    }
    Ok(TradeoffPolicy { prices, opt })
}

/// Fixed-rate formulation: `Opt(n) = min_c [Opt(n−1) + c + α/q(c)]` with
/// `q(c) = e^{−λ·p(c)} · λ·p(c)` (probability of exactly one completion per
/// interval). `lambda` is the expected arrivals per interval; the interval
/// should be short enough that `λ·p ≪ 1`.
pub fn solve_tradeoff_fixed_rate(
    actions: &ActionSet,
    n_tasks: u32,
    lambda: f64,
    alpha: f64,
) -> Result<TradeoffPolicy> {
    assert!(lambda > 0.0, "lambda must be positive");
    assert!(alpha >= 0.0, "alpha must be non-negative");
    solve_generic(actions, n_tasks, |c| {
        let idx = actions.index_of_reward(c).expect("own action");
        let lp = lambda * actions.get(idx).accept;
        let q = (-lp).exp() * lp;
        if q <= 0.0 {
            f64::INFINITY
        } else {
            c + alpha / q
        }
    })
}

/// Worker-arrival formulation:
/// `Opt(n) = min_c [Opt(n−1) + c + (α/λ̄)/p(c)]`.
pub fn solve_tradeoff_worker_arrival(
    actions: &ActionSet,
    n_tasks: u32,
    mean_rate: f64,
    alpha: f64,
) -> Result<TradeoffPolicy> {
    assert!(mean_rate > 0.0, "mean rate must be positive");
    assert!(alpha >= 0.0, "alpha must be non-negative");
    solve_generic(actions, n_tasks, |c| {
        let idx = actions.index_of_reward(c).expect("own action");
        let p = actions.get(idx).accept;
        if p <= 0.0 {
            f64::INFINITY
        } else {
            c + (alpha / mean_rate) / p
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_market::{LogitAcceptance, PriceGrid};

    fn actions() -> ActionSet {
        ActionSet::from_grid(PriceGrid::new(1, 30), &LogitAcceptance::new(5.0, 0.0, 50.0))
    }

    #[test]
    fn same_price_at_every_state() {
        // Both formulations have state-independent optimal prices (the
        // per-task increment doesn't depend on n).
        let a = actions();
        let p = solve_tradeoff_worker_arrival(&a, 10, 100.0, 50.0).unwrap();
        for m in 2..=10 {
            assert_eq!(p.price(m), p.price(1));
        }
        let q = solve_tradeoff_fixed_rate(&a, 10, 0.5, 50.0).unwrap();
        for m in 2..=10 {
            assert_eq!(q.price(m), q.price(1));
        }
    }

    #[test]
    fn total_is_linear_in_n() {
        let a = actions();
        let p5 = solve_tradeoff_worker_arrival(&a, 5, 100.0, 20.0).unwrap();
        let p10 = solve_tradeoff_worker_arrival(&a, 10, 100.0, 20.0).unwrap();
        assert!((p10.total() - 2.0 * p5.total()).abs() < 1e-9);
    }

    #[test]
    fn impatience_raises_price() {
        // Higher α (latency matters more) → pay more per task.
        let a = actions();
        let patient = solve_tradeoff_worker_arrival(&a, 5, 100.0, 1.0).unwrap();
        let impatient = solve_tradeoff_worker_arrival(&a, 5, 100.0, 10_000.0).unwrap();
        assert!(impatient.price(1) > patient.price(1));
    }

    #[test]
    fn zero_alpha_picks_cheapest_price() {
        // Without latency cost, the cheapest action wins outright.
        let a = actions();
        let p = solve_tradeoff_worker_arrival(&a, 3, 100.0, 0.0).unwrap();
        assert_eq!(p.price(1), a.min_reward());
    }

    #[test]
    fn hand_computed_increment() {
        // Two actions; verify the argmin arithmetic.
        use crate::actions::PriceAction;
        let a = ActionSet::new(vec![
            PriceAction {
                reward: 2.0,
                accept: 0.1,
            },
            PriceAction {
                reward: 10.0,
                accept: 0.5,
            },
        ]);
        // α/λ̄ = 1: inc(2) = 2 + 1/0.1 = 12; inc(10) = 10 + 2 = 12 → tie,
        // cheaper wins (scanned in reward order with strict <).
        let p = solve_tradeoff_worker_arrival(&a, 1, 1.0, 1.0).unwrap();
        assert_eq!(p.price(1), 2.0);
        assert!((p.total() - 12.0).abs() < 1e-12);
        // α/λ̄ = 2: inc(2) = 22, inc(10) = 14 → pick 10.
        let q = solve_tradeoff_worker_arrival(&a, 1, 1.0, 2.0).unwrap();
        assert_eq!(q.price(1), 10.0);
        assert!((q.total() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_rate_penalizes_congestion() {
        // In the fixed-rate form, q(c) = e^{−λp}λp decreases once λp > 1,
        // so cranking price past the congestion point stops helping.
        use crate::actions::PriceAction;
        let a = ActionSet::new(vec![
            PriceAction {
                reward: 5.0,
                accept: 0.2,
            }, // λp = 1 at λ=5
            PriceAction {
                reward: 25.0,
                accept: 0.9,
            }, // λp = 4.5: overshoot
        ]);
        let p = solve_tradeoff_fixed_rate(&a, 1, 5.0, 10.0).unwrap();
        // q(5¢) = e^{−1} ≈ 0.368 → inc = 5 + 27.2 = 32.2
        // q(25¢) = e^{−4.5}·4.5 ≈ 0.05 → inc = 25 + 200 = 225
        assert_eq!(p.price(1), 5.0);
    }
}
