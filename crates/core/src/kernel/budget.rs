//! The fixed-budget DPs (Section 4) as [`LayerModel`]s.
//!
//! Both budget solvers minimise `Σ 1/p(c_i)` over integer-cent price
//! assignments; they differ only in bookkeeping:
//!
//! - [`BudgetAssignModel`] is the Theorem 6 DP: `f(i, b)` = best value
//!   assigning the first `i` tasks with budget *at most* `b`, infeasible
//!   cells propagated as `+∞`.
//! - [`BudgetMdpModel`] is the Theorem 4 worker-arrival MDP: `V(n, b)` =
//!   expected remaining arrivals with `n` tasks and `b` cents left,
//!   feasibility pruned with the `(n−1)·c_min` reserve.
//!
//! Layers = task counts (forward induction), states = budget in cents,
//! decisions = *prices in cents* (`u32::MAX` = infeasible state).

use super::driver::LayerModel;
use crate::actions::ActionSet;
use crate::error::{PricingError, Result};

/// Integer-cent actions with positive acceptance, as `(price, 1/p)`
/// pairs — the validated action view both budget solvers share.
pub struct IntegerActions {
    pub acts: Vec<(usize, f64)>,
    pub c_min: usize,
}

impl IntegerActions {
    /// Validate and extract. `solver` names the caller in error messages.
    pub fn from_action_set(actions: &ActionSet, solver: &str) -> Result<Self> {
        let mut acts: Vec<(usize, f64)> = Vec::new();
        for a in actions.iter() {
            if a.accept <= 0.0 {
                continue;
            }
            let c = a.reward.round();
            if (a.reward - c).abs() > 1e-9 || c < 0.0 {
                return Err(PricingError::InvalidProblem(format!(
                    "{solver} needs integer cent rewards, got {}",
                    a.reward
                )));
            }
            acts.push((c as usize, 1.0 / a.accept));
        }
        if acts.is_empty() {
            return Err(PricingError::InvalidProblem(
                "no action with positive acceptance".into(),
            ));
        }
        let c_min = acts.iter().map(|&(c, _)| c).min().expect("non-empty");
        Ok(Self { acts, c_min })
    }

    /// Reject problems whose budget cannot cover `n` tasks at the
    /// cheapest price.
    pub fn check_feasible(&self, n_tasks: u32, b_max: usize) -> Result<()> {
        if self.c_min * n_tasks as usize > b_max {
            return Err(PricingError::Infeasible(format!(
                "budget {b_max} below N·c_min = {}",
                self.c_min * n_tasks as usize
            )));
        }
        Ok(())
    }
}

/// Theorem 6: assignment DP over (tasks assigned, budget spent ≤ b).
pub struct BudgetAssignModel<'a> {
    acts: &'a [(usize, f64)],
    n_tasks: usize,
    width: usize,
}

impl<'a> BudgetAssignModel<'a> {
    pub fn new(acts: &'a IntegerActions, n_tasks: u32, b_max: usize) -> Self {
        Self {
            acts: &acts.acts,
            n_tasks: n_tasks as usize,
            width: b_max + 1,
        }
    }
}

impl LayerModel for BudgetAssignModel<'_> {
    type Scratch = ();

    fn width(&self) -> usize {
        self.width
    }

    fn n_steps(&self) -> usize {
        self.n_tasks
    }

    fn n_actions(&self) -> usize {
        self.acts.len()
    }

    fn make_scratch(&self) {}

    fn terminal(&self, out: &mut [f64]) {
        out.fill(0.0); // zero tasks cost nothing at any budget
    }

    fn default_grain(&self) -> usize {
        // A budget cell is a bare O(C) scan (~40 flops), and the driver
        // spawns fresh scoped threads per layer: below a few thousand
        // cells the spawn/join cost rivals the layer's work, so stay
        // inline until the budget axis is genuinely wide.
        4096
    }

    fn solve_state(
        &self,
        _i: usize,
        b: usize,
        _a_lo: usize,
        _a_hi: usize,
        prev: &[f64],
        _scratch: &mut (),
    ) -> (f64, u32) {
        let mut best = f64::INFINITY;
        let mut choice = u32::MAX;
        for &(c, inv_p) in self.acts {
            if c > b {
                continue;
            }
            let prev_v = prev[b - c];
            if !prev_v.is_finite() {
                continue;
            }
            let v = prev_v + inv_p;
            if v < best {
                best = v;
                choice = c as u32;
            }
        }
        (best, choice)
    }
}

/// Theorem 4: the worker-arrival MDP over (remaining tasks, budget).
pub struct BudgetMdpModel<'a> {
    acts: &'a [(usize, f64)],
    c_min: usize,
    n_tasks: usize,
    width: usize,
}

impl<'a> BudgetMdpModel<'a> {
    pub fn new(acts: &'a IntegerActions, n_tasks: u32, b_max: usize) -> Self {
        Self {
            acts: &acts.acts,
            c_min: acts.c_min,
            n_tasks: n_tasks as usize,
            width: b_max + 1,
        }
    }
}

impl LayerModel for BudgetMdpModel<'_> {
    type Scratch = ();

    fn width(&self) -> usize {
        self.width
    }

    fn n_steps(&self) -> usize {
        self.n_tasks
    }

    fn n_actions(&self) -> usize {
        self.acts.len()
    }

    fn make_scratch(&self) {}

    fn terminal(&self, out: &mut [f64]) {
        out.fill(0.0); // V(0, b) = 0
    }

    fn default_grain(&self) -> usize {
        // Same spawn-amortisation reasoning as `BudgetAssignModel`.
        4096
    }

    fn solve_state(
        &self,
        m: usize,
        b: usize,
        _a_lo: usize,
        _a_hi: usize,
        prev: &[f64],
        _scratch: &mut (),
    ) -> (f64, u32) {
        let mut best = f64::INFINITY;
        let mut best_c = u32::MAX;
        // Feasibility: after paying c, the remaining m−1 tasks still
        // need (m−1)·c_min.
        for &(c, inv_p) in self.acts {
            if c + (m - 1) * self.c_min > b {
                continue;
            }
            let v = inv_p + prev[b - c];
            if v < best {
                best = v;
                best_c = c as u32;
            }
        }
        (best, best_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_market::{LogitAcceptance, PriceGrid};

    #[test]
    fn integer_actions_validation() {
        let acc = LogitAcceptance::new(4.0, 0.0, 20.0);
        let set = ActionSet::from_grid(PriceGrid::new(1, 5), &acc);
        let ia = IntegerActions::from_action_set(&set, "test").unwrap();
        assert_eq!(ia.acts.len(), 5);
        assert_eq!(ia.c_min, 1);
        assert!(ia.check_feasible(10, 10).is_ok());
        assert!(matches!(
            ia.check_feasible(10, 9),
            Err(PricingError::Infeasible(_))
        ));
    }

    #[test]
    fn fractional_rewards_rejected() {
        let set = ActionSet::new(vec![
            crate::actions::PriceAction {
                reward: 1.5,
                accept: 0.5,
            },
            crate::actions::PriceAction {
                reward: 2.0,
                accept: 0.6,
            },
        ]);
        assert!(matches!(
            IntegerActions::from_action_set(&set, "test"),
            Err(PricingError::InvalidProblem(_))
        ));
    }
}
