//! The fixed-budget DPs (Section 4) as [`LayerModel`]s.
//!
//! Both budget solvers minimise `Σ 1/p(c_i)` over integer-cent price
//! assignments; they differ only in bookkeeping:
//!
//! - [`BudgetAssignModel`] is the Theorem 6 DP: `f(i, b)` = best value
//!   assigning the first `i` tasks with budget *at most* `b`, infeasible
//!   cells propagated as `+∞`.
//! - [`BudgetMdpModel`] is the Theorem 4 worker-arrival MDP: `V(n, b)` =
//!   expected remaining arrivals with `n` tasks and `b` cents left,
//!   feasibility pruned with the `(n−1)·c_min` reserve.
//!
//! Layers = task counts (forward induction), states = budget in cents,
//! decisions = *prices in cents* (`u32::MAX` = infeasible state).

use super::driver::LayerModel;
use crate::actions::ActionSet;
use crate::error::{PricingError, Result};

/// Integer-cent actions with positive acceptance, as `(price, 1/p)`
/// pairs — the validated action view both budget solvers share.
pub struct IntegerActions {
    pub acts: Vec<(usize, f64)>,
    pub c_min: usize,
}

impl IntegerActions {
    /// Validate and extract. `solver` names the caller in error messages.
    pub fn from_action_set(actions: &ActionSet, solver: &str) -> Result<Self> {
        let mut acts: Vec<(usize, f64)> = Vec::new();
        for a in actions.iter() {
            if a.accept <= 0.0 {
                continue;
            }
            let c = a.reward.round();
            if (a.reward - c).abs() > 1e-9 || c < 0.0 {
                return Err(PricingError::InvalidProblem(format!(
                    "{solver} needs integer cent rewards, got {}",
                    a.reward
                )));
            }
            acts.push((c as usize, 1.0 / a.accept));
        }
        if acts.is_empty() {
            return Err(PricingError::InvalidProblem(
                "no action with positive acceptance".into(),
            ));
        }
        let c_min = acts.iter().map(|&(c, _)| c).min().expect("non-empty");
        Ok(Self { acts, c_min })
    }

    /// Reject problems whose budget cannot cover `n` tasks at the
    /// cheapest price.
    pub fn check_feasible(&self, n_tasks: u32, b_max: usize) -> Result<()> {
        if self.c_min * n_tasks as usize > b_max {
            return Err(PricingError::Infeasible(format!(
                "budget {b_max} below N·c_min = {}",
                self.c_min * n_tasks as usize
            )));
        }
        Ok(())
    }
}

/// Theorem 6: assignment DP over (tasks assigned, budget spent ≤ b).
pub struct BudgetAssignModel<'a> {
    acts: &'a [(usize, f64)],
    n_tasks: usize,
    width: usize,
}

impl<'a> BudgetAssignModel<'a> {
    pub fn new(acts: &'a IntegerActions, n_tasks: u32, b_max: usize) -> Self {
        Self {
            acts: &acts.acts,
            n_tasks: n_tasks as usize,
            width: b_max + 1,
        }
    }
}

impl LayerModel for BudgetAssignModel<'_> {
    type Scratch = ();

    fn width(&self) -> usize {
        self.width
    }

    fn n_steps(&self) -> usize {
        self.n_tasks
    }

    fn n_actions(&self) -> usize {
        self.acts.len()
    }

    fn make_scratch(&self) {}

    fn terminal(&self, out: &mut [f64]) {
        out.fill(0.0); // zero tasks cost nothing at any budget
    }

    fn default_grain(&self) -> usize {
        // A budget cell is a bare O(C) scan (~40 flops). With the
        // persistent `ft-exec` pool a layer dispatch costs on the order
        // of a queue push + wakeup (no thread spawn), so a few hundred
        // cells already amortise it — down from 4096 when every layer
        // paid a fresh spawn/join.
        512
    }

    fn solve_state(
        &self,
        _i: usize,
        b: usize,
        _a_lo: usize,
        _a_hi: usize,
        prev: &[f64],
        _scratch: &mut (),
    ) -> (f64, u32) {
        let mut best = f64::INFINITY;
        let mut choice = u32::MAX;
        for &(c, inv_p) in self.acts {
            if c > b {
                continue;
            }
            let prev_v = prev[b - c];
            if !prev_v.is_finite() {
                continue;
            }
            let v = prev_v + inv_p;
            if v < best {
                best = v;
                choice = c as u32;
            }
        }
        (best, choice)
    }
}

/// Theorem 4: the worker-arrival MDP over (remaining tasks, budget).
pub struct BudgetMdpModel<'a> {
    acts: &'a [(usize, f64)],
    c_min: usize,
    n_tasks: usize,
    width: usize,
}

impl<'a> BudgetMdpModel<'a> {
    pub fn new(acts: &'a IntegerActions, n_tasks: u32, b_max: usize) -> Self {
        Self {
            acts: &acts.acts,
            c_min: acts.c_min,
            n_tasks: n_tasks as usize,
            width: b_max + 1,
        }
    }
}

impl LayerModel for BudgetMdpModel<'_> {
    type Scratch = ();

    fn width(&self) -> usize {
        self.width
    }

    fn n_steps(&self) -> usize {
        self.n_tasks
    }

    fn n_actions(&self) -> usize {
        self.acts.len()
    }

    fn make_scratch(&self) {}

    fn terminal(&self, out: &mut [f64]) {
        out.fill(0.0); // V(0, b) = 0
    }

    fn default_grain(&self) -> usize {
        // Same pooled-dispatch amortisation as `BudgetAssignModel`.
        512
    }

    fn solve_state(
        &self,
        m: usize,
        b: usize,
        _a_lo: usize,
        _a_hi: usize,
        prev: &[f64],
        _scratch: &mut (),
    ) -> (f64, u32) {
        let mut best = f64::INFINITY;
        let mut best_c = u32::MAX;
        // Feasibility: after paying c, the remaining m−1 tasks still
        // need (m−1)·c_min.
        for &(c, inv_p) in self.acts {
            if c + (m - 1) * self.c_min > b {
                continue;
            }
            let v = inv_p + prev[b - c];
            if v < best {
                best = v;
                best_c = c as u32;
            }
        }
        (best, best_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_market::{LogitAcceptance, PriceGrid};

    #[test]
    fn integer_actions_validation() {
        let acc = LogitAcceptance::new(4.0, 0.0, 20.0);
        let set = ActionSet::from_grid(PriceGrid::new(1, 5), &acc);
        let ia = IntegerActions::from_action_set(&set, "test").unwrap();
        assert_eq!(ia.acts.len(), 5);
        assert_eq!(ia.c_min, 1);
        assert!(ia.check_feasible(10, 10).is_ok());
        assert!(matches!(
            ia.check_feasible(10, 9),
            Err(PricingError::Infeasible(_))
        ));
    }

    /// Now that the budget grain is low enough for real problems to fan
    /// out on the pool, the sweep must stay bitwise-identical to the
    /// serial baseline — for both budget models, at the default grain
    /// and at an aggressive one, for thread counts 1, 2, 4 and auto.
    #[test]
    fn budget_models_bitwise_invariant_to_threads_at_new_grain() {
        use super::super::driver::{run, Direction, KernelConfig, Sweep};
        let acc = LogitAcceptance::new(5.0, 0.0, 25.0);
        let set = ActionSet::from_grid(PriceGrid::new(1, 18), &acc);
        let ia = IntegerActions::from_action_set(&set, "test").unwrap();
        // Wide enough (width 2001 > 2 × 512) that the default grain
        // genuinely splits the layer into multiple chunks.
        let (n_tasks, b_max) = (12u32, 2000usize);
        let assign = BudgetAssignModel::new(&ia, n_tasks, b_max);
        let mdp = BudgetMdpModel::new(&ia, n_tasks, b_max);

        fn solve<M: super::LayerModel>(model: &M, cfg: &KernelConfig) -> (Vec<f64>, Vec<u32>) {
            let (v, p) = run(model, Sweep::Dense, Direction::Forward, cfg);
            (v.into_vec(), p.into_vec())
        }

        for (label, grain) in [("default", 0usize), ("fine", 64)] {
            let reference_assign = solve(&assign, &KernelConfig { threads: 1, grain });
            let reference_mdp = solve(&mdp, &KernelConfig { threads: 1, grain });
            for threads in [2usize, 4, 0] {
                let cfg = KernelConfig { threads, grain };
                let got_assign = solve(&assign, &cfg);
                let got_mdp = solve(&mdp, &cfg);
                for (reference, got, model) in [
                    (&reference_assign, &got_assign, "assign"),
                    (&reference_mdp, &got_mdp, "mdp"),
                ] {
                    assert_eq!(
                        reference.1, got.1,
                        "{model} decisions differ ({label} grain, {threads} threads)"
                    );
                    let reference_bits: Vec<u64> =
                        reference.0.iter().map(|v| v.to_bits()).collect();
                    let got_bits: Vec<u64> = got.0.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(
                        reference_bits, got_bits,
                        "{model} values not bitwise equal ({label} grain, {threads} threads)"
                    );
                }
            }
        }
    }

    #[test]
    fn fractional_rewards_rejected() {
        let set = ActionSet::new(vec![
            crate::actions::PriceAction {
                reward: 1.5,
                accept: 0.5,
            },
            crate::actions::PriceAction {
                reward: 2.0,
                accept: 0.6,
            },
        ]);
        assert!(matches!(
            IntegerActions::from_action_set(&set, "test"),
            Err(PricingError::InvalidProblem(_))
        ));
    }
}
