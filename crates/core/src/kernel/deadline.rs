//! The deadline MDP (Section 3) as a [`LayerModel`], plus the kernel
//! entry point the three deadline solvers share.

use super::driver::{run, Direction, KernelConfig, LayerModel, Sweep};
use super::transitions::{best_action, PmfCache, SharedPmfCache, TruncationTable};
use crate::dp::validate;
use crate::error::Result;
use crate::policy::DeadlinePolicy;
use crate::problem::DeadlineProblem;
use std::sync::Arc;

/// Layers = intervals (backward), states = remaining tasks, decisions =
/// action indices into `problem.actions`.
pub struct DeadlineDpModel<'a> {
    problem: &'a DeadlineProblem,
    trunc: &'a TruncationTable,
    /// Wave-scoped cross-solve pmf row cache (None = private rows).
    shared: Option<Arc<SharedPmfCache>>,
}

impl<'a> DeadlineDpModel<'a> {
    pub fn new(problem: &'a DeadlineProblem, trunc: &'a TruncationTable) -> Self {
        Self {
            problem,
            trunc,
            shared: None,
        }
    }

    /// Resolve per-worker pmf misses through `shared` — every worker's
    /// scratch cache consults (and feeds) the wave-wide row store.
    pub fn with_shared_cache(mut self, shared: Option<Arc<SharedPmfCache>>) -> Self {
        self.shared = shared;
        self
    }
}

impl LayerModel for DeadlineDpModel<'_> {
    /// Per-worker Poisson pmf rows, one per `(layer, action)` — shared by
    /// every state the worker sweeps instead of recomputed per
    /// `(state, action)`.
    type Scratch = PmfCache;

    fn width(&self) -> usize {
        self.problem.n_tasks as usize + 1
    }

    fn n_steps(&self) -> usize {
        self.problem.n_intervals()
    }

    fn n_actions(&self) -> usize {
        self.problem.actions.len()
    }

    fn make_scratch(&self) -> PmfCache {
        PmfCache::with_shared(self.problem.actions.len(), self.shared.clone())
    }

    fn terminal(&self, out: &mut [f64]) {
        for (m, v) in out.iter_mut().enumerate() {
            *v = self.problem.penalty.terminal_cost(m as u32);
        }
    }

    fn default_grain(&self) -> usize {
        // A deadline backup costs O(C · min(n, s₀)) pmf terms — expensive
        // enough that small chunks already amortise a spawn.
        8
    }

    fn solve_state(
        &self,
        t: usize,
        m: usize,
        a_lo: usize,
        a_hi: usize,
        prev: &[f64],
        cache: &mut PmfCache,
    ) -> (f64, u32) {
        if m == 0 {
            // Nothing left to price: cost 0, decision unused.
            return (0.0, 0);
        }
        let (best, best_q) = best_action(self.problem, self.trunc, t, m, a_lo, a_hi, prev, cache);
        (best_q, best as u32)
    }
}

/// Solve the deadline MDP on the kernel with an explicit truncation
/// table, sweep strategy and parallelism config — the single engine
/// behind [`crate::dp::solve_simple`], [`crate::dp::solve_truncated`] and
/// [`crate::dp::solve_efficient`].
pub fn solve_deadline(
    problem: &DeadlineProblem,
    trunc: &TruncationTable,
    sweep: Sweep,
    cfg: &KernelConfig,
) -> Result<DeadlinePolicy> {
    solve_deadline_with_cache(problem, trunc, sweep, cfg, None)
}

/// [`solve_deadline`] resolving pmf rows through an optional wave-wide
/// [`SharedPmfCache`]: rows a concurrent (or earlier) solve of the
/// same wave already built are reused instead of recomputed. Sharing
/// is bitwise-invisible — rows are pure functions of their key and
/// prefix-stable across lengths — so the policy is identical to the
/// uncached solve (see `shared_cache_solve_is_bitwise_identical`).
pub fn solve_deadline_with_cache(
    problem: &DeadlineProblem,
    trunc: &TruncationTable,
    sweep: Sweep,
    cfg: &KernelConfig,
    shared: Option<Arc<SharedPmfCache>>,
) -> Result<DeadlinePolicy> {
    validate(problem)?;
    let model = DeadlineDpModel::new(problem, trunc).with_shared_cache(shared);
    let (values, policy) = run(&model, sweep, Direction::Backward, cfg);
    Ok(DeadlinePolicy::new(
        problem.n_tasks,
        problem.n_intervals(),
        policy.into_vec(),
        values.into_vec(),
        problem.actions.clone(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::test_support::varied_problems;

    /// Solving through a shared pmf cache — including a warm cache fed
    /// by a previous solve — must be bitwise identical to the private
    /// solve, across sweep strategies and thread counts.
    #[test]
    fn shared_cache_solve_is_bitwise_identical() {
        for p in varied_problems() {
            let trunc = TruncationTable::with_eps(&p, 1e-9);
            let reference =
                solve_deadline(&p, &trunc, Sweep::Dense, &KernelConfig::serial()).unwrap();
            let shared = Arc::new(SharedPmfCache::new());
            for sweep in [Sweep::Dense, Sweep::MonotoneDivide] {
                for threads in [1, 2, 0] {
                    let cfg = KernelConfig { threads, grain: 2 };
                    let got = solve_deadline_with_cache(
                        &p,
                        &trunc,
                        sweep,
                        &cfg,
                        Some(Arc::clone(&shared)),
                    )
                    .unwrap();
                    for t in 0..p.n_intervals() {
                        for m in 1..=p.n_tasks {
                            assert_eq!(
                                reference.cost_to_go(m, t).to_bits(),
                                got.cost_to_go(m, t).to_bits(),
                                "shared-cache cost differs at (n={m}, t={t}), \
                                 sweep {sweep:?}, {threads} threads"
                            );
                            assert_eq!(
                                reference.action_index(m, t),
                                got.action_index(m, t),
                                "shared-cache action differs at (n={m}, t={t})"
                            );
                        }
                    }
                }
            }
            assert!(
                shared.hits() > 0,
                "repeated solves of one problem must hit the shared cache"
            );
        }
    }

    /// The kernel must be bitwise identical across sweep strategies and
    /// thread counts on the whole `varied_problems` family.
    #[test]
    fn kernel_invariant_to_threads_and_sweep() {
        for p in varied_problems() {
            let trunc = TruncationTable::with_eps(&p, 1e-9);
            let reference =
                solve_deadline(&p, &trunc, Sweep::Dense, &KernelConfig::serial()).unwrap();
            for sweep in [Sweep::Dense, Sweep::MonotoneDivide] {
                for threads in [1, 2, 4, 0] {
                    let cfg = KernelConfig { threads, grain: 2 };
                    let got = solve_deadline(&p, &trunc, sweep, &cfg).unwrap();
                    for t in 0..p.n_intervals() {
                        for m in 1..=p.n_tasks {
                            assert_eq!(
                                reference.action_index(m, t),
                                got.action_index(m, t),
                                "action mismatch at (n={m}, t={t}), sweep {sweep:?}, {threads} threads"
                            );
                            assert_eq!(
                                reference.cost_to_go(m, t).to_bits(),
                                got.cost_to_go(m, t).to_bits(),
                                "cost not bitwise equal at (n={m}, t={t}), sweep {sweep:?}, {threads} threads"
                            );
                        }
                    }
                }
            }
        }
    }
}
