//! The generic backward/forward induction driver.
//!
//! A [`LayerModel`] describes a layered DP: a terminal boundary row and a
//! per-state Bellman optimisation that reads only the previous layer.
//! [`run`] sweeps the layers in induction order and, within each layer,
//! computes the states with one of two strategies:
//!
//! - [`Sweep::Dense`]: every state scans its full action range
//!   (Algorithm 1 and the budget DPs). States are partitioned into
//!   contiguous chunks solved concurrently on the shared `ft-exec` pool.
//! - [`Sweep::MonotoneDivide`]: Algorithm 2's divide-and-conquer over the
//!   state axis, valid when the optimal action index is non-decreasing in
//!   the state (Conjecture 1). The midpoint state is solved first, then
//!   the two halves — whose action ranges are now bracketed — recurse as
//!   independent fork-join tasks.
//!
//! Both strategies compute each cell with exactly the serial operation
//! sequence, so results are identical for any thread count.

use super::table::{PolicyTable, ValueTable};

/// Tuning knobs for the kernel sweep. `Default` uses every available
/// core; `serial()` pins the sweep to one thread (useful inside an outer
/// parallel batch such as [`crate::service::PricingService`], and as the
/// baseline in the speedup benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelConfig {
    /// Worker threads for the state sweep; `0` = auto (`ft-exec` budget).
    pub threads: usize,
    /// Minimum states per chunk before the sweep fans out; `0` = use the
    /// model's default grain.
    pub grain: usize,
}

impl KernelConfig {
    /// Single-threaded sweep.
    pub fn serial() -> Self {
        Self {
            threads: 1,
            grain: 0,
        }
    }

    /// Sweep with exactly `n` worker threads.
    pub fn with_threads(n: usize) -> Self {
        Self {
            threads: n,
            grain: 0,
        }
    }
}

/// Which direction the induction proceeds through the layer axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Deadline MDP: terminal row is the *last* layer (`t = N_T`), and
    /// step `k` writes layer `t = N_T − 1 − k` reading `t + 1`.
    Backward,
    /// Budget DPs: terminal row is layer `0` (zero tasks assigned), and
    /// step `k` writes layer `k + 1` reading layer `k`.
    Forward,
}

/// Per-layer state-sweep strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sweep {
    /// Scan the full action range at every state (Algorithm 1).
    Dense,
    /// Algorithm 2: divide-and-conquer over states using action-index
    /// monotonicity (Conjecture 1) to shrink the scan ranges.
    MonotoneDivide,
}

/// A layered DP the kernel can drive.
///
/// `layer` arguments are *semantic* layer indices: the layer being
/// written (an interval index for the deadline MDP, a task count for the
/// budget DPs).
pub trait LayerModel: Sync {
    /// Per-thread scratch (e.g. a Poisson pmf buffer). Created once per
    /// worker, not per state.
    type Scratch: Send;

    /// States per layer.
    fn width(&self) -> usize;

    /// Number of induction steps (= layers beyond the terminal row).
    fn n_steps(&self) -> usize;

    /// Size of the action space (for full-range dense sweeps).
    fn n_actions(&self) -> usize;

    fn make_scratch(&self) -> Self::Scratch;

    /// Fill the terminal boundary row.
    fn terminal(&self, out: &mut [f64]);

    /// Minimum states per parallel chunk when the caller doesn't specify
    /// a grain: cheap cells (budget DPs) want big chunks, expensive cells
    /// (deadline backups) amortise a spawn much sooner.
    fn default_grain(&self) -> usize {
        64
    }

    /// Solve one state: return the optimal `(value, decision)` at
    /// `(layer, state)` given the previous layer's values, considering
    /// only actions in `[a_lo, a_hi]` (dense sweeps pass the full range).
    fn solve_state(
        &self,
        layer: usize,
        state: usize,
        a_lo: usize,
        a_hi: usize,
        prev: &[f64],
        scratch: &mut Self::Scratch,
    ) -> (f64, u32);
}

/// Run the induction. Returns the full value table (`n_steps + 1` layers
/// including the terminal row) and the per-step policy table (`n_steps`
/// layers, in the same semantic-layer order as the value table's
/// non-terminal layers).
pub fn run<M: LayerModel>(
    model: &M,
    sweep: Sweep,
    direction: Direction,
    cfg: &KernelConfig,
) -> (ValueTable, PolicyTable) {
    let steps = model.n_steps();
    let width = model.width();
    let grain = if cfg.grain == 0 {
        model.default_grain()
    } else {
        cfg.grain
    };
    let threads = ft_exec::resolve_threads(cfg.threads);

    let mut values = ValueTable::new(steps + 1, width);
    let mut policy = PolicyTable::new(steps.max(1), width, 0);

    let terminal_row = match direction {
        Direction::Backward => steps,
        Direction::Forward => 0,
    };
    model.terminal(values.row_mut(terminal_row));

    for k in 0..steps {
        let _layer = ft_trace::span("core.kernel.induct_layer");
        // `write` is both the value-table row and the semantic layer
        // index; `policy_row` keeps policies dense in 0..steps.
        let (write, read, policy_row) = match direction {
            Direction::Backward => (steps - 1 - k, steps - k, steps - 1 - k),
            Direction::Forward => (k + 1, k, k),
        };
        let (cur, prev) = values.split_rows(write, read);
        let decisions = policy.row_mut(policy_row);
        let _sweep = ft_trace::span("core.kernel.sweep");
        match sweep {
            Sweep::Dense => dense_sweep(model, write, cur, decisions, prev, grain, threads),
            Sweep::MonotoneDivide => {
                monotone_sweep(model, write, cur, decisions, prev, grain, threads)
            }
        }
    }
    (values, policy)
}

fn dense_sweep<M: LayerModel>(
    model: &M,
    layer: usize,
    cur: &mut [f64],
    decisions: &mut [u32],
    prev: &[f64],
    grain: usize,
    threads: usize,
) {
    let a_hi = model.n_actions() - 1;
    ft_exec::par_chunks2_mut(cur, decisions, grain, threads, |start, vals, decs| {
        let mut scratch = model.make_scratch();
        for j in 0..vals.len() {
            let (v, d) = model.solve_state(layer, start + j, 0, a_hi, prev, &mut scratch);
            vals[j] = v;
            decs[j] = d;
        }
    });
}

fn monotone_sweep<M: LayerModel>(
    model: &M,
    layer: usize,
    cur: &mut [f64],
    decisions: &mut [u32],
    prev: &[f64],
    grain: usize,
    threads: usize,
) {
    // State 0 sits outside the monotone recursion (it's the "done"
    // state for the deadline MDP); solve it directly.
    let mut scratch = model.make_scratch();
    let (v0, d0) = model.solve_state(layer, 0, 0, model.n_actions() - 1, prev, &mut scratch);
    cur[0] = v0;
    decisions[0] = d0;
    if cur.len() == 1 {
        return;
    }
    // Fork-join depth budget: each split doubles the live tasks, so
    // floor(log2(threads)) levels saturate the pool; one thread means
    // zero splits (the serial baseline must never spawn).
    let max_depth = threads.max(1).ilog2();
    ft_exec::region(|| {
        divide(
            model,
            layer,
            1,
            cur.len() - 1,
            0,
            model.n_actions() - 1,
            &mut cur[1..],
            &mut decisions[1..],
            1,
            prev,
            grain,
            0,
            max_depth,
            &mut scratch,
        )
    });
}

/// `FindOptimalPriceForTime(t, l, r, a_lo, a_hi)` from Algorithm 2, with
/// the two half-recursions run as a fork-join pair while the segment is
/// large and the depth budget allows.
///
/// `vals`/`decs` cover absolute states `[base, base + len)`.
#[allow(clippy::too_many_arguments)]
fn divide<M: LayerModel>(
    model: &M,
    layer: usize,
    l: usize,
    r: usize,
    a_lo: usize,
    a_hi: usize,
    vals: &mut [f64],
    decs: &mut [u32],
    base: usize,
    prev: &[f64],
    grain: usize,
    depth: u32,
    max_depth: u32,
    scratch: &mut M::Scratch,
) {
    if l > r {
        return;
    }
    let m = l + (r - l) / 2;
    let (v, d) = model.solve_state(layer, m, a_lo, a_hi, prev, scratch);
    vals[m - base] = v;
    decs[m - base] = d;
    let best = d as usize;

    let go_parallel = depth < max_depth && r - l + 1 >= 2 * grain.max(2);
    if go_parallel {
        let (lv, rv_t) = vals.split_at_mut(m - base);
        let rv = &mut rv_t[1..];
        let (ld, rd_t) = decs.split_at_mut(m - base);
        let rd = &mut rd_t[1..];
        ft_exec::join(
            move || {
                if l < m {
                    let mut s = model.make_scratch();
                    divide(
                        model,
                        layer,
                        l,
                        m - 1,
                        a_lo,
                        best,
                        lv,
                        ld,
                        base,
                        prev,
                        grain,
                        depth + 1,
                        max_depth,
                        &mut s,
                    );
                }
            },
            move || {
                if m < r {
                    let mut s = model.make_scratch();
                    divide(
                        model,
                        layer,
                        m + 1,
                        r,
                        best,
                        a_hi,
                        rv,
                        rd,
                        m + 1,
                        prev,
                        grain,
                        depth + 1,
                        max_depth,
                        &mut s,
                    );
                }
            },
        );
    } else {
        if l < m {
            divide(
                model,
                layer,
                l,
                m - 1,
                a_lo,
                best,
                vals,
                decs,
                base,
                prev,
                grain,
                depth,
                max_depth,
                scratch,
            );
        }
        if m < r {
            divide(
                model,
                layer,
                m + 1,
                r,
                best,
                a_hi,
                vals,
                decs,
                base,
                prev,
                grain,
                depth,
                max_depth,
                scratch,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model with a closed form: minimise `|state − action·layer|`
    /// plus the previous layer's value at the same state. The optimal
    /// action index is non-decreasing in the state, so both sweeps must
    /// agree.
    struct Toy {
        width: usize,
        steps: usize,
        n_actions: usize,
    }

    impl LayerModel for Toy {
        type Scratch = ();

        fn width(&self) -> usize {
            self.width
        }

        fn n_steps(&self) -> usize {
            self.steps
        }

        fn n_actions(&self) -> usize {
            self.n_actions
        }

        fn make_scratch(&self) {}

        fn terminal(&self, out: &mut [f64]) {
            for (s, v) in out.iter_mut().enumerate() {
                *v = s as f64;
            }
        }

        fn default_grain(&self) -> usize {
            4
        }

        fn solve_state(
            &self,
            layer: usize,
            state: usize,
            a_lo: usize,
            a_hi: usize,
            prev: &[f64],
            _scratch: &mut (),
        ) -> (f64, u32) {
            let mut best_a = a_lo;
            let mut best_v = f64::INFINITY;
            for a in a_lo..=a_hi {
                let v = (state as f64 - a as f64 * (layer as f64 + 1.0)).abs() + prev[state];
                if v < best_v {
                    best_v = v;
                    best_a = a;
                }
            }
            (best_v, best_a as u32)
        }
    }

    fn run_all(cfg: &KernelConfig) -> Vec<(Vec<f64>, Vec<u32>)> {
        let toy = Toy {
            width: 57,
            steps: 5,
            n_actions: 9,
        };
        [Sweep::Dense, Sweep::MonotoneDivide]
            .into_iter()
            .flat_map(|sweep| {
                [Direction::Backward, Direction::Forward]
                    .into_iter()
                    .map(move |dir| (sweep, dir))
            })
            .map(|(sweep, dir)| {
                let (v, p) = run(&toy, sweep, dir, cfg);
                (v.into_vec(), p.into_vec())
            })
            .collect()
    }

    #[test]
    fn sweeps_and_thread_counts_agree_exactly() {
        let serial = run_all(&KernelConfig::serial());
        for threads in [2, 4, 8] {
            let parallel = run_all(&KernelConfig::with_threads(threads));
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.0, p.0, "values differ at {threads} threads");
                assert_eq!(s.1, p.1, "decisions differ at {threads} threads");
            }
        }
        // Dense and monotone agree on this monotone-optimal toy
        // (run_all order: (dense, bwd), (dense, fwd), (mono, bwd), (mono, fwd)).
        assert_eq!(serial[0], serial[2], "backward dense vs monotone");
        assert_eq!(serial[1], serial[3], "forward dense vs monotone");
    }

    #[test]
    fn directions_place_terminal_row_correctly() {
        let toy = Toy {
            width: 4,
            steps: 2,
            n_actions: 2,
        };
        let (vb, _) = run(
            &toy,
            Sweep::Dense,
            Direction::Backward,
            &KernelConfig::serial(),
        );
        assert_eq!(vb.row(2), &[0.0, 1.0, 2.0, 3.0]);
        let (vf, _) = run(
            &toy,
            Sweep::Dense,
            Direction::Forward,
            &KernelConfig::serial(),
        );
        assert_eq!(vf.row(0), &[0.0, 1.0, 2.0, 3.0]);
    }
}
