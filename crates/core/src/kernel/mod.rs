//! The shared solver kernel: one parallel backward-induction engine for
//! every DP in the paper.
//!
//! Before this module existed, the five solvers (`dp::solve_simple`,
//! `dp::solve_truncated`, `dp::solve_efficient`,
//! `budget::solve_budget_exact`, `budget::solve_budget_mdp`) each
//! hand-rolled the same three ingredients: a flat value table over a
//! `(state, layer)` grid, Poisson/feasibility transition machinery with
//! per-solver scratch buffers, and a layer-by-layer induction loop. The
//! kernel factors those out:
//!
//! - [`table`]: the [`ValueTable`] / [`PolicyTable`] arenas — flat,
//!   row-major, sized once up front.
//! - [`transitions`]: the [`TruncationTable`] (Section 3.2 / Table 1
//!   truncation points) and the shared Bellman backup [`q_value`].
//! - [`driver`]: the [`LayerModel`] trait plus [`run`], the induction
//!   driver. Each layer's states are independent given the previous
//!   layer, so the driver sweeps them in parallel (`ft-exec`) either
//!   densely (Algorithm 1) or by monotone divide-and-conquer
//!   (Algorithm 2 / Conjecture 1).
//! - [`deadline`] / [`budget`]: the concrete models the five public
//!   solvers plug in.
//!
//! Parallel sweeps partition states into contiguous chunks whose cells
//! are computed with exactly the same floating-point operations as the
//! serial loop, so policies are bitwise identical for any thread count —
//! the cross-solver agreement tests in `tests/props.rs` rely on this.

pub mod budget;
pub mod deadline;
pub mod driver;
pub mod table;
pub mod transitions;

pub use driver::{run, Direction, KernelConfig, LayerModel, Sweep};
pub use table::{PolicyTable, ValueTable};
pub use transitions::{q_value, PmfCache, PmfRow, SharedPmfCache, TruncationTable};
