//! Flat value/policy arenas shared by every solver.
//!
//! A DP over a `(layer, state)` grid stores its cost-to-go values in one
//! contiguous `Vec<f64>` and its decisions in one contiguous `Vec<u32>`,
//! row-major by layer. The deadline MDP uses layers = intervals and
//! states = remaining tasks; the budget DPs use layers = tasks and
//! states = remaining budget. Both end up as plain slices the induction
//! driver can chunk across threads.

/// Cost-to-go values on a `(layer, state)` grid, row-major by layer.
#[derive(Debug, Clone)]
pub struct ValueTable {
    width: usize,
    layers: usize,
    data: Vec<f64>,
}

impl ValueTable {
    /// Zero-initialised table with `layers` rows of `width` states.
    pub fn new(layers: usize, width: usize) -> Self {
        assert!(layers > 0 && width > 0, "empty table");
        Self {
            width,
            layers,
            data: vec![0.0; layers * width],
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn layers(&self) -> usize {
        self.layers
    }

    pub fn row(&self, layer: usize) -> &[f64] {
        debug_assert!(layer < self.layers);
        &self.data[layer * self.width..(layer + 1) * self.width]
    }

    pub fn row_mut(&mut self, layer: usize) -> &mut [f64] {
        debug_assert!(layer < self.layers);
        &mut self.data[layer * self.width..(layer + 1) * self.width]
    }

    /// Borrow one row mutably (to write) and another immutably (to read)
    /// — the two rows touched by one induction step.
    pub fn split_rows(&mut self, write: usize, read: usize) -> (&mut [f64], &[f64]) {
        assert!(write != read, "cannot write the row being read");
        assert!(write < self.layers && read < self.layers);
        let w = self.width;
        if write < read {
            let (head, tail) = self.data.split_at_mut(read * w);
            (&mut head[write * w..(write + 1) * w], &tail[..w])
        } else {
            let (head, tail) = self.data.split_at_mut(write * w);
            (&mut tail[..w], &head[read * w..(read + 1) * w])
        }
    }

    /// The flat backing storage (row-major by layer).
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

/// Per-layer decisions on the same grid. The meaning of the stored `u32`
/// is the model's: the deadline model stores action *indices*, the
/// budget models store *prices in cents* (`u32::MAX` = infeasible).
#[derive(Debug, Clone)]
pub struct PolicyTable {
    width: usize,
    data: Vec<u32>,
}

impl PolicyTable {
    /// Table of `layers` rows, all cells initialised to `fill`.
    pub fn new(layers: usize, width: usize, fill: u32) -> Self {
        assert!(layers > 0 && width > 0, "empty table");
        Self {
            width,
            data: vec![fill; layers * width],
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn row_mut(&mut self, layer: usize) -> &mut [u32] {
        &mut self.data[layer * self.width..(layer + 1) * self.width]
    }

    pub fn row(&self, layer: usize) -> &[u32] {
        &self.data[layer * self.width..(layer + 1) * self.width]
    }

    pub fn into_vec(self) -> Vec<u32> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_rows_borrows_disjoint_rows() {
        let mut t = ValueTable::new(4, 3);
        t.row_mut(2).copy_from_slice(&[7.0, 8.0, 9.0]);
        {
            let (w, r) = t.split_rows(1, 2);
            assert_eq!(r, &[7.0, 8.0, 9.0]);
            w.copy_from_slice(&[1.0, 2.0, 3.0]);
        }
        {
            // Opposite order (forward induction).
            let (w, r) = t.split_rows(2, 1);
            assert_eq!(r, &[1.0, 2.0, 3.0]);
            w[0] = 42.0;
        }
        assert_eq!(t.row(2)[0], 42.0);
        assert_eq!(t.into_vec().len(), 12);
    }

    #[test]
    #[should_panic(expected = "cannot write")]
    fn split_rows_rejects_same_row() {
        let mut t = ValueTable::new(2, 2);
        let _ = t.split_rows(1, 1);
    }

    #[test]
    fn policy_table_fill_and_rows() {
        let mut p = PolicyTable::new(2, 3, u32::MAX);
        assert!(p.row(1).iter().all(|&x| x == u32::MAX));
        p.row_mut(0)[1] = 5;
        assert_eq!(p.into_vec()[1], 5);
    }
}
