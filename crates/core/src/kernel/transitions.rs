//! The shared Bellman backup of the deadline MDP and its Poisson
//! transition machinery (moved here from `dp::backup` so every solver —
//! and the service layer — reuses one implementation).
//!
//! At state `(n, t)` with action reward `c` and acceptance `p`, completions
//! in the interval follow `X ~ Pois(λ_t · p)` (Eq. 5):
//!
//! `Q(n, t, c) = Σ_{s<n} Pr[X=s]·(s·c + Opt(n−s, t+1))
//!             + Pr[X≥n]·(n·c + Opt(0, t+1))`
//!
//! With truncation at `s₀` (Section 3.2), individual terms with `s > s₀`
//! are dropped, and the collapsed `X ≥ n` tail is dropped when `n > s₀`.

use crate::actions::PriceAction;
use crate::problem::DeadlineProblem;
use ft_stats::Poisson;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-`(interval, action)` truncation points `s₀` for a given ε
/// (`usize::MAX` rows mean "no truncation").
///
/// This is the kernel's transition cache: the truncation points (and the
/// Poisson means they were derived from) are computed once per problem
/// and shared read-only across every worker thread of the sweep.
#[derive(Debug, Clone)]
pub struct TruncationTable {
    /// `s0[t * n_actions + a]`.
    s0: Vec<usize>,
    n_actions: usize,
}

impl TruncationTable {
    /// No truncation: the simple Algorithm 1 behavior.
    pub fn none(problem: &DeadlineProblem) -> Self {
        Self {
            s0: vec![usize::MAX; problem.n_intervals() * problem.actions.len()],
            n_actions: problem.actions.len(),
        }
    }

    /// Truncation at tail mass `eps` (Table 1 semantics): the per-cell `s₀`
    /// is the smallest `s` with `Pr[Pois(λ_t p_a) ≥ s] ≤ eps`.
    pub fn with_eps(problem: &DeadlineProblem, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        let _span = ft_trace::span("core.kernel.build_rows");
        let n_actions = problem.actions.len();
        let mut s0 = Vec::with_capacity(problem.n_intervals() * n_actions);
        for &lam in &problem.interval_arrivals {
            for a in problem.actions.iter() {
                let mean = lam * a.accept;
                s0.push(Poisson::new(mean).truncation_point(eps) as usize);
            }
        }
        Self { s0, n_actions }
    }

    #[inline]
    pub fn get(&self, t: usize, action: usize) -> usize {
        self.s0[t * self.n_actions + action]
    }
}

/// One Poisson pmf row for a `(interval, action)` pair, shared by every
/// state of a layer sweep, in a **SIMD-friendly contiguous layout**:
/// one allocation holding three equal segments `[pmf | weighted | head]`
/// where `pmf[s] = Pr[X = s]`, `weighted[s] = s · pmf[s]` (the paid-
/// completions factor, precomputed so the backup's inner loop carries
/// no per-term `usize → f64` convert), and the running head
/// `head[s] = Σ_{u ≤ s} pmf[u]` accumulated left-to-right in exactly
/// the order [`Poisson::pmf_prefix`] accumulates its return value — so
/// a backup read off this row is bitwise identical to one that called
/// `pmf_prefix` on its own short buffer.
///
/// The inner loop over this row is two independent unit-stride products
/// per term (`weighted[s]·c` and `pmf[s]·opt_next[n−s]`) feeding one
/// accumulator add; the accumulation order itself stays serial because
/// the kernel's bitwise-determinism contract forbids reassociating the
/// sum.
#[derive(Debug, Clone)]
pub struct PmfRow {
    /// `[pmf | weighted | head]`, each `len` long.
    buf: Vec<f64>,
    len: usize,
}

impl PmfRow {
    /// Entries per segment (how long a prefix this row can serve).
    #[cfg(test)]
    pub(crate) fn entries(&self) -> usize {
        self.len
    }

    fn build(lam_t: f64, accept: f64, len: usize) -> Self {
        let mut buf = vec![0.0; 3 * len];
        let (pmf, rest) = buf.split_at_mut(len);
        Poisson::new(lam_t * accept).pmf_prefix(pmf);
        let (weighted, head) = rest.split_at_mut(len);
        let mut total = 0.0;
        for (s, &p) in pmf.iter().enumerate() {
            weighted[s] = s as f64 * p;
            total += p;
            head[s] = total;
        }
        Self { buf, len }
    }

    #[inline]
    fn pmf(&self) -> &[f64] {
        &self.buf[..self.len]
    }

    #[inline]
    fn weighted(&self) -> &[f64] {
        &self.buf[self.len..2 * self.len]
    }

    #[inline]
    fn head(&self) -> &[f64] {
        &self.buf[2 * self.len..]
    }
}

/// A cross-solve [`PmfRow`] store, shared by every solve of a
/// scheduler *wave* (see `crate::scheduler`). A pmf row is a pure
/// function of `(λ_t · dt-folded arrival, acceptance)` — the per-layer
/// mean of the completion Poisson — so concurrent recalibrations
/// across campaigns that price the same arrival regime rebuild
/// byte-identical rows N times. This cache keys rows by the exact
/// **bit patterns** `(λ_t.to_bits(), accept.to_bits())` and serves the
/// longest row built so far: `PmfRow::build` fills its segments
/// left-to-right with a prefix-stable recurrence, so a longer row's
/// `pmf`/`weighted`/`head` prefixes are bitwise identical to any
/// shorter build — a shared row can serve every truncation length up
/// to its own without perturbing a single bit of any solve (the
/// determinism contract `cached_rows_match_q_value_bitwise` pins).
///
/// Hits and lookups are counted so the recalibration-storm bench (and
/// the `ft_core_pmf_cache_hits_total` counter) can report the
/// redundancy actually eliminated. Entry count is bounded; on
/// overflow the map is cleared wholesale — correctness never depends
/// on a row being present.
#[derive(Default)]
pub struct SharedPmfCache {
    rows: Mutex<HashMap<(u64, u64), Arc<PmfRow>>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    /// Optional mirror of `hits` onto the embedder's metrics plane
    /// (`ft_core_pmf_cache_hits_total`, resolved by the registry's
    /// telemetry and installed by the scheduler).
    hit_counter: Option<Arc<ft_metrics::Counter>>,
}

impl std::fmt::Debug for SharedPmfCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPmfCache")
            .field("lookups", &self.lookups())
            .field("hits", &self.hits())
            .finish_non_exhaustive()
    }
}

/// Overflow bound on distinct `(λ, accept)` rows per shared cache.
const SHARED_PMF_MAX_ENTRIES: usize = 4096;

impl SharedPmfCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache that also bumps `counter` on every hit (the scheduler
    /// threads `ft_core_pmf_cache_hits_total` through here).
    pub fn with_hit_counter(counter: Arc<ft_metrics::Counter>) -> Self {
        Self {
            hit_counter: Some(counter),
            ..Self::default()
        }
    }

    /// Row lookups served from a previously built row.
    pub fn hits(&self) -> u64 {
        // ORDERING: Relaxed — monotonic statistic, staleness is fine.
        self.hits.load(Ordering::Relaxed)
    }

    /// Total row lookups (hits + builds).
    pub fn lookups(&self) -> u64 {
        // ORDERING: Relaxed — monotonic statistic, staleness is fine.
        self.lookups.load(Ordering::Relaxed)
    }

    /// The row for Poisson mean `lam_t · accept` with at least `len`
    /// entries: served shared when one is cached, built (and published
    /// for the rest of the wave) otherwise.
    fn get_or_build(&self, lam_t: f64, accept: f64, len: usize) -> Arc<PmfRow> {
        // ORDERING: Relaxed — monotonic statistic.
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let key = (lam_t.to_bits(), accept.to_bits());
        {
            let rows = self.rows.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(row) = rows.get(&key) {
                if row.len >= len {
                    // ORDERING: Relaxed — monotonic statistic.
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(c) = &self.hit_counter {
                        c.inc();
                    }
                    return Arc::clone(row);
                }
            }
        }
        // Build outside the lock — a pmf build is the expensive part,
        // and concurrent workers building different keys must not
        // serialize on the map.
        let built = Arc::new(PmfRow::build(lam_t, accept, len));
        let mut rows = self.rows.lock().unwrap_or_else(|e| e.into_inner());
        match rows.get(&key) {
            // A racing worker published an even longer row meanwhile;
            // serve that one and drop ours (not counted as a hit — we
            // paid for the build).
            Some(existing) if existing.len >= len => Arc::clone(existing),
            _ => {
                if rows.len() >= SHARED_PMF_MAX_ENTRIES {
                    rows.clear();
                }
                rows.insert(key, Arc::clone(&built));
                built
            }
        }
    }
}

/// Per-worker cache of [`PmfRow`]s for the layer being swept, indexed by
/// action. Dense deadline sweeps historically recomputed the pmf prefix
/// per `(state, action)`; with the cache each worker computes it once per
/// `(layer, action)` and every state of its chunk reads the shared row —
/// an O(states) → O(1) cut in pmf work per action (ROADMAP open item).
///
/// Rows are `Arc`s so they can come from (and be published to) an
/// optional [`SharedPmfCache`] spanning a whole scheduler wave of
/// solves; without one the cache behaves exactly as before, building
/// rows privately.
///
/// The kernel creates scratch fresh for every layer sweep, but the cache
/// still tags rows with the layer that built them and invalidates on
/// mismatch, so a future scratch-reuse change cannot serve stale rows.
#[derive(Debug, Clone)]
pub struct PmfCache {
    layer: usize,
    rows: Vec<Option<Arc<PmfRow>>>,
    shared: Option<Arc<SharedPmfCache>>,
}

impl PmfCache {
    pub fn new(n_actions: usize) -> Self {
        Self {
            layer: usize::MAX,
            rows: vec![None; n_actions],
            shared: None,
        }
    }

    /// A per-worker cache that resolves misses through `shared` (when
    /// given) before building locally.
    pub fn with_shared(n_actions: usize, shared: Option<Arc<SharedPmfCache>>) -> Self {
        Self {
            layer: usize::MAX,
            rows: vec![None; n_actions],
            shared,
        }
    }

    /// The pmf row for `(t, action)`, built on first use with `len`
    /// entries (callers pass the longest prefix any state of the layer
    /// can need, `min(max_state − 1, s0) + 1`).
    fn row(&mut self, t: usize, action: usize, lam_t: f64, accept: f64, len: usize) -> &PmfRow {
        if self.layer != t {
            self.layer = t;
            self.rows.iter_mut().for_each(|r| *r = None);
        }
        let slot = &mut self.rows[action];
        if slot.as_ref().is_none_or(|r| r.len < len) {
            *slot = Some(match &self.shared {
                Some(shared) => shared.get_or_build(lam_t, accept, len),
                None => Arc::new(PmfRow::build(lam_t, accept, len)),
            });
        }
        slot.as_ref().unwrap()
    }
}

/// [`q_value`] read off a shared [`PmfRow`] instead of a freshly filled
/// buffer. Same operation sequence per term, so results are bitwise
/// identical (asserted by `cached_rows_match_q_value_bitwise`).
fn q_value_from_row(c: f64, n: usize, opt_next: &[f64], s0: usize, row: &PmfRow) -> f64 {
    debug_assert!(n >= 1, "backup needs at least one remaining task");
    debug_assert!(opt_next.len() > n, "opt row too short");
    let k = (n - 1).min(s0);
    debug_assert!(row.len > k, "pmf row too short");
    let pmf = &row.pmf()[..=k];
    let weighted = &row.weighted()[..=k];
    let mut q = 0.0;
    // Two unit-stride product streams (the reward stream reads the
    // precomputed `s·pmf[s]`, so no int→float convert in the loop) and
    // one serial accumulator — the order [`q_value`] also uses.
    for s in 0..=k {
        q += weighted[s] * c + pmf[s] * opt_next[n - s];
    }
    if n <= s0 {
        let tail = (1.0 - row.head()[k]).max(0.0);
        q += tail * (n as f64 * c + opt_next[0]);
    }
    q
}

/// Compute `Q(n, t, action)` given the next interval's cost-to-go row
/// `opt_next` (indexed by remaining tasks) and a scratch pmf buffer of
/// length ≥ `n`.
///
/// `s0` is the truncation point (use `usize::MAX` for the exact backup).
pub fn q_value(
    lam_t: f64,
    action: PriceAction,
    n: usize,
    opt_next: &[f64],
    s0: usize,
    pmf_buf: &mut [f64],
) -> f64 {
    debug_assert!(n >= 1, "backup needs at least one remaining task");
    debug_assert!(opt_next.len() > n, "opt row too short");
    debug_assert!(pmf_buf.len() >= n, "pmf buffer too short");
    let c = action.reward;
    let pois = Poisson::new(lam_t * action.accept);
    // Partial-completion terms s = 0..=min(n−1, s0), in the exact
    // operation order of [`q_value_from_row`] (`(s·pr)·c + pr·opt`,
    // f64 multiplication being bitwise-commutative) so the two paths
    // stay bit-identical (`cached_rows_match_q_value_bitwise`).
    let k = (n - 1).min(s0);
    let head = pois.pmf_prefix(&mut pmf_buf[..=k]);
    let mut q = 0.0;
    for (s, &pr) in pmf_buf[..=k].iter().enumerate() {
        q += (s as f64 * pr) * c + pr * opt_next[n - s];
    }
    // Collapsed completion tail Pr[X ≥ n], kept only while n ≤ s0.
    if n <= s0 {
        let tail = (1.0 - head).max(0.0);
        q += tail * (n as f64 * c + opt_next[0]);
    }
    q
}

/// Scan all actions for the best (lowest-Q) one at `(n, t)`, restricted to
/// action indices `[a_lo, a_hi]`. Ties break toward the cheaper action.
/// Returns `(best_action_index, best_q)`.
///
/// Pmf rows come from the per-worker `cache`, so the Poisson prefix for a
/// given `(t, a)` is computed once per worker and shared by every state
/// it sweeps.
#[allow(clippy::too_many_arguments)]
pub(crate) fn best_action(
    problem: &DeadlineProblem,
    trunc: &TruncationTable,
    t: usize,
    n: usize,
    a_lo: usize,
    a_hi: usize,
    opt_next: &[f64],
    cache: &mut PmfCache,
) -> (usize, f64) {
    debug_assert!(a_lo <= a_hi && a_hi < problem.actions.len());
    let lam = problem.interval_arrivals[t];
    let max_state = problem.n_tasks as usize;
    let mut best = a_lo;
    let mut best_q = f64::INFINITY;
    for a in a_lo..=a_hi {
        let action = problem.actions.get(a);
        let s0 = trunc.get(t, a);
        let len = (max_state - 1).min(s0) + 1;
        let row = cache.row(t, a, lam, action.accept, len);
        let q = q_value_from_row(action.reward, n, opt_next, s0, row);
        if q < best_q {
            best_q = q;
            best = a;
        }
    }
    (best, best_q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::{ActionSet, PriceAction};
    use crate::dp::test_support::small_problem;
    use crate::penalty::PenaltyModel;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn q_value_hand_computed() {
        // n = 1, λp = 1.0, reward 10, next-opt = [0, 7].
        // Q = P(X=0)(0 + 7) + P(X≥1)(10 + 0) = e^{-1}·7 + (1−e^{-1})·10.
        let a = PriceAction {
            reward: 10.0,
            accept: 0.5,
        };
        let mut buf = vec![0.0; 4];
        let q = q_value(2.0, a, 1, &[0.0, 7.0], usize::MAX, &mut buf);
        let e = (-1.0f64).exp();
        assert_close(q, e * 7.0 + (1.0 - e) * 10.0, 1e-12);
    }

    #[test]
    fn q_value_two_tasks() {
        // n = 2, λp = 1, reward c = 4, opt_next = [0, 3, 9].
        let a = PriceAction {
            reward: 4.0,
            accept: 1.0,
        };
        let mut buf = vec![0.0; 4];
        let q = q_value(1.0, a, 2, &[0.0, 3.0, 9.0], usize::MAX, &mut buf);
        let e = (-1.0f64).exp();
        let p0 = e;
        let p1 = e;
        let tail = 1.0 - p0 - p1;
        let expect = p0 * 9.0 + p1 * (4.0 + 3.0) + tail * 8.0;
        assert_close(q, expect, 1e-12);
    }

    #[test]
    fn truncated_q_is_lower_bound() {
        // Dropping non-negative terms can only lower Q.
        let a = PriceAction {
            reward: 6.0,
            accept: 0.8,
        };
        let opt_next: Vec<f64> = (0..12).map(|i| i as f64 * 5.0).collect();
        let mut buf = vec![0.0; 12];
        let exact = q_value(8.0, a, 10, &opt_next, usize::MAX, &mut buf);
        for s0 in [0usize, 2, 5, 9, 20] {
            let trunc = q_value(8.0, a, 10, &opt_next, s0, &mut buf);
            assert!(
                trunc <= exact + 1e-12,
                "s0={s0}: trunc {trunc} > exact {exact}"
            );
        }
        // Generous s0 changes nothing.
        let t = q_value(8.0, a, 10, &opt_next, 100, &mut buf);
        assert_close(t, exact, 1e-12);
    }

    #[test]
    fn truncation_table_matches_poisson() {
        let p = small_problem(10, 4);
        let table = TruncationTable::with_eps(&p, 1e-9);
        for t in 0..p.n_intervals() {
            for a in 0..p.actions.len() {
                let mean = p.interval_arrivals[t] * p.actions.get(a).accept;
                let expect = ft_stats::Poisson::new(mean).truncation_point(1e-9) as usize;
                assert_eq!(table.get(t, a), expect);
            }
        }
    }

    #[test]
    fn best_action_range_restriction() {
        let actions = ActionSet::new(vec![
            PriceAction {
                reward: 0.0,
                accept: 0.0,
            },
            PriceAction {
                reward: 5.0,
                accept: 0.5,
            },
            PriceAction {
                reward: 9.0,
                accept: 0.9,
            },
        ]);
        let p = crate::problem::DeadlineProblem::new(
            3,
            vec![3.0],
            actions,
            PenaltyModel::Linear { per_task: 1000.0 },
        );
        let trunc = TruncationTable::none(&p);
        // Terminal row: huge penalty makes high acceptance attractive.
        let opt_next = [0.0, 1000.0, 2000.0, 3000.0];
        let mut cache = PmfCache::new(p.actions.len());
        let (full, _) = best_action(&p, &trunc, 0, 3, 0, 2, &opt_next, &mut cache);
        assert_eq!(full, 2);
        // Restricting to [0, 1] must pick from that range.
        let (restricted, _) = best_action(&p, &trunc, 0, 3, 0, 1, &opt_next, &mut cache);
        assert_eq!(restricted, 1);
    }

    /// A longer shared row must serve shorter requests with bitwise-
    /// identical prefixes — the invariant that lets a [`SharedPmfCache`]
    /// upgrade rows in place across solves with different truncations.
    #[test]
    fn shared_rows_are_prefix_stable_across_lengths() {
        let shared = Arc::new(SharedPmfCache::new());
        let long = shared.get_or_build(3.5, 0.7, 24);
        assert_eq!(shared.hits(), 0);
        let short = shared.get_or_build(3.5, 0.7, 9);
        assert_eq!(shared.hits(), 1, "shorter request must hit the long row");
        assert!(Arc::ptr_eq(&long, &short), "hit must serve the cached row");
        let reference = PmfRow::build(3.5, 0.7, 9);
        for s in 0..9 {
            assert_eq!(long.pmf()[s].to_bits(), reference.pmf()[s].to_bits());
            assert_eq!(
                long.weighted()[s].to_bits(),
                reference.weighted()[s].to_bits()
            );
            assert_eq!(long.head()[s].to_bits(), reference.head()[s].to_bits());
        }
        // A longer request than anything cached rebuilds (an upgrade,
        // not a hit) and replaces the stored row.
        let upgraded = shared.get_or_build(3.5, 0.7, 32);
        assert_eq!(shared.hits(), 1);
        assert_eq!(upgraded.entries(), 32);
        assert_eq!(shared.lookups(), 3);
    }

    /// A per-worker cache resolving through a shared cache must produce
    /// bitwise-identical Q values to a private one.
    #[test]
    fn shared_cache_backup_is_bitwise_identical() {
        use crate::testkit::varied_problems;
        for p in varied_problems() {
            let trunc = TruncationTable::with_eps(&p, 1e-9);
            let shared = Arc::new(SharedPmfCache::new());
            let opt_next: Vec<f64> = (0..=p.n_tasks as usize)
                .map(|i| i as f64 * 3.75 + 0.25)
                .collect();
            // Two passes through the shared cache (the second one all
            // hits) against a private-cache reference.
            for _pass in 0..2 {
                let mut private = PmfCache::new(p.actions.len());
                let mut through_shared =
                    PmfCache::with_shared(p.actions.len(), Some(Arc::clone(&shared)));
                for t in 0..p.n_intervals() {
                    for n in 1..=p.n_tasks as usize {
                        let (a_ref, q_ref) = best_action(
                            &p,
                            &trunc,
                            t,
                            n,
                            0,
                            p.actions.len() - 1,
                            &opt_next,
                            &mut private,
                        );
                        let (a_got, q_got) = best_action(
                            &p,
                            &trunc,
                            t,
                            n,
                            0,
                            p.actions.len() - 1,
                            &opt_next,
                            &mut through_shared,
                        );
                        assert_eq!(a_ref, a_got, "(t={t}, n={n})");
                        assert_eq!(q_ref.to_bits(), q_got.to_bits(), "(t={t}, n={n})");
                    }
                }
            }
            assert!(shared.hits() > 0, "second pass must hit the shared rows");
        }
    }

    /// The shared-row backup must reproduce the per-state [`q_value`]
    /// bit-for-bit — the guarantee that lets the dense sweep share one
    /// pmf row per `(t, a)` without perturbing any policy.
    #[test]
    fn cached_rows_match_q_value_bitwise() {
        use crate::testkit::varied_problems;
        for p in varied_problems() {
            for (label, trunc) in [
                ("exact", TruncationTable::none(&p)),
                ("trunc", TruncationTable::with_eps(&p, 1e-9)),
            ] {
                let max_n = p.n_tasks as usize;
                // A strictly increasing fake cost-to-go row keeps the
                // comparison sensitive to every term.
                let opt_next: Vec<f64> = (0..=max_n).map(|i| i as f64 * 7.25 + 0.5).collect();
                let mut cache = PmfCache::new(p.actions.len());
                let mut buf = vec![0.0; max_n.max(1)];
                for t in 0..p.n_intervals() {
                    for n in 1..=max_n {
                        for a in 0..p.actions.len() {
                            let action = p.actions.get(a);
                            let s0 = trunc.get(t, a);
                            let reference =
                                q_value(p.interval_arrivals[t], action, n, &opt_next, s0, &mut buf);
                            let len = (max_n - 1).min(s0) + 1;
                            let row = cache.row(t, a, p.interval_arrivals[t], action.accept, len);
                            let cached = q_value_from_row(action.reward, n, &opt_next, s0, row);
                            assert_eq!(
                                cached.to_bits(),
                                reference.to_bits(),
                                "{label}: Q mismatch at (t={t}, n={n}, a={a}): \
                                 cached {cached} vs reference {reference}"
                            );
                        }
                    }
                }
            }
        }
    }
}
