//! # ft-core
//!
//! The primary contribution of *"Finish Them!: Pricing Algorithms for Human
//! Computation"* (Gao & Parameswaran, VLDB 2014): algorithms that set and
//! vary crowd-task prices to meet a deadline at minimum cost, or a budget
//! at minimum latency.
//!
//! ## Fixed deadline (Section 3)
//!
//! Build a [`problem::DeadlineProblem`] (tasks, per-interval arrival
//! masses, price actions, terminal penalty) and solve it:
//!
//! - [`dp::solve_simple`] — Algorithm 1, exact.
//! - [`dp::solve_truncated`] — + Poisson tail truncation (Theorem 1).
//! - [`dp::solve_efficient`] — Algorithm 2 divide-and-conquer
//!   (Conjecture 1 monotonicity).
//! - [`calibrate::calibrate_penalty`] — Theorem 2: turn an
//!   expected-remaining bound into the equivalent penalty.
//!
//! The result is a [`policy::DeadlinePolicy`]: a price for every
//! `(remaining tasks, interval)` state, exact evaluation via forward
//! distribution propagation (also under mis-specified dynamics), and a
//! [`policy::PriceController`] implementation for simulation.
//!
//! ## Fixed budget (Section 4)
//!
//! Build a [`budget::BudgetProblem`] and solve with
//! [`budget::solve_budget_hull`] (Algorithm 3, near-optimal via the lower
//! convex hull of `(c, 1/p(c))`) or [`budget::solve_budget_exact`]
//! (Theorem 6 pseudo-polynomial DP).
//!
//! ## Baseline & extensions
//!
//! [`baseline`] implements Faridani et al.'s binary-search fixed pricing;
//! [`extensions`] covers Section 6 (multiple task types, cost/latency
//! tradeoff, majority-vote quality control).

pub mod actions;
pub mod adaptive;
pub mod baseline;
pub mod budget;
pub mod calibrate;
pub mod dp;
pub mod error;
pub mod extensions;
pub mod penalty;
pub mod policy;
pub mod problem;

pub use actions::{ActionSet, PriceAction};
pub use adaptive::{AdaptiveOptions, AdaptivePricer};
pub use baseline::{solve_fixed_price, FixedPriceSolution};
pub use budget::{solve_budget_exact, solve_budget_hull, BudgetProblem, StaticStrategy};
pub use calibrate::{calibrate_penalty, CalibrateOptions, CalibratedPolicy};
pub use dp::{solve_efficient, solve_simple, solve_truncated};
pub use error::{PricingError, Result};
pub use penalty::PenaltyModel;
pub use policy::{DeadlinePolicy, ExactOutcome, FixedPrice, PriceController};
pub use problem::DeadlineProblem;
