//! # ft-core
//!
//! The primary contribution of *"Finish Them!: Pricing Algorithms for Human
//! Computation"* (Gao & Parameswaran, VLDB 2014): algorithms that set and
//! vary crowd-task prices to meet a deadline at minimum cost, or a budget
//! at minimum latency.
//!
//! ## Fixed deadline (Section 3)
//!
//! Build a [`problem::DeadlineProblem`] (tasks, per-interval arrival
//! masses, price actions, terminal penalty) and solve it:
//!
//! - [`dp::solve_simple`] — Algorithm 1, exact.
//! - [`dp::solve_truncated`] — + Poisson tail truncation (Theorem 1).
//! - [`dp::solve_efficient`] — Algorithm 2 divide-and-conquer
//!   (Conjecture 1 monotonicity).
//! - [`calibrate::calibrate_penalty`] — Theorem 2: turn an
//!   expected-remaining bound into the equivalent penalty.
//!
//! The result is a [`policy::DeadlinePolicy`]: a price for every
//! `(remaining tasks, interval)` state, exact evaluation via forward
//! distribution propagation (also under mis-specified dynamics), and a
//! [`policy::PriceController`] implementation for simulation.
//!
//! ## Fixed budget (Section 4)
//!
//! Build a [`budget::BudgetProblem`] and solve with
//! [`budget::solve_budget_hull`] (Algorithm 3, near-optimal via the lower
//! convex hull of `(c, 1/p(c))`) or [`budget::solve_budget_exact`]
//! (Theorem 6 pseudo-polynomial DP).
//!
//! ## Baseline & extensions
//!
//! [`baseline`] implements Faridani et al.'s binary-search fixed pricing;
//! [`extensions`] covers Section 6 (multiple task types, cost/latency
//! tradeoff, majority-vote quality control).

//! ## Kernel, registry & service (post-paper layers)
//!
//! All five solvers above run on one shared engine, [`kernel`]: a flat
//! value-table arena, a Poisson transition cache, and a backward-
//! induction driver parallelized across each layer's state axis on the
//! workspace `ft-exec` pool. [`registry::CampaignRegistry`] sits on top:
//! campaigns are versioned lifecycle records (`Draft → Solving → Live →
//! Recalibrating → Exhausted/Evicted`) whose policy generations are
//! swapped atomically on live recalibration ([`adaptive`]) and persisted
//! as JSON snapshots. [`service::PricingService`] keeps the batch-
//! oriented in-process facade with its constant-time
//! `reprice(campaign, observed_state)` hot path, and the `ft-server`
//! crate serves the registry over HTTP. See `ARCHITECTURE.md` at the
//! workspace root.

pub mod actions;
pub mod adaptive;
pub mod baseline;
pub mod budget;
pub mod calibrate;
pub mod dp;
pub mod error;
pub mod extensions;
pub mod kernel;
pub mod lockcheck;
pub mod penalty;
pub mod policy;
pub mod problem;
pub mod registry;
pub mod scheduler;
pub mod service;
pub mod telemetry;
pub mod testkit;

pub use actions::{ActionSet, PriceAction};
pub use adaptive::{AdaptiveOptions, AdaptivePricer};
pub use baseline::{solve_fixed_price, FixedPriceSolution};
pub use budget::{
    solve_budget_exact, solve_budget_hull, solve_budget_mdp, BudgetProblem, StaticStrategy,
};
pub use calibrate::{calibrate_penalty, CalibrateOptions, CalibratedPolicy};
pub use dp::{solve_efficient, solve_simple, solve_truncated};
pub use error::{CampaignId, PricingError, Result};
pub use kernel::{KernelConfig, Sweep};
pub use penalty::PenaltyModel;
pub use policy::{DeadlinePolicy, ExactOutcome, FixedPrice, PriceController};
pub use problem::DeadlineProblem;
pub use registry::{
    BudgetDriftOptions, CampaignObservation, CampaignRegistry, CampaignReport, CampaignStatus,
    ObserveOutcome, PolicyGeneration, PriceQuote, RecalibrationSpec, RegistryConfig,
};
pub use scheduler::{SchedulerStats, SolveContext, SolveScheduler, WaveStats, WaveTicket};
pub use service::{CampaignPolicy, CampaignSpec, ObservedState, PricingService};
