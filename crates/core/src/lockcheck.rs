//! A dynamic lock-order witness, compiled in only under
//! `--cfg lockcheck`.
//!
//! The registry documents one lock order: **campaign writer mutex →
//! shard map write lock** (see `registry::store`). Nothing enforced it
//! at runtime — an inverted acquisition would sit latent until two
//! threads interleaved just wrong and deadlocked in production. With
//! `RUSTFLAGS="--cfg lockcheck"` every guarded acquisition is recorded
//! against a process-global acquisition-order graph:
//!
//! - each thread keeps a **held-lock stack** (class + instance name, in
//!   acquisition order);
//! - acquiring class `B` while holding class `A` records the edge
//!   `A → B`, remembering the full held stack that first witnessed it;
//! - an acquisition that would close a **cycle** (`B ⇝ A` already in
//!   the graph while recording `A → B`) panics *before blocking on the
//!   lock*, printing both sides: the current thread's held stack and
//!   the held stack recorded when the conflicting edge was first seen.
//!
//! The documented campaign→shard order is pre-seeded into the graph, so
//! a single inverted acquisition panics even if the correct path never
//! ran in that process — the witness checks the *rule*, not just
//! observed history.
//!
//! The witness intentionally tracks lock **classes**, not instances:
//! two different campaigns' mutexes are the same class, so a
//! campaign→campaign edge would be flagged as a self-cycle. The
//! registry never nests two campaign mutexes — if a future change
//! does, it must either order them by id and teach the witness, or it
//! is a real deadlock candidate and the panic is the point.
//!
//! Everything here is `#[cfg(lockcheck)]`; default builds compile the
//! no-op twin at the bottom of the file, so the serving path pays
//! nothing.

#[cfg(lockcheck)]
mod imp {
    use std::collections::HashMap;
    use std::fmt::Write as _;
    use std::sync::Mutex;

    /// A lock class known to the witness. Classes are compared by
    /// name pointer-independently (string equality), so tests can mint
    /// their own classes without touching the registry's.
    pub type LockClass = &'static str;

    /// The campaign writer mutex (`registry::store::Campaign::state`).
    pub const CAMPAIGN_STATE: LockClass = "campaign-state";
    /// A shard's id→record map `RwLock` (read or write side).
    pub const SHARD_MAP: LockClass = "shard-map";
    /// The solve scheduler's wave-state mutex (`scheduler::SolveScheduler`).
    pub const SOLVE_SCHEDULER: LockClass = "solve-scheduler";

    #[derive(Clone)]
    struct Edge {
        /// Held stack of the thread that first recorded this edge,
        /// rendered as `a -> b -> c`.
        witness_stack: String,
        thread: String,
    }

    struct Graph {
        /// `edges[(from, to)]` = first acquisition that witnessed
        /// holding `from` while taking `to`.
        edges: HashMap<(String, String), Edge>,
    }

    fn graph() -> &'static Mutex<Graph> {
        static GRAPH: std::sync::OnceLock<Mutex<Graph>> = std::sync::OnceLock::new();
        GRAPH.get_or_init(|| {
            let mut edges = HashMap::new();
            // Pre-seed the documented discipline: the campaign writer
            // mutex is acquired before the shard map lock. Any
            // shard-map→campaign acquisition is an inversion of the
            // rule, deadlock or not.
            edges.insert(
                (CAMPAIGN_STATE.to_string(), SHARD_MAP.to_string()),
                Edge {
                    witness_stack: format!("{CAMPAIGN_STATE} -> {SHARD_MAP}"),
                    thread: "<documented order: registry::store module docs>".to_string(),
                },
            );
            // And its extension for batched solving: wave admission
            // happens before (never inside) any campaign writer lock,
            // so the scheduler mutex sits at the top of the order:
            // scheduler → campaign-mutex → shard-map. A campaign-held
            // admission would record campaign→scheduler and close a
            // cycle with this seed.
            edges.insert(
                (SOLVE_SCHEDULER.to_string(), CAMPAIGN_STATE.to_string()),
                Edge {
                    witness_stack: format!("{SOLVE_SCHEDULER} -> {CAMPAIGN_STATE}"),
                    thread: "<documented order: scheduler module docs>".to_string(),
                },
            );
            Mutex::new(Graph { edges })
        })
    }

    thread_local! {
        /// This thread's held locks, in acquisition order:
        /// `(class, instance label, token id)`.
        static HELD: std::cell::RefCell<Vec<(String, String, u64)>> =
            const { std::cell::RefCell::new(Vec::new()) };
        static NEXT_TOKEN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    fn held_stack_string(held: &[(String, String, u64)]) -> String {
        let mut s = String::new();
        for (i, (class, label, _)) in held.iter().enumerate() {
            if i > 0 {
                s.push_str(" -> ");
            }
            let _ = write!(s, "{class}[{label}]");
        }
        s
    }

    /// Is `to ⇝ from` reachable in the edge set (would `from → to`
    /// close a cycle)?
    fn reaches(edges: &HashMap<(String, String), Edge>, start: &str, goal: &str) -> Option<String> {
        // DFS over a graph of at most a handful of classes.
        let mut stack = vec![(start.to_string(), start.to_string())];
        let mut seen = std::collections::HashSet::new();
        while let Some((node, path)) = stack.pop() {
            if node == goal {
                return Some(path);
            }
            if !seen.insert(node.clone()) {
                continue;
            }
            for (from, to) in edges.keys() {
                if *from == node {
                    stack.push((to.clone(), format!("{path} -> {to}")));
                }
            }
        }
        None
    }

    /// RAII token for one traced acquisition. Create it **before**
    /// blocking on the real lock so an actual deadlock still reports.
    pub struct Held {
        token: u64,
    }

    /// Record that the current thread is about to acquire a lock of
    /// `class` (instance described by `label`), panicking if that
    /// acquisition is inconsistent with the order graph.
    pub fn acquire(class: LockClass, label: &str) -> Held {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if !held.is_empty() {
                // Check the new acquisition against *every* held class:
                // same-class nesting is a self-cycle by construction,
                // and any held class reachable from the new class in
                // the recorded graph means `held → class` closes a
                // cycle.
                let inner_check = {
                    let graph = graph().lock().unwrap_or_else(|e| e.into_inner());
                    let mut found = None;
                    for (held_class, _, _) in held.iter() {
                        if held_class == class {
                            found = Some((
                                format!("{class} -> {class}"),
                                "<same-class nesting>".to_string(),
                            ));
                            break;
                        }
                        if let Some(path) = reaches(&graph.edges, class, held_class) {
                            let edge = graph
                                .edges
                                .get(&(class.to_string(), path_second(&path)))
                                .cloned();
                            found = Some((
                                path,
                                edge.map(|e| {
                                    format!(
                                        "first seen on {} holding {}",
                                        e.thread, e.witness_stack
                                    )
                                })
                                .unwrap_or_else(|| "<pre-seeded order>".to_string()),
                            ));
                            break;
                        }
                    }
                    found
                };
                if let Some((cycle_path, other_side)) = inner_check {
                    let current = held_stack_string(&held);
                    panic!(
                        "lockcheck: acquisition-order violation: thread {:?} holds \
                         [{current}] and is acquiring `{class}[{label}]`, but the order \
                         graph already requires `{cycle_path}` ({other_side}). \
                         Potential deadlock: this inverts the documented \
                         campaign-mutex -> shard-map-write discipline or closes a \
                         cycle between lock classes.",
                        std::thread::current().name().unwrap_or("<unnamed>"),
                    );
                }
                // Consistent: record every held-class → new-class edge.
                let mut graph = graph().lock().unwrap_or_else(|e| e.into_inner());
                let current = held_stack_string(&held);
                for (held_class, _, _) in held.iter() {
                    if held_class != class {
                        graph
                            .edges
                            .entry((held_class.clone(), class.to_string()))
                            .or_insert_with(|| Edge {
                                witness_stack: format!("{current} -> {class}[{label}]"),
                                thread: format!(
                                    "thread {:?}",
                                    std::thread::current().name().unwrap_or("<unnamed>")
                                ),
                            });
                    }
                }
            }
            let token = NEXT_TOKEN.with(|t| {
                let id = t.get();
                t.set(id + 1);
                id
            });
            held.push((class.to_string(), label.to_string(), token));
            Held { token }
        })
    }

    /// First hop of a rendered `a -> b -> …` path (the `to` of the
    /// edge out of the cycle's start), used to look up the witnessing
    /// edge for the report.
    fn path_second(path: &str) -> String {
        path.split(" -> ").nth(1).unwrap_or(path).to_string()
    }

    impl Drop for Held {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                // Guards normally unwind in reverse acquisition order,
                // but `with_entry`'s retry path releases out of order —
                // find this token's entry rather than popping the top.
                if let Some(i) = held.iter().position(|(_, _, t)| *t == self.token) {
                    held.remove(i);
                }
            });
        }
    }

    /// The current thread's held-lock stack, rendered for assertions.
    pub fn held_stack() -> String {
        HELD.with(|held| held_stack_string(&held.borrow()))
    }
}

#[cfg(lockcheck)]
pub use imp::{acquire, held_stack, Held, LockClass, CAMPAIGN_STATE, SHARD_MAP, SOLVE_SCHEDULER};

// ---- no-op twin for default builds -----------------------------------

#[cfg(not(lockcheck))]
mod imp {
    /// Lock class label (unused in default builds).
    pub type LockClass = &'static str;
    /// See the `lockcheck` build.
    pub const CAMPAIGN_STATE: LockClass = "campaign-state";
    /// See the `lockcheck` build.
    pub const SHARD_MAP: LockClass = "shard-map";
    /// See the `lockcheck` build.
    pub const SOLVE_SCHEDULER: LockClass = "solve-scheduler";

    /// Zero-sized stand-in; acquisitions are untraced. The explicit
    /// (empty) `Drop` keeps call sites identical across cfgs: witness
    /// tokens may be `drop()`ed early (the store's retry path) without
    /// tripping `clippy::drop_non_drop` on default builds.
    pub struct Held;

    impl Drop for Held {
        fn drop(&mut self) {}
    }

    /// No-op in default builds — compiles away entirely.
    #[inline(always)]
    pub fn acquire(_class: LockClass, _label: &str) -> Held {
        Held
    }

    /// Always empty in default builds.
    pub fn held_stack() -> String {
        String::new()
    }
}

#[cfg(not(lockcheck))]
pub use imp::{acquire, held_stack, Held, LockClass, CAMPAIGN_STATE, SHARD_MAP, SOLVE_SCHEDULER};
