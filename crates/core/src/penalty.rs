//! Final-state penalty models (Sections 3.1 and 3.3).

use serde::{Deserialize, Serialize};

/// Terminal cost charged at the deadline for unfinished tasks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PenaltyModel {
    /// `cost(n, N_T) = n · per_task` — the base formulation of Section 3.1.
    Linear { per_task: f64 },
    /// `cost(n, N_T) = (n + alpha) · per_task` for `n > 0`, `0` otherwise —
    /// the Section 3.3 extension that additionally punishes the *existence*
    /// of leftovers.
    Extended { per_task: f64, alpha: f64 },
}

impl PenaltyModel {
    /// Terminal cost for `n` remaining tasks.
    pub fn terminal_cost(&self, n: u32) -> f64 {
        match *self {
            PenaltyModel::Linear { per_task } => n as f64 * per_task,
            PenaltyModel::Extended { per_task, alpha } => {
                if n == 0 {
                    0.0
                } else {
                    (n as f64 + alpha) * per_task
                }
            }
        }
    }

    /// The per-task penalty magnitude (the knob Theorem 2's calibration
    /// searches over).
    pub fn per_task(&self) -> f64 {
        match *self {
            PenaltyModel::Linear { per_task } | PenaltyModel::Extended { per_task, .. } => per_task,
        }
    }

    /// Same shape, different per-task magnitude.
    pub fn with_per_task(&self, per_task: f64) -> Self {
        assert!(per_task >= 0.0, "penalty must be non-negative");
        match *self {
            PenaltyModel::Linear { .. } => PenaltyModel::Linear { per_task },
            PenaltyModel::Extended { alpha, .. } => PenaltyModel::Extended { per_task, alpha },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_penalty() {
        let p = PenaltyModel::Linear { per_task: 100.0 };
        assert_eq!(p.terminal_cost(0), 0.0);
        assert_eq!(p.terminal_cost(3), 300.0);
    }

    #[test]
    fn extended_penalty_jumps_at_zero() {
        let p = PenaltyModel::Extended {
            per_task: 100.0,
            alpha: 5.0,
        };
        assert_eq!(p.terminal_cost(0), 0.0);
        assert_eq!(p.terminal_cost(1), 600.0);
        assert_eq!(p.terminal_cost(2), 700.0);
    }

    #[test]
    fn with_per_task_preserves_shape() {
        let p = PenaltyModel::Extended {
            per_task: 1.0,
            alpha: 2.0,
        };
        let q = p.with_per_task(10.0);
        assert_eq!(q.terminal_cost(1), 30.0);
        let l = PenaltyModel::Linear { per_task: 1.0 }.with_per_task(7.0);
        assert_eq!(l.terminal_cost(2), 14.0);
    }
}
