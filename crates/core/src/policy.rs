//! Deadline pricing policies and their exact evaluation.
//!
//! A [`DeadlinePolicy`] stores, for every MDP state `(n, t)`, the optimal
//! action index and the cost-to-go `Opt(n, t)`. Exact evaluation pushes the
//! full remaining-task distribution forward through the chain — optionally
//! under *different* (true) marketplace dynamics than the policy was
//! trained on, which is how the Section 5.2.4/5.2.5 robustness experiments
//! are run.

use crate::actions::ActionSet;
use crate::penalty::PenaltyModel;
use crate::problem::DeadlineProblem;
use ft_stats::Poisson;
use serde::{Deserialize, Serialize};

/// Anything that can quote a price given the remaining tasks and the
/// current interval index — the common interface of the dynamic policy and
/// the fixed-price baseline.
pub trait PriceController {
    /// Reward (cents) to post from interval `t` with `n` tasks remaining.
    fn price(&self, n_remaining: u32, t: usize) -> f64;
}

/// A fixed price for all states (the Faridani-style baseline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedPrice(pub f64);

impl PriceController for FixedPrice {
    fn price(&self, _n: u32, _t: usize) -> f64 {
        self.0
    }
}

/// A solved deadline MDP policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeadlinePolicy {
    n_tasks: u32,
    n_intervals: usize,
    /// Action indices, row-major `[t][n]`, `t ∈ 0..N_T`, `n ∈ 0..=N`
    /// (index for `n = 0` is unused but kept for addressing simplicity).
    price_idx: Vec<u32>,
    /// Cost-to-go `Opt(n, t)`, row-major `[t][n]`, `t ∈ 0..=N_T`.
    opt: Vec<f64>,
    /// The action set the indices refer to.
    actions: ActionSet,
}

impl DeadlinePolicy {
    pub(crate) fn new(
        n_tasks: u32,
        n_intervals: usize,
        price_idx: Vec<u32>,
        opt: Vec<f64>,
        actions: ActionSet,
    ) -> Self {
        let width = n_tasks as usize + 1;
        assert_eq!(price_idx.len(), n_intervals * width, "price table shape");
        assert_eq!(opt.len(), (n_intervals + 1) * width, "opt table shape");
        Self {
            n_tasks,
            n_intervals,
            price_idx,
            opt,
            actions,
        }
    }

    pub fn n_tasks(&self) -> u32 {
        self.n_tasks
    }

    pub fn n_intervals(&self) -> usize {
        self.n_intervals
    }

    pub fn actions(&self) -> &ActionSet {
        &self.actions
    }

    #[inline]
    fn width(&self) -> usize {
        self.n_tasks as usize + 1
    }

    /// Optimal action index at `(n, t)`.
    pub fn action_index(&self, n: u32, t: usize) -> usize {
        assert!(t < self.n_intervals, "interval {t} out of range");
        assert!(n >= 1 && n <= self.n_tasks, "task count {n} out of range");
        self.price_idx[t * self.width() + n as usize] as usize
    }

    /// Cost-to-go `Opt(n, t)` for `t ∈ 0..=N_T`.
    pub fn cost_to_go(&self, n: u32, t: usize) -> f64 {
        assert!(t <= self.n_intervals, "interval {t} out of range");
        assert!(n <= self.n_tasks, "task count {n} out of range");
        self.opt[t * self.width() + n as usize]
    }

    /// The minimum expected total cost from the initial state `(N, 0)`.
    pub fn expected_total_cost(&self) -> f64 {
        self.cost_to_go(self.n_tasks, 0)
    }

    /// Exact policy evaluation under the *trained* dynamics.
    pub fn evaluate(&self, problem: &DeadlineProblem) -> ExactOutcome {
        self.evaluate_against(
            &problem.interval_arrivals,
            |reward| {
                // Trained acceptance: look the reward up in the action set.
                let idx = problem
                    .actions
                    .index_of_reward(reward)
                    .expect("policy reward not in problem's action set");
                problem.actions.get(idx).accept
            },
            &problem.penalty,
        )
    }

    /// Exact policy evaluation under arbitrary true dynamics: per-interval
    /// arrival masses and a true acceptance function of the posted reward.
    ///
    /// This is the mis-specification path: the policy was trained on
    /// `(λ̂, p̂)`, but executes against `(λ, p)`.
    pub fn evaluate_against<F>(
        &self,
        true_arrivals: &[f64],
        true_accept: F,
        penalty: &PenaltyModel,
    ) -> ExactOutcome
    where
        F: Fn(f64) -> f64,
    {
        assert_eq!(
            true_arrivals.len(),
            self.n_intervals,
            "true dynamics must have the same number of intervals"
        );
        let n = self.n_tasks as usize;
        let mut dist = vec![0.0f64; n + 1];
        dist[n] = 1.0;
        let mut next = vec![0.0f64; n + 1];
        let mut pmf = vec![0.0f64; n + 1];
        let mut paid = 0.0f64;
        let mut paid_tasks = 0.0f64;

        for (t, &lam) in true_arrivals.iter().enumerate() {
            next.iter_mut().for_each(|v| *v = 0.0);
            next[0] = dist[0];
            for m in 1..=n {
                let mass = dist[m];
                if mass <= 1e-300 {
                    continue;
                }
                let a = self.actions.get(self.action_index(m as u32, t));
                let reward = a.reward;
                let p = true_accept(reward).clamp(0.0, 1.0);
                let pois = Poisson::new(lam * p);
                let head = pois.pmf_prefix(&mut pmf[..m]);
                let tail = (1.0 - head).max(0.0); // Pr[X ≥ m] → finish all m
                let mut exp_completed = m as f64 * tail;
                for (s, &q) in pmf[..m].iter().enumerate() {
                    next[m - s] += mass * q;
                    exp_completed += s as f64 * q;
                }
                next[0] += mass * tail;
                paid += mass * exp_completed * reward;
                paid_tasks += mass * exp_completed;
            }
            std::mem::swap(&mut dist, &mut next);
        }

        let expected_remaining: f64 = dist.iter().enumerate().map(|(m, &q)| m as f64 * q).sum();
        let expected_penalty: f64 = dist
            .iter()
            .enumerate()
            .map(|(m, &q)| q * penalty.terminal_cost(m as u32))
            .sum();
        ExactOutcome {
            expected_paid: paid,
            expected_penalty,
            expected_remaining,
            prob_all_done: dist[0],
            expected_completed: paid_tasks,
            final_distribution: dist,
        }
    }
}

impl DeadlinePolicy {
    /// Expected campaign trajectory under the trained dynamics: for each
    /// interval boundary `t = 0..=N_T`, the expected number of remaining
    /// tasks and (for `t < N_T`) the expected reward posted — the
    /// "planned flight path" useful for dashboards and sanity checks.
    pub fn expected_trajectory(&self, problem: &DeadlineProblem) -> Trajectory {
        let n = self.n_tasks as usize;
        let mut dist = vec![0.0f64; n + 1];
        dist[n] = 1.0;
        let mut next = vec![0.0f64; n + 1];
        let mut pmf = vec![0.0f64; n + 1];
        let mut remaining = Vec::with_capacity(self.n_intervals + 1);
        let mut posted = Vec::with_capacity(self.n_intervals);
        for (t, &lam) in problem.interval_arrivals.iter().enumerate() {
            let exp_rem: f64 = dist.iter().enumerate().map(|(m, &q)| m as f64 * q).sum();
            remaining.push(exp_rem);
            // Probability-weighted posted reward across states.
            let mut price_acc = 0.0;
            let mut mass_acc = 0.0;
            next.iter_mut().for_each(|v| *v = 0.0);
            next[0] = dist[0];
            for m in 1..=n {
                let mass = dist[m];
                if mass <= 1e-300 {
                    continue;
                }
                let a = self.actions.get(self.action_index(m as u32, t));
                price_acc += mass * a.reward;
                mass_acc += mass;
                let pois = Poisson::new(lam * a.accept);
                let head = pois.pmf_prefix(&mut pmf[..m]);
                for (s, &q) in pmf[..m].iter().enumerate() {
                    next[m - s] += mass * q;
                }
                next[0] += mass * (1.0 - head).max(0.0);
            }
            posted.push(if mass_acc > 0.0 {
                price_acc / mass_acc
            } else {
                f64::NAN
            });
            std::mem::swap(&mut dist, &mut next);
        }
        let exp_rem: f64 = dist.iter().enumerate().map(|(m, &q)| m as f64 * q).sum();
        remaining.push(exp_rem);
        Trajectory {
            expected_remaining: remaining,
            expected_posted_reward: posted,
        }
    }
}

/// The expected flight path of a campaign (see
/// [`DeadlinePolicy::expected_trajectory`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Expected remaining tasks at each interval boundary (`N_T + 1`
    /// entries; the last is the deadline state).
    pub expected_remaining: Vec<f64>,
    /// Expected posted reward in each interval, conditioned on the batch
    /// being unfinished (`N_T` entries).
    pub expected_posted_reward: Vec<f64>,
}

impl PriceController for DeadlinePolicy {
    fn price(&self, n_remaining: u32, t: usize) -> f64 {
        let n = n_remaining.min(self.n_tasks);
        let t = t.min(self.n_intervals - 1);
        if n == 0 {
            return self.actions.min_reward();
        }
        self.actions.get(self.action_index(n, t)).reward
    }
}

/// Exact (distribution-propagated) evaluation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExactOutcome {
    /// Expected total rewards paid for completed tasks.
    pub expected_paid: f64,
    /// Expected terminal penalty.
    pub expected_penalty: f64,
    /// Expected number of unfinished tasks at the deadline.
    pub expected_remaining: f64,
    /// Probability that all tasks finish by the deadline.
    pub prob_all_done: f64,
    /// Expected number of completed tasks.
    pub expected_completed: f64,
    /// Final distribution over remaining-task counts.
    pub final_distribution: Vec<f64>,
}

impl ExactOutcome {
    /// Expected paid + penalty — the MDP objective.
    pub fn expected_total_cost(&self) -> f64 {
        self.expected_paid + self.expected_penalty
    }

    /// Average reward per completed task (the Fig. 7(a) y-axis).
    pub fn average_reward(&self) -> f64 {
        if self.expected_completed <= 0.0 {
            f64::NAN
        } else {
            self.expected_paid / self.expected_completed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::{ActionSet, PriceAction};

    fn tiny_policy() -> (DeadlinePolicy, DeadlineProblem) {
        // 2 tasks, 2 intervals, 2 actions. Hand-build a policy that always
        // picks action 1 (reward 10, accept 0.5) and check the forward
        // pass arithmetic.
        let actions = ActionSet::new(vec![
            PriceAction {
                reward: 5.0,
                accept: 0.25,
            },
            PriceAction {
                reward: 10.0,
                accept: 0.5,
            },
        ]);
        let n_tasks = 2u32;
        let n_intervals = 2usize;
        let width = 3;
        let price_idx = vec![1u32; n_intervals * width];
        let opt = vec![0.0; (n_intervals + 1) * width];
        let problem = DeadlineProblem::new(
            n_tasks,
            vec![2.0, 2.0],
            actions.clone(),
            PenaltyModel::Linear { per_task: 100.0 },
        );
        (
            DeadlinePolicy::new(n_tasks, n_intervals, price_idx, opt, actions),
            problem,
        )
    }

    #[test]
    fn forward_pass_conserves_probability() {
        let (policy, problem) = tiny_policy();
        let out = policy.evaluate(&problem);
        let total: f64 = out.final_distribution.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass leaked: {total}");
        assert!(out.expected_remaining >= 0.0 && out.expected_remaining <= 2.0);
        assert!((out.expected_completed + out.expected_remaining - 2.0).abs() < 1e-9);
    }

    #[test]
    fn forward_pass_single_interval_arithmetic() {
        // One interval, one task, λp = 1.0: P(complete) = P(X ≥ 1) =
        // 1 − e^{−1}; expected paid = reward · P.
        let actions = ActionSet::new(vec![PriceAction {
            reward: 10.0,
            accept: 0.5,
        }]);
        let policy = DeadlinePolicy::new(1, 1, vec![0, 0], vec![0.0; 4], actions.clone());
        let problem = DeadlineProblem::new(
            1,
            vec![2.0],
            actions,
            PenaltyModel::Linear { per_task: 50.0 },
        );
        let out = policy.evaluate(&problem);
        let p_done = 1.0 - (-1.0f64).exp();
        assert!((out.prob_all_done - p_done).abs() < 1e-12);
        assert!((out.expected_paid - 10.0 * p_done).abs() < 1e-12);
        assert!((out.expected_penalty - 50.0 * (1.0 - p_done)).abs() < 1e-12);
        assert!(
            (out.expected_total_cost() - (10.0 * p_done + 50.0 * (1.0 - p_done))).abs() < 1e-12
        );
    }

    #[test]
    fn trajectory_is_consistent_with_evaluation() {
        let (policy, problem) = tiny_policy();
        let traj = policy.expected_trajectory(&problem);
        let out = policy.evaluate(&problem);
        assert_eq!(traj.expected_remaining.len(), problem.n_intervals() + 1);
        assert_eq!(traj.expected_posted_reward.len(), problem.n_intervals());
        // Starts with the full batch, ends at the evaluated remainder.
        assert!((traj.expected_remaining[0] - 2.0).abs() < 1e-12);
        let last = *traj.expected_remaining.last().unwrap();
        assert!((last - out.expected_remaining).abs() < 1e-9);
        // Remaining tasks are non-increasing in expectation.
        for w in traj.expected_remaining.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        // Posted rewards come from the action set.
        for &p in &traj.expected_posted_reward {
            assert!((5.0..=10.0).contains(&p));
        }
    }

    #[test]
    fn evaluation_under_true_dynamics_differs() {
        let (policy, problem) = tiny_policy();
        let trained = policy.evaluate(&problem);
        // True acceptance much lower → more remaining tasks.
        let degraded =
            policy.evaluate_against(&problem.interval_arrivals, |_c| 0.05, &problem.penalty);
        assert!(degraded.expected_remaining > trained.expected_remaining);
    }

    #[test]
    fn fixed_price_controller() {
        let f = FixedPrice(16.0);
        assert_eq!(f.price(100, 3), 16.0);
        assert_eq!(f.price(0, 0), 16.0);
    }

    #[test]
    fn average_reward_nan_when_nothing_completes() {
        let out = ExactOutcome {
            expected_paid: 0.0,
            expected_penalty: 0.0,
            expected_remaining: 2.0,
            prob_all_done: 0.0,
            expected_completed: 0.0,
            final_distribution: vec![0.0, 0.0, 1.0],
        };
        assert!(out.average_reward().is_nan());
    }
}
