//! The fixed-deadline pricing problem specification (Section 3.1).

use crate::actions::ActionSet;
use crate::penalty::PenaltyModel;
use ft_market::{AcceptanceFn, ArrivalRate, PriceGrid};
use serde::{Deserialize, Serialize};

/// A fixed-deadline pricing problem after time discretization:
/// `N` tasks, `N_T` intervals with expected worker-arrival masses `λ_t`
/// (Eq. 4), a price action set, and a terminal penalty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeadlineProblem {
    /// Batch size `N`.
    pub n_tasks: u32,
    /// Expected worker arrivals per interval, `λ_t = ∫ λ(s) ds`.
    pub interval_arrivals: Vec<f64>,
    /// The available price actions with their (trained) acceptance
    /// probabilities.
    pub actions: ActionSet,
    /// Terminal penalty for unfinished tasks.
    pub penalty: PenaltyModel,
}

impl DeadlineProblem {
    pub fn new(
        n_tasks: u32,
        interval_arrivals: Vec<f64>,
        actions: ActionSet,
        penalty: PenaltyModel,
    ) -> Self {
        assert!(n_tasks > 0, "need at least one task");
        assert!(!interval_arrivals.is_empty(), "need at least one interval");
        for &l in &interval_arrivals {
            assert!(l >= 0.0 && l.is_finite(), "interval arrivals must be ≥ 0");
        }
        Self {
            n_tasks,
            interval_arrivals,
            actions,
            penalty,
        }
    }

    /// Build from marketplace primitives: discretize `[0, horizon_hours]`
    /// into `n_intervals` slices of the arrival-rate function, and expand
    /// the price grid through the acceptance function.
    pub fn from_market<A, P>(
        n_tasks: u32,
        horizon_hours: f64,
        n_intervals: usize,
        arrival: &A,
        grid: PriceGrid,
        acceptance: &P,
        penalty: PenaltyModel,
    ) -> Self
    where
        A: ArrivalRate + ?Sized,
        P: AcceptanceFn + ?Sized,
    {
        let interval_arrivals = arrival.interval_means(horizon_hours, n_intervals);
        let actions = ActionSet::from_grid(grid, acceptance);
        Self::new(n_tasks, interval_arrivals, actions, penalty)
    }

    /// Number of decision intervals `N_T`.
    pub fn n_intervals(&self) -> usize {
        self.interval_arrivals.len()
    }

    /// Total expected worker arrivals before the deadline, `∫_0^T λ`.
    pub fn total_arrivals(&self) -> f64 {
        self.interval_arrivals.iter().sum()
    }

    /// The theoretical lower bound `c₀` on any strategy's average task
    /// reward (Section 5.2.1): the smallest action whose acceptance
    /// satisfies `p(c₀) ≥ N / ∫λ`. Returns the action index.
    pub fn reward_lower_bound_index(&self) -> Option<usize> {
        let need = self.n_tasks as f64 / self.total_arrivals();
        (0..self.actions.len()).find(|&i| self.actions.get(i).accept >= need)
    }

    /// Same problem with a different penalty.
    pub fn with_penalty(&self, penalty: PenaltyModel) -> Self {
        Self {
            penalty,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_market::{ConstantRate, LogitAcceptance};

    fn paper_like_problem() -> DeadlineProblem {
        // 200 tasks, 24h, 72 intervals, ≈5100 workers/hour.
        DeadlineProblem::from_market(
            200,
            24.0,
            72,
            &ConstantRate::new(5100.0),
            PriceGrid::new(0, 40),
            &LogitAcceptance::paper_eq13(),
            PenaltyModel::Linear { per_task: 1000.0 },
        )
    }

    #[test]
    fn dimensions() {
        let p = paper_like_problem();
        assert_eq!(p.n_intervals(), 72);
        assert_eq!(p.actions.len(), 41);
        assert!((p.total_arrivals() - 5100.0 * 24.0).abs() < 1e-6);
    }

    #[test]
    fn paper_c0_is_about_12() {
        // Section 5.2.1: with N=200, T=24h and Eq. 13, c₀ ≈ 12.
        let p = paper_like_problem();
        let idx = p.reward_lower_bound_index().unwrap();
        let c0 = p.actions.get(idx).reward;
        assert!((11.0..=13.0).contains(&c0), "c0 = {c0}");
    }

    #[test]
    fn unreachable_lower_bound() {
        // A tiny marketplace can't finish 200 tasks at any price.
        let p = DeadlineProblem::from_market(
            200,
            1.0,
            4,
            &ConstantRate::new(10.0),
            PriceGrid::new(0, 40),
            &LogitAcceptance::paper_eq13(),
            PenaltyModel::Linear { per_task: 1000.0 },
        );
        assert!(p.reward_lower_bound_index().is_none());
    }

    #[test]
    fn with_penalty_replaces_only_penalty() {
        let p = paper_like_problem();
        let q = p.with_penalty(PenaltyModel::Linear { per_task: 5.0 });
        assert_eq!(q.n_tasks, p.n_tasks);
        assert_eq!(q.penalty.terminal_cost(2), 10.0);
    }
}
