//! The campaign registry: versioned campaign lifecycle records behind the
//! serving API.
//!
//! The pricing service used to be a bare `HashMap<CampaignId,
//! Arc<Policy>>`; the ROADMAP's network north-star needs campaigns to be
//! first-class, inspectable, persistable objects. Each `Campaign` is a
//! versioned record:
//!
//! - a [`CampaignSpec`] (what to optimise),
//! - a lifecycle [`CampaignStatus`] (`Draft → Solving → Live →
//!   Recalibrating → Exhausted`, or `Evicted`),
//! - a monotonically increasing **policy generation**: every (re)solve
//!   publishes a fresh immutable [`PolicyGeneration`] behind an `Arc`
//!   swap, so `reprice` readers keep answering from the old generation
//!   while a solve runs and *never block on a solve*,
//! - the observation history feeding the [`AdaptivePricer`] machinery
//!   (Section 5.2.5): [`CampaignRegistry::observe`] reports per-interval
//!   completions, maintains the windowed arrival-correction ratio ρ̂, and
//!   re-solves a drifting deadline campaign on its remaining horizon.
//!
//! Snapshot persistence ([`CampaignRegistry::to_json`] /
//! [`CampaignRegistry::from_json`], plus the `save`/`load` file wrappers)
//! captures specs, statuses, generations, histories *and the solved
//! policy tables*, so a restarted server resumes every live campaign at
//! the same generation without re-solving.
//!
//! Locking discipline (hot path first):
//!
//! | data | guard | held for |
//! |---|---|---|
//! | id → `Arc<Campaign>` map | `RwLock` read | a map lookup |
//! | current [`PolicyGeneration`] | `RwLock` read / write | an `Arc` clone / pointer swap |
//! | status | `AtomicU8` | lock-free |
//! | spec + engine (pricer, counters) | `Mutex` | writer ops (solve/observe/evict) |
//!
//! Solves and recalibrations run while holding only the writer `Mutex` of
//! their own campaign — never the map lock or the generation lock.

use crate::adaptive::{AdaptiveOptions, AdaptivePricer};
use crate::budget::{solve_budget_mdp_with, BudgetMdpPolicy, BudgetProblem};
use crate::error::{CampaignId, PricingError, Result};
use crate::kernel::deadline::solve_deadline;
use crate::kernel::{KernelConfig, Sweep, TruncationTable};
use crate::policy::{DeadlinePolicy, PriceController};
use crate::problem::DeadlineProblem;
use crate::telemetry::RegistryTelemetry;
use ft_metrics::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Truncation mass used when a deadline campaign doesn't specify one.
pub const DEFAULT_EPS: f64 = 1e-9;

/// What a campaign asks the service to optimise.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CampaignSpec {
    /// Fixed deadline (Section 3): minimise expected cost.
    Deadline {
        problem: DeadlineProblem,
        /// Poisson-tail truncation mass; `None` = [`DEFAULT_EPS`].
        eps: Option<f64>,
    },
    /// Fixed budget (Section 4): minimise expected latency.
    Budget { problem: BudgetProblem },
}

impl CampaignSpec {
    /// `"deadline"` / `"budget"`.
    pub fn kind(&self) -> &'static str {
        match self {
            CampaignSpec::Deadline { .. } => "deadline",
            CampaignSpec::Budget { .. } => "budget",
        }
    }

    /// Structural validation with *structured errors*. Constructors like
    /// [`DeadlineProblem::new`] assert these invariants, but specs that
    /// arrive over the wire are deserialized field-by-field and bypass
    /// them — without this check a bad spec would panic (and wedge) the
    /// solve path instead of answering 400.
    pub fn validate(&self) -> Result<()> {
        fn bad(msg: String) -> Result<()> {
            Err(PricingError::InvalidProblem(msg))
        }
        let actions = match self {
            CampaignSpec::Deadline { problem, eps } => {
                if let Some(eps) = eps {
                    if !(*eps > 0.0 && *eps < 1.0) {
                        return bad(format!("eps must be in (0, 1), got {eps}"));
                    }
                }
                if problem.n_tasks == 0 {
                    return bad("zero tasks".into());
                }
                if problem.interval_arrivals.is_empty() {
                    return bad("zero intervals".into());
                }
                for &lam in &problem.interval_arrivals {
                    if !(lam >= 0.0 && lam.is_finite()) {
                        return bad(format!("interval arrival {lam} must be finite and ≥ 0"));
                    }
                }
                if !(problem.penalty.per_task().is_finite() && problem.penalty.per_task() >= 0.0) {
                    return bad("penalty must be finite and ≥ 0".into());
                }
                &problem.actions
            }
            CampaignSpec::Budget { problem } => {
                if problem.n_tasks == 0 {
                    return bad("zero tasks".into());
                }
                if !(problem.budget >= 0.0 && problem.budget.is_finite()) {
                    return bad(format!("budget {} must be finite and ≥ 0", problem.budget));
                }
                if !(problem.mean_rate > 0.0 && problem.mean_rate.is_finite()) {
                    return bad(format!(
                        "mean rate {} must be finite and > 0",
                        problem.mean_rate
                    ));
                }
                &problem.actions
            }
        };
        if actions.is_empty() {
            return bad("empty action set".into());
        }
        let mut prev: Option<(f64, f64)> = None;
        for i in 0..actions.len() {
            let a = actions.get(i);
            if !(a.reward >= 0.0 && a.reward.is_finite()) {
                return bad(format!("reward {} must be finite and ≥ 0", a.reward));
            }
            if !(0.0..=1.0).contains(&a.accept) {
                return bad(format!("acceptance {} must be in [0, 1]", a.accept));
            }
            if let Some((reward, accept)) = prev {
                if a.reward <= reward {
                    return bad(format!(
                        "rewards must be strictly increasing at {}",
                        a.reward
                    ));
                }
                if a.accept < accept - 1e-12 {
                    return bad(format!(
                        "acceptance must be non-decreasing in reward at {}",
                        a.reward
                    ));
                }
            }
            prev = Some((a.reward, a.accept));
        }
        Ok(())
    }
}

/// A solved campaign policy (one generation's table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CampaignPolicy {
    Deadline(DeadlinePolicy),
    Budget(BudgetMdpPolicy),
}

impl CampaignPolicy {
    fn kind(&self) -> &'static str {
        match self {
            CampaignPolicy::Deadline(_) => "deadline",
            CampaignPolicy::Budget(_) => "budget",
        }
    }
}

/// The live state a campaign reports when asking for a fresh price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObservedState {
    /// Deadline campaign: tasks remaining at the given interval index.
    Deadline { remaining: u32, interval: usize },
    /// Budget campaign: tasks remaining with the given cents unspent.
    Budget { remaining: u32, budget_cents: usize },
}

impl ObservedState {
    fn kind(&self) -> &'static str {
        match self {
            ObservedState::Deadline { .. } => "deadline",
            ObservedState::Budget { .. } => "budget",
        }
    }
}

/// Campaign lifecycle status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum CampaignStatus {
    /// Registered, not yet solved.
    Draft,
    /// First solve in flight; no policy to serve yet.
    Solving,
    /// Serving prices from the current policy generation.
    Live,
    /// A re-solve is in flight; readers stay on the previous generation.
    Recalibrating,
    /// Batch finished (or horizon passed); the last generation still
    /// answers price queries.
    Exhausted,
    /// Deleted; record kept as a tombstone, policy dropped.
    Evicted,
}

impl CampaignStatus {
    /// Lower-case status name (the wire/status-endpoint encoding).
    pub fn as_str(&self) -> &'static str {
        match self {
            CampaignStatus::Draft => "draft",
            CampaignStatus::Solving => "solving",
            CampaignStatus::Live => "live",
            CampaignStatus::Recalibrating => "recalibrating",
            CampaignStatus::Exhausted => "exhausted",
            CampaignStatus::Evicted => "evicted",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => CampaignStatus::Draft,
            1 => CampaignStatus::Solving,
            2 => CampaignStatus::Live,
            3 => CampaignStatus::Recalibrating,
            4 => CampaignStatus::Exhausted,
            _ => CampaignStatus::Evicted,
        }
    }
}

/// One immutable solved-policy version. `reprice` answers from exactly
/// one of these; recalibration publishes the next one with a single
/// pointer swap.
#[derive(Debug, Clone)]
pub struct PolicyGeneration {
    /// 1 for the first solve, +1 per recalibration.
    pub generation: u64,
    /// First full-horizon interval a deadline policy covers (its tables
    /// are indexed by `interval - start`). Always 0 for budget policies.
    pub start: usize,
    pub policy: Arc<CampaignPolicy>,
}

/// A price answer tagged with the generation that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceQuote {
    pub price: f64,
    pub generation: u64,
}

/// One reported interval/batch outcome, as accepted by
/// [`CampaignRegistry::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CampaignObservation {
    /// Deadline campaign: completions seen in full-horizon interval
    /// `interval` at reward `posted` (`None` = whatever the live policy
    /// quoted for the campaign's tracked remaining count).
    Deadline {
        interval: usize,
        completions: u64,
        posted: Option<f64>,
    },
    /// Budget campaign: completions picked up and cents spent since the
    /// last report.
    Budget {
        completions: u64,
        spent_cents: usize,
    },
}

/// What [`CampaignRegistry::observe`] did with a report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObserveOutcome {
    pub status: CampaignStatus,
    /// Generation serving *after* this observation.
    pub generation: u64,
    /// Arrival-correction ratio ρ̂ (1.0 for budget campaigns).
    pub correction: f64,
    /// Whether this observation triggered a re-solve and generation bump.
    pub recalibrated: bool,
    /// Registry-tracked remaining tasks after the observation.
    pub remaining: u32,
}

/// Status + diagnostics snapshot for one campaign (the `GET
/// /campaigns/{id}` payload).
#[derive(Debug, Clone, Serialize)]
pub struct CampaignReport {
    pub id: CampaignId,
    pub kind: String,
    pub status: CampaignStatus,
    pub generation: u64,
    pub n_tasks: u32,
    /// Registry-tracked remaining tasks (`None` before the first solve).
    pub remaining: Option<u32>,
    /// Observed intervals so far (deadline) or observation reports
    /// (budget).
    pub observations: usize,
    /// Arrival-correction ratio ρ̂ (deadline only).
    pub correction: Option<f64>,
    /// First interval the live policy covers (deadline only).
    pub policy_start: Option<usize>,
    /// Cents spent so far (budget only).
    pub spent_cents: Option<usize>,
}

/// Per-kind live machinery behind a campaign's writer lock.
enum Engine {
    /// Draft/Solving/Evicted: nothing solved (or policy dropped).
    Unsolved,
    Deadline {
        /// Boxed: the pricer (problem + history + policy tables) dwarfs
        /// the other variants.
        pricer: Box<AdaptivePricer>,
        remaining: u32,
    },
    Budget {
        remaining: u32,
        spent_cents: usize,
        observations: usize,
    },
}

/// Writer-side state of a campaign.
struct CampaignState {
    spec: CampaignSpec,
    engine: Engine,
}

/// One registered campaign (keyed by id in the registry map).
struct Campaign {
    status: AtomicU8,
    state: Mutex<CampaignState>,
    live: RwLock<Option<Arc<PolicyGeneration>>>,
}

impl Campaign {
    fn new(spec: CampaignSpec) -> Self {
        Self {
            status: AtomicU8::new(CampaignStatus::Draft as u8),
            state: Mutex::new(CampaignState {
                spec,
                engine: Engine::Unsolved,
            }),
            live: RwLock::new(None),
        }
    }

    fn status(&self) -> CampaignStatus {
        CampaignStatus::from_u8(self.status.load(Ordering::Acquire))
    }

    fn set_status(&self, s: CampaignStatus) {
        self.status.store(s as u8, Ordering::Release);
    }

    fn generation(&self) -> Option<Arc<PolicyGeneration>> {
        self.live
            .read()
            .expect("campaign generation lock poisoned")
            .clone()
    }

    /// Publish a new generation: the single atomic pointer swap readers
    /// observe.
    fn publish(&self, generation: u64, start: usize, policy: Arc<CampaignPolicy>) {
        let mut live = self
            .live
            .write()
            .expect("campaign generation lock poisoned");
        *live = Some(Arc::new(PolicyGeneration {
            generation,
            start,
            policy,
        }));
    }
}

/// The concurrent campaign store behind `PricingService` and `ft-server`.
pub struct CampaignRegistry {
    cfg: KernelConfig,
    adaptive: AdaptiveOptions,
    next_id: AtomicU64,
    campaigns: RwLock<HashMap<CampaignId, Arc<Campaign>>>,
    telemetry: RegistryTelemetry,
}

impl Default for CampaignRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Split a worker budget between batch-level (outer) and kernel-level
/// (inner) parallelism, resolving the requested count **once** so both
/// sides of the split are derived from the same number.
///
/// (Historically the service resolved `cfg.threads` twice — once for the
/// split arithmetic and again inside `par_map` — so the two reads could
/// disagree and over-subscribe; see `thread_split_resolves_once`.)
pub(crate) fn split_threads(requested: usize, batch_len: usize) -> (usize, usize) {
    let outer = ft_exec::resolve_threads(requested);
    let inner = (outer / batch_len.max(1)).max(1);
    (outer, inner)
}

impl CampaignRegistry {
    pub fn new() -> Self {
        Self::with_config(KernelConfig::default(), AdaptiveOptions::default())
    }

    /// Explicit kernel + recalibration configuration (e.g.
    /// [`KernelConfig::serial`] in latency-sensitive embedders, or a
    /// shorter `resolve_every` for aggressive recalibration).
    pub fn with_config(cfg: KernelConfig, adaptive: AdaptiveOptions) -> Self {
        Self::with_metrics(cfg, adaptive, Arc::new(MetricsRegistry::new()))
    }

    /// Like [`CampaignRegistry::with_config`], sharing a caller-owned
    /// metrics plane — `ft-server` passes its own so one `/metrics`
    /// export covers both the HTTP layer and the registry.
    pub fn with_metrics(
        cfg: KernelConfig,
        adaptive: AdaptiveOptions,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        Self {
            cfg,
            adaptive,
            next_id: AtomicU64::new(1),
            campaigns: RwLock::new(HashMap::new()),
            telemetry: RegistryTelemetry::new(metrics),
        }
    }

    /// The shared observability plane this registry reports into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.telemetry.metrics()
    }

    /// The registry's pre-resolved instruments.
    pub fn telemetry(&self) -> &RegistryTelemetry {
        &self.telemetry
    }

    fn get(&self, id: CampaignId) -> Result<Arc<Campaign>> {
        self.campaigns
            .read()
            .expect("campaign registry lock poisoned")
            .get(&id)
            .cloned()
            .ok_or(PricingError::UnknownCampaign(id))
    }

    /// Register a campaign as a draft; returns its fresh id.
    pub fn register(&self, spec: CampaignSpec) -> CampaignId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.insert(id, spec);
        id
    }

    /// Register (or replace) a campaign under a caller-chosen id.
    pub fn register_at(&self, id: CampaignId, spec: CampaignSpec) {
        // Reserve the id *before* inserting, so a concurrent
        // auto-assigning `register` can't be handed the same id and
        // silently overwrite this record.
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        self.insert(id, spec);
    }

    fn insert(&self, id: CampaignId, spec: CampaignSpec) {
        let campaign = Arc::new(Campaign::new(spec));
        self.campaigns
            .write()
            .expect("campaign registry lock poisoned")
            .insert(id, campaign);
    }

    /// Solve a draft campaign with the registry's full worker budget and
    /// publish generation 1. `Draft → Solving → Live`.
    pub fn solve(&self, id: CampaignId) -> Result<Arc<PolicyGeneration>> {
        self.solve_with(id, &self.cfg)
    }

    fn solve_with(&self, id: CampaignId, cfg: &KernelConfig) -> Result<Arc<PolicyGeneration>> {
        let campaign = self.get(id)?;
        // Check-and-claim under the writer lock so concurrent solves
        // cannot both start.
        let spec = {
            let state = campaign.state.lock().expect("campaign lock poisoned");
            let status = campaign.status();
            if status != CampaignStatus::Draft {
                return Err(PricingError::NotServable {
                    id,
                    status: status.as_str(),
                });
            }
            campaign.set_status(CampaignStatus::Solving);
            state.spec.clone()
        };
        // The expensive part runs with no lock held at all.
        let started = Instant::now();
        let solved = self.solve_spec(&spec, cfg);
        self.telemetry.solve_ns.record_duration(started.elapsed());
        let mut state = campaign.state.lock().expect("campaign lock poisoned");
        if campaign.status() != CampaignStatus::Solving {
            // Evicted while we were solving; drop the result.
            self.telemetry.solve_errors.inc();
            return Err(PricingError::NotServable {
                id,
                status: campaign.status().as_str(),
            });
        }
        match solved {
            Ok((engine, policy, start)) => {
                state.engine = engine;
                let policy = Arc::new(policy);
                campaign.publish(1, start, Arc::clone(&policy));
                campaign.set_status(CampaignStatus::Live);
                self.telemetry.solves.inc();
                self.telemetry.generation_swaps.inc();
                Ok(campaign.generation().expect("just published"))
            }
            Err(e) => {
                campaign.set_status(CampaignStatus::Draft);
                self.telemetry.solve_errors.inc();
                Err(e)
            }
        }
    }

    /// Solve a spec into its engine + first policy generation. Validates
    /// first and converts any residual solver panic into a structured
    /// error, so a bad spec can never wedge a campaign in `Solving`.
    fn solve_spec(
        &self,
        spec: &CampaignSpec,
        cfg: &KernelConfig,
    ) -> Result<(Engine, CampaignPolicy, usize)> {
        spec.validate()?;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.solve_spec_inner(spec, cfg)
        }))
        .unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "solver panicked".into());
            Err(PricingError::SearchFailed(format!(
                "solver panicked: {msg}"
            )))
        })
    }

    fn solve_spec_inner(
        &self,
        spec: &CampaignSpec,
        cfg: &KernelConfig,
    ) -> Result<(Engine, CampaignPolicy, usize)> {
        match spec {
            CampaignSpec::Deadline { problem, eps } => {
                let eps = eps.unwrap_or(DEFAULT_EPS);
                let trunc = TruncationTable::with_eps(problem, eps);
                let policy = solve_deadline(problem, &trunc, Sweep::MonotoneDivide, cfg)?;
                let pricer = AdaptivePricer::from_parts(
                    problem.clone(),
                    AdaptiveOptions {
                        truncation_eps: eps,
                        ..self.adaptive
                    },
                    Vec::new(),
                    1.0,
                    policy.clone(),
                    0,
                )?;
                let remaining = problem.n_tasks;
                Ok((
                    Engine::Deadline {
                        pricer: Box::new(pricer),
                        remaining,
                    },
                    CampaignPolicy::Deadline(policy),
                    0,
                ))
            }
            CampaignSpec::Budget { problem } => {
                let policy = solve_budget_mdp_with(problem, cfg)?;
                Ok((
                    Engine::Budget {
                        remaining: problem.n_tasks,
                        spent_cents: 0,
                        observations: 0,
                    },
                    CampaignPolicy::Budget(policy),
                    0,
                ))
            }
        }
    }

    /// Register (or replace) the campaign at `id` and solve it *before*
    /// swapping it in: when `id` already serves a policy, readers keep
    /// answering from the old generation until the new solve succeeds
    /// (one atomic map swap), and a failed solve leaves the existing
    /// record untouched. A previously unknown id is left registered as a
    /// draft on failure so the rejection stays inspectable.
    pub fn submit_at(
        &self,
        id: CampaignId,
        spec: CampaignSpec,
        cfg: &KernelConfig,
    ) -> Result<Arc<PolicyGeneration>> {
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        let started = Instant::now();
        let solved = self.solve_spec(&spec, cfg);
        self.telemetry.solve_ns.record_duration(started.elapsed());
        match solved {
            Ok((engine, policy, start)) => {
                self.telemetry.solves.inc();
                let campaign = Arc::new(Campaign::new(spec));
                campaign
                    .state
                    .lock()
                    .expect("campaign lock poisoned")
                    .engine = engine;
                let policy = Arc::new(policy);
                // Swap the record in with a generation that continues
                // the old record's numbering. The old generation must be
                // read under the old record's writer lock (an in-flight
                // recalibration publishes under the same lock), but we
                // never wait on that lock while holding the map lock —
                // a recalibration can run for a whole solve, and the
                // quote hot path must keep draining behind the map
                // lock. Hence: lock the old record first, then take the
                // map lock and verify the record is still current,
                // retrying if a racing submit swapped it meanwhile.
                loop {
                    let old = self
                        .campaigns
                        .read()
                        .expect("campaign registry lock poisoned")
                        .get(&id)
                        .cloned();
                    let mut old_state = old
                        .as_ref()
                        .map(|old| old.state.lock().expect("campaign lock poisoned"));
                    let mut map = self
                        .campaigns
                        .write()
                        .expect("campaign registry lock poisoned");
                    let current = map.get(&id);
                    let still_current = match (&old, current) {
                        (None, None) => true,
                        (Some(old), Some(current)) => Arc::ptr_eq(old, current),
                        _ => false,
                    };
                    if !still_current {
                        continue; // lost a race with another submit/purge
                    }
                    let generation = match &old {
                        Some(old) => {
                            let generation = old.generation().map_or(1, |g| g.generation + 1);
                            // Retire the old record so detached handles
                            // can't serve or bump generations after the
                            // swap (and its solver machinery frees now,
                            // not when the last stale Arc drops).
                            if let Some(state) = old_state.as_mut() {
                                state.engine = Engine::Unsolved;
                            }
                            *old.live.write().expect("campaign generation lock poisoned") = None;
                            old.set_status(CampaignStatus::Evicted);
                            generation
                        }
                        None => 1,
                    };
                    drop(old_state);
                    self.telemetry.generation_swaps.inc();
                    campaign.publish(generation, start, Arc::clone(&policy));
                    campaign.set_status(CampaignStatus::Live);
                    // Read the published generation back *before*
                    // releasing the map lock — once other threads can
                    // see the record, a racing submit may already have
                    // retired it again.
                    let published = campaign.generation().expect("just published");
                    map.insert(id, Arc::clone(&campaign));
                    return Ok(published);
                }
            }
            Err(e) => {
                self.telemetry.solve_errors.inc();
                let known = self
                    .campaigns
                    .read()
                    .expect("campaign registry lock poisoned")
                    .contains_key(&id);
                if !known {
                    self.insert(id, spec);
                }
                Err(e)
            }
        }
    }

    /// [`CampaignRegistry::submit_at`] over a whole batch, dividing the
    /// worker budget between batch-level and kernel-level parallelism.
    /// Returns per-campaign results in input order; failures don't fail
    /// the batch.
    pub fn submit_many(
        &self,
        batch: Vec<(CampaignId, CampaignSpec)>,
    ) -> Vec<(CampaignId, Result<Arc<PolicyGeneration>>)> {
        let (outer, inner_threads) = split_threads(self.cfg.threads, batch.len());
        let inner = KernelConfig {
            threads: inner_threads,
            grain: self.cfg.grain,
        };
        let solved = ft_exec::par_map(batch.len(), 1, outer, |i| {
            self.submit_at(batch[i].0, batch[i].1.clone(), &inner)
        });
        batch.into_iter().map(|(id, _)| id).zip(solved).collect()
    }

    /// Solve a batch of draft campaigns concurrently, dividing the worker
    /// budget between batch-level and kernel-level parallelism. Returns
    /// per-campaign results in input order; failures don't fail the
    /// batch.
    pub fn solve_many(
        &self,
        ids: &[CampaignId],
    ) -> Vec<(CampaignId, Result<Arc<PolicyGeneration>>)> {
        let (outer, inner_threads) = split_threads(self.cfg.threads, ids.len());
        let inner = KernelConfig {
            threads: inner_threads,
            grain: self.cfg.grain,
        };
        let solved = ft_exec::par_map(ids.len(), 1, outer, |i| self.solve_with(ids[i], &inner));
        ids.iter().copied().zip(solved).collect()
    }

    /// The reprice hot path: answer from the campaign's current policy
    /// generation. Never blocks on a solve — a concurrent recalibration
    /// keeps this answering from the previous generation until its one
    /// pointer swap.
    pub fn quote(&self, id: CampaignId, state: ObservedState) -> Result<PriceQuote> {
        self.telemetry.quotes.inc();
        let result = self.quote_inner(id, state);
        if result.is_err() {
            self.telemetry.quote_errors.inc();
        }
        result
    }

    fn quote_inner(&self, id: CampaignId, state: ObservedState) -> Result<PriceQuote> {
        let mut campaign = self.get(id)?;
        let current = match campaign.generation() {
            Some(current) => current,
            None => {
                // A replacement (`submit_at`) retires the old record
                // under the map write lock before swapping the new one
                // in; a reader that fetched the old handle just before
                // the swap re-fetches once and lands on the
                // replacement. A genuinely evicted/unsolved campaign
                // re-fetches the same record and errors.
                let fresh = self.get(id)?;
                let replaced = !Arc::ptr_eq(&fresh, &campaign);
                campaign = fresh;
                match campaign.generation() {
                    Some(current) if replaced => current,
                    _ => {
                        return Err(PricingError::NotServable {
                            id,
                            status: campaign.status().as_str(),
                        })
                    }
                }
            }
        };
        match (current.policy.as_ref(), state) {
            (
                CampaignPolicy::Deadline(p),
                ObservedState::Deadline {
                    remaining,
                    interval,
                },
            ) => {
                // The generation's tables cover intervals `start..`;
                // clamp onto them (PriceController clamps n and t).
                let rel = interval.saturating_sub(current.start);
                Ok(PriceQuote {
                    price: p.price(remaining, rel),
                    generation: current.generation,
                })
            }
            (
                CampaignPolicy::Budget(p),
                ObservedState::Budget {
                    remaining,
                    budget_cents,
                },
            ) => p
                // Off-table states answer from the nearest table edge.
                .price(
                    remaining.min(p.n_tasks()),
                    budget_cents.min(p.budget_cents()),
                )
                .map(|c| PriceQuote {
                    price: f64::from(c),
                    generation: current.generation,
                })
                .ok_or_else(|| {
                    PricingError::Infeasible(format!(
                        "campaign {id}: no feasible price with {remaining} tasks and \
                         {budget_cents} cents"
                    ))
                }),
            (policy, state) => Err(PricingError::StateKindMismatch {
                id,
                expected: policy.kind(),
                got: state.kind(),
            }),
        }
    }

    /// Report a completed interval (deadline) or batch progress (budget).
    ///
    /// Deadline reports feed the [`AdaptivePricer`]: the correction ratio
    /// ρ̂ is updated, and on the recalibration schedule the remaining
    /// horizon is re-solved with corrected arrivals and published as the
    /// next policy generation. Skipped intervals are treated as censored.
    /// Budget campaigns only track progress — their MDP table already
    /// answers every `(remaining, budget)` state, so drift in arrivals
    /// changes latency, not prices.
    pub fn observe(&self, id: CampaignId, obs: CampaignObservation) -> Result<ObserveOutcome> {
        let result = self.observe_inner(id, obs);
        match &result {
            Ok(outcome) => {
                self.telemetry.observes.inc();
                if outcome.recalibrated {
                    self.telemetry.recalibrations.inc();
                    self.telemetry.generation_swaps.inc();
                }
            }
            Err(_) => self.telemetry.observe_errors.inc(),
        }
        result
    }

    fn observe_inner(&self, id: CampaignId, obs: CampaignObservation) -> Result<ObserveOutcome> {
        let campaign = self.get(id)?;
        let mut state = campaign.state.lock().expect("campaign lock poisoned");
        let status = campaign.status();
        if !matches!(
            status,
            CampaignStatus::Live | CampaignStatus::Recalibrating | CampaignStatus::Exhausted
        ) {
            return Err(PricingError::NotServable {
                id,
                status: status.as_str(),
            });
        }
        match (&mut state.engine, obs) {
            (
                Engine::Deadline { pricer, remaining },
                CampaignObservation::Deadline {
                    interval,
                    completions,
                    posted,
                },
            ) => {
                if interval < pricer.observations() {
                    return Err(PricingError::InvalidProblem(format!(
                        "campaign {id}: interval {interval} already observed (next is {})",
                        pricer.observations()
                    )));
                }
                if interval >= pricer.problem().n_intervals() {
                    return Err(PricingError::InvalidProblem(format!(
                        "campaign {id}: interval {interval} past the {}-interval horizon",
                        pricer.problem().n_intervals()
                    )));
                }
                let posted = posted.unwrap_or_else(|| {
                    let rel = interval.saturating_sub(pricer.policy_start());
                    pricer.policy().price(*remaining, rel)
                });
                // Validate the report *before* mutating history: a
                // rejected observation must leave the campaign exactly
                // as it was (no phantom censored intervals).
                pricer.validate_posted(posted)?;
                // Unreported intervals carry no signal.
                while pricer.observations() < interval {
                    pricer.observe_censored();
                }
                pricer.try_observe(posted, completions)?;
                *remaining = remaining.saturating_sub(completions.min(u64::from(u32::MAX)) as u32);
                let exhausted =
                    *remaining == 0 || pricer.observations() >= pricer.problem().n_intervals();

                // Recalibrate on schedule: solve with only this
                // campaign's writer lock held, then swap the generation.
                let mut recalibrated = false;
                if !exhausted {
                    campaign.set_status(CampaignStatus::Recalibrating);
                    if pricer.maybe_resolve() {
                        let prev = campaign
                            .generation()
                            .expect("live campaign has a generation");
                        campaign.publish(
                            prev.generation + 1,
                            pricer.policy_start(),
                            Arc::new(CampaignPolicy::Deadline(pricer.policy().clone())),
                        );
                        recalibrated = true;
                    }
                }
                campaign.set_status(if exhausted {
                    CampaignStatus::Exhausted
                } else {
                    CampaignStatus::Live
                });
                let generation = campaign
                    .generation()
                    .expect("live campaign has a generation")
                    .generation;
                Ok(ObserveOutcome {
                    status: campaign.status(),
                    generation,
                    correction: pricer.correction(),
                    recalibrated,
                    remaining: *remaining,
                })
            }
            (
                Engine::Budget {
                    remaining,
                    spent_cents,
                    observations,
                },
                CampaignObservation::Budget {
                    completions,
                    spent_cents: spent,
                },
            ) => {
                *remaining = remaining.saturating_sub(completions.min(u64::from(u32::MAX)) as u32);
                // Untrusted input: saturate, and cap the accumulator at
                // the f64-exact integer range so snapshots/report JSON
                // stay lossless.
                const MAX_SPENT: usize = (1 << 53) - 1;
                *spent_cents = spent_cents.saturating_add(spent).min(MAX_SPENT);
                *observations += 1;
                if *remaining == 0 {
                    campaign.set_status(CampaignStatus::Exhausted);
                }
                let generation = campaign
                    .generation()
                    .expect("live campaign has a generation")
                    .generation;
                Ok(ObserveOutcome {
                    status: campaign.status(),
                    generation,
                    correction: 1.0,
                    recalibrated: false,
                    remaining: *remaining,
                })
            }
            (engine, obs) => {
                let expected = match engine {
                    Engine::Deadline { .. } => "deadline",
                    Engine::Budget { .. } => "budget",
                    Engine::Unsolved => "unsolved",
                };
                let got = match obs {
                    CampaignObservation::Deadline { .. } => "deadline",
                    CampaignObservation::Budget { .. } => "budget",
                };
                Err(PricingError::StateKindMismatch { id, expected, got })
            }
        }
    }

    /// Status + diagnostics for one campaign.
    pub fn report(&self, id: CampaignId) -> Result<CampaignReport> {
        let campaign = self.get(id)?;
        let state = campaign.state.lock().expect("campaign lock poisoned");
        let generation = campaign.generation().map_or(0, |g| g.generation);
        let (n_tasks, kind) = match &state.spec {
            CampaignSpec::Deadline { problem, .. } => (problem.n_tasks, "deadline"),
            CampaignSpec::Budget { problem } => (problem.n_tasks, "budget"),
        };
        let mut report = CampaignReport {
            id,
            kind: kind.to_string(),
            status: campaign.status(),
            generation,
            n_tasks,
            remaining: None,
            observations: 0,
            correction: None,
            policy_start: None,
            spent_cents: None,
        };
        match &state.engine {
            Engine::Unsolved => {}
            Engine::Deadline { pricer, remaining } => {
                report.remaining = Some(*remaining);
                report.observations = pricer.observations();
                report.correction = Some(pricer.correction());
                report.policy_start = Some(pricer.policy_start());
            }
            Engine::Budget {
                remaining,
                spent_cents,
                observations,
            } => {
                report.remaining = Some(*remaining);
                report.observations = *observations;
                report.spent_cents = Some(*spent_cents);
            }
        }
        Ok(report)
    }

    /// The campaign's current policy generation, if solved.
    pub fn generation(&self, id: CampaignId) -> Option<Arc<PolicyGeneration>> {
        self.get(id).ok().and_then(|c| c.generation())
    }

    /// Evict a campaign: drop its policy and machinery, keep a tombstone
    /// record (its spec stays readable through [`CampaignRegistry::report`]
    /// and snapshots). Returns whether a non-evicted campaign existed.
    ///
    /// Tombstones accumulate; long-running embedders with heavy
    /// register/evict churn should follow up with
    /// [`CampaignRegistry::purge`] once the id no longer needs to
    /// answer status queries.
    pub fn evict(&self, id: CampaignId) -> bool {
        let Ok(campaign) = self.get(id) else {
            return false;
        };
        let mut state = campaign.state.lock().expect("campaign lock poisoned");
        if campaign.status() == CampaignStatus::Evicted {
            return false;
        }
        state.engine = Engine::Unsolved;
        *campaign
            .live
            .write()
            .expect("campaign generation lock poisoned") = None;
        campaign.set_status(CampaignStatus::Evicted);
        true
    }

    /// Remove a campaign record entirely — no tombstone, its id stops
    /// answering status queries (404 over HTTP) and disappears from
    /// snapshots. Returns whether a record existed.
    pub fn purge(&self, id: CampaignId) -> bool {
        self.campaigns
            .write()
            .expect("campaign registry lock poisoned")
            .remove(&id)
            .is_some()
    }

    /// All registered campaign ids (ascending; includes tombstones).
    pub fn ids(&self) -> Vec<CampaignId> {
        let mut ids: Vec<CampaignId> = self
            .campaigns
            .read()
            .expect("campaign registry lock poisoned")
            .keys()
            .copied()
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Number of non-evicted campaigns.
    pub fn len(&self) -> usize {
        self.campaigns
            .read()
            .expect("campaign registry lock poisoned")
            .values()
            .filter(|c| c.status() != CampaignStatus::Evicted)
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Campaign counts bucketed by lifecycle status, in enum order —
    /// the `/healthz` fleet summary.
    pub fn status_counts(&self) -> [(CampaignStatus, usize); 6] {
        let mut counts = [
            (CampaignStatus::Draft, 0),
            (CampaignStatus::Solving, 0),
            (CampaignStatus::Live, 0),
            (CampaignStatus::Recalibrating, 0),
            (CampaignStatus::Exhausted, 0),
            (CampaignStatus::Evicted, 0),
        ];
        for campaign in self
            .campaigns
            .read()
            .expect("campaign registry lock poisoned")
            .values()
        {
            counts[campaign.status() as usize].1 += 1;
        }
        counts
    }

    /// Number of campaigns currently holding a live policy generation.
    pub fn live_len(&self) -> usize {
        self.campaigns
            .read()
            .expect("campaign registry lock poisoned")
            .values()
            .filter(|c| c.generation().is_some())
            .count()
    }
}

// ---- snapshot persistence ---------------------------------------------

/// On-disk snapshot format version; bump on layout changes.
const SNAPSHOT_VERSION: u32 = 1;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Snapshot {
    format_version: u32,
    next_id: u64,
    campaigns: Vec<PersistedCampaign>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PersistedCampaign {
    id: u64,
    spec: CampaignSpec,
    status: CampaignStatus,
    generation: u64,
    engine: PersistedEngine,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum PersistedEngine {
    Unsolved,
    Deadline {
        opts: AdaptiveOptions,
        history: Vec<(f64, u64)>,
        correction: f64,
        policy: DeadlinePolicy,
        policy_start: usize,
        remaining: u32,
    },
    Budget {
        policy: BudgetMdpPolicy,
        remaining: u32,
        spent_cents: usize,
        observations: usize,
    },
}

impl CampaignRegistry {
    /// Serialize every campaign — spec, status, generation, observation
    /// history *and solved policy tables* — to a JSON snapshot.
    pub fn to_json(&self) -> Result<String> {
        // Snapshot the id → record handles first and release the map
        // lock: a campaign mid-recalibration holds its writer lock for
        // a whole solve, and blocking on it while holding the map lock
        // would stall every registration (and, on writer-preferring
        // RwLocks, the quote hot path) for that long.
        let mut records: Vec<(CampaignId, Arc<Campaign>)> = self
            .campaigns
            .read()
            .expect("campaign registry lock poisoned")
            .iter()
            .map(|(id, campaign)| (*id, Arc::clone(campaign)))
            .collect();
        records.sort_unstable_by_key(|(id, _)| *id);
        let mut persisted = Vec::with_capacity(records.len());
        for (id, campaign) in records {
            let state = campaign.state.lock().expect("campaign lock poisoned");
            let generation = campaign.generation().map_or(0, |g| g.generation);
            let engine = match &state.engine {
                Engine::Unsolved => PersistedEngine::Unsolved,
                Engine::Deadline { pricer, remaining } => PersistedEngine::Deadline {
                    opts: *pricer.options(),
                    history: pricer.history().to_vec(),
                    correction: pricer.correction(),
                    policy: pricer.policy().clone(),
                    policy_start: pricer.policy_start(),
                    remaining: *remaining,
                },
                Engine::Budget {
                    remaining,
                    spent_cents,
                    observations,
                } => {
                    let current = campaign.generation().ok_or_else(|| {
                        PricingError::InvalidProblem(format!(
                            "campaign {id}: budget engine without a generation"
                        ))
                    })?;
                    let CampaignPolicy::Budget(policy) = current.policy.as_ref() else {
                        return Err(PricingError::InvalidProblem(format!(
                            "campaign {id}: budget engine with a non-budget policy"
                        )));
                    };
                    PersistedEngine::Budget {
                        policy: policy.clone(),
                        remaining: *remaining,
                        spent_cents: *spent_cents,
                        observations: *observations,
                    }
                }
            };
            persisted.push(PersistedCampaign {
                id,
                spec: state.spec.clone(),
                status: campaign.status(),
                generation,
                engine,
            });
        }
        let snapshot = Snapshot {
            format_version: SNAPSHOT_VERSION,
            next_id: self.next_id.load(Ordering::Relaxed),
            campaigns: persisted,
        };
        serde_json::to_string(&snapshot)
            .map_err(|e| PricingError::InvalidProblem(format!("snapshot serialize: {e}")))
    }

    /// Rebuild a registry from [`CampaignRegistry::to_json`] output.
    /// Live campaigns resume at their persisted generation without
    /// re-solving; campaigns that were mid-solve come back as drafts.
    pub fn from_json(json: &str, cfg: KernelConfig, adaptive: AdaptiveOptions) -> Result<Self> {
        let snapshot: Snapshot = serde_json::from_str(json)
            .map_err(|e| PricingError::InvalidProblem(format!("snapshot parse: {e}")))?;
        if snapshot.format_version != SNAPSHOT_VERSION {
            return Err(PricingError::InvalidProblem(format!(
                "snapshot format {} unsupported (expected {SNAPSHOT_VERSION})",
                snapshot.format_version
            )));
        }
        let registry = Self::with_config(cfg, adaptive);
        for persisted in snapshot.campaigns {
            let id = persisted.id;
            let campaign = Arc::new(Campaign::new(persisted.spec));
            let status = match persisted.status {
                // A solve or recalibration that was in flight at snapshot
                // time produced nothing durable.
                CampaignStatus::Solving => CampaignStatus::Draft,
                CampaignStatus::Recalibrating => CampaignStatus::Live,
                s => s,
            };
            match persisted.engine {
                PersistedEngine::Unsolved => {}
                PersistedEngine::Deadline {
                    opts,
                    history,
                    correction,
                    policy,
                    policy_start,
                    remaining,
                } => {
                    let problem = {
                        let state = campaign.state.lock().expect("campaign lock poisoned");
                        match &state.spec {
                            CampaignSpec::Deadline { problem, .. } => problem.clone(),
                            CampaignSpec::Budget { .. } => {
                                return Err(PricingError::InvalidProblem(format!(
                                    "campaign {id}: deadline engine on a budget spec"
                                )))
                            }
                        }
                    };
                    let pricer = AdaptivePricer::from_parts(
                        problem,
                        opts,
                        history,
                        correction,
                        policy.clone(),
                        policy_start,
                    )?;
                    campaign.publish(
                        persisted.generation,
                        policy_start,
                        Arc::new(CampaignPolicy::Deadline(policy)),
                    );
                    campaign
                        .state
                        .lock()
                        .expect("campaign lock poisoned")
                        .engine = Engine::Deadline {
                        pricer: Box::new(pricer),
                        remaining,
                    };
                }
                PersistedEngine::Budget {
                    policy,
                    remaining,
                    spent_cents,
                    observations,
                } => {
                    campaign.publish(
                        persisted.generation,
                        0,
                        Arc::new(CampaignPolicy::Budget(policy)),
                    );
                    campaign
                        .state
                        .lock()
                        .expect("campaign lock poisoned")
                        .engine = Engine::Budget {
                        remaining,
                        spent_cents,
                        observations,
                    };
                }
            }
            if status == CampaignStatus::Evicted {
                *campaign
                    .live
                    .write()
                    .expect("campaign generation lock poisoned") = None;
                campaign
                    .state
                    .lock()
                    .expect("campaign lock poisoned")
                    .engine = Engine::Unsolved;
            }
            campaign.set_status(status);
            registry
                .campaigns
                .write()
                .expect("campaign registry lock poisoned")
                .insert(id, campaign);
        }
        registry.next_id.store(
            snapshot
                .next_id
                .max(registry.ids().last().map_or(0, |&m| m + 1)),
            Ordering::Relaxed,
        );
        Ok(registry)
    }

    /// Write a snapshot to `path` (see [`CampaignRegistry::to_json`]).
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        let json = self.to_json()?;
        std::fs::write(path, json)
            .map_err(|e| PricingError::InvalidProblem(format!("snapshot write: {e}")))
    }

    /// Load a snapshot written by [`CampaignRegistry::save`].
    pub fn load(
        path: &std::path::Path,
        cfg: KernelConfig,
        adaptive: AdaptiveOptions,
    ) -> Result<Self> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| PricingError::InvalidProblem(format!("snapshot read: {e}")))?;
        Self::from_json(&json, cfg, adaptive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::ActionSet;
    use crate::dp::solve_efficient;
    use crate::penalty::PenaltyModel;
    use crate::testkit::tiny_budget_problem;
    use ft_market::{LogitAcceptance, PriceGrid};
    use std::sync::atomic::AtomicBool;

    fn problem() -> DeadlineProblem {
        let acc = LogitAcceptance::new(4.0, 0.0, 30.0);
        DeadlineProblem::new(
            20,
            vec![50.0; 12],
            ActionSet::from_grid(PriceGrid::new(0, 20), &acc),
            PenaltyModel::Linear { per_task: 500.0 },
        )
    }

    fn deadline_spec() -> CampaignSpec {
        CampaignSpec::Deadline {
            problem: problem(),
            eps: None,
        }
    }

    #[test]
    fn lifecycle_draft_solve_live() {
        let registry = CampaignRegistry::new();
        let id = registry.register(deadline_spec());
        assert_eq!(registry.report(id).unwrap().status, CampaignStatus::Draft);
        // Drafts can't quote…
        assert_eq!(
            registry.quote(
                id,
                ObservedState::Deadline {
                    remaining: 20,
                    interval: 0
                }
            ),
            Err(PricingError::NotServable {
                id,
                status: "draft"
            })
        );
        // …until solved.
        let generation = registry.solve(id).unwrap();
        assert_eq!(generation.generation, 1);
        assert_eq!(registry.report(id).unwrap().status, CampaignStatus::Live);
        let quote = registry
            .quote(
                id,
                ObservedState::Deadline {
                    remaining: 20,
                    interval: 0,
                },
            )
            .unwrap();
        let direct = solve_efficient(&problem(), DEFAULT_EPS).unwrap();
        assert_eq!(quote.price, direct.price(20, 0));
        assert_eq!(quote.generation, 1);
        // Double-solve is a structured conflict.
        assert_eq!(
            registry.solve(id).unwrap_err(),
            PricingError::NotServable { id, status: "live" }
        );
    }

    #[test]
    fn drift_triggers_recalibration_and_generation_bump() {
        let registry = CampaignRegistry::new();
        let id = registry.register(deadline_spec());
        registry.solve(id).unwrap();
        // Report far fewer completions than the trained model expects for
        // enough intervals to cross the resolve schedule (default 3).
        let mut last = None;
        let mut recalibrated_any = false;
        for interval in 0..4 {
            let outcome = registry
                .observe(
                    id,
                    CampaignObservation::Deadline {
                        interval,
                        completions: 1,
                        posted: None,
                    },
                )
                .unwrap();
            recalibrated_any |= outcome.recalibrated;
            last = Some(outcome);
        }
        let outcome = last.unwrap();
        assert!(recalibrated_any, "no recalibration after 4 intervals");
        assert!(outcome.generation >= 2);
        // Quotes now come from (and report) the new generation, indexed
        // from its policy start.
        let quote = registry
            .quote(
                id,
                ObservedState::Deadline {
                    remaining: outcome.remaining,
                    interval: 4,
                },
            )
            .unwrap();
        assert_eq!(quote.generation, outcome.generation);
        let report = registry.report(id).unwrap();
        assert_eq!(report.status, CampaignStatus::Live);
        assert_eq!(report.generation, outcome.generation);
        assert!(report.policy_start.unwrap() > 0);
        assert_eq!(report.observations, 4);
    }

    #[test]
    fn observe_rejects_replays_and_censors_gaps() {
        let registry = CampaignRegistry::new();
        let id = registry.register(deadline_spec());
        registry.solve(id).unwrap();
        registry
            .observe(
                id,
                CampaignObservation::Deadline {
                    interval: 0,
                    completions: 2,
                    posted: None,
                },
            )
            .unwrap();
        // Replaying an already-observed interval is rejected.
        assert!(matches!(
            registry.observe(
                id,
                CampaignObservation::Deadline {
                    interval: 0,
                    completions: 2,
                    posted: None,
                }
            ),
            Err(PricingError::InvalidProblem(_))
        ));
        // Skipping ahead censors the gap instead of erroring.
        registry
            .observe(
                id,
                CampaignObservation::Deadline {
                    interval: 3,
                    completions: 1,
                    posted: None,
                },
            )
            .unwrap();
        assert_eq!(registry.report(id).unwrap().observations, 4);
        // Past the horizon is rejected.
        assert!(matches!(
            registry.observe(
                id,
                CampaignObservation::Deadline {
                    interval: 99,
                    completions: 0,
                    posted: None,
                }
            ),
            Err(PricingError::InvalidProblem(_))
        ));
        // A rejected report must leave the campaign untouched: a bad
        // posted reward at a skipped-ahead interval may not censor the
        // gap (regression: phantom censored intervals corrupted history
        // and blocked corrected re-reports forever).
        for bad_posted in [999.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                registry.observe(
                    id,
                    CampaignObservation::Deadline {
                        interval: 8,
                        completions: 1,
                        posted: Some(bad_posted),
                    }
                ),
                Err(PricingError::InvalidProblem(_))
            ));
        }
        assert_eq!(registry.report(id).unwrap().observations, 4);
        // The corrected re-report for the same span still works.
        registry
            .observe(
                id,
                CampaignObservation::Deadline {
                    interval: 5,
                    completions: 1,
                    posted: None,
                },
            )
            .unwrap();
        assert_eq!(registry.report(id).unwrap().observations, 6);
    }

    #[test]
    fn exhaustion_and_eviction() {
        let registry = CampaignRegistry::new();
        let id = registry.register(deadline_spec());
        registry.solve(id).unwrap();
        let outcome = registry
            .observe(
                id,
                CampaignObservation::Deadline {
                    interval: 0,
                    completions: 20,
                    posted: None,
                },
            )
            .unwrap();
        assert_eq!(outcome.status, CampaignStatus::Exhausted);
        assert_eq!(outcome.remaining, 0);
        // Exhausted campaigns still answer price queries.
        assert!(registry
            .quote(
                id,
                ObservedState::Deadline {
                    remaining: 0,
                    interval: 1
                }
            )
            .is_ok());
        // Eviction drops the policy but keeps a tombstone.
        assert!(registry.evict(id));
        assert!(!registry.evict(id));
        assert_eq!(registry.report(id).unwrap().status, CampaignStatus::Evicted);
        assert_eq!(
            registry.quote(
                id,
                ObservedState::Deadline {
                    remaining: 0,
                    interval: 1
                }
            ),
            Err(PricingError::NotServable {
                id,
                status: "evicted"
            })
        );
        assert_eq!(registry.len(), 0);
        assert_eq!(registry.ids(), vec![id]);
        // Purging removes even the tombstone.
        assert!(registry.purge(id));
        assert!(!registry.purge(id));
        assert!(registry.ids().is_empty());
        assert_eq!(
            registry.report(id).unwrap_err(),
            PricingError::UnknownCampaign(id)
        );
    }

    #[test]
    fn telemetry_counts_lifecycle_events() {
        let registry = CampaignRegistry::new();
        let id = registry.register(deadline_spec());
        registry.solve(id).unwrap();
        // A failed double-solve is a solve error, not a solve.
        registry.solve(id).unwrap_err();
        let good = ObservedState::Deadline {
            remaining: 20,
            interval: 0,
        };
        registry.quote(id, good).unwrap();
        registry.quote(id, good).unwrap();
        registry
            .quote(
                id,
                ObservedState::Budget {
                    remaining: 1,
                    budget_cents: 1,
                },
            )
            .unwrap_err();
        let mut recalibrations = 0;
        for interval in 0..4 {
            let outcome = registry
                .observe(
                    id,
                    CampaignObservation::Deadline {
                        interval,
                        completions: 1,
                        posted: None,
                    },
                )
                .unwrap();
            recalibrations += u64::from(outcome.recalibrated);
        }
        registry
            .observe(
                id,
                CampaignObservation::Deadline {
                    interval: 0,
                    completions: 1,
                    posted: None,
                },
            )
            .unwrap_err();
        assert!(recalibrations >= 1);
        let t = registry.telemetry();
        assert_eq!(t.solves.get(), 1);
        assert_eq!(t.solve_errors.get(), 0); // double-solve fails before solving
        assert_eq!(t.quotes.get(), 3);
        assert_eq!(t.quote_errors.get(), 1);
        assert_eq!(t.observes.get(), 4);
        assert_eq!(t.observe_errors.get(), 1);
        assert_eq!(t.recalibrations.get(), recalibrations);
        assert_eq!(t.generation_swaps.get(), 1 + recalibrations);
        assert_eq!(t.solve_ns.snapshot().count, 1);
        // The named instruments are visible through the shared plane.
        let exported = registry.metrics().to_prometheus();
        assert!(exported.contains("ft_core_quotes_total 3"));
        // Status counts feed /healthz.
        let live = registry
            .status_counts()
            .iter()
            .find(|(s, _)| *s == CampaignStatus::Live)
            .unwrap()
            .1;
        assert_eq!(live, 1);
    }

    #[test]
    fn budget_campaign_lifecycle() {
        let registry = CampaignRegistry::new();
        let id = registry.register(CampaignSpec::Budget {
            problem: tiny_budget_problem(),
        });
        registry.solve(id).unwrap();
        let quote = registry
            .quote(
                id,
                ObservedState::Budget {
                    remaining: 10,
                    budget_cents: 60,
                },
            )
            .unwrap();
        assert_eq!(quote.generation, 1);
        let outcome = registry
            .observe(
                id,
                CampaignObservation::Budget {
                    completions: 4,
                    spent_cents: 25,
                },
            )
            .unwrap();
        assert_eq!(outcome.remaining, 6);
        assert!(!outcome.recalibrated);
        let report = registry.report(id).unwrap();
        assert_eq!(report.spent_cents, Some(25));
        assert_eq!(report.observations, 1);
        // Mismatched observation kind is structured.
        assert_eq!(
            registry.observe(
                id,
                CampaignObservation::Deadline {
                    interval: 0,
                    completions: 1,
                    posted: None,
                }
            ),
            Err(PricingError::StateKindMismatch {
                id,
                expected: "budget",
                got: "deadline"
            })
        );
        let outcome = registry
            .observe(
                id,
                CampaignObservation::Budget {
                    completions: 6,
                    spent_cents: 35,
                },
            )
            .unwrap();
        assert_eq!(outcome.status, CampaignStatus::Exhausted);
    }

    #[test]
    fn snapshot_roundtrip_preserves_generations_and_history() {
        let registry = CampaignRegistry::new();
        let deadline_id = registry.register(deadline_spec());
        let budget_id = registry.register(CampaignSpec::Budget {
            problem: tiny_budget_problem(),
        });
        let draft_id = registry.register(deadline_spec());
        let evicted_id = registry.register(deadline_spec());
        registry.solve(deadline_id).unwrap();
        registry.solve(budget_id).unwrap();
        registry.solve(evicted_id).unwrap();
        registry.evict(evicted_id);
        // Drive the deadline campaign through a recalibration so the
        // snapshot carries a non-trivial generation + policy start.
        let mut outcome = None;
        let mut recalibrated_any = false;
        for interval in 0..4 {
            let o = registry
                .observe(
                    deadline_id,
                    CampaignObservation::Deadline {
                        interval,
                        completions: 1,
                        posted: None,
                    },
                )
                .unwrap();
            recalibrated_any |= o.recalibrated;
            outcome = Some(o);
        }
        let outcome = outcome.unwrap();
        assert!(recalibrated_any);
        assert!(outcome.generation >= 2);
        let probe = ObservedState::Deadline {
            remaining: outcome.remaining,
            interval: 5,
        };
        let before = registry.quote(deadline_id, probe).unwrap();

        let json = registry.to_json().unwrap();
        let restored =
            CampaignRegistry::from_json(&json, KernelConfig::default(), AdaptiveOptions::default())
                .unwrap();

        // Live campaigns resume at the same generation and price.
        let after = restored.quote(deadline_id, probe).unwrap();
        assert_eq!(after.generation, before.generation);
        assert_eq!(after.price, before.price);
        let report = restored.report(deadline_id).unwrap();
        assert_eq!(report.observations, 4);
        assert_eq!(report.remaining, Some(outcome.remaining));
        assert!((report.correction.unwrap() - outcome.correction).abs() < 1e-12);
        // Budget campaign resumes too.
        assert!(restored
            .quote(
                budget_id,
                ObservedState::Budget {
                    remaining: 10,
                    budget_cents: 60
                }
            )
            .is_ok());
        // Draft stays a draft; tombstone stays evicted.
        assert_eq!(
            restored.report(draft_id).unwrap().status,
            CampaignStatus::Draft
        );
        assert_eq!(
            restored.report(evicted_id).unwrap().status,
            CampaignStatus::Evicted
        );
        // Fresh ids don't collide with restored ones.
        let new_id = restored.register(deadline_spec());
        assert!(new_id > evicted_id);
        // Observation numbering continues where it left off.
        restored
            .observe(
                deadline_id,
                CampaignObservation::Deadline {
                    interval: 4,
                    completions: 1,
                    posted: None,
                },
            )
            .unwrap();
        assert_eq!(restored.report(deadline_id).unwrap().observations, 5);
    }

    #[test]
    fn invalid_wire_specs_are_structured_errors_not_panics() {
        // Deserialized specs bypass constructor asserts; both the
        // validator and the solve path must answer with InvalidProblem
        // instead of panicking (a panic used to wedge the campaign in
        // Solving forever).
        let registry = CampaignRegistry::new();
        let mut bad_eps = deadline_spec();
        if let CampaignSpec::Deadline { eps, .. } = &mut bad_eps {
            *eps = Some(-1.0);
        }
        let mut bad_arrivals = deadline_spec();
        if let CampaignSpec::Deadline { problem, .. } = &mut bad_arrivals {
            problem.interval_arrivals[2] = -5.0;
        }
        let mut bad_budget = CampaignSpec::Budget {
            problem: tiny_budget_problem(),
        };
        if let CampaignSpec::Budget { problem } = &mut bad_budget {
            problem.mean_rate = f64::NAN;
        }
        for spec in [bad_eps, bad_arrivals, bad_budget] {
            assert!(matches!(
                spec.validate(),
                Err(PricingError::InvalidProblem(_))
            ));
            let id = registry.register(spec);
            assert!(matches!(
                registry.solve(id),
                Err(PricingError::InvalidProblem(_))
            ));
            // The campaign is back to Draft, not wedged in Solving.
            assert_eq!(registry.report(id).unwrap().status, CampaignStatus::Draft);
        }
    }

    #[test]
    fn failed_resolve_keeps_previous_policy_serving() {
        // Re-solving a live campaign through submit_at must not leave a
        // window (or a permanent hole) where readers lose the old
        // policy: a failed replacement keeps the previous generation, a
        // successful one bumps it.
        let registry = CampaignRegistry::new();
        let id = 42;
        registry
            .submit_at(id, deadline_spec(), &KernelConfig::default())
            .unwrap();
        let probe = ObservedState::Deadline {
            remaining: 20,
            interval: 0,
        };
        let before = registry.quote(id, probe).unwrap();
        assert_eq!(before.generation, 1);

        // A failing replacement spec: the old policy keeps serving.
        let mut infeasible = tiny_budget_problem();
        infeasible.budget = 4.0;
        let err = registry
            .submit_at(
                id,
                CampaignSpec::Budget {
                    problem: infeasible,
                },
                &KernelConfig::default(),
            )
            .unwrap_err();
        assert!(matches!(err, PricingError::Infeasible(_)));
        let after = registry.quote(id, probe).unwrap();
        assert_eq!(after.generation, before.generation);
        assert_eq!(after.price.to_bits(), before.price.to_bits());
        assert_eq!(registry.report(id).unwrap().status, CampaignStatus::Live);

        // A successful replacement swaps in atomically at generation 2.
        let replaced = registry
            .submit_at(id, deadline_spec(), &KernelConfig::default())
            .unwrap();
        assert_eq!(replaced.generation, 2);
        assert_eq!(registry.quote(id, probe).unwrap().generation, 2);

        // A brand-new id whose solve fails is left as an inspectable draft.
        let mut infeasible = tiny_budget_problem();
        infeasible.budget = 4.0;
        assert!(registry
            .submit_at(
                7,
                CampaignSpec::Budget {
                    problem: infeasible,
                },
                &KernelConfig::default(),
            )
            .is_err());
        assert_eq!(registry.report(7).unwrap().status, CampaignStatus::Draft);
    }

    #[test]
    fn budget_spend_accounting_saturates() {
        let registry = CampaignRegistry::new();
        let id = registry.register(CampaignSpec::Budget {
            problem: tiny_budget_problem(),
        });
        registry.solve(id).unwrap();
        for _ in 0..3 {
            registry
                .observe(
                    id,
                    CampaignObservation::Budget {
                        completions: 0,
                        spent_cents: usize::MAX,
                    },
                )
                .unwrap();
        }
        // Clamped to the f64-exact range; report + snapshot stay lossless.
        let spent = registry.report(id).unwrap().spent_cents.unwrap();
        assert_eq!(spent, (1usize << 53) - 1);
        let json = registry.to_json().unwrap();
        let restored =
            CampaignRegistry::from_json(&json, KernelConfig::default(), AdaptiveOptions::default())
                .unwrap();
        assert_eq!(restored.report(id).unwrap().spent_cents.unwrap(), spent);
    }

    /// Replacing a live campaign (submit_at) races recalibrating
    /// observes and other submits: the served generation must stay
    /// monotone and each generation must map to exactly one price.
    #[test]
    fn concurrent_submit_keeps_generations_monotone() {
        use std::collections::HashMap as StdHashMap;

        let registry = CampaignRegistry::with_config(
            KernelConfig::default(),
            AdaptiveOptions {
                resolve_every: 1,
                ..AdaptiveOptions::default()
            },
        );
        let id = 5;
        registry
            .submit_at(id, deadline_spec(), &KernelConfig::default())
            .unwrap();
        let stop = AtomicBool::new(false);
        let start = std::sync::Barrier::new(4);
        let probe = ObservedState::Deadline {
            remaining: 15,
            interval: 4,
        };

        std::thread::scope(|scope| {
            let registry = &registry;
            let stop = &stop;
            let start = &start;

            // Two racing submitters re-solving the same id.
            let submitters: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(move || {
                        start.wait();
                        for _ in 0..3 {
                            registry
                                .submit_at(id, deadline_spec(), &KernelConfig::default())
                                .unwrap();
                        }
                        stop.store(true, Ordering::Release);
                    })
                })
                .collect();

            // An observer driving recalibration swaps on whatever
            // record is current (replaced records answer NotServable —
            // that's fine, only successful swaps matter here).
            let observer = scope.spawn(move || {
                start.wait();
                let mut interval = 0usize;
                loop {
                    let _ = registry.observe(
                        id,
                        CampaignObservation::Deadline {
                            interval,
                            completions: 1,
                            posted: None,
                        },
                    );
                    interval = (interval + 1) % 12;
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                }
            });

            // Reader: generations never go backwards, and a generation
            // never serves two different prices.
            let reader = scope.spawn(move || {
                start.wait();
                let mut last_generation = 0u64;
                let mut seen: StdHashMap<u64, f64> = StdHashMap::new();
                loop {
                    let quote = registry.quote(id, probe).unwrap();
                    assert!(
                        quote.generation >= last_generation,
                        "generation went backwards: {} after {last_generation}",
                        quote.generation
                    );
                    last_generation = quote.generation;
                    match seen.get(&quote.generation) {
                        None => {
                            seen.insert(quote.generation, quote.price);
                        }
                        Some(&price) => assert_eq!(
                            price.to_bits(),
                            quote.price.to_bits(),
                            "generation {} served two prices",
                            quote.generation
                        ),
                    }
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                }
                last_generation
            });

            for submitter in submitters {
                submitter.join().unwrap();
            }
            observer.join().unwrap();
            let last = reader.join().unwrap();
            // 1 initial + 6 replacements happened; the reader must have
            // ended at least at the replacements' floor.
            assert!(last >= 1);
            assert!(
                registry.generation(id).unwrap().generation >= 7,
                "six replacements must have bumped the generation"
            );
        });
    }

    /// Satellite: readers hammer the quote hot path while observes drive
    /// recalibration swaps and a batch solve churns other campaigns.
    /// Two invariants:
    ///
    /// 1. **No stale generation after a swap**: once an observe returns
    ///    generation `g`, every later quote reports ≥ `g`.
    /// 2. **No torn price**: a `(generation, price)` pair read at a fixed
    ///    probe state is a function of the generation — the same
    ///    generation can never be seen with two different prices.
    #[test]
    fn concurrent_reprice_observe_stress() {
        use std::collections::HashMap as StdHashMap;

        let registry = CampaignRegistry::with_config(
            KernelConfig::default(),
            AdaptiveOptions {
                resolve_every: 1, // recalibrate on every observe
                ..AdaptiveOptions::default()
            },
        );
        let id = registry.register(deadline_spec());
        registry.solve(id).unwrap();

        let stop = AtomicBool::new(false);
        let min_generation = AtomicU64::new(1);
        // Writer + churn + 3 readers start together so the observes race
        // the quotes even on a single-core host.
        let start = std::sync::Barrier::new(5);
        let probe = ObservedState::Deadline {
            remaining: 17,
            interval: 6,
        };

        std::thread::scope(|scope| {
            let registry = &registry;
            let stop = &stop;
            let min_generation = &min_generation;
            let start = &start;

            // Writer: observe every interval (each triggers a re-solve +
            // generation swap), with heavy drift so policies change.
            let writer = scope.spawn(move || {
                start.wait();
                for interval in 0..problem().n_intervals() {
                    let outcome = registry
                        .observe(
                            id,
                            CampaignObservation::Deadline {
                                interval,
                                completions: 1,
                                posted: None,
                            },
                        )
                        .unwrap();
                    // The swap is published before observe returns; no
                    // reader may see an older generation from here on.
                    min_generation.fetch_max(outcome.generation, Ordering::Release);
                    if outcome.status == CampaignStatus::Exhausted {
                        break;
                    }
                }
                stop.store(true, Ordering::Release);
            });

            // Churn: batch-register + solve other campaigns while the
            // readers run, so quotes race cache fills too.
            let churn = scope.spawn(move || {
                start.wait();
                let mut round = 0u64;
                loop {
                    let other = registry.register(CampaignSpec::Budget {
                        problem: tiny_budget_problem(),
                    });
                    let solved = registry.solve_many(&[other]);
                    assert!(solved[0].1.is_ok());
                    registry.evict(other);
                    registry.purge(other);
                    round += 1;
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                }
                assert!(round > 0, "churn thread never ran");
            });

            // Readers: quote in a tight loop, checking both invariants.
            let mut readers = Vec::new();
            for _ in 0..3 {
                readers.push(scope.spawn(move || {
                    start.wait();
                    let mut seen: StdHashMap<u64, f64> = StdHashMap::new();
                    let mut quotes = 0u64;
                    loop {
                        let floor = min_generation.load(Ordering::Acquire);
                        let quote = registry.quote(id, probe).unwrap();
                        assert!(
                            quote.generation >= floor,
                            "stale generation {} served after swap to {floor}",
                            quote.generation
                        );
                        match seen.get(&quote.generation) {
                            None => {
                                seen.insert(quote.generation, quote.price);
                            }
                            Some(&price) => assert_eq!(
                                price.to_bits(),
                                quote.price.to_bits(),
                                "torn read: generation {} seen with two prices",
                                quote.generation
                            ),
                        }
                        quotes += 1;
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                    }
                    (seen, quotes)
                }));
            }

            writer.join().unwrap();
            churn.join().unwrap();
            // Cross-reader consistency: generation → price must agree
            // across threads too.
            let mut global: StdHashMap<u64, f64> = StdHashMap::new();
            let mut total_quotes = 0u64;
            for reader in readers {
                let (seen, quotes) = reader.join().unwrap();
                total_quotes += quotes;
                for (generation, price) in seen {
                    if let Some(&prev) = global.get(&generation) {
                        assert_eq!(prev.to_bits(), price.to_bits());
                    } else {
                        global.insert(generation, price);
                    }
                }
            }
            assert!(total_quotes > 0, "readers never quoted");
            // The writer's swaps were visible: more than one generation
            // got served (resolve_every = 1 forces swaps).
            assert!(
                min_generation.load(Ordering::Acquire) > 1,
                "no recalibration swap happened during the stress run"
            );
        });
    }
}
