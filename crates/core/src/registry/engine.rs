//! Kind-polymorphic campaign engines.
//!
//! The registry used to hard-code deadline/budget behavior as match
//! arms over an `Engine` enum scattered through a 2,000-line file. A
//! campaign's per-kind machinery is now a [`CampaignEngine`] object the
//! registry drives through a small writer-side protocol:
//!
//! - [`CampaignEngine::observe`] applies one validated progress report
//!   and updates the engine's drift statistics;
//! - [`CampaignEngine::should_recalibrate`] says whether those
//!   statistics (plus the kind's cadence rules) warrant a re-solve now;
//! - [`CampaignEngine::recalibration_spec`] describes the re-solve the
//!   engine would run — the remaining scope and the drift correction it
//!   would apply;
//! - [`CampaignEngine::solve`] runs that re-solve and hands back the
//!   policy for the next generation (the registry publishes it with the
//!   usual single pointer swap);
//! - [`CampaignEngine::snapshot`] persists the engine for the versioned
//!   registry snapshot.
//!
//! Two implementations ship:
//!
//! - [`DeadlineEngine`] wraps the Section 5.2.5 [`AdaptivePricer`]:
//!   arrival-rate correction ρ̂ and remaining-horizon re-solves
//!   (unchanged behavior, now behind the trait).
//! - [`BudgetEngine`] implements the ROADMAP's open item: budget
//!   campaigns historically never recalibrated because their MDP table
//!   answers every `(remaining, budget)` state — but that table is only
//!   optimal for the *trained* acceptance curve `p(c)`. The engine
//!   tracks a windowed acceptance correction from observation reports
//!   that carry exposure (`offers` + `posted`): observed completions
//!   over `offers × p̂(posted)`. When the correction drifts past a
//!   threshold it re-solves the MDP on the remaining tasks and unspent
//!   budget with the acceptance curve *shifted in logit space* (see
//!   [`BudgetDriftOptions`] for why a shift and not a scale), and the
//!   registry publishes the result as a new generation exactly like a
//!   deadline recalibration.

use super::snapshot::PersistedEngine;
use super::{CampaignObservation, CampaignPolicy, CampaignReport};
use crate::actions::ActionSet;
use crate::adaptive::AdaptivePricer;
use crate::budget::{solve_budget_mdp_with, BudgetProblem};
use crate::error::{CampaignId, PricingError, Result};
use crate::policy::PriceController;
use crate::scheduler::SolveContext;
use serde::{Deserialize, Serialize};

/// What an observation did, engine-side. The registry turns this into
/// status transitions and (maybe) a recalibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(super) struct ObserveEffect {
    /// Drift-correction ratio after this report (arrival-level ρ̂ for
    /// deadline campaigns, acceptance-level for budget campaigns).
    pub correction: f64,
    /// Registry-tracked remaining tasks after the report.
    pub remaining: u32,
    /// The campaign is done (no tasks left / horizon passed).
    pub exhausted: bool,
    /// The engine wants [`CampaignEngine::solve`] run now.
    pub recalibrate: bool,
}

/// The re-solve a recalibration would run (diagnostics + the engines'
/// own solve input).
#[derive(Debug, Clone, PartialEq)]
pub enum RecalibrationSpec {
    /// Re-solve the remaining deadline horizon `start..` with trained
    /// arrivals scaled by `correction`.
    Deadline { start: usize, correction: f64 },
    /// Re-solve the budget MDP over `remaining` tasks and
    /// `budget_cents` unspent cents with the trained acceptance curve
    /// shifted by `shift` in logit space.
    Budget {
        remaining: u32,
        budget_cents: usize,
        shift: f64,
    },
}

/// Per-kind live machinery behind a campaign's writer lock.
pub(super) trait CampaignEngine: Send {
    /// `"deadline"` / `"budget"` — must match the observation kinds.
    fn kind(&self) -> &'static str;

    /// Apply one progress report. Validates before mutating anything
    /// (a rejected report must leave the engine untouched).
    fn observe(&mut self, id: CampaignId, obs: &CampaignObservation) -> Result<ObserveEffect>;

    /// Whether the drift statistics plus the kind's cadence warrant a
    /// re-solve now.
    fn should_recalibrate(&self) -> bool;

    /// The re-solve a recalibration would run right now, if any.
    fn recalibration_spec(&self) -> Option<RecalibrationSpec>;

    /// Run the recalibration re-solve. `Ok(Some((policy, start)))`
    /// hands the registry the next generation's policy; `Ok(None)`
    /// means nothing to do; `Err` keeps the previous generation
    /// serving. The context carries the kernel config plus the
    /// admitting wave's shared pmf cache (sharing is bitwise-invisible
    /// to the result).
    fn solve(&mut self, ctx: &SolveContext) -> Result<Option<(CampaignPolicy, usize)>>;

    /// Fill per-kind diagnostics into a status report.
    fn report(&self, report: &mut CampaignReport);

    /// Persist for the registry snapshot. `current` is the campaign's
    /// live generation (budget engines store their policy there).
    fn snapshot(&self, id: CampaignId, current: Option<&CampaignPolicy>)
        -> Result<PersistedEngine>;
}

// ---- deadline --------------------------------------------------------

/// Deadline campaigns: the [`AdaptivePricer`] behind the trait.
pub(super) struct DeadlineEngine {
    /// Boxed: the pricer (problem + history + policy tables) dwarfs the
    /// registry's other per-campaign state.
    pub pricer: Box<AdaptivePricer>,
    pub remaining: u32,
}

impl CampaignEngine for DeadlineEngine {
    fn kind(&self) -> &'static str {
        "deadline"
    }

    fn observe(&mut self, id: CampaignId, obs: &CampaignObservation) -> Result<ObserveEffect> {
        let CampaignObservation::Deadline {
            interval,
            completions,
            posted,
        } = *obs
        else {
            unreachable!("registry checked the observation kind");
        };
        let pricer = &mut self.pricer;
        if interval < pricer.observations() {
            return Err(PricingError::InvalidProblem(format!(
                "campaign {id}: interval {interval} already observed (next is {})",
                pricer.observations()
            )));
        }
        if interval >= pricer.problem().n_intervals() {
            return Err(PricingError::InvalidProblem(format!(
                "campaign {id}: interval {interval} past the {}-interval horizon",
                pricer.problem().n_intervals()
            )));
        }
        let posted = posted.unwrap_or_else(|| {
            let rel = interval.saturating_sub(pricer.policy_start());
            pricer.policy().price(self.remaining, rel)
        });
        // Validate the report *before* mutating history: a rejected
        // observation must leave the campaign exactly as it was (no
        // phantom censored intervals).
        pricer.validate_posted(posted)?;
        // Unreported intervals carry no signal.
        while pricer.observations() < interval {
            pricer.observe_censored();
        }
        pricer.try_observe(posted, completions)?;
        self.remaining = self
            .remaining
            .saturating_sub(completions.min(u64::from(u32::MAX)) as u32);
        let exhausted =
            self.remaining == 0 || pricer.observations() >= pricer.problem().n_intervals();
        Ok(ObserveEffect {
            correction: pricer.correction(),
            remaining: self.remaining,
            exhausted,
            recalibrate: !exhausted && self.should_recalibrate(),
        })
    }

    fn should_recalibrate(&self) -> bool {
        // The AdaptivePricer's own schedule: the next interval to price
        // is `resolve_every` or more past the active policy's start.
        let t = self.pricer.observations();
        t < self.pricer.problem().n_intervals()
            && t >= self.pricer.policy_start()
            && t - self.pricer.policy_start() >= self.pricer.options().resolve_every
    }

    fn recalibration_spec(&self) -> Option<RecalibrationSpec> {
        self.should_recalibrate()
            .then(|| RecalibrationSpec::Deadline {
                start: self.pricer.observations(),
                correction: self.pricer.correction(),
            })
    }

    fn solve(&mut self, ctx: &SolveContext) -> Result<Option<(CampaignPolicy, usize)>> {
        // The pricer re-solves the remaining horizon with corrected
        // arrivals; `false` means the inner solve failed (or there was
        // nothing to do) and the previous policy stays. Pmf rows are
        // resolved through the admitting wave's shared cache.
        if self.pricer.maybe_resolve_with(ctx.pmf_cache.as_ref()) {
            Ok(Some((
                CampaignPolicy::Deadline(self.pricer.policy().clone()),
                self.pricer.policy_start(),
            )))
        } else {
            Ok(None)
        }
    }

    fn report(&self, report: &mut CampaignReport) {
        report.remaining = Some(self.remaining);
        report.observations = self.pricer.observations();
        report.correction = Some(self.pricer.correction());
        report.policy_start = Some(self.pricer.policy_start());
    }

    fn snapshot(
        &self,
        _id: CampaignId,
        _current: Option<&CampaignPolicy>,
    ) -> Result<PersistedEngine> {
        Ok(PersistedEngine::Deadline {
            opts: *self.pricer.options(),
            history: self.pricer.history().to_vec(),
            correction: self.pricer.correction(),
            policy: self.pricer.policy().clone(),
            policy_start: self.pricer.policy_start(),
            remaining: self.remaining,
        })
    }
}

// ---- budget ----------------------------------------------------------

/// Drift policy for budget campaigns (the budget twin of
/// [`crate::adaptive::AdaptiveOptions`]).
///
/// Why a *logit shift* and not a scale factor: uniformly scaling every
/// acceptance `p(c) → s·p(c)` scales the MDP value function by `1/s`
/// but leaves every argmin — every price — unchanged (the Theorems 3–5
/// structure: the objective is `Σ 1/p(cᵢ)`), so a scale-based re-solve
/// would be a no-op policy-wise. A shift `δ` in logit space,
/// `p'(c) = σ(σ⁻¹(p(c)) + δ)`, is the one-parameter drift of the
/// paper's own Eq. 3 acceptance model (a horizontal shift of the
/// worker valuation distribution): it is exactly identifiable from
/// observed acceptance at a single posted price, preserves
/// monotonicity in the reward, and *changes the curve's shape* — so
/// the re-solved prices genuinely move.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BudgetDriftOptions {
    /// Sliding window length in observation reports (only reports
    /// carrying exposure count).
    pub window: usize,
    /// Minimum signal-carrying reports between re-solve attempts.
    pub resolve_every: usize,
    /// `|ρ̂ − 1|` (windowed observed/expected completions vs the
    /// current model) beyond which the engine asks for a re-solve.
    pub threshold: f64,
    /// Clamp on the cumulative logit shift (guards early-window noise
    /// and degenerate 0-completion windows).
    pub max_shift: f64,
    /// Minimum expected-completions mass in the window before ρ̂ is
    /// trusted (near-zero acceptance carries no signal).
    pub min_expected: f64,
}

impl Default for BudgetDriftOptions {
    fn default() -> Self {
        Self {
            window: 8,
            resolve_every: 2,
            threshold: 0.2,
            max_shift: 3.0,
            min_expected: 1.0,
        }
    }
}

impl BudgetDriftOptions {
    /// Structural validation (deserialized options bypass any
    /// constructor; a corrupted snapshot must error, not panic in
    /// `clamp`).
    pub fn validate(&self) -> Result<()> {
        if self.window < 1 || self.resolve_every < 1 {
            return Err(PricingError::InvalidProblem(
                "budget drift window and resolve period must be at least 1".into(),
            ));
        }
        if !(self.max_shift > 0.0 && self.max_shift.is_finite()) {
            return Err(PricingError::InvalidProblem(format!(
                "budget drift max_shift {} must be positive",
                self.max_shift
            )));
        }
        if !(self.threshold > 0.0 && self.threshold.is_finite()) {
            return Err(PricingError::InvalidProblem(format!(
                "budget drift threshold {} must be positive",
                self.threshold
            )));
        }
        if !(self.min_expected >= 0.0 && self.min_expected.is_finite()) {
            return Err(PricingError::InvalidProblem(format!(
                "budget drift min_expected {} must be finite and ≥ 0",
                self.min_expected
            )));
        }
        Ok(())
    }
}

/// Probabilities clamp into `[ε, 1−ε]` before the logit transform so
/// degenerate acceptances (0, 1) stay finite.
const LOGIT_EPS: f64 = 1e-4;

fn logit(p: f64) -> f64 {
    let p = p.clamp(LOGIT_EPS, 1.0 - LOGIT_EPS);
    (p / (1.0 - p)).ln()
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// `p` shifted by `delta` in logit space.
fn shift_accept(p: f64, delta: f64) -> f64 {
    sigmoid(logit(p) + delta)
}

/// Budget campaigns: progress accounting plus the acceptance-drift
/// recalibrator.
pub(super) struct BudgetEngine {
    /// The trained problem (original batch, budget and acceptance
    /// curve) — the fixed reference everything else is relative to.
    problem: BudgetProblem,
    opts: BudgetDriftOptions,
    pub remaining: u32,
    pub spent_cents: usize,
    pub observations: usize,
    /// Cumulative logit shift already baked into the serving policy
    /// (0.0 until the first recalibration).
    shift: f64,
    /// `(model_accept, offers, completions)` per exposure-carrying
    /// report, newest last, capped at `opts.window`. `model_accept` is
    /// the acceptance the *current* model (trained + shift) predicted
    /// at the posted price.
    history: Vec<(f64, u64, u64)>,
    /// Windowed observed/expected completions vs the current model.
    correction: f64,
    /// Signal-carrying reports since the last re-solve attempt.
    reports_since_resolve: usize,
}

impl BudgetEngine {
    pub fn new(problem: BudgetProblem, opts: BudgetDriftOptions) -> Self {
        Self {
            problem,
            opts,
            remaining: 0,
            spent_cents: 0,
            observations: 0,
            shift: 0.0,
            history: Vec::new(),
            correction: 1.0,
            reports_since_resolve: 0,
        }
    }

    /// Rebuild from persisted state (the snapshot-restore path).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        problem: BudgetProblem,
        opts: BudgetDriftOptions,
        remaining: u32,
        spent_cents: usize,
        observations: usize,
        shift: f64,
        history: Vec<(f64, u64, u64)>,
        correction: f64,
        reports_since_resolve: usize,
    ) -> Result<Self> {
        opts.validate()?;
        if !shift.is_finite() {
            return Err(PricingError::InvalidProblem(format!(
                "acceptance shift {shift} is not finite"
            )));
        }
        if !correction.is_finite() {
            return Err(PricingError::InvalidProblem(format!(
                "acceptance correction {correction} is not finite"
            )));
        }
        let mut engine = Self {
            problem,
            opts,
            remaining,
            spent_cents,
            observations,
            shift: shift.clamp(-opts.max_shift, opts.max_shift),
            history,
            correction: 1.0,
            reports_since_resolve,
        };
        // History is newest-last (the live path evicts from the front),
        // so a narrower restore window must keep the newest entries.
        let excess = engine.history.len().saturating_sub(engine.opts.window);
        engine.history.drain(..excess);
        engine.correction = engine.windowed_correction().unwrap_or(correction);
        Ok(engine)
    }

    /// The current acceptance model at one trained action: `p(c)`
    /// shifted by the cumulative logit shift.
    fn model_accept(&self, action_index: usize) -> f64 {
        shift_accept(self.problem.actions.get(action_index).accept, self.shift)
    }

    /// Unspent cents against the trained budget.
    fn budget_left(&self) -> usize {
        (self.problem.budget.floor() as usize).saturating_sub(self.spent_cents)
    }

    /// Windowed observed/expected; `None` while the window lacks mass.
    fn windowed_correction(&self) -> Option<f64> {
        let mut expected = 0.0;
        let mut observed = 0.0;
        for &(p, offers, completions) in &self.history {
            expected += p * offers as f64;
            observed += completions as f64;
        }
        (expected >= self.opts.min_expected).then(|| observed / expected)
    }

    /// The additional logit shift the window estimates: the
    /// offers-weighted mean of per-report `σ⁻¹(observed acceptance) −
    /// σ⁻¹(model acceptance)` — zero without signal.
    fn windowed_shift(&self) -> f64 {
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for &(p, offers, completions) in &self.history {
            if offers == 0 {
                continue;
            }
            let observed = completions as f64 / offers as f64;
            weighted += offers as f64 * (logit(observed) - logit(p));
            weight += offers as f64;
        }
        if weight > 0.0 {
            weighted / weight
        } else {
            0.0
        }
    }

    /// The cumulative shift the next re-solve would bake in.
    fn next_shift(&self) -> f64 {
        (self.shift + self.windowed_shift()).clamp(-self.opts.max_shift, self.opts.max_shift)
    }

    /// Whether the windowed correction has drifted past the threshold
    /// on a campaign that still has work left.
    fn drifted(&self) -> bool {
        self.remaining > 0 && (self.correction - 1.0).abs() > self.opts.threshold
    }

    /// The trained action set with every acceptance shifted by `delta`
    /// in logit space (a monotone transform — the non-decreasing-in-
    /// reward invariant survives).
    fn shifted_actions(&self, delta: f64) -> ActionSet {
        let mut actions = self.problem.actions.clone();
        actions.map_accept(|p| shift_accept(p, delta));
        actions
    }
}

impl CampaignEngine for BudgetEngine {
    fn kind(&self) -> &'static str {
        "budget"
    }

    fn observe(&mut self, id: CampaignId, obs: &CampaignObservation) -> Result<ObserveEffect> {
        let CampaignObservation::Budget {
            completions,
            spent_cents: spent,
            posted,
            offers,
        } = *obs
        else {
            unreachable!("registry checked the observation kind");
        };
        // Validate the exposure fields *before* mutating anything. A
        // posted price is validated whenever present — a report with a
        // bad price must be a structured 400 even when it carries no
        // offers (and thus no drift signal).
        let posted_idx = match posted {
            None => None,
            Some(posted) => {
                if !posted.is_finite() {
                    return Err(PricingError::InvalidProblem(format!(
                        "campaign {id}: posted reward {posted} is not finite"
                    )));
                }
                Some(
                    self.problem
                        .actions
                        .index_of_reward(posted)
                        .ok_or_else(|| {
                            PricingError::InvalidProblem(format!(
                                "campaign {id}: posted reward {posted} not in the action set"
                            ))
                        })?,
                )
            }
        };
        let signal = match (offers, posted_idx) {
            (None, _) => None,
            (Some(_), None) => {
                return Err(PricingError::InvalidProblem(format!(
                    "campaign {id}: `offers` reported without `posted_cents` — exposure is \
                     meaningless without the price it was exposed to"
                )))
            }
            (Some(offers), Some(idx)) => {
                if completions > offers {
                    return Err(PricingError::InvalidProblem(format!(
                        "campaign {id}: {completions} completions out of {offers} offers"
                    )));
                }
                Some((offers, idx))
            }
        };
        self.remaining = self
            .remaining
            .saturating_sub(completions.min(u64::from(u32::MAX)) as u32);
        // Untrusted input: saturate, and cap the accumulator at the
        // f64-exact integer range so snapshots/report JSON stay
        // lossless.
        const MAX_SPENT: usize = (1 << 53) - 1;
        self.spent_cents = self.spent_cents.saturating_add(spent).min(MAX_SPENT);
        self.observations += 1;
        if let Some((offers, idx)) = signal {
            if offers > 0 {
                self.history
                    .push((self.model_accept(idx), offers, completions));
                if self.history.len() > self.opts.window {
                    self.history.remove(0);
                }
                if let Some(ratio) = self.windowed_correction() {
                    self.correction = ratio;
                }
                self.reports_since_resolve += 1;
            }
        }
        let exhausted = self.remaining == 0;
        Ok(ObserveEffect {
            correction: self.correction,
            remaining: self.remaining,
            exhausted,
            recalibrate: !exhausted && self.should_recalibrate(),
        })
    }

    fn should_recalibrate(&self) -> bool {
        self.drifted() && self.reports_since_resolve >= self.opts.resolve_every
    }

    /// Unlike [`BudgetEngine::should_recalibrate`] this ignores the
    /// cadence: it describes the re-solve the accumulated drift calls
    /// for, whether or not enough reports have arrived to act on it.
    fn recalibration_spec(&self) -> Option<RecalibrationSpec> {
        self.drifted().then(|| RecalibrationSpec::Budget {
            remaining: self.remaining,
            budget_cents: self.budget_left(),
            shift: self.next_shift(),
        })
    }

    fn solve(&mut self, ctx: &SolveContext) -> Result<Option<(CampaignPolicy, usize)>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        // One attempt per cadence window, success or not — an
        // infeasible remainder must not re-run the check on every
        // subsequent report.
        self.reports_since_resolve = 0;
        let shift = self.next_shift();
        let sub = BudgetProblem::new(
            self.remaining,
            self.budget_left() as f64,
            self.shifted_actions(shift),
            self.problem.mean_rate,
        );
        let policy = solve_budget_mdp_with(&sub, &ctx.kernel)?;
        // Adopt the shifted curve as the new reference model: ρ̂ is
        // always measured against what the serving policy assumes.
        self.shift = shift;
        self.history.clear();
        self.correction = 1.0;
        Ok(Some((CampaignPolicy::Budget(policy), 0)))
    }

    fn report(&self, report: &mut CampaignReport) {
        report.remaining = Some(self.remaining);
        report.observations = self.observations;
        report.spent_cents = Some(self.spent_cents);
        report.correction = Some(self.correction);
        report.acceptance_shift = Some(self.shift);
    }

    fn snapshot(
        &self,
        id: CampaignId,
        current: Option<&CampaignPolicy>,
    ) -> Result<PersistedEngine> {
        let Some(CampaignPolicy::Budget(policy)) = current else {
            return Err(PricingError::InvalidProblem(format!(
                "campaign {id}: budget engine without a budget policy generation"
            )));
        };
        Ok(PersistedEngine::Budget {
            policy: policy.clone(),
            remaining: self.remaining,
            spent_cents: self.spent_cents,
            observations: self.observations,
            shift: self.shift,
            history: self.history.clone(),
            correction: self.correction,
            reports_since_resolve: self.reports_since_resolve,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::tiny_budget_problem;

    /// Restoring under a narrower window must keep the NEWEST reports —
    /// history is newest-last and the live path evicts from the front
    /// (regression: `Vec::truncate` kept the oldest instead).
    #[test]
    fn from_parts_narrow_window_keeps_newest_history() {
        let opts = BudgetDriftOptions {
            window: 2,
            ..BudgetDriftOptions::default()
        };
        // Oldest two reports show collapse (20/0.9·20 ≈ 0 observed),
        // newest two are on-model — a keep-newest restore must read
        // correction ≈ 1, a keep-oldest one would read ≈ 0.
        let history = vec![(0.9, 20, 0), (0.9, 20, 0), (0.9, 20, 18), (0.9, 20, 18)];
        let engine =
            BudgetEngine::from_parts(tiny_budget_problem(), opts, 10, 0, 4, 0.0, history, 0.5, 0)
                .unwrap();
        assert_eq!(engine.history.len(), 2);
        assert!(
            (engine.correction - 1.0).abs() <= 1e-12,
            "restore kept the wrong window end: correction {}",
            engine.correction
        );
    }
}
