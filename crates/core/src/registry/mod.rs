//! The campaign registry: versioned campaign lifecycle records behind the
//! serving API.
//!
//! Each campaign is a versioned record:
//!
//! - a [`CampaignSpec`] (what to optimise),
//! - a lifecycle [`CampaignStatus`] (`Draft → Solving → Live →
//!   Recalibrating → Exhausted`, or `Evicted`),
//! - a monotonically increasing **policy generation**: every (re)solve
//!   publishes a fresh immutable [`PolicyGeneration`] behind an `Arc`
//!   swap, so `reprice` readers keep answering from the old generation
//!   while a solve runs and *never block on a solve*,
//! - a kind-polymorphic engine (`engine::CampaignEngine`) holding the
//!   per-kind drift machinery: the Section 5.2.5 arrival-corrected
//!   [`crate::adaptive::AdaptivePricer`] for deadline campaigns, and the
//!   acceptance-drift recalibrator for budget campaigns.
//!
//! The module splits along the three concerns a fleet-scale registry
//! has to keep apart:
//!
//! | module | owns |
//! |---|---|
//! | `store` | the `ShardedStore`: N independently locked shards (id-hash routed) + shard-local status counters |
//! | `engine` | the `CampaignEngine` trait and its deadline/budget implementations |
//! | `snapshot` | versioned JSON persistence (old formats keep loading) |
//!
//! Locking discipline (hot path first):
//!
//! | data | guard | held for |
//! |---|---|---|
//! | id → record map | one **shard** `RwLock` read | a map lookup |
//! | current [`PolicyGeneration`] | `RwLock` read / write | an `Arc` clone / pointer swap |
//! | status | `AtomicU8` | lock-free |
//! | fleet status counts | shard-local atomics | lock-free sum |
//! | spec + engine | `Mutex` | writer ops (solve/observe/evict) |
//!
//! Solves and recalibrations run while holding only the writer `Mutex`
//! of their own campaign — never a shard map lock or the generation
//! lock. Map membership changes lock in the order *campaign mutex →
//! shard map write* (see the `store` module source).

mod engine;
mod snapshot;
mod store;

pub use engine::{BudgetDriftOptions, RecalibrationSpec};
pub use snapshot::SNAPSHOT_VERSION;

use crate::adaptive::{AdaptiveOptions, AdaptivePricer};
use crate::budget::{solve_budget_mdp_with, BudgetMdpPolicy, BudgetProblem};
use crate::error::{CampaignId, PricingError, Result};
use crate::kernel::deadline::solve_deadline_with_cache;
use crate::kernel::{KernelConfig, Sweep, TruncationTable};
use crate::policy::{DeadlinePolicy, PriceController};
use crate::problem::DeadlineProblem;
use crate::scheduler::{SolveContext, SolveScheduler};
use crate::telemetry::RegistryTelemetry;
use engine::{BudgetEngine, CampaignEngine, DeadlineEngine};
use ft_metrics::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use store::{lock_state, lock_state_fresh, Campaign, ShardedStore};

/// Truncation mass used when a deadline campaign doesn't specify one.
pub const DEFAULT_EPS: f64 = 1e-9;

/// Default shard count for the sharded store. Enough that a handful of
/// writer threads rarely collide, small enough that aggregating the
/// per-shard counters stays trivial.
pub const DEFAULT_SHARDS: usize = 16;

/// Registry-wide configuration: shard layout, solver budget, and the
/// per-kind drift policies.
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Independent store shards (clamped to ≥ 1). One shard reproduces
    /// the historical single-map behavior.
    pub shards: usize,
    /// Kernel budget for solves and recalibrations.
    pub kernel: KernelConfig,
    /// Deadline drift policy (arrival correction ρ̂).
    pub adaptive: AdaptiveOptions,
    /// Budget drift policy (acceptance correction).
    pub budget_drift: BudgetDriftOptions,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            shards: DEFAULT_SHARDS,
            kernel: KernelConfig::default(),
            adaptive: AdaptiveOptions::default(),
            budget_drift: BudgetDriftOptions::default(),
        }
    }
}

/// What a campaign asks the service to optimise.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CampaignSpec {
    /// Fixed deadline (Section 3): minimise expected cost.
    Deadline {
        problem: DeadlineProblem,
        /// Poisson-tail truncation mass; `None` = [`DEFAULT_EPS`].
        eps: Option<f64>,
    },
    /// Fixed budget (Section 4): minimise expected latency.
    Budget { problem: BudgetProblem },
}

impl CampaignSpec {
    /// `"deadline"` / `"budget"`.
    pub fn kind(&self) -> &'static str {
        match self {
            CampaignSpec::Deadline { .. } => "deadline",
            CampaignSpec::Budget { .. } => "budget",
        }
    }

    /// Structural validation with *structured errors*. Constructors like
    /// [`DeadlineProblem::new`] assert these invariants, but specs that
    /// arrive over the wire are deserialized field-by-field and bypass
    /// them — without this check a bad spec would panic (and wedge) the
    /// solve path instead of answering 400.
    pub fn validate(&self) -> Result<()> {
        fn bad(msg: String) -> Result<()> {
            Err(PricingError::InvalidProblem(msg))
        }
        let actions = match self {
            CampaignSpec::Deadline { problem, eps } => {
                if let Some(eps) = eps {
                    if !(*eps > 0.0 && *eps < 1.0) {
                        return bad(format!("eps must be in (0, 1), got {eps}"));
                    }
                }
                if problem.n_tasks == 0 {
                    return bad("zero tasks".into());
                }
                if problem.interval_arrivals.is_empty() {
                    return bad("zero intervals".into());
                }
                for &lam in &problem.interval_arrivals {
                    if !(lam >= 0.0 && lam.is_finite()) {
                        return bad(format!("interval arrival {lam} must be finite and ≥ 0"));
                    }
                }
                if !(problem.penalty.per_task().is_finite() && problem.penalty.per_task() >= 0.0) {
                    return bad("penalty must be finite and ≥ 0".into());
                }
                &problem.actions
            }
            CampaignSpec::Budget { problem } => {
                if problem.n_tasks == 0 {
                    return bad("zero tasks".into());
                }
                if !(problem.budget >= 0.0 && problem.budget.is_finite()) {
                    return bad(format!("budget {} must be finite and ≥ 0", problem.budget));
                }
                if !(problem.mean_rate > 0.0 && problem.mean_rate.is_finite()) {
                    return bad(format!(
                        "mean rate {} must be finite and > 0",
                        problem.mean_rate
                    ));
                }
                &problem.actions
            }
        };
        if actions.is_empty() {
            return bad("empty action set".into());
        }
        let mut prev: Option<(f64, f64)> = None;
        for i in 0..actions.len() {
            let a = actions.get(i);
            if !(a.reward >= 0.0 && a.reward.is_finite()) {
                return bad(format!("reward {} must be finite and ≥ 0", a.reward));
            }
            if !(0.0..=1.0).contains(&a.accept) {
                return bad(format!("acceptance {} must be in [0, 1]", a.accept));
            }
            if let Some((reward, accept)) = prev {
                if a.reward <= reward {
                    return bad(format!(
                        "rewards must be strictly increasing at {}",
                        a.reward
                    ));
                }
                if a.accept < accept - 1e-12 {
                    return bad(format!(
                        "acceptance must be non-decreasing in reward at {}",
                        a.reward
                    ));
                }
            }
            prev = Some((a.reward, a.accept));
        }
        Ok(())
    }
}

/// A solved campaign policy (one generation's table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CampaignPolicy {
    Deadline(DeadlinePolicy),
    Budget(BudgetMdpPolicy),
}

impl CampaignPolicy {
    fn kind(&self) -> &'static str {
        match self {
            CampaignPolicy::Deadline(_) => "deadline",
            CampaignPolicy::Budget(_) => "budget",
        }
    }
}

/// The live state a campaign reports when asking for a fresh price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObservedState {
    /// Deadline campaign: tasks remaining at the given interval index.
    Deadline { remaining: u32, interval: usize },
    /// Budget campaign: tasks remaining with the given cents unspent.
    Budget { remaining: u32, budget_cents: usize },
}

impl ObservedState {
    fn kind(&self) -> &'static str {
        match self {
            ObservedState::Deadline { .. } => "deadline",
            ObservedState::Budget { .. } => "budget",
        }
    }
}

/// Campaign lifecycle status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum CampaignStatus {
    /// Registered, not yet solved.
    Draft,
    /// First solve in flight; no policy to serve yet.
    Solving,
    /// Serving prices from the current policy generation.
    Live,
    /// A re-solve is in flight; readers stay on the previous generation.
    Recalibrating,
    /// Batch finished (or horizon passed); the last generation still
    /// answers price queries.
    Exhausted,
    /// Deleted; record kept as a tombstone, policy dropped.
    Evicted,
}

impl CampaignStatus {
    /// Lower-case status name (the wire/status-endpoint encoding).
    pub fn as_str(&self) -> &'static str {
        match self {
            CampaignStatus::Draft => "draft",
            CampaignStatus::Solving => "solving",
            CampaignStatus::Live => "live",
            CampaignStatus::Recalibrating => "recalibrating",
            CampaignStatus::Exhausted => "exhausted",
            CampaignStatus::Evicted => "evicted",
        }
    }

    pub(crate) fn from_u8(v: u8) -> Self {
        match v {
            0 => CampaignStatus::Draft,
            1 => CampaignStatus::Solving,
            2 => CampaignStatus::Live,
            3 => CampaignStatus::Recalibrating,
            4 => CampaignStatus::Exhausted,
            _ => CampaignStatus::Evicted,
        }
    }
}

/// One immutable solved-policy version. `reprice` answers from exactly
/// one of these; recalibration publishes the next one with a single
/// pointer swap.
#[derive(Debug, Clone)]
pub struct PolicyGeneration {
    /// 1 for the first solve, +1 per recalibration.
    pub generation: u64,
    /// First full-horizon interval a deadline policy covers (its tables
    /// are indexed by `interval - start`). Always 0 for budget policies.
    pub start: usize,
    pub policy: Arc<CampaignPolicy>,
}

/// A price answer tagged with the generation that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceQuote {
    pub price: f64,
    pub generation: u64,
}

/// One reported interval/batch outcome, as accepted by
/// [`CampaignRegistry::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CampaignObservation {
    /// Deadline campaign: completions seen in full-horizon interval
    /// `interval` at reward `posted` (`None` = whatever the live policy
    /// quoted for the campaign's tracked remaining count).
    Deadline {
        interval: usize,
        completions: u64,
        posted: Option<f64>,
    },
    /// Budget campaign: completions picked up and cents spent since the
    /// last report. `posted` + `offers` optionally carry the exposure
    /// behind those completions — the posted reward and how many worker
    /// arrivals saw it — which is what feeds the acceptance-drift
    /// recalibrator. Reports without exposure still account progress
    /// (the pre-drift wire format keeps working) but add no drift
    /// signal.
    Budget {
        completions: u64,
        spent_cents: usize,
        posted: Option<f64>,
        offers: Option<u64>,
    },
}

impl CampaignObservation {
    /// `"deadline"` / `"budget"`.
    pub fn kind(&self) -> &'static str {
        match self {
            CampaignObservation::Deadline { .. } => "deadline",
            CampaignObservation::Budget { .. } => "budget",
        }
    }
}

/// What [`CampaignRegistry::observe`] did with a report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObserveOutcome {
    pub status: CampaignStatus,
    /// Generation serving *after* this observation.
    pub generation: u64,
    /// Drift-correction ratio: arrival-level ρ̂ for deadline campaigns,
    /// acceptance-level for budget campaigns (1.0 before any signal).
    pub correction: f64,
    /// Whether this observation triggered a re-solve and generation bump.
    pub recalibrated: bool,
    /// Registry-tracked remaining tasks after the observation.
    pub remaining: u32,
}

/// Status + diagnostics snapshot for one campaign (the `GET
/// /campaigns/{id}` payload).
#[derive(Debug, Clone, Serialize)]
pub struct CampaignReport {
    pub id: CampaignId,
    pub kind: String,
    pub status: CampaignStatus,
    pub generation: u64,
    pub n_tasks: u32,
    /// Registry-tracked remaining tasks (`None` before the first solve).
    pub remaining: Option<u32>,
    /// Observed intervals so far (deadline) or observation reports
    /// (budget).
    pub observations: usize,
    /// Drift correction: arrival ρ̂ (deadline) or windowed acceptance
    /// ratio vs the current model (budget).
    pub correction: Option<f64>,
    /// First interval the live policy covers (deadline only).
    pub policy_start: Option<usize>,
    /// Cents spent so far (budget only).
    pub spent_cents: Option<usize>,
    /// Cumulative acceptance scale baked into the serving policy
    /// (budget only; 1.0 until the first recalibration).
    pub acceptance_shift: Option<f64>,
}

/// The concurrent campaign store behind `PricingService` and `ft-server`.
pub struct CampaignRegistry {
    config: RegistryConfig,
    next_id: AtomicU64,
    store: ShardedStore,
    telemetry: RegistryTelemetry,
    /// Wave admission for solves/recalibrations: concurrent solves of a
    /// wave share one pmf-row cache (see [`crate::scheduler`]).
    scheduler: SolveScheduler,
}

impl Default for CampaignRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Split a worker budget between batch-level (outer) and kernel-level
/// (inner) parallelism, resolving the requested count **once** so both
/// sides of the split are derived from the same number.
///
/// (Historically the service resolved `cfg.threads` twice — once for the
/// split arithmetic and again inside `par_map` — so the two reads could
/// disagree and over-subscribe; see `thread_split_resolves_once`.)
pub(crate) fn split_threads(requested: usize, batch_len: usize) -> (usize, usize) {
    let outer = ft_exec::resolve_threads(requested);
    let inner = (outer / batch_len.max(1)).max(1);
    (outer, inner)
}

impl CampaignRegistry {
    pub fn new() -> Self {
        Self::with_registry_config(RegistryConfig::default())
    }

    /// Explicit kernel + deadline-recalibration configuration (e.g.
    /// [`KernelConfig::serial`] in latency-sensitive embedders, or a
    /// shorter `resolve_every` for aggressive recalibration). Other
    /// knobs (shards, budget drift) take their defaults; use
    /// [`CampaignRegistry::with_registry_config`] for full control.
    pub fn with_config(cfg: KernelConfig, adaptive: AdaptiveOptions) -> Self {
        Self::with_registry_config(RegistryConfig {
            kernel: cfg,
            adaptive,
            ..RegistryConfig::default()
        })
    }

    /// Like [`CampaignRegistry::with_config`], sharing a caller-owned
    /// metrics plane — `ft-server` passes its own so one `/metrics`
    /// export covers both the HTTP layer and the registry.
    pub fn with_metrics(
        cfg: KernelConfig,
        adaptive: AdaptiveOptions,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        Self::with_registry_config_and_metrics(
            RegistryConfig {
                kernel: cfg,
                adaptive,
                ..RegistryConfig::default()
            },
            metrics,
        )
    }

    /// Full registry configuration (shards, kernel, drift policies).
    pub fn with_registry_config(config: RegistryConfig) -> Self {
        Self::with_registry_config_and_metrics(config, Arc::new(MetricsRegistry::new()))
    }

    /// Full configuration plus a caller-owned metrics plane.
    pub fn with_registry_config_and_metrics(
        config: RegistryConfig,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        let telemetry = RegistryTelemetry::new(metrics);
        let scheduler = SolveScheduler::default().with_counters(
            Arc::clone(&telemetry.batched_solves),
            Arc::clone(&telemetry.pmf_cache_hits),
        );
        Self {
            store: ShardedStore::new(config.shards),
            config,
            next_id: AtomicU64::new(1),
            telemetry,
            scheduler,
        }
    }

    /// The shared observability plane this registry reports into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.telemetry.metrics()
    }

    /// The registry's pre-resolved instruments.
    pub fn telemetry(&self) -> &RegistryTelemetry {
        &self.telemetry
    }

    /// The wave scheduler batching this registry's solves (wave/cache
    /// statistics for reports and the load harness).
    pub fn scheduler(&self) -> &SolveScheduler {
        &self.scheduler
    }

    /// The registry's configuration (shards, kernel, drift policies).
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// Number of store shards (diagnostics).
    pub fn shards(&self) -> usize {
        self.store.n_shards()
    }

    pub(self) fn store(&self) -> &ShardedStore {
        &self.store
    }

    pub(self) fn next_id_value(&self) -> u64 {
        // ORDERING: Relaxed — `next_id` is only an id dispenser; ids
        // carry no payload, and record visibility is published through
        // the shard-map lock, not through this counter.
        self.next_id.load(Ordering::Relaxed)
    }

    pub(self) fn bump_next_id(&self, at_least: u64) {
        // ORDERING: Relaxed — see `next_id_value`; fetch_max keeps the
        // dispenser monotone under races, which is the only invariant.
        self.next_id.fetch_max(at_least, Ordering::Relaxed);
    }

    fn get(&self, id: CampaignId) -> Result<Arc<Campaign>> {
        self.store.get(id).ok_or(PricingError::UnknownCampaign(id))
    }

    /// Register a campaign as a draft; returns its fresh id.
    pub fn register(&self, spec: CampaignSpec) -> CampaignId {
        // ORDERING: Relaxed — uniqueness comes from the atomic RMW
        // itself; nothing is published through the counter (see
        // `next_id_value`).
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.insert_draft(id, spec);
        id
    }

    /// Register (or replace) a campaign under a caller-chosen id.
    pub fn register_at(&self, id: CampaignId, spec: CampaignSpec) {
        // Reserve the id *before* inserting, so a concurrent
        // auto-assigning `register` can't be handed the same id and
        // silently overwrite this record.
        self.bump_next_id(id + 1);
        self.insert_draft(id, spec);
    }

    fn insert_draft(&self, id: CampaignId, spec: CampaignSpec) {
        let campaign = Arc::new(Campaign::new(spec, self.store.stats_for(id)));
        self.store.insert(id, campaign);
    }

    /// Solve a draft campaign with the registry's full worker budget and
    /// publish generation 1. `Draft → Solving → Live`.
    pub fn solve(&self, id: CampaignId) -> Result<Arc<PolicyGeneration>> {
        self.solve_with(id, &self.config.kernel)
    }

    fn solve_with(&self, id: CampaignId, cfg: &KernelConfig) -> Result<Arc<PolicyGeneration>> {
        let campaign = self.get(id)?;
        // Check-and-claim under the writer lock so concurrent solves
        // cannot both start.
        let spec = {
            let state = lock_state(&campaign);
            let status = campaign.status();
            if status != CampaignStatus::Draft {
                return Err(PricingError::NotServable {
                    id,
                    status: status.as_str(),
                });
            }
            campaign.transition(&state, CampaignStatus::Solving);
            state.spec.clone()
        };
        // The expensive part runs with no lock held at all. Admission
        // happens here too — after the campaign writer lock above was
        // released (documented order: scheduler → campaign-mutex).
        let started = Instant::now();
        let ticket = self.scheduler.admit();
        let ctx = SolveContext::with_wave(*cfg, &ticket);
        let solved = self.solve_spec(&spec, &ctx);
        self.telemetry.solve_ns.record_duration(started.elapsed());
        let mut state = lock_state(&campaign);
        if campaign.status() != CampaignStatus::Solving {
            // Evicted while we were solving; drop the result.
            self.telemetry.solve_errors.inc();
            return Err(PricingError::NotServable {
                id,
                status: campaign.status().as_str(),
            });
        }
        match solved {
            Ok((engine, policy, start)) => {
                let _span = ft_trace::span("core.registry.publish");
                state.engine = Some(engine);
                campaign.publish(1, start, Arc::new(policy));
                campaign.transition(&state, CampaignStatus::Live);
                self.telemetry.solves.inc();
                self.telemetry.generation_swaps.inc();
                Ok(campaign.generation().expect("just published"))
            }
            Err(e) => {
                campaign.transition(&state, CampaignStatus::Draft);
                self.telemetry.solve_errors.inc();
                Err(e)
            }
        }
    }

    /// Solve a spec into its engine + first policy generation. Validates
    /// first and converts any residual solver panic into a structured
    /// error, so a bad spec can never wedge a campaign in `Solving`.
    fn solve_spec(
        &self,
        spec: &CampaignSpec,
        ctx: &SolveContext,
    ) -> Result<(Box<dyn CampaignEngine>, CampaignPolicy, usize)> {
        spec.validate()?;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.solve_spec_inner(spec, ctx)
        }))
        .unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "solver panicked".into());
            Err(PricingError::SearchFailed(format!(
                "solver panicked: {msg}"
            )))
        })
    }

    fn solve_spec_inner(
        &self,
        spec: &CampaignSpec,
        ctx: &SolveContext,
    ) -> Result<(Box<dyn CampaignEngine>, CampaignPolicy, usize)> {
        match spec {
            CampaignSpec::Deadline { problem, eps } => {
                let eps = eps.unwrap_or(DEFAULT_EPS);
                let trunc = TruncationTable::with_eps(problem, eps);
                let policy = solve_deadline_with_cache(
                    problem,
                    &trunc,
                    Sweep::MonotoneDivide,
                    &ctx.kernel,
                    ctx.pmf_cache.clone(),
                )?;
                let pricer = AdaptivePricer::from_parts(
                    problem.clone(),
                    AdaptiveOptions {
                        truncation_eps: eps,
                        ..self.config.adaptive
                    },
                    Vec::new(),
                    1.0,
                    policy.clone(),
                    0,
                )?;
                let remaining = problem.n_tasks;
                Ok((
                    Box::new(DeadlineEngine {
                        pricer: Box::new(pricer),
                        remaining,
                    }),
                    CampaignPolicy::Deadline(policy),
                    0,
                ))
            }
            CampaignSpec::Budget { problem } => {
                let policy = solve_budget_mdp_with(problem, &ctx.kernel)?;
                let mut engine = BudgetEngine::new(problem.clone(), self.config.budget_drift);
                engine.remaining = problem.n_tasks;
                Ok((Box::new(engine), CampaignPolicy::Budget(policy), 0))
            }
        }
    }

    /// Register (or replace) the campaign at `id` and solve it *before*
    /// swapping it in: when `id` already serves a policy, readers keep
    /// answering from the old generation until the new solve succeeds
    /// (one atomic map swap), and a failed solve leaves the existing
    /// record untouched. A previously unknown id is left registered as a
    /// draft on failure so the rejection stays inspectable.
    pub fn submit_at(
        &self,
        id: CampaignId,
        spec: CampaignSpec,
        cfg: &KernelConfig,
    ) -> Result<Arc<PolicyGeneration>> {
        self.bump_next_id(id + 1);
        let started = Instant::now();
        // No lock is held here: submit solves before touching the
        // store, so admission is trivially scheduler-first.
        let ticket = self.scheduler.admit();
        let ctx = SolveContext::with_wave(*cfg, &ticket);
        let solved = self.solve_spec(&spec, &ctx);
        self.telemetry.solve_ns.record_duration(started.elapsed());
        match solved {
            Ok((engine, policy, start)) => {
                self.telemetry.solves.inc();
                let campaign = Arc::new(Campaign::new(spec, self.store.stats_for(id)));
                lock_state(&campaign).engine = Some(engine);
                let policy = Arc::new(policy);
                // Swap the record in with a generation that continues
                // the old record's numbering. `with_entry` provides the
                // consistent view — the old record's writer mutex plus
                // the shard map write guard, acquired in that order —
                // so the old generation is read race-free without ever
                // waiting on a writer mutex while holding a map lock
                // (a recalibration can run for a whole solve, and the
                // quote hot path must keep draining behind the map).
                let published = self.store.with_entry(id, |entry, map| {
                    let generation = match entry {
                        Some((old, old_state)) => {
                            let generation = old.generation().map_or(1, |g| g.generation + 1);
                            // Retire the old record so detached handles
                            // can't serve or bump generations after the
                            // swap (and its solver machinery frees now,
                            // not when the last stale Arc drops). It
                            // leaves the map: uncount it first so the
                            // eviction below doesn't touch counters.
                            old.uncount(old_state);
                            old_state.engine = None;
                            *old.live.write().expect("campaign generation lock poisoned") = None;
                            old.transition(old_state, CampaignStatus::Evicted);
                            generation
                        }
                        None => 1,
                    };
                    self.telemetry.generation_swaps.inc();
                    campaign.publish(generation, start, Arc::clone(&policy));
                    {
                        // The new record is not yet shared: its mutex
                        // cannot block, and the acquisition is the
                        // untraced fresh-record exception to the
                        // campaign→shard lock order (we hold the map
                        // write guard here).
                        let mut state = lock_state_fresh(&campaign);
                        campaign.transition(&state, CampaignStatus::Live);
                        campaign.count(&mut state);
                    }
                    // Read the published generation back *before*
                    // releasing the map lock — once other threads can
                    // see the record, a racing submit may already have
                    // retired it again.
                    let published = campaign.generation().expect("just published");
                    map.insert(id, Arc::clone(&campaign));
                    published
                });
                Ok(published)
            }
            Err(e) => {
                self.telemetry.solve_errors.inc();
                if self.store.get(id).is_none() {
                    self.insert_draft(id, spec);
                }
                Err(e)
            }
        }
    }

    /// [`CampaignRegistry::submit_at`] over a whole batch, dividing the
    /// worker budget between batch-level and kernel-level parallelism.
    /// Returns per-campaign results in input order; failures don't fail
    /// the batch.
    pub fn submit_many(
        &self,
        batch: Vec<(CampaignId, CampaignSpec)>,
    ) -> Vec<(CampaignId, Result<Arc<PolicyGeneration>>)> {
        let (outer, inner_threads) = split_threads(self.config.kernel.threads, batch.len());
        let inner = KernelConfig {
            threads: inner_threads,
            grain: self.config.kernel.grain,
        };
        let solved = ft_exec::par_map(batch.len(), 1, outer, |i| {
            self.submit_at(batch[i].0, batch[i].1.clone(), &inner)
        });
        batch.into_iter().map(|(id, _)| id).zip(solved).collect()
    }

    /// Solve a batch of draft campaigns concurrently, dividing the worker
    /// budget between batch-level and kernel-level parallelism. Returns
    /// per-campaign results in input order; failures don't fail the
    /// batch.
    pub fn solve_many(
        &self,
        ids: &[CampaignId],
    ) -> Vec<(CampaignId, Result<Arc<PolicyGeneration>>)> {
        let (outer, inner_threads) = split_threads(self.config.kernel.threads, ids.len());
        let inner = KernelConfig {
            threads: inner_threads,
            grain: self.config.kernel.grain,
        };
        let solved = ft_exec::par_map(ids.len(), 1, outer, |i| self.solve_with(ids[i], &inner));
        ids.iter().copied().zip(solved).collect()
    }

    /// The reprice hot path: answer from the campaign's current policy
    /// generation. Never blocks on a solve — a concurrent recalibration
    /// keeps this answering from the previous generation until its one
    /// pointer swap.
    pub fn quote(&self, id: CampaignId, state: ObservedState) -> Result<PriceQuote> {
        let _span = ft_trace::span("core.registry.quote");
        self.telemetry.quotes.inc();
        let result = self.quote_inner(id, state);
        if result.is_err() {
            self.telemetry.quote_errors.inc();
        }
        result
    }

    /// [`CampaignRegistry::quote`] over a batch, resolving each unique
    /// campaign's handle + live generation **once** and pricing every
    /// state against the cached resolution — a batch quoting one
    /// campaign N times pays one store lookup, not N. Per-item results
    /// come back in input order; failures don't fail the batch, and
    /// telemetry counts each item exactly as `quote` would.
    pub fn quote_many(&self, batch: &[(CampaignId, ObservedState)]) -> Vec<Result<PriceQuote>> {
        let mut resolved: std::collections::HashMap<CampaignId, Result<Arc<PolicyGeneration>>> =
            std::collections::HashMap::new();
        batch
            .iter()
            .map(|&(id, state)| {
                let _span = ft_trace::span("core.registry.quote");
                self.telemetry.quotes.inc();
                let result = match resolved.entry(id).or_insert_with(|| self.resolve(id)) {
                    Ok(current) => Self::price_from(id, current, state),
                    Err(e) => Err(e.clone()),
                };
                if result.is_err() {
                    self.telemetry.quote_errors.inc();
                }
                result
            })
            .collect()
    }

    fn quote_inner(&self, id: CampaignId, state: ObservedState) -> Result<PriceQuote> {
        let current = self.resolve(id)?;
        Self::price_from(id, &current, state)
    }

    /// The servable policy generation for `id`.
    fn resolve(&self, id: CampaignId) -> Result<Arc<PolicyGeneration>> {
        let mut campaign = self.get(id)?;
        match campaign.generation() {
            Some(current) => Ok(current),
            None => {
                // A replacement (`submit_at`) retires the old record
                // under the shard write lock before swapping the new
                // one in; a reader that fetched the old handle just
                // before the swap re-fetches once and lands on the
                // replacement. A genuinely evicted/unsolved campaign
                // re-fetches the same record and errors.
                let fresh = self.get(id)?;
                let replaced = !Arc::ptr_eq(&fresh, &campaign);
                campaign = fresh;
                match campaign.generation() {
                    Some(current) if replaced => Ok(current),
                    _ => Err(PricingError::NotServable {
                        id,
                        status: campaign.status().as_str(),
                    }),
                }
            }
        }
    }

    /// Price one observed state against an already-resolved generation.
    fn price_from(
        id: CampaignId,
        current: &PolicyGeneration,
        state: ObservedState,
    ) -> Result<PriceQuote> {
        match (current.policy.as_ref(), state) {
            (
                CampaignPolicy::Deadline(p),
                ObservedState::Deadline {
                    remaining,
                    interval,
                },
            ) => {
                // The generation's tables cover intervals `start..`;
                // clamp onto them (PriceController clamps n and t).
                let rel = interval.saturating_sub(current.start);
                Ok(PriceQuote {
                    price: p.price(remaining, rel),
                    generation: current.generation,
                })
            }
            (
                CampaignPolicy::Budget(p),
                ObservedState::Budget {
                    remaining,
                    budget_cents,
                },
            ) => p
                // Off-table states answer from the nearest table edge.
                .price(
                    remaining.min(p.n_tasks()),
                    budget_cents.min(p.budget_cents()),
                )
                .map(|c| PriceQuote {
                    price: f64::from(c),
                    generation: current.generation,
                })
                .ok_or_else(|| {
                    PricingError::Infeasible(format!(
                        "campaign {id}: no feasible price with {remaining} tasks and \
                         {budget_cents} cents"
                    ))
                }),
            (policy, state) => Err(PricingError::StateKindMismatch {
                id,
                expected: policy.kind(),
                got: state.kind(),
            }),
        }
    }

    /// Report a completed interval (deadline) or batch progress (budget).
    ///
    /// The report is routed to the campaign's kind engine:
    /// deadline reports feed the [`AdaptivePricer`]'s arrival correction
    /// ρ̂ and re-solve the remaining horizon on the recalibration
    /// schedule; budget reports account progress and — when they carry
    /// exposure (`posted` + `offers`) — feed the acceptance-drift
    /// statistic, re-solving the remaining budget MDP when it crosses
    /// the configured threshold. Either way the new policy publishes as
    /// the next generation with one pointer swap; readers never block.
    pub fn observe(&self, id: CampaignId, obs: CampaignObservation) -> Result<ObserveOutcome> {
        let kind = obs.kind();
        let result = self.observe_inner(id, obs);
        self.count_observe(kind, &result);
        result
    }

    /// [`CampaignRegistry::observe`] over a batch, looking each unique
    /// campaign's record up **once** and applying every observation to
    /// the cached handle (in input order — a deadline campaign's
    /// interval reports stay ordered). Per-item failures don't fail
    /// the batch; telemetry counts each item exactly as `observe`
    /// would.
    pub fn observe_many(
        &self,
        batch: Vec<(CampaignId, CampaignObservation)>,
    ) -> Vec<Result<ObserveOutcome>> {
        let mut handles: std::collections::HashMap<CampaignId, Result<Arc<Campaign>>> =
            std::collections::HashMap::new();
        batch
            .into_iter()
            .map(|(id, obs)| {
                let kind = obs.kind();
                let result = match handles.entry(id).or_insert_with(|| self.get(id)) {
                    Ok(campaign) => self.observe_on(id, campaign, obs),
                    Err(e) => Err(e.clone()),
                };
                self.count_observe(kind, &result);
                result
            })
            .collect()
    }

    /// The per-item telemetry `observe` commits (shared with the bulk
    /// path so counters agree item-for-item).
    fn count_observe(&self, kind: &'static str, result: &Result<ObserveOutcome>) {
        match result {
            Ok(outcome) => {
                self.telemetry.observes.inc();
                if outcome.recalibrated {
                    self.telemetry.recalibrations.inc();
                    if kind == "budget" {
                        self.telemetry.recalibrations_budget.inc();
                    } else {
                        self.telemetry.recalibrations_deadline.inc();
                    }
                    self.telemetry.generation_swaps.inc();
                }
            }
            Err(_) => self.telemetry.observe_errors.inc(),
        }
    }

    fn observe_inner(&self, id: CampaignId, obs: CampaignObservation) -> Result<ObserveOutcome> {
        let campaign = self.get(id)?;
        self.observe_on(id, &campaign, obs)
    }

    /// Apply one observation to an already-resolved campaign record.
    fn observe_on(
        &self,
        id: CampaignId,
        campaign: &Arc<Campaign>,
        obs: CampaignObservation,
    ) -> Result<ObserveOutcome> {
        let _span = ft_trace::span("core.registry.observe");
        let mut state = lock_state(campaign);
        let status = campaign.status();
        if !matches!(
            status,
            CampaignStatus::Live | CampaignStatus::Recalibrating | CampaignStatus::Exhausted
        ) {
            return Err(PricingError::NotServable {
                id,
                status: status.as_str(),
            });
        }
        let expected = state.kind();
        if expected != obs.kind() {
            return Err(PricingError::StateKindMismatch {
                id,
                expected,
                got: obs.kind(),
            });
        }
        let effect = {
            let _span = ft_trace::span("core.engine.observe");
            state
                .engine
                .as_mut()
                .expect("kind-checked engines exist")
                .observe(id, &obs)?
        };

        // Recalibrate when the engine asks: solve with only this
        // campaign's writer lock held, then swap the generation.
        let mut recalibrated = false;
        if effect.recalibrate {
            campaign.transition(&state, CampaignStatus::Recalibrating);
            // Wave admission takes the scheduler mutex, which sits
            // *above* the campaign mutex in the documented order
            // (scheduler → campaign-mutex → shard-map) — admitting
            // while holding the campaign lock would invert it (the
            // lockcheck witness panics on exactly that). Drop the
            // writer lock around admission and re-validate after:
            // `Recalibrating` is only left by this thread or by
            // eviction/replacement, so any other status means the
            // record was retired while unlocked and the re-solve must
            // be abandoned (its engine may already be gone).
            drop(state);
            let ticket = self.scheduler.admit();
            let ctx = SolveContext::with_wave(self.config.kernel, &ticket);
            state = lock_state(campaign);
            if campaign.status() != CampaignStatus::Recalibrating {
                return Err(PricingError::NotServable {
                    id,
                    status: campaign.status().as_str(),
                });
            }
            let solved = {
                let _span = ft_trace::span("core.registry.recalibrate");
                state
                    .engine
                    .as_mut()
                    .expect("kind-checked engines exist")
                    .solve(&ctx)
            };
            match solved {
                Ok(Some((policy, start))) => {
                    let _span = ft_trace::span("core.registry.publish");
                    let prev = campaign
                        .generation()
                        .expect("live campaign has a generation");
                    campaign.publish(prev.generation + 1, start, Arc::new(policy));
                    recalibrated = true;
                }
                Ok(None) => {}
                Err(_) => {
                    // Failed re-solve (e.g. infeasible remainder): the
                    // previous generation keeps serving.
                    self.telemetry.solve_errors.inc();
                }
            }
        }
        campaign.transition(
            &state,
            if effect.exhausted {
                CampaignStatus::Exhausted
            } else {
                CampaignStatus::Live
            },
        );
        let generation = campaign
            .generation()
            .expect("live campaign has a generation")
            .generation;
        Ok(ObserveOutcome {
            status: campaign.status(),
            generation,
            correction: effect.correction,
            recalibrated,
            remaining: effect.remaining,
        })
    }

    /// Status + diagnostics for one campaign.
    pub fn report(&self, id: CampaignId) -> Result<CampaignReport> {
        let campaign = self.get(id)?;
        let state = lock_state(&campaign);
        let generation = campaign.generation().map_or(0, |g| g.generation);
        let (n_tasks, kind) = match &state.spec {
            CampaignSpec::Deadline { problem, .. } => (problem.n_tasks, "deadline"),
            CampaignSpec::Budget { problem } => (problem.n_tasks, "budget"),
        };
        let mut report = CampaignReport {
            id,
            kind: kind.to_string(),
            status: campaign.status(),
            generation,
            n_tasks,
            remaining: None,
            observations: 0,
            correction: None,
            policy_start: None,
            spent_cents: None,
            acceptance_shift: None,
        };
        if let Some(engine) = state.engine.as_deref() {
            engine.report(&mut report);
        }
        Ok(report)
    }

    /// The re-solve the campaign's engine would run if an observation
    /// arrived right now — `None` when the drift statistics or cadence
    /// don't warrant one (diagnostics).
    pub fn recalibration_spec(&self, id: CampaignId) -> Result<Option<RecalibrationSpec>> {
        let campaign = self.get(id)?;
        let state = lock_state(&campaign);
        Ok(state
            .engine
            .as_deref()
            .and_then(|engine| engine.recalibration_spec()))
    }

    /// The campaign's current policy generation, if solved.
    pub fn generation(&self, id: CampaignId) -> Option<Arc<PolicyGeneration>> {
        self.get(id).ok().and_then(|c| c.generation())
    }

    /// Evict a campaign: drop its policy and machinery, keep a tombstone
    /// record (its spec stays readable through [`CampaignRegistry::report`]
    /// and snapshots). Returns whether a non-evicted campaign existed.
    ///
    /// Tombstones accumulate; long-running embedders with heavy
    /// register/evict churn should follow up with
    /// [`CampaignRegistry::purge`] once the id no longer needs to
    /// answer status queries.
    pub fn evict(&self, id: CampaignId) -> bool {
        let Ok(campaign) = self.get(id) else {
            return false;
        };
        let mut state = lock_state(&campaign);
        if campaign.status() == CampaignStatus::Evicted {
            return false;
        }
        state.engine = None;
        *campaign
            .live
            .write()
            .expect("campaign generation lock poisoned") = None;
        campaign.transition(&state, CampaignStatus::Evicted);
        true
    }

    /// Remove a campaign record entirely — no tombstone, its id stops
    /// answering status queries (404 over HTTP) and disappears from
    /// snapshots. Returns whether a record existed.
    pub fn purge(&self, id: CampaignId) -> bool {
        self.store.remove(id)
    }

    /// All registered campaign ids (ascending; includes tombstones).
    pub fn ids(&self) -> Vec<CampaignId> {
        let mut ids = self.store.ids();
        ids.sort_unstable();
        ids
    }

    /// Number of non-evicted campaigns (from the shard counters — no
    /// map walk).
    pub fn len(&self) -> usize {
        self.store.len_serving()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Campaign counts bucketed by lifecycle status, in enum order —
    /// the `/healthz` fleet summary. Aggregated from shard-local
    /// atomics; takes no lock.
    pub fn status_counts(&self) -> [(CampaignStatus, usize); 6] {
        self.store.status_counts()
    }

    /// Total records, tombstones included — always consistent with the
    /// sum of [`CampaignRegistry::status_counts`] and, at quiescence,
    /// with `ids().len()`.
    pub fn total_records(&self) -> usize {
        self.store.total_records()
    }

    /// Number of campaigns currently holding a live policy generation.
    pub fn live_len(&self) -> usize {
        self.store
            .records()
            .iter()
            .filter(|(_, c)| c.generation().is_some())
            .count()
    }
}

#[cfg(test)]
mod tests;
