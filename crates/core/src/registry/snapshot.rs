//! Versioned snapshot persistence for the campaign registry.
//!
//! A snapshot captures every campaign — spec, status, generation,
//! observation history, drift state *and the solved policy tables* — so
//! a restarted server resumes each live campaign at its exact
//! generation without re-solving.
//!
//! ## Format versions
//!
//! The document carries a `format_version` field and the loader
//! dispatches on it:
//!
//! - **v1** (pre-engine-trait): budget campaigns persisted only
//!   progress counters (they could not recalibrate). Still loads —
//!   budget campaigns come back with a fresh (identity) drift state.
//! - **v2** (current): budget campaigns additionally persist their
//!   acceptance-drift machinery (cumulative scale, windowed history,
//!   correction, cadence counter).
//!
//! Writers always emit the current version; the per-version structs
//! below are kept verbatim so old documents parse with the strict
//! field-by-field vendored serde.

use super::engine::{BudgetEngine, CampaignEngine, DeadlineEngine};
use super::store::{lock_state, Campaign};
use super::{CampaignPolicy, CampaignRegistry, CampaignSpec, CampaignStatus, RegistryConfig};
use crate::adaptive::{AdaptiveOptions, AdaptivePricer};
use crate::budget::BudgetMdpPolicy;
use crate::error::{PricingError, Result};
use crate::kernel::KernelConfig;
use crate::policy::DeadlinePolicy;
use serde::{map_get, Deserialize, Serialize, Value};
use std::sync::Arc;

/// On-disk snapshot format version; bump on layout changes and keep a
/// loader for every version ever written.
pub const SNAPSHOT_VERSION: u32 = 2;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Snapshot {
    format_version: u32,
    next_id: u64,
    campaigns: Vec<PersistedCampaign>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PersistedCampaign {
    id: u64,
    spec: CampaignSpec,
    status: CampaignStatus,
    generation: u64,
    engine: PersistedEngine,
}

/// The engine wire form ([`CampaignEngine::snapshot`] output).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(super) enum PersistedEngine {
    Unsolved,
    Deadline {
        opts: AdaptiveOptions,
        history: Vec<(f64, u64)>,
        correction: f64,
        policy: DeadlinePolicy,
        policy_start: usize,
        remaining: u32,
    },
    Budget {
        policy: BudgetMdpPolicy,
        remaining: u32,
        spent_cents: usize,
        observations: usize,
        /// Cumulative logit shift baked into the serving policy.
        shift: f64,
        /// `(model_accept, offers, completions)` drift window.
        history: Vec<(f64, u64, u64)>,
        correction: f64,
        reports_since_resolve: usize,
    },
}

// ---- v1 (legacy) -----------------------------------------------------

/// The pre-versioning layout (`format_version: 1`). Kept field-for-field
/// so old documents parse; `Serialize` stays derived so the compat test
/// can fabricate genuine v1 documents.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SnapshotV1 {
    format_version: u32,
    next_id: u64,
    campaigns: Vec<PersistedCampaignV1>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PersistedCampaignV1 {
    id: u64,
    spec: CampaignSpec,
    status: CampaignStatus,
    generation: u64,
    engine: PersistedEngineV1,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum PersistedEngineV1 {
    Unsolved,
    Deadline {
        opts: AdaptiveOptions,
        history: Vec<(f64, u64)>,
        correction: f64,
        policy: DeadlinePolicy,
        policy_start: usize,
        remaining: u32,
    },
    Budget {
        policy: BudgetMdpPolicy,
        remaining: u32,
        spent_cents: usize,
        observations: usize,
    },
}

impl From<PersistedEngineV1> for PersistedEngine {
    fn from(v1: PersistedEngineV1) -> Self {
        match v1 {
            PersistedEngineV1::Unsolved => PersistedEngine::Unsolved,
            PersistedEngineV1::Deadline {
                opts,
                history,
                correction,
                policy,
                policy_start,
                remaining,
            } => PersistedEngine::Deadline {
                opts,
                history,
                correction,
                policy,
                policy_start,
                remaining,
            },
            // v1 budget campaigns never recalibrated: identity drift
            // state, ready to start accumulating signal.
            PersistedEngineV1::Budget {
                policy,
                remaining,
                spent_cents,
                observations,
            } => PersistedEngine::Budget {
                policy,
                remaining,
                spent_cents,
                observations,
                shift: 0.0,
                history: Vec::new(),
                correction: 1.0,
                reports_since_resolve: 0,
            },
        }
    }
}

impl CampaignRegistry {
    /// Serialize every campaign to a JSON snapshot (current format
    /// version).
    pub fn to_json(&self) -> Result<String> {
        // Snapshot the id → record handles first and release the shard
        // locks: a campaign mid-recalibration holds its writer lock for
        // a whole solve, and blocking on it while holding a map lock
        // would stall that shard's registrations (and, on
        // writer-preferring RwLocks, its quote hot path) for that long.
        let mut records = self.store().records();
        records.sort_unstable_by_key(|(id, _)| *id);
        let mut persisted = Vec::with_capacity(records.len());
        for (id, campaign) in records {
            persisted.push(Self::persist_campaign(id, &campaign)?);
        }
        let snapshot = Snapshot {
            format_version: SNAPSHOT_VERSION,
            next_id: self.next_id_value(),
            campaigns: persisted,
        };
        serde_json::to_string(&snapshot)
            .map_err(|e| PricingError::InvalidProblem(format!("snapshot serialize: {e}")))
    }

    /// Serialize **one** campaign as a complete single-campaign
    /// snapshot document (same wire format as
    /// [`CampaignRegistry::to_json`], `campaigns` holding exactly one
    /// entry) — the unit of fleet migration: a router drains a node,
    /// pulls each campaign this way at its exact generation, and feeds
    /// the document to [`CampaignRegistry::restore_json`] on the
    /// receiving node.
    pub fn campaign_to_json(&self, id: u64) -> Result<String> {
        let campaign = self
            .store()
            .get(id)
            .ok_or(PricingError::UnknownCampaign(id))?;
        let snapshot = Snapshot {
            format_version: SNAPSHOT_VERSION,
            next_id: self.next_id_value(),
            campaigns: vec![Self::persist_campaign(id, &campaign)?],
        };
        serde_json::to_string(&snapshot)
            .map_err(|e| PricingError::InvalidProblem(format!("snapshot serialize: {e}")))
    }

    /// One campaign's wire form, captured under its writer lock so the
    /// engine state and generation are mutually consistent (no torn
    /// generation: a concurrent recalibration either fully precedes or
    /// fully follows this capture).
    fn persist_campaign(id: u64, campaign: &Arc<Campaign>) -> Result<PersistedCampaign> {
        let state = lock_state(campaign);
        let current = campaign.generation();
        let generation = current.as_ref().map_or(0, |g| g.generation);
        let engine = match state.engine.as_deref() {
            None => PersistedEngine::Unsolved,
            Some(engine) => engine.snapshot(id, current.as_ref().map(|g| &*g.policy))?,
        };
        Ok(PersistedCampaign {
            id,
            spec: state.spec.clone(),
            status: campaign.status(),
            generation,
            engine,
        })
    }

    /// Rebuild a registry from [`CampaignRegistry::to_json`] output —
    /// any format version ever written. Live campaigns resume at their
    /// persisted generation without re-solving; campaigns that were
    /// mid-solve come back as drafts.
    pub fn from_json(json: &str, cfg: KernelConfig, adaptive: AdaptiveOptions) -> Result<Self> {
        Self::from_json_config(
            json,
            RegistryConfig {
                kernel: cfg,
                adaptive,
                ..RegistryConfig::default()
            },
        )
    }

    /// [`CampaignRegistry::from_json`] with full registry configuration
    /// (shard count, budget drift policy).
    pub fn from_json_config(json: &str, config: RegistryConfig) -> Result<Self> {
        let snapshot = Self::parse_snapshot(json)?;
        let registry = Self::with_registry_config(config);
        registry.revive_all(snapshot)?;
        Ok(registry)
    }

    /// Restore every campaign in a snapshot document **into this
    /// registry**, replacing any records already at those ids (readers
    /// mid-flight on a replaced id re-resolve onto the new record, as
    /// with `submit_at`). Campaigns resume at their exact persisted
    /// generation; the id dispenser advances past the document's.
    /// Returns the restored ids — the receiving side of a
    /// drain → snapshot → restore → flip migration.
    pub fn restore_json(&self, json: &str) -> Result<Vec<u64>> {
        let snapshot = Self::parse_snapshot(json)?;
        self.revive_all(snapshot)
    }

    /// Parse any snapshot version ever written into the current form.
    fn parse_snapshot(json: &str) -> Result<Snapshot> {
        let document: Value = serde_json::from_str(json)
            .map_err(|e| PricingError::InvalidProblem(format!("snapshot parse: {e}")))?;
        let fields = document
            .as_map()
            .ok_or_else(|| PricingError::InvalidProblem("snapshot: not an object".into()))?;
        let version = map_get(fields, "format_version")
            .ok()
            .and_then(Value::as_num)
            .ok_or_else(|| {
                PricingError::InvalidProblem("snapshot: missing format_version".into())
            })? as u32;
        let snapshot = match version {
            1 => {
                let v1 = SnapshotV1::from_value(&document).map_err(|e| {
                    PricingError::InvalidProblem(format!("snapshot parse (v1): {e}"))
                })?;
                Snapshot {
                    format_version: SNAPSHOT_VERSION,
                    next_id: v1.next_id,
                    campaigns: v1
                        .campaigns
                        .into_iter()
                        .map(|c| PersistedCampaign {
                            id: c.id,
                            spec: c.spec,
                            status: c.status,
                            generation: c.generation,
                            engine: c.engine.into(),
                        })
                        .collect(),
                }
            }
            SNAPSHOT_VERSION => Snapshot::from_value(&document)
                .map_err(|e| PricingError::InvalidProblem(format!("snapshot parse (v2): {e}")))?,
            other => {
                return Err(PricingError::InvalidProblem(format!(
                    "snapshot format {other} unsupported (newest is {SNAPSHOT_VERSION})"
                )))
            }
        };
        Ok(snapshot)
    }

    /// Rebuild and insert every campaign in `snapshot`, then advance
    /// the id dispenser past everything seen (shared by full-registry
    /// loads and per-campaign restores).
    fn revive_all(&self, snapshot: Snapshot) -> Result<Vec<u64>> {
        let mut restored = Vec::with_capacity(snapshot.campaigns.len());
        let mut max_id = 0u64;
        for persisted in snapshot.campaigns {
            let id = persisted.id;
            max_id = max_id.max(id);
            self.revive_campaign(persisted)?;
            restored.push(id);
        }
        self.bump_next_id(snapshot.next_id.max(max_id.saturating_add(1)));
        Ok(restored)
    }

    /// Rebuild one persisted campaign and insert it (replacing any
    /// record at that id).
    fn revive_campaign(&self, persisted: PersistedCampaign) -> Result<()> {
        let id = persisted.id;
        let campaign = Arc::new(Campaign::new(persisted.spec, self.store().stats_for(id)));
        let status = match persisted.status {
            // A solve or recalibration that was in flight at
            // snapshot time produced nothing durable.
            CampaignStatus::Solving => CampaignStatus::Draft,
            CampaignStatus::Recalibrating => CampaignStatus::Live,
            s => s,
        };
        let engine: Option<Box<dyn CampaignEngine>> = match persisted.engine {
            PersistedEngine::Unsolved => None,
            PersistedEngine::Deadline {
                opts,
                history,
                correction,
                policy,
                policy_start,
                remaining,
            } => {
                let problem = {
                    let state = lock_state(&campaign);
                    match &state.spec {
                        CampaignSpec::Deadline { problem, .. } => problem.clone(),
                        CampaignSpec::Budget { .. } => {
                            return Err(PricingError::InvalidProblem(format!(
                                "campaign {id}: deadline engine on a budget spec"
                            )))
                        }
                    }
                };
                let pricer = AdaptivePricer::from_parts(
                    problem,
                    opts,
                    history,
                    correction,
                    policy.clone(),
                    policy_start,
                )?;
                campaign.publish(
                    persisted.generation,
                    policy_start,
                    Arc::new(CampaignPolicy::Deadline(policy)),
                );
                Some(Box::new(DeadlineEngine {
                    pricer: Box::new(pricer),
                    remaining,
                }))
            }
            PersistedEngine::Budget {
                policy,
                remaining,
                spent_cents,
                observations,
                shift,
                history,
                correction,
                reports_since_resolve,
            } => {
                let problem = {
                    let state = lock_state(&campaign);
                    match &state.spec {
                        CampaignSpec::Budget { problem } => problem.clone(),
                        CampaignSpec::Deadline { .. } => {
                            return Err(PricingError::InvalidProblem(format!(
                                "campaign {id}: budget engine on a deadline spec"
                            )))
                        }
                    }
                };
                let engine = BudgetEngine::from_parts(
                    problem,
                    self.config().budget_drift,
                    remaining,
                    spent_cents,
                    observations,
                    shift,
                    history,
                    correction,
                    reports_since_resolve,
                )?;
                campaign.publish(
                    persisted.generation,
                    0,
                    Arc::new(CampaignPolicy::Budget(policy)),
                );
                Some(Box::new(engine))
            }
        };
        {
            let mut state = lock_state(&campaign);
            state.engine = engine;
            if status == CampaignStatus::Evicted {
                // Tombstone: spec stays readable, machinery dropped.
                state.engine = None;
                *campaign
                    .live
                    .write()
                    .expect("campaign generation lock poisoned") = None;
            }
        }
        campaign.set_status_raw(status);
        self.store().insert(id, campaign);
        Ok(())
    }

    /// Write a snapshot to `path` (see [`CampaignRegistry::to_json`]).
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        let json = self.to_json()?;
        std::fs::write(path, json)
            .map_err(|e| PricingError::InvalidProblem(format!("snapshot write: {e}")))
    }

    /// Load a snapshot written by [`CampaignRegistry::save`] (any
    /// format version).
    pub fn load(
        path: &std::path::Path,
        cfg: KernelConfig,
        adaptive: AdaptiveOptions,
    ) -> Result<Self> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| PricingError::InvalidProblem(format!("snapshot read: {e}")))?;
        Self::from_json(&json, cfg, adaptive)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{CampaignObservation, ObservedState};
    use super::*;
    use crate::testkit::tiny_budget_problem;

    /// Render the registry in the **v1** wire format — what a
    /// pre-versioning deployment would have on disk. Budget drift state
    /// is dropped, exactly as v1 writers dropped it.
    fn to_v1_json(registry: &CampaignRegistry) -> String {
        let v2: Value = serde_json::from_str(&registry.to_json().unwrap()).unwrap();
        let parsed = Snapshot::from_value(&v2).unwrap();
        let v1 = SnapshotV1 {
            format_version: 1,
            next_id: parsed.next_id,
            campaigns: parsed
                .campaigns
                .into_iter()
                .map(|c| PersistedCampaignV1 {
                    id: c.id,
                    spec: c.spec,
                    status: c.status,
                    generation: c.generation,
                    engine: match c.engine {
                        PersistedEngine::Unsolved => PersistedEngineV1::Unsolved,
                        PersistedEngine::Deadline {
                            opts,
                            history,
                            correction,
                            policy,
                            policy_start,
                            remaining,
                        } => PersistedEngineV1::Deadline {
                            opts,
                            history,
                            correction,
                            policy,
                            policy_start,
                            remaining,
                        },
                        PersistedEngine::Budget {
                            policy,
                            remaining,
                            spent_cents,
                            observations,
                            ..
                        } => PersistedEngineV1::Budget {
                            policy,
                            remaining,
                            spent_cents,
                            observations,
                        },
                    },
                })
                .collect(),
        };
        serde_json::to_string(&v1.to_value()).unwrap()
    }

    #[test]
    fn v1_snapshots_still_load() {
        let registry = CampaignRegistry::new();
        let budget_id = registry.register(CampaignSpec::Budget {
            problem: tiny_budget_problem(),
        });
        registry.solve(budget_id).unwrap();
        registry
            .observe(
                budget_id,
                CampaignObservation::Budget {
                    completions: 3,
                    spent_cents: 20,
                    posted: None,
                    offers: None,
                },
            )
            .unwrap();
        let probe = ObservedState::Budget {
            remaining: 7,
            budget_cents: 40,
        };
        let before = registry.quote(budget_id, probe).unwrap();

        let v1 = to_v1_json(&registry);
        assert!(v1.contains("\"format_version\":1"), "not a v1 document");
        let restored =
            CampaignRegistry::from_json(&v1, KernelConfig::default(), AdaptiveOptions::default())
                .unwrap();
        let after = restored.quote(budget_id, probe).unwrap();
        assert_eq!(after.generation, before.generation);
        assert_eq!(after.price.to_bits(), before.price.to_bits());
        let report = restored.report(budget_id).unwrap();
        assert_eq!(report.spent_cents, Some(20));
        assert_eq!(report.observations, 1);
        // Restored v1 budget campaigns carry the identity drift state —
        // and can start recalibrating from here.
        assert_eq!(report.acceptance_shift, Some(0.0));
        // Ids keep advancing past the restored fleet.
        assert!(
            restored.register(CampaignSpec::Budget {
                problem: tiny_budget_problem(),
            }) > budget_id
        );
    }

    #[test]
    fn unknown_future_version_is_a_structured_error() {
        let json = format!(
            "{{\"format_version\":{},\"next_id\":1,\"campaigns\":[]}}",
            SNAPSHOT_VERSION + 1
        );
        let err = match CampaignRegistry::from_json(
            &json,
            KernelConfig::default(),
            AdaptiveOptions::default(),
        ) {
            Err(err) => err,
            Ok(_) => panic!("future format version must not load"),
        };
        assert!(matches!(err, PricingError::InvalidProblem(_)));
        assert!(err.to_string().contains("unsupported"));
    }

    #[test]
    fn single_campaign_snapshot_restores_at_exact_generation() {
        let source = CampaignRegistry::new();
        // Offset the source dispenser so the migrated id does not
        // collide with the destination's own first campaign.
        source.register(CampaignSpec::Budget {
            problem: tiny_budget_problem(),
        });
        let id = source.register(CampaignSpec::Budget {
            problem: tiny_budget_problem(),
        });
        source.solve(id).unwrap();
        let posted = source
            .quote(
                id,
                ObservedState::Budget {
                    remaining: 10,
                    budget_cents: 60,
                },
            )
            .unwrap()
            .price;
        source
            .observe(
                id,
                CampaignObservation::Budget {
                    completions: 1,
                    spent_cents: posted as usize,
                    posted: Some(posted),
                    offers: Some(40),
                },
            )
            .unwrap();
        let before_quote = source
            .quote(
                id,
                ObservedState::Budget {
                    remaining: 7,
                    budget_cents: 40,
                },
            )
            .unwrap();
        let before_report = source.report(id).unwrap();

        let doc = source.campaign_to_json(id).unwrap();
        assert!(doc.contains("\"format_version\":2"));

        // Restore onto a registry that already has unrelated campaigns:
        // the migrated record keeps its id and exact generation, and the
        // destination's own campaigns are untouched.
        let target = CampaignRegistry::new();
        let native = target.register(CampaignSpec::Budget {
            problem: tiny_budget_problem(),
        });
        let restored = target.restore_json(&doc).unwrap();
        assert_eq!(restored, vec![id]);
        let after_quote = target
            .quote(
                id,
                ObservedState::Budget {
                    remaining: 7,
                    budget_cents: 40,
                },
            )
            .unwrap();
        assert_eq!(after_quote.generation, before_quote.generation);
        assert_eq!(after_quote.price.to_bits(), before_quote.price.to_bits());
        let after_report = target.report(id).unwrap();
        assert_eq!(after_report.observations, before_report.observations);
        assert_eq!(after_report.spent_cents, before_report.spent_cents);
        assert_eq!(
            after_report.acceptance_shift,
            before_report.acceptance_shift
        );
        assert!(
            (after_report.correction.unwrap() - before_report.correction.unwrap()).abs() < 1e-12
        );
        assert_eq!(target.report(native).unwrap().status, CampaignStatus::Draft);
        // The dispenser advanced past the migrated id: new registrations
        // never collide with restored campaigns.
        assert!(
            target.register(CampaignSpec::Budget {
                problem: tiny_budget_problem(),
            }) > id
        );
    }

    #[test]
    fn restore_replaces_an_existing_record_and_keeps_counts_consistent() {
        let source = CampaignRegistry::new();
        let id = source.register(CampaignSpec::Budget {
            problem: tiny_budget_problem(),
        });
        source.solve(id).unwrap();
        let doc = source.campaign_to_json(id).unwrap();

        // Target already holds a *different* campaign at the same id —
        // the restore must retire it (readers re-resolve) rather than
        // leak it or double-count its status.
        let target = CampaignRegistry::new();
        let stale = target.register(CampaignSpec::Budget {
            problem: tiny_budget_problem(),
        });
        assert_eq!(stale, id, "test premise: colliding ids");
        target.restore_json(&doc).unwrap();
        assert_eq!(target.len(), 1);
        assert_eq!(target.report(id).unwrap().status, CampaignStatus::Live);
        let count_of = |status: CampaignStatus| {
            target
                .status_counts()
                .iter()
                .find(|(s, _)| *s == status)
                .map_or(0, |(_, n)| *n)
        };
        assert_eq!(count_of(CampaignStatus::Live), 1);
        assert_eq!(count_of(CampaignStatus::Draft), 0);
    }

    #[test]
    fn campaign_to_json_unknown_id_is_an_error() {
        let registry = CampaignRegistry::new();
        assert!(matches!(
            registry.campaign_to_json(999),
            Err(PricingError::UnknownCampaign(999))
        ));
    }

    #[test]
    fn v2_round_trip_preserves_budget_drift_state() {
        let registry = CampaignRegistry::new();
        let id = registry.register(CampaignSpec::Budget {
            problem: tiny_budget_problem(),
        });
        registry.solve(id).unwrap();
        // Two exposure-carrying reports with depressed acceptance build
        // drift signal (but stay under the default cadence threshold of
        // the *solve*, which is fine — the state must persist either way).
        let posted = registry
            .quote(
                id,
                ObservedState::Budget {
                    remaining: 10,
                    budget_cents: 60,
                },
            )
            .unwrap()
            .price;
        registry
            .observe(
                id,
                CampaignObservation::Budget {
                    completions: 1,
                    spent_cents: posted as usize,
                    posted: Some(posted),
                    offers: Some(40),
                },
            )
            .unwrap();
        let before = registry.report(id).unwrap();
        assert!(before.correction.unwrap() < 1.0, "no drift signal built");

        let json = registry.to_json().unwrap();
        assert!(json.contains("\"format_version\":2"));
        let restored =
            CampaignRegistry::from_json(&json, KernelConfig::default(), AdaptiveOptions::default())
                .unwrap();
        let after = restored.report(id).unwrap();
        assert_eq!(after.observations, before.observations);
        assert_eq!(after.spent_cents, before.spent_cents);
        assert_eq!(after.acceptance_shift, before.acceptance_shift);
        assert!((after.correction.unwrap() - before.correction.unwrap()).abs() < 1e-12);
    }
}
