//! The sharded campaign store: `N` independently locked id→record maps
//! plus shard-local status counters.
//!
//! The registry used to keep every campaign behind one global
//! `RwLock<HashMap>`; at fleet scale that lock is on *every* quote,
//! observe, solve and eviction. [`ShardedStore`] routes each id to one
//! of `N` shards by a multiplicative hash, so operations on different
//! campaigns contend only when they land on the same shard, and the
//! quote hot path takes exactly one shard read lock for its map lookup.
//!
//! Fleet-level aggregates (`/healthz` status counts, `campaigns_total`)
//! no longer walk the maps either: each shard keeps a per-status
//! counter ([`ShardStats`]) that campaigns update as they transition,
//! and reads just sum `6 × N` atomics.
//!
//! ## Counting discipline
//!
//! The counters and the maps must never drift apart, including under
//! concurrent register/evict/purge churn (there is a stress test
//! pinning this). The rules:
//!
//! - every status change and every count/uncount happens while holding
//!   the campaign's writer mutex ([`Campaign::state`]) — the mutex
//!   serializes counter updates per campaign;
//! - a record is *counted* exactly while it sits in a shard map
//!   ([`CampaignState::counted`]); [`Campaign::count`] /
//!   [`Campaign::uncount`] flip the flag and adjust the counter for the
//!   record's current status, and [`Campaign::transition`] moves a
//!   counted record between status buckets;
//! - map membership changes go through [`ShardedStore::with_entry`],
//!   which establishes the lock order **campaign writer mutex → shard
//!   map write lock** (the same order `submit_at` has always used, so a
//!   replacement can read the outgoing record's generation without ever
//!   blocking the quote path behind a solve).

use super::engine::CampaignEngine;
use super::{CampaignPolicy, CampaignSpec, CampaignStatus, PolicyGeneration};
use crate::error::CampaignId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Writer-side state of a campaign (everything behind its mutex).
pub(super) struct CampaignState {
    pub spec: CampaignSpec,
    /// `None` for Draft/Solving/Evicted records (nothing solved, or the
    /// policy dropped).
    pub engine: Option<Box<dyn CampaignEngine>>,
    /// Whether this record currently contributes to its shard's status
    /// counters — true exactly while it sits in the shard map.
    pub counted: bool,
}

impl CampaignState {
    /// The engine's kind, or `"unsolved"` — the `expected` side of a
    /// kind-mismatch error.
    pub fn kind(&self) -> &'static str {
        self.engine.as_deref().map_or("unsolved", |e| e.kind())
    }
}

/// One registered campaign (keyed by id in its shard's map).
pub(super) struct Campaign {
    status: AtomicU8,
    pub state: Mutex<CampaignState>,
    pub live: RwLock<Option<Arc<PolicyGeneration>>>,
    /// The owning shard's counters (resolved once at creation).
    stats: Arc<ShardStats>,
}

impl Campaign {
    pub fn new(spec: CampaignSpec, stats: Arc<ShardStats>) -> Self {
        Self {
            status: AtomicU8::new(CampaignStatus::Draft as u8),
            state: Mutex::new(CampaignState {
                spec,
                engine: None,
                counted: false,
            }),
            live: RwLock::new(None),
            stats,
        }
    }

    pub fn status(&self) -> CampaignStatus {
        CampaignStatus::from_u8(self.status.load(Ordering::Acquire))
    }

    /// Set the status of a record no other thread can reach yet (fresh
    /// construction / snapshot restore) — no counter movement.
    pub fn set_status_raw(&self, s: CampaignStatus) {
        self.status.store(s as u8, Ordering::Release);
    }

    /// Move to `new`, keeping the shard counters in step. The caller
    /// must hold the campaign's writer mutex (pass the guard's target) —
    /// that is what serializes counter updates per campaign.
    pub fn transition(&self, state: &CampaignState, new: CampaignStatus) {
        let old = self.status.swap(new as u8, Ordering::AcqRel);
        if state.counted {
            self.stats.moved(CampaignStatus::from_u8(old), new);
        }
    }

    /// Start contributing to the shard counters (on map insertion).
    pub fn count(&self, state: &mut CampaignState) {
        if !state.counted {
            state.counted = true;
            self.stats.adjust(self.status(), 1);
        }
    }

    /// Stop contributing (on map removal/replacement).
    pub fn uncount(&self, state: &mut CampaignState) {
        if state.counted {
            state.counted = false;
            self.stats.adjust(self.status(), -1);
        }
    }

    pub fn generation(&self) -> Option<Arc<PolicyGeneration>> {
        self.live
            .read()
            .expect("campaign generation lock poisoned")
            .clone()
    }

    /// Publish a new generation: the single atomic pointer swap readers
    /// observe.
    pub fn publish(&self, generation: u64, start: usize, policy: Arc<CampaignPolicy>) {
        let mut live = self
            .live
            .write()
            .expect("campaign generation lock poisoned");
        *live = Some(Arc::new(PolicyGeneration {
            generation,
            start,
            policy,
        }));
    }
}

/// Per-shard status counters. Signed so a counting bug shows up as a
/// negative count in tests instead of a wrapped huge number.
#[derive(Default)]
pub(super) struct ShardStats {
    by_status: [AtomicI64; 6],
}

impl ShardStats {
    fn adjust(&self, status: CampaignStatus, delta: i64) {
        self.by_status[status as usize].fetch_add(delta, Ordering::AcqRel);
    }

    fn moved(&self, old: CampaignStatus, new: CampaignStatus) {
        if old != new {
            self.adjust(old, -1);
            self.adjust(new, 1);
        }
    }
}

/// One shard: an id→record map plus the counters its records maintain.
pub(super) struct Shard {
    pub map: RwLock<HashMap<CampaignId, Arc<Campaign>>>,
    pub stats: Arc<ShardStats>,
}

/// The sharded concurrent campaign store.
pub(super) struct ShardedStore {
    shards: Box<[Shard]>,
}

impl ShardedStore {
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| Shard {
                    map: RwLock::new(HashMap::new()),
                    stats: Arc::new(ShardStats::default()),
                })
                .collect(),
        }
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `id` routes to. Sequential ids (the registry hands
    /// them out from a counter) must spread evenly, hence the
    /// multiplicative mix before the modulo.
    pub fn shard(&self, id: CampaignId) -> &Shard {
        let mixed = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(mixed as usize) % self.shards.len()]
    }

    /// Stats handle for the shard `id` routes to (what
    /// [`Campaign::new`] wants).
    pub fn stats_for(&self, id: CampaignId) -> Arc<ShardStats> {
        Arc::clone(&self.shard(id).stats)
    }

    /// Hot-path lookup: one shard read lock.
    pub fn get(&self, id: CampaignId) -> Option<Arc<Campaign>> {
        self.shard(id)
            .map
            .read()
            .expect("campaign shard lock poisoned")
            .get(&id)
            .cloned()
    }

    /// Run `f` with a consistent view of the entry at `id`: the record
    /// currently stored there (with its writer mutex held) and the
    /// shard map write guard. Lock order: campaign writer mutex first,
    /// then the map write lock — never the reverse — so `f` can inspect
    /// or retire the outgoing record without stalling quote readers
    /// behind an in-flight solve. Retries internally if a racing
    /// replacement swaps the entry between the two acquisitions.
    pub fn with_entry<T>(
        &self,
        id: CampaignId,
        f: impl FnOnce(
            Option<(&Arc<Campaign>, &mut CampaignState)>,
            &mut HashMap<CampaignId, Arc<Campaign>>,
        ) -> T,
    ) -> T {
        let shard = self.shard(id);
        loop {
            let old = shard
                .map
                .read()
                .expect("campaign shard lock poisoned")
                .get(&id)
                .cloned();
            let mut old_state = old
                .as_ref()
                .map(|old| old.state.lock().expect("campaign lock poisoned"));
            let mut map = shard.map.write().expect("campaign shard lock poisoned");
            let current = map.get(&id);
            let still_current = match (&old, current) {
                (None, None) => true,
                (Some(old), Some(current)) => Arc::ptr_eq(old, current),
                _ => false,
            };
            if !still_current {
                drop(map);
                drop(old_state);
                continue; // lost a race with another replacement/purge
            }
            let entry = match (&old, old_state.as_mut()) {
                (Some(old), Some(state)) => Some((old, &mut **state)),
                _ => None,
            };
            return f(entry, &mut map);
        }
    }

    /// Insert (or replace) the record at `id`, keeping the counters in
    /// step: the outgoing record is uncounted **and retired** (engine
    /// dropped, generation cleared, status Evicted) so detached handles
    /// fetched just before the swap can't keep serving or mutating an
    /// orphan — the same guard `submit_at` applies. The incoming record
    /// is counted. Returns the replaced record, if any.
    pub fn insert(&self, id: CampaignId, campaign: Arc<Campaign>) -> Option<Arc<Campaign>> {
        self.with_entry(id, |entry, map| {
            if let Some((old, old_state)) = entry {
                old.uncount(old_state);
                old_state.engine = None;
                *old.live.write().expect("campaign generation lock poisoned") = None;
                old.transition(old_state, CampaignStatus::Evicted);
            }
            // The incoming record is not yet shared, so taking its
            // mutex while holding the map write lock cannot block.
            campaign.count(&mut campaign.state.lock().expect("campaign lock poisoned"));
            map.insert(id, Arc::clone(&campaign))
        })
    }

    /// Remove the record at `id` entirely (no tombstone), uncounting
    /// it. Returns whether a record existed.
    pub fn remove(&self, id: CampaignId) -> bool {
        self.with_entry(id, |entry, map| match entry {
            Some((old, old_state)) => {
                old.uncount(old_state);
                map.remove(&id);
                true
            }
            None => false,
        })
    }

    /// Every record, unordered (callers sort by id where it matters).
    pub fn records(&self) -> Vec<(CampaignId, Arc<Campaign>)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let map = shard.map.read().expect("campaign shard lock poisoned");
            out.extend(map.iter().map(|(id, c)| (*id, Arc::clone(c))));
        }
        out
    }

    /// Every registered id, unordered.
    pub fn ids(&self) -> Vec<CampaignId> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let map = shard.map.read().expect("campaign shard lock poisoned");
            out.extend(map.keys().copied());
        }
        out
    }

    /// Campaign counts bucketed by lifecycle status, in enum order —
    /// a `6 × N`-atomic sum, no map walk, no shard lock.
    pub fn status_counts(&self) -> [(CampaignStatus, usize); 6] {
        let mut counts = [
            (CampaignStatus::Draft, 0),
            (CampaignStatus::Solving, 0),
            (CampaignStatus::Live, 0),
            (CampaignStatus::Recalibrating, 0),
            (CampaignStatus::Exhausted, 0),
            (CampaignStatus::Evicted, 0),
        ];
        for shard in self.shards.iter() {
            for (i, slot) in shard.stats.by_status.iter().enumerate() {
                counts[i].1 += slot.load(Ordering::Acquire).max(0) as usize;
            }
        }
        counts
    }

    /// Total records (tombstones included) — the counter-derived twin
    /// of `ids().len()`.
    pub fn total_records(&self) -> usize {
        self.status_counts().iter().map(|(_, n)| n).sum()
    }

    /// Non-evicted records, from the counters.
    pub fn len_serving(&self) -> usize {
        self.status_counts()
            .iter()
            .filter(|(s, _)| *s != CampaignStatus::Evicted)
            .map(|(_, n)| n)
            .sum()
    }
}

/// Convenience: lock a campaign's writer mutex.
pub(super) fn lock_state(campaign: &Campaign) -> MutexGuard<'_, CampaignState> {
    campaign.state.lock().expect("campaign lock poisoned")
}
