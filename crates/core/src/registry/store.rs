//! The sharded campaign store: `N` independently locked id→record maps
//! plus shard-local status counters.
//!
//! The registry used to keep every campaign behind one global
//! `RwLock<HashMap>`; at fleet scale that lock is on *every* quote,
//! observe, solve and eviction. [`ShardedStore`] routes each id to one
//! of `N` shards by a multiplicative hash, so operations on different
//! campaigns contend only when they land on the same shard, and the
//! quote hot path takes exactly one shard read lock for its map lookup.
//!
//! Fleet-level aggregates (`/healthz` status counts, `campaigns_total`)
//! no longer walk the maps either: each shard keeps a per-status
//! counter ([`ShardStats`]) that campaigns update as they transition,
//! and reads just sum `6 × N` atomics.
//!
//! ## Counting discipline
//!
//! The counters and the maps must never drift apart, including under
//! concurrent register/evict/purge churn (there is a stress test
//! pinning this). The rules:
//!
//! - every status change and every count/uncount happens while holding
//!   the campaign's writer mutex ([`Campaign::state`]) — the mutex
//!   serializes counter updates per campaign;
//! - a record is *counted* exactly while it sits in a shard map
//!   ([`CampaignState::counted`]); [`Campaign::count`] /
//!   [`Campaign::uncount`] flip the flag and adjust the counter for the
//!   record's current status, and [`Campaign::transition`] moves a
//!   counted record between status buckets;
//! - map membership changes go through [`ShardedStore::with_entry`],
//!   which establishes the lock order **campaign writer mutex → shard
//!   map write lock** (the same order `submit_at` has always used, so a
//!   replacement can read the outgoing record's generation without ever
//!   blocking the quote path behind a solve).

use super::engine::CampaignEngine;
use super::{CampaignPolicy, CampaignSpec, CampaignStatus, PolicyGeneration};
use crate::error::CampaignId;
use crate::lockcheck;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicI64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Writer-side state of a campaign (everything behind its mutex).
pub(super) struct CampaignState {
    pub spec: CampaignSpec,
    /// `None` for Draft/Solving/Evicted records (nothing solved, or the
    /// policy dropped).
    pub engine: Option<Box<dyn CampaignEngine>>,
    /// Whether this record currently contributes to its shard's status
    /// counters — true exactly while it sits in the shard map.
    pub counted: bool,
}

impl CampaignState {
    /// The engine's kind, or `"unsolved"` — the `expected` side of a
    /// kind-mismatch error.
    pub fn kind(&self) -> &'static str {
        self.engine.as_deref().map_or("unsolved", |e| e.kind())
    }
}

/// One registered campaign (keyed by id in its shard's map).
pub(super) struct Campaign {
    status: AtomicU8,
    pub state: Mutex<CampaignState>,
    pub live: RwLock<Option<Arc<PolicyGeneration>>>,
    /// The owning shard's counters (resolved once at creation).
    stats: Arc<ShardStats>,
}

impl Campaign {
    pub fn new(spec: CampaignSpec, stats: Arc<ShardStats>) -> Self {
        Self {
            status: AtomicU8::new(CampaignStatus::Draft as u8),
            state: Mutex::new(CampaignState {
                spec,
                engine: None,
                counted: false,
            }),
            live: RwLock::new(None),
            stats,
        }
    }

    pub fn status(&self) -> CampaignStatus {
        // ORDERING: Acquire pairs with the Release/AcqRel writers in
        // `set_status_raw`/`transition` — a reader that routes on the
        // status also sees the state the transition published.
        CampaignStatus::from_u8(self.status.load(Ordering::Acquire))
    }

    /// Set the status of a record no other thread can reach yet (fresh
    /// construction / snapshot restore) — no counter movement.
    pub fn set_status_raw(&self, s: CampaignStatus) {
        // ORDERING: Release pairs with the Acquire in `status` once the
        // record becomes reachable through the shard map.
        self.status.store(s as u8, Ordering::Release);
    }

    /// Move to `new`, keeping the shard counters in step. The caller
    /// must hold the campaign's writer mutex (pass the guard's target) —
    /// that is what serializes counter updates per campaign.
    pub fn transition(&self, state: &CampaignState, new: CampaignStatus) {
        // ORDERING: AcqRel — the swap both publishes the transition to
        // `status` readers (release side) and orders the counter
        // movement below after any prior transition it replaces
        // (acquire side); the writer mutex serializes writers, but
        // `status()` readers take no lock.
        let old = self.status.swap(new as u8, Ordering::AcqRel);
        if state.counted {
            self.stats.moved(CampaignStatus::from_u8(old), new);
        }
    }

    /// Start contributing to the shard counters (on map insertion).
    pub fn count(&self, state: &mut CampaignState) {
        if !state.counted {
            state.counted = true;
            self.stats.adjust(self.status(), 1);
        }
    }

    /// Stop contributing (on map removal/replacement).
    pub fn uncount(&self, state: &mut CampaignState) {
        if state.counted {
            state.counted = false;
            self.stats.adjust(self.status(), -1);
        }
    }

    pub fn generation(&self) -> Option<Arc<PolicyGeneration>> {
        self.live
            .read()
            .expect("campaign generation lock poisoned")
            .clone()
    }

    /// Publish a new generation: the single atomic pointer swap readers
    /// observe.
    pub fn publish(&self, generation: u64, start: usize, policy: Arc<CampaignPolicy>) {
        let mut live = self
            .live
            .write()
            .expect("campaign generation lock poisoned");
        *live = Some(Arc::new(PolicyGeneration {
            generation,
            start,
            policy,
        }));
    }
}

/// Per-shard status counters. Signed so a counting bug shows up as a
/// negative count in tests instead of a wrapped huge number.
#[derive(Default)]
pub(super) struct ShardStats {
    by_status: [AtomicI64; 6],
}

impl ShardStats {
    fn adjust(&self, status: CampaignStatus, delta: i64) {
        // ORDERING: AcqRel chains successive movements through each
        // cell and pairs with the Acquire sweep in `status_counts`.
        // The -1/+1 halves of a move land in *different* cells, so a
        // concurrent sweep may still observe one half without the
        // other — the sweep clamps and documents that transient skew
        // instead of claiming cross-cell atomicity.
        self.by_status[status as usize].fetch_add(delta, Ordering::AcqRel);
    }

    fn moved(&self, old: CampaignStatus, new: CampaignStatus) {
        if old != new {
            self.adjust(old, -1);
            self.adjust(new, 1);
        }
    }
}

/// One shard: an id→record map plus the counters its records maintain.
pub(super) struct Shard {
    pub map: RwLock<HashMap<CampaignId, Arc<Campaign>>>,
    pub stats: Arc<ShardStats>,
}

/// The sharded concurrent campaign store.
pub(super) struct ShardedStore {
    shards: Box<[Shard]>,
}

impl ShardedStore {
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| Shard {
                    map: RwLock::new(HashMap::new()),
                    stats: Arc::new(ShardStats::default()),
                })
                .collect(),
        }
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `id` routes to. Sequential ids (the registry hands
    /// them out from a counter) must spread evenly, hence the
    /// multiplicative mix before the modulo.
    pub fn shard(&self, id: CampaignId) -> &Shard {
        let mixed = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(mixed as usize) % self.shards.len()]
    }

    /// Stats handle for the shard `id` routes to (what
    /// [`Campaign::new`] wants).
    pub fn stats_for(&self, id: CampaignId) -> Arc<ShardStats> {
        Arc::clone(&self.shard(id).stats)
    }

    /// Hot-path lookup: one shard read lock.
    pub fn get(&self, id: CampaignId) -> Option<Arc<Campaign>> {
        let _witness = lockcheck::acquire(lockcheck::SHARD_MAP, "read");
        self.shard(id)
            .map
            .read()
            .expect("campaign shard lock poisoned")
            .get(&id)
            .cloned()
    }

    /// Run `f` with a consistent view of the entry at `id`: the record
    /// currently stored there (with its writer mutex held) and the
    /// shard map write guard. Lock order: campaign writer mutex first,
    /// then the map write lock — never the reverse — so `f` can inspect
    /// or retire the outgoing record without stalling quote readers
    /// behind an in-flight solve. Retries internally if a racing
    /// replacement swaps the entry between the two acquisitions.
    pub fn with_entry<T>(
        &self,
        id: CampaignId,
        f: impl FnOnce(
            Option<(&Arc<Campaign>, &mut CampaignState)>,
            &mut HashMap<CampaignId, Arc<Campaign>>,
        ) -> T,
    ) -> T {
        let shard = self.shard(id);
        loop {
            let old = {
                let _witness = lockcheck::acquire(lockcheck::SHARD_MAP, "peek");
                shard
                    .map
                    .read()
                    .expect("campaign shard lock poisoned")
                    .get(&id)
                    .cloned()
            };
            let mut old_state = old.as_ref().map(|old| lock_state(old));
            let map_witness = lockcheck::acquire(lockcheck::SHARD_MAP, "write");
            let mut map = shard.map.write().expect("campaign shard lock poisoned");
            let current = map.get(&id);
            let still_current = match (&old, current) {
                (None, None) => true,
                (Some(old), Some(current)) => Arc::ptr_eq(old, current),
                _ => false,
            };
            if !still_current {
                drop(map);
                drop(map_witness);
                drop(old_state);
                continue; // lost a race with another replacement/purge
            }
            let entry = match (&old, old_state.as_mut()) {
                (Some(old), Some(state)) => Some((old, &mut **state)),
                _ => None,
            };
            return f(entry, &mut map);
        }
    }

    /// Insert (or replace) the record at `id`, keeping the counters in
    /// step: the outgoing record is uncounted **and retired** (engine
    /// dropped, generation cleared, status Evicted) so detached handles
    /// fetched just before the swap can't keep serving or mutating an
    /// orphan — the same guard `submit_at` applies. The incoming record
    /// is counted. Returns the replaced record, if any.
    pub fn insert(&self, id: CampaignId, campaign: Arc<Campaign>) -> Option<Arc<Campaign>> {
        self.with_entry(id, |entry, map| {
            if let Some((old, old_state)) = entry {
                old.uncount(old_state);
                old_state.engine = None;
                *old.live.write().expect("campaign generation lock poisoned") = None;
                old.transition(old_state, CampaignStatus::Evicted);
            }
            // The incoming record is not yet shared, so taking its
            // mutex while holding the map write lock cannot block —
            // which is also why this acquisition is the untraced
            // fresh-record variant: it inverts the campaign→shard order
            // on purpose, and is safe only because no other thread can
            // reach this record until `map.insert` below publishes it.
            campaign.count(&mut lock_state_fresh(&campaign));
            map.insert(id, Arc::clone(&campaign))
        })
    }

    /// Remove the record at `id` entirely (no tombstone), uncounting
    /// it. Returns whether a record existed.
    pub fn remove(&self, id: CampaignId) -> bool {
        self.with_entry(id, |entry, map| match entry {
            Some((old, old_state)) => {
                old.uncount(old_state);
                map.remove(&id);
                true
            }
            None => false,
        })
    }

    /// Every record, unordered (callers sort by id where it matters).
    pub fn records(&self) -> Vec<(CampaignId, Arc<Campaign>)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let _witness = lockcheck::acquire(lockcheck::SHARD_MAP, "scan");
            let map = shard.map.read().expect("campaign shard lock poisoned");
            out.extend(map.iter().map(|(id, c)| (*id, Arc::clone(c))));
        }
        out
    }

    /// Every registered id, unordered.
    pub fn ids(&self) -> Vec<CampaignId> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let _witness = lockcheck::acquire(lockcheck::SHARD_MAP, "scan");
            let map = shard.map.read().expect("campaign shard lock poisoned");
            out.extend(map.keys().copied());
        }
        out
    }

    /// Campaign counts bucketed by lifecycle status, in enum order —
    /// a `6 × N`-atomic sum, no map walk, no shard lock.
    pub fn status_counts(&self) -> [(CampaignStatus, usize); 6] {
        let mut counts = [
            (CampaignStatus::Draft, 0),
            (CampaignStatus::Solving, 0),
            (CampaignStatus::Live, 0),
            (CampaignStatus::Recalibrating, 0),
            (CampaignStatus::Exhausted, 0),
            (CampaignStatus::Evicted, 0),
        ];
        for shard in self.shards.iter() {
            for (i, slot) in shard.stats.by_status.iter().enumerate() {
                // ORDERING: Acquire pairs with the AcqRel updates in
                // `adjust`; concurrent transitions may still land
                // between cells, so the sweep clamps transient
                // negatives rather than claiming exactness.
                counts[i].1 += slot.load(Ordering::Acquire).max(0) as usize;
            }
        }
        counts
    }

    /// Total records (tombstones included) — the counter-derived twin
    /// of `ids().len()`.
    pub fn total_records(&self) -> usize {
        self.status_counts().iter().map(|(_, n)| n).sum()
    }

    /// Non-evicted records, from the counters.
    pub fn len_serving(&self) -> usize {
        self.status_counts()
            .iter()
            .filter(|(s, _)| *s != CampaignStatus::Evicted)
            .map(|(_, n)| n)
            .sum()
    }
}

/// A campaign writer-mutex guard carrying its lockcheck witness token
/// (zero-sized in default builds). Derefs to [`CampaignState`].
pub(super) struct StateGuard<'a> {
    guard: MutexGuard<'a, CampaignState>,
    /// Declared after `guard` so the mutex releases first and the
    /// witness entry is removed second — the held-stack never claims a
    /// lock that was already dropped out from under it. `None` for the
    /// documented fresh-record exception ([`lock_state_fresh`]).
    _witness: Option<lockcheck::Held>,
}

impl Deref for StateGuard<'_> {
    type Target = CampaignState;
    fn deref(&self) -> &CampaignState {
        &self.guard
    }
}

impl DerefMut for StateGuard<'_> {
    fn deref_mut(&mut self) -> &mut CampaignState {
        &mut self.guard
    }
}

/// Lock a campaign's writer mutex, tracing the acquisition through the
/// lock-order witness under `--cfg lockcheck`. Every shared-record
/// acquisition of [`Campaign::state`] must come through here — the one
/// exception is [`ShardedStore::insert`]'s fresh, not-yet-published
/// record (see the comment there).
pub(super) fn lock_state(campaign: &Campaign) -> StateGuard<'_> {
    // Record the intent before blocking: if the inversion has already
    // deadlocked us, the witness panics instead of hanging forever.
    let witness = lockcheck::acquire(lockcheck::CAMPAIGN_STATE, "state");
    StateGuard {
        guard: campaign.state.lock().expect("campaign lock poisoned"),
        _witness: Some(witness),
    }
}

/// [`lock_state`] for a record **no other thread can reach yet** (fresh
/// construction before `map.insert` publishes it, snapshot restore).
/// Deliberately untraced: the campaign→shard order is inverted at these
/// sites on purpose, and it is safe only because the mutex can never be
/// contended — misusing this on a published record is exactly the class
/// of bug the witness exists to catch, so keep its call sites few and
/// obviously fresh.
pub(super) fn lock_state_fresh(campaign: &Campaign) -> StateGuard<'_> {
    StateGuard {
        guard: campaign.state.lock().expect("campaign lock poisoned"),
        _witness: None,
    }
}
