use super::*;
use crate::actions::ActionSet;
use crate::dp::solve_efficient;
use crate::penalty::PenaltyModel;
use crate::testkit::tiny_budget_problem;
use ft_market::{LogitAcceptance, PriceGrid};
use std::sync::atomic::AtomicBool;

fn problem() -> DeadlineProblem {
    let acc = LogitAcceptance::new(4.0, 0.0, 30.0);
    DeadlineProblem::new(
        20,
        vec![50.0; 12],
        ActionSet::from_grid(PriceGrid::new(0, 20), &acc),
        PenaltyModel::Linear { per_task: 500.0 },
    )
}

fn deadline_spec() -> CampaignSpec {
    CampaignSpec::Deadline {
        problem: problem(),
        eps: None,
    }
}

fn budget_observation(completions: u64, spent_cents: usize) -> CampaignObservation {
    CampaignObservation::Budget {
        completions,
        spent_cents,
        posted: None,
        offers: None,
    }
}

#[test]
fn lifecycle_draft_solve_live() {
    let registry = CampaignRegistry::new();
    let id = registry.register(deadline_spec());
    assert_eq!(registry.report(id).unwrap().status, CampaignStatus::Draft);
    // Drafts can't quote…
    assert_eq!(
        registry.quote(
            id,
            ObservedState::Deadline {
                remaining: 20,
                interval: 0
            }
        ),
        Err(PricingError::NotServable {
            id,
            status: "draft"
        })
    );
    // …until solved.
    let generation = registry.solve(id).unwrap();
    assert_eq!(generation.generation, 1);
    assert_eq!(registry.report(id).unwrap().status, CampaignStatus::Live);
    let quote = registry
        .quote(
            id,
            ObservedState::Deadline {
                remaining: 20,
                interval: 0,
            },
        )
        .unwrap();
    let direct = solve_efficient(&problem(), DEFAULT_EPS).unwrap();
    assert_eq!(quote.price, direct.price(20, 0));
    assert_eq!(quote.generation, 1);
    // Double-solve is a structured conflict.
    assert_eq!(
        registry.solve(id).unwrap_err(),
        PricingError::NotServable { id, status: "live" }
    );
}

#[test]
fn drift_triggers_recalibration_and_generation_bump() {
    let registry = CampaignRegistry::new();
    let id = registry.register(deadline_spec());
    registry.solve(id).unwrap();
    // Report far fewer completions than the trained model expects for
    // enough intervals to cross the resolve schedule (default 3).
    let mut last = None;
    let mut recalibrated_any = false;
    for interval in 0..4 {
        let outcome = registry
            .observe(
                id,
                CampaignObservation::Deadline {
                    interval,
                    completions: 1,
                    posted: None,
                },
            )
            .unwrap();
        recalibrated_any |= outcome.recalibrated;
        last = Some(outcome);
    }
    let outcome = last.unwrap();
    assert!(recalibrated_any, "no recalibration after 4 intervals");
    assert!(outcome.generation >= 2);
    // Quotes now come from (and report) the new generation, indexed
    // from its policy start.
    let quote = registry
        .quote(
            id,
            ObservedState::Deadline {
                remaining: outcome.remaining,
                interval: 4,
            },
        )
        .unwrap();
    assert_eq!(quote.generation, outcome.generation);
    let report = registry.report(id).unwrap();
    assert_eq!(report.status, CampaignStatus::Live);
    assert_eq!(report.generation, outcome.generation);
    assert!(report.policy_start.unwrap() > 0);
    assert_eq!(report.observations, 4);
}

#[test]
fn observe_rejects_replays_and_censors_gaps() {
    let registry = CampaignRegistry::new();
    let id = registry.register(deadline_spec());
    registry.solve(id).unwrap();
    registry
        .observe(
            id,
            CampaignObservation::Deadline {
                interval: 0,
                completions: 2,
                posted: None,
            },
        )
        .unwrap();
    // Replaying an already-observed interval is rejected.
    assert!(matches!(
        registry.observe(
            id,
            CampaignObservation::Deadline {
                interval: 0,
                completions: 2,
                posted: None,
            }
        ),
        Err(PricingError::InvalidProblem(_))
    ));
    // Skipping ahead censors the gap instead of erroring.
    registry
        .observe(
            id,
            CampaignObservation::Deadline {
                interval: 3,
                completions: 1,
                posted: None,
            },
        )
        .unwrap();
    assert_eq!(registry.report(id).unwrap().observations, 4);
    // Past the horizon is rejected.
    assert!(matches!(
        registry.observe(
            id,
            CampaignObservation::Deadline {
                interval: 99,
                completions: 0,
                posted: None,
            }
        ),
        Err(PricingError::InvalidProblem(_))
    ));
    // A rejected report must leave the campaign untouched: a bad
    // posted reward at a skipped-ahead interval may not censor the
    // gap (regression: phantom censored intervals corrupted history
    // and blocked corrected re-reports forever).
    for bad_posted in [999.0, f64::NAN, f64::INFINITY] {
        assert!(matches!(
            registry.observe(
                id,
                CampaignObservation::Deadline {
                    interval: 8,
                    completions: 1,
                    posted: Some(bad_posted),
                }
            ),
            Err(PricingError::InvalidProblem(_))
        ));
    }
    assert_eq!(registry.report(id).unwrap().observations, 4);
    // The corrected re-report for the same span still works.
    registry
        .observe(
            id,
            CampaignObservation::Deadline {
                interval: 5,
                completions: 1,
                posted: None,
            },
        )
        .unwrap();
    assert_eq!(registry.report(id).unwrap().observations, 6);
}

#[test]
fn exhaustion_and_eviction() {
    let registry = CampaignRegistry::new();
    let id = registry.register(deadline_spec());
    registry.solve(id).unwrap();
    let outcome = registry
        .observe(
            id,
            CampaignObservation::Deadline {
                interval: 0,
                completions: 20,
                posted: None,
            },
        )
        .unwrap();
    assert_eq!(outcome.status, CampaignStatus::Exhausted);
    assert_eq!(outcome.remaining, 0);
    // Exhausted campaigns still answer price queries.
    assert!(registry
        .quote(
            id,
            ObservedState::Deadline {
                remaining: 0,
                interval: 1
            }
        )
        .is_ok());
    // Eviction drops the policy but keeps a tombstone.
    assert!(registry.evict(id));
    assert!(!registry.evict(id));
    assert_eq!(registry.report(id).unwrap().status, CampaignStatus::Evicted);
    assert_eq!(
        registry.quote(
            id,
            ObservedState::Deadline {
                remaining: 0,
                interval: 1
            }
        ),
        Err(PricingError::NotServable {
            id,
            status: "evicted"
        })
    );
    assert_eq!(registry.len(), 0);
    assert_eq!(registry.ids(), vec![id]);
    // The counter-derived totals agree with the map.
    assert_eq!(registry.total_records(), 1);
    // Purging removes even the tombstone.
    assert!(registry.purge(id));
    assert!(!registry.purge(id));
    assert!(registry.ids().is_empty());
    assert_eq!(registry.total_records(), 0);
    assert_eq!(
        registry.report(id).unwrap_err(),
        PricingError::UnknownCampaign(id)
    );
}

#[test]
fn telemetry_counts_lifecycle_events() {
    let registry = CampaignRegistry::new();
    let id = registry.register(deadline_spec());
    registry.solve(id).unwrap();
    // A failed double-solve is a solve error, not a solve.
    registry.solve(id).unwrap_err();
    let good = ObservedState::Deadline {
        remaining: 20,
        interval: 0,
    };
    registry.quote(id, good).unwrap();
    registry.quote(id, good).unwrap();
    registry
        .quote(
            id,
            ObservedState::Budget {
                remaining: 1,
                budget_cents: 1,
            },
        )
        .unwrap_err();
    let mut recalibrations = 0;
    for interval in 0..4 {
        let outcome = registry
            .observe(
                id,
                CampaignObservation::Deadline {
                    interval,
                    completions: 1,
                    posted: None,
                },
            )
            .unwrap();
        recalibrations += u64::from(outcome.recalibrated);
    }
    registry
        .observe(
            id,
            CampaignObservation::Deadline {
                interval: 0,
                completions: 1,
                posted: None,
            },
        )
        .unwrap_err();
    assert!(recalibrations >= 1);
    let t = registry.telemetry();
    assert_eq!(t.solves.get(), 1);
    assert_eq!(t.solve_errors.get(), 0); // double-solve fails before solving
    assert_eq!(t.quotes.get(), 3);
    assert_eq!(t.quote_errors.get(), 1);
    assert_eq!(t.observes.get(), 4);
    assert_eq!(t.observe_errors.get(), 1);
    assert_eq!(t.recalibrations.get(), recalibrations);
    // Per-kind split: all of these were deadline re-solves.
    assert_eq!(t.recalibrations_deadline.get(), recalibrations);
    assert_eq!(t.recalibrations_budget.get(), 0);
    assert_eq!(t.generation_swaps.get(), 1 + recalibrations);
    assert_eq!(t.solve_ns.snapshot().count, 1);
    // The named instruments are visible through the shared plane.
    let exported = registry.metrics().to_prometheus();
    assert!(exported.contains("ft_core_quotes_total 3"));
    assert!(exported.contains("ft_core_recalibrations_by_kind_total{kind=\"deadline\"}"));
    // Status counts feed /healthz.
    let live = registry
        .status_counts()
        .iter()
        .find(|(s, _)| *s == CampaignStatus::Live)
        .unwrap()
        .1;
    assert_eq!(live, 1);
}

#[test]
fn budget_campaign_lifecycle() {
    let registry = CampaignRegistry::new();
    let id = registry.register(CampaignSpec::Budget {
        problem: tiny_budget_problem(),
    });
    registry.solve(id).unwrap();
    let quote = registry
        .quote(
            id,
            ObservedState::Budget {
                remaining: 10,
                budget_cents: 60,
            },
        )
        .unwrap();
    assert_eq!(quote.generation, 1);
    let outcome = registry.observe(id, budget_observation(4, 25)).unwrap();
    assert_eq!(outcome.remaining, 6);
    assert!(!outcome.recalibrated);
    let report = registry.report(id).unwrap();
    assert_eq!(report.spent_cents, Some(25));
    assert_eq!(report.observations, 1);
    // No exposure reported → no drift signal, identity shift.
    assert_eq!(report.correction, Some(1.0));
    assert_eq!(report.acceptance_shift, Some(0.0));
    // Mismatched observation kind is structured.
    assert_eq!(
        registry.observe(
            id,
            CampaignObservation::Deadline {
                interval: 0,
                completions: 1,
                posted: None,
            }
        ),
        Err(PricingError::StateKindMismatch {
            id,
            expected: "budget",
            got: "deadline"
        })
    );
    let outcome = registry.observe(id, budget_observation(6, 35)).unwrap();
    assert_eq!(outcome.status, CampaignStatus::Exhausted);
}

/// The ROADMAP open item, closed: budget campaigns recalibrate when the
/// observed acceptance drifts off the trained curve, publishing a new
/// generation exactly like deadline recalibration.
#[test]
fn budget_acceptance_drift_triggers_recalibration() {
    let registry = CampaignRegistry::with_registry_config(RegistryConfig {
        budget_drift: BudgetDriftOptions {
            resolve_every: 2,
            ..BudgetDriftOptions::default()
        },
        ..RegistryConfig::default()
    });
    let spec_problem = BudgetProblem::new(
        40,
        600.0,
        ActionSet::from_grid(PriceGrid::new(1, 20), &LogitAcceptance::new(4.0, 0.0, 20.0)),
        100.0,
    );
    let id = registry.register(CampaignSpec::Budget {
        problem: spec_problem,
    });
    registry.solve(id).unwrap();
    let gen1 = registry.generation(id).unwrap();
    assert_eq!(gen1.generation, 1);

    // Nothing to recalibrate yet.
    assert_eq!(registry.recalibration_spec(id).unwrap(), None);

    // Two exposure-carrying reports where workers accept far less often
    // than the trained curve predicts: many offers, few completions.
    let posted = registry
        .quote(
            id,
            ObservedState::Budget {
                remaining: 40,
                budget_cents: 600,
            },
        )
        .unwrap()
        .price;
    let first = registry
        .observe(
            id,
            CampaignObservation::Budget {
                completions: 2,
                spent_cents: 2 * posted as usize,
                posted: Some(posted),
                offers: Some(60),
            },
        )
        .unwrap();
    assert!(!first.recalibrated, "one report must not cross the cadence");
    assert!(first.correction < 1.0, "drift did not lower the correction");

    // Before the second report lands, the engine already knows what it
    // would re-solve.
    let spec = registry.recalibration_spec(id).unwrap();
    match spec {
        Some(RecalibrationSpec::Budget {
            remaining,
            budget_cents,
            shift,
        }) => {
            assert_eq!(remaining, 38);
            assert_eq!(budget_cents, 600 - 2 * posted as usize);
            assert!(shift < 0.0, "shift {shift} should be negative under drift");
        }
        other => panic!("expected a pending budget recalibration, got {other:?}"),
    }

    let second = registry
        .observe(
            id,
            CampaignObservation::Budget {
                completions: 2,
                spent_cents: 2 * posted as usize,
                posted: Some(posted),
                offers: Some(60),
            },
        )
        .unwrap();
    assert!(
        second.recalibrated,
        "drift + cadence must trigger a re-solve"
    );
    assert_eq!(second.generation, 2);

    // The new generation serves, and its policy differs from the
    // trained one somewhere (the rescaled acceptance changes prices).
    let report = registry.report(id).unwrap();
    assert_eq!(report.generation, 2);
    assert!(report.acceptance_shift.unwrap() < 0.0);
    let gen2 = registry.generation(id).unwrap();
    assert_eq!(gen2.generation, 2);
    let (CampaignPolicy::Budget(before), CampaignPolicy::Budget(after)) =
        (gen1.policy.as_ref(), gen2.policy.as_ref())
    else {
        panic!("budget campaign must hold budget policies");
    };
    // The re-solved table covers the remaining scope.
    assert_eq!(after.n_tasks(), 36);
    let mut differs = false;
    for n in 1..=after.n_tasks() {
        for b in 0..=after.budget_cents() {
            if before.price(n, b) != after.price(n, b) {
                differs = true;
            }
        }
    }
    assert!(
        differs,
        "recalibrated policy is identical to the trained one"
    );
    // Quotes keep working against the re-solved table (off-table
    // states clamp onto it).
    assert!(registry
        .quote(
            id,
            ObservedState::Budget {
                remaining: report.remaining.unwrap(),
                budget_cents: 600 - 4 * posted as usize,
            },
        )
        .is_ok());
    // Telemetry sees a budget recalibration.
    assert_eq!(registry.telemetry().recalibrations_budget.get(), 1);
    assert_eq!(registry.telemetry().recalibrations_deadline.get(), 0);
}

#[test]
fn budget_exposure_reports_are_validated() {
    let registry = CampaignRegistry::new();
    let id = registry.register(CampaignSpec::Budget {
        problem: tiny_budget_problem(),
    });
    registry.solve(id).unwrap();
    // Offers without a posted price are meaningless.
    assert!(matches!(
        registry.observe(
            id,
            CampaignObservation::Budget {
                completions: 1,
                spent_cents: 5,
                posted: None,
                offers: Some(10),
            }
        ),
        Err(PricingError::InvalidProblem(_))
    ));
    // Non-finite or off-grid posted prices are rejected.
    for bad in [f64::NAN, f64::INFINITY, 999.0] {
        assert!(matches!(
            registry.observe(
                id,
                CampaignObservation::Budget {
                    completions: 1,
                    spent_cents: 5,
                    posted: Some(bad),
                    offers: Some(10),
                }
            ),
            Err(PricingError::InvalidProblem(_))
        ));
    }
    // A bad posted price is rejected even without offers (it carries
    // no drift signal, but silently accepting a garbage price would
    // hide client bugs).
    for bad in [f64::NAN, 999.0] {
        assert!(matches!(
            registry.observe(
                id,
                CampaignObservation::Budget {
                    completions: 1,
                    spent_cents: 5,
                    posted: Some(bad),
                    offers: None,
                }
            ),
            Err(PricingError::InvalidProblem(_))
        ));
    }
    // More completions than offers is impossible.
    assert!(matches!(
        registry.observe(
            id,
            CampaignObservation::Budget {
                completions: 11,
                spent_cents: 5,
                posted: Some(5.0),
                offers: Some(10),
            }
        ),
        Err(PricingError::InvalidProblem(_))
    ));
    // A rejected report leaves the campaign untouched.
    let report = registry.report(id).unwrap();
    assert_eq!(report.observations, 0);
    assert_eq!(report.remaining, Some(10));
    // A valid posted price without offers is fine — progress counts,
    // no drift signal accumulates.
    registry
        .observe(
            id,
            CampaignObservation::Budget {
                completions: 1,
                spent_cents: 5,
                posted: Some(5.0),
                offers: None,
            },
        )
        .unwrap();
    let report = registry.report(id).unwrap();
    assert_eq!(report.observations, 1);
    assert_eq!(report.correction, Some(1.0));
}

#[test]
fn snapshot_roundtrip_preserves_generations_and_history() {
    let registry = CampaignRegistry::new();
    let deadline_id = registry.register(deadline_spec());
    let budget_id = registry.register(CampaignSpec::Budget {
        problem: tiny_budget_problem(),
    });
    let draft_id = registry.register(deadline_spec());
    let evicted_id = registry.register(deadline_spec());
    registry.solve(deadline_id).unwrap();
    registry.solve(budget_id).unwrap();
    registry.solve(evicted_id).unwrap();
    registry.evict(evicted_id);
    // Drive the deadline campaign through a recalibration so the
    // snapshot carries a non-trivial generation + policy start.
    let mut outcome = None;
    let mut recalibrated_any = false;
    for interval in 0..4 {
        let o = registry
            .observe(
                deadline_id,
                CampaignObservation::Deadline {
                    interval,
                    completions: 1,
                    posted: None,
                },
            )
            .unwrap();
        recalibrated_any |= o.recalibrated;
        outcome = Some(o);
    }
    let outcome = outcome.unwrap();
    assert!(recalibrated_any);
    assert!(outcome.generation >= 2);
    let probe = ObservedState::Deadline {
        remaining: outcome.remaining,
        interval: 5,
    };
    let before = registry.quote(deadline_id, probe).unwrap();

    let json = registry.to_json().unwrap();
    let restored =
        CampaignRegistry::from_json(&json, KernelConfig::default(), AdaptiveOptions::default())
            .unwrap();

    // Live campaigns resume at the same generation and price.
    let after = restored.quote(deadline_id, probe).unwrap();
    assert_eq!(after.generation, before.generation);
    assert_eq!(after.price, before.price);
    let report = restored.report(deadline_id).unwrap();
    assert_eq!(report.observations, 4);
    assert_eq!(report.remaining, Some(outcome.remaining));
    assert!((report.correction.unwrap() - outcome.correction).abs() < 1e-12);
    // Budget campaign resumes too.
    assert!(restored
        .quote(
            budget_id,
            ObservedState::Budget {
                remaining: 10,
                budget_cents: 60
            }
        )
        .is_ok());
    // Draft stays a draft; tombstone stays evicted.
    assert_eq!(
        restored.report(draft_id).unwrap().status,
        CampaignStatus::Draft
    );
    assert_eq!(
        restored.report(evicted_id).unwrap().status,
        CampaignStatus::Evicted
    );
    // The restored registry's counters match its records.
    assert_eq!(restored.total_records(), restored.ids().len());
    // Fresh ids don't collide with restored ones.
    let new_id = restored.register(deadline_spec());
    assert!(new_id > evicted_id);
    // Observation numbering continues where it left off.
    restored
        .observe(
            deadline_id,
            CampaignObservation::Deadline {
                interval: 4,
                completions: 1,
                posted: None,
            },
        )
        .unwrap();
    assert_eq!(restored.report(deadline_id).unwrap().observations, 5);
}

#[test]
fn invalid_wire_specs_are_structured_errors_not_panics() {
    // Deserialized specs bypass constructor asserts; both the
    // validator and the solve path must answer with InvalidProblem
    // instead of panicking (a panic used to wedge the campaign in
    // Solving forever).
    let registry = CampaignRegistry::new();
    let mut bad_eps = deadline_spec();
    if let CampaignSpec::Deadline { eps, .. } = &mut bad_eps {
        *eps = Some(-1.0);
    }
    let mut bad_arrivals = deadline_spec();
    if let CampaignSpec::Deadline { problem, .. } = &mut bad_arrivals {
        problem.interval_arrivals[2] = -5.0;
    }
    let mut bad_budget = CampaignSpec::Budget {
        problem: tiny_budget_problem(),
    };
    if let CampaignSpec::Budget { problem } = &mut bad_budget {
        problem.mean_rate = f64::NAN;
    }
    for spec in [bad_eps, bad_arrivals, bad_budget] {
        assert!(matches!(
            spec.validate(),
            Err(PricingError::InvalidProblem(_))
        ));
        let id = registry.register(spec);
        assert!(matches!(
            registry.solve(id),
            Err(PricingError::InvalidProblem(_))
        ));
        // The campaign is back to Draft, not wedged in Solving.
        assert_eq!(registry.report(id).unwrap().status, CampaignStatus::Draft);
    }
}

#[test]
fn failed_resolve_keeps_previous_policy_serving() {
    // Re-solving a live campaign through submit_at must not leave a
    // window (or a permanent hole) where readers lose the old
    // policy: a failed replacement keeps the previous generation, a
    // successful one bumps it.
    let registry = CampaignRegistry::new();
    let id = 42;
    registry
        .submit_at(id, deadline_spec(), &KernelConfig::default())
        .unwrap();
    let probe = ObservedState::Deadline {
        remaining: 20,
        interval: 0,
    };
    let before = registry.quote(id, probe).unwrap();
    assert_eq!(before.generation, 1);

    // A failing replacement spec: the old policy keeps serving.
    let mut infeasible = tiny_budget_problem();
    infeasible.budget = 4.0;
    let err = registry
        .submit_at(
            id,
            CampaignSpec::Budget {
                problem: infeasible,
            },
            &KernelConfig::default(),
        )
        .unwrap_err();
    assert!(matches!(err, PricingError::Infeasible(_)));
    let after = registry.quote(id, probe).unwrap();
    assert_eq!(after.generation, before.generation);
    assert_eq!(after.price.to_bits(), before.price.to_bits());
    assert_eq!(registry.report(id).unwrap().status, CampaignStatus::Live);

    // A successful replacement swaps in atomically at generation 2.
    let replaced = registry
        .submit_at(id, deadline_spec(), &KernelConfig::default())
        .unwrap();
    assert_eq!(replaced.generation, 2);
    assert_eq!(registry.quote(id, probe).unwrap().generation, 2);

    // A brand-new id whose solve fails is left as an inspectable draft.
    let mut infeasible = tiny_budget_problem();
    infeasible.budget = 4.0;
    assert!(registry
        .submit_at(
            7,
            CampaignSpec::Budget {
                problem: infeasible,
            },
            &KernelConfig::default(),
        )
        .is_err());
    assert_eq!(registry.report(7).unwrap().status, CampaignStatus::Draft);
    // Replacements kept the counters exactly in step with the map.
    assert_eq!(registry.total_records(), registry.ids().len());
}

#[test]
fn budget_spend_accounting_saturates() {
    let registry = CampaignRegistry::new();
    let id = registry.register(CampaignSpec::Budget {
        problem: tiny_budget_problem(),
    });
    registry.solve(id).unwrap();
    for _ in 0..3 {
        registry
            .observe(id, budget_observation(0, usize::MAX))
            .unwrap();
    }
    // Clamped to the f64-exact range; report + snapshot stay lossless.
    let spent = registry.report(id).unwrap().spent_cents.unwrap();
    assert_eq!(spent, (1usize << 53) - 1);
    let json = registry.to_json().unwrap();
    let restored =
        CampaignRegistry::from_json(&json, KernelConfig::default(), AdaptiveOptions::default())
            .unwrap();
    assert_eq!(restored.report(id).unwrap().spent_cents.unwrap(), spent);
}

/// Replacing a live campaign (submit_at) races recalibrating
/// observes and other submits: the served generation must stay
/// monotone and each generation must map to exactly one price.
#[test]
fn concurrent_submit_keeps_generations_monotone() {
    use std::collections::HashMap as StdHashMap;

    let registry = CampaignRegistry::with_config(
        KernelConfig::default(),
        AdaptiveOptions {
            resolve_every: 1,
            ..AdaptiveOptions::default()
        },
    );
    let id = 5;
    registry
        .submit_at(id, deadline_spec(), &KernelConfig::default())
        .unwrap();
    let stop = AtomicBool::new(false);
    let start = std::sync::Barrier::new(4);
    let probe = ObservedState::Deadline {
        remaining: 15,
        interval: 4,
    };

    std::thread::scope(|scope| {
        let registry = &registry;
        let stop = &stop;
        let start = &start;

        // Two racing submitters re-solving the same id.
        let submitters: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || {
                    start.wait();
                    for _ in 0..3 {
                        registry
                            .submit_at(id, deadline_spec(), &KernelConfig::default())
                            .unwrap();
                    }
                    stop.store(true, Ordering::Release);
                })
            })
            .collect();

        // An observer driving recalibration swaps on whatever
        // record is current (replaced records answer NotServable —
        // that's fine, only successful swaps matter here).
        let observer = scope.spawn(move || {
            start.wait();
            let mut interval = 0usize;
            loop {
                let _ = registry.observe(
                    id,
                    CampaignObservation::Deadline {
                        interval,
                        completions: 1,
                        posted: None,
                    },
                );
                interval = (interval + 1) % 12;
                if stop.load(Ordering::Acquire) {
                    break;
                }
            }
        });

        // Reader: generations never go backwards, and a generation
        // never serves two different prices.
        let reader = scope.spawn(move || {
            start.wait();
            let mut last_generation = 0u64;
            let mut seen: StdHashMap<u64, f64> = StdHashMap::new();
            loop {
                let quote = registry.quote(id, probe).unwrap();
                assert!(
                    quote.generation >= last_generation,
                    "generation went backwards: {} after {last_generation}",
                    quote.generation
                );
                last_generation = quote.generation;
                match seen.get(&quote.generation) {
                    None => {
                        seen.insert(quote.generation, quote.price);
                    }
                    Some(&price) => assert_eq!(
                        price.to_bits(),
                        quote.price.to_bits(),
                        "generation {} served two prices",
                        quote.generation
                    ),
                }
                if stop.load(Ordering::Acquire) {
                    break;
                }
            }
            last_generation
        });

        for submitter in submitters {
            submitter.join().unwrap();
        }
        observer.join().unwrap();
        let last = reader.join().unwrap();
        // 1 initial + 6 replacements happened; the reader must have
        // ended at least at the replacements' floor.
        assert!(last >= 1);
        assert!(
            registry.generation(id).unwrap().generation >= 7,
            "six replacements must have bumped the generation"
        );
    });
}

/// Satellite: readers hammer the quote hot path while observes drive
/// recalibration swaps and a batch solve churns other campaigns.
/// Two invariants:
///
/// 1. **No stale generation after a swap**: once an observe returns
///    generation `g`, every later quote reports ≥ `g`.
/// 2. **No torn price**: a `(generation, price)` pair read at a fixed
///    probe state is a function of the generation — the same
///    generation can never be seen with two different prices.
#[test]
fn concurrent_reprice_observe_stress() {
    use std::collections::HashMap as StdHashMap;

    let registry = CampaignRegistry::with_config(
        KernelConfig::default(),
        AdaptiveOptions {
            resolve_every: 1, // recalibrate on every observe
            ..AdaptiveOptions::default()
        },
    );
    let id = registry.register(deadline_spec());
    registry.solve(id).unwrap();

    let stop = AtomicBool::new(false);
    let min_generation = AtomicU64::new(1);
    // Writer + churn + 3 readers start together so the observes race
    // the quotes even on a single-core host.
    let start = std::sync::Barrier::new(5);
    let probe = ObservedState::Deadline {
        remaining: 17,
        interval: 6,
    };

    std::thread::scope(|scope| {
        let registry = &registry;
        let stop = &stop;
        let min_generation = &min_generation;
        let start = &start;

        // Writer: observe every interval (each triggers a re-solve +
        // generation swap), with heavy drift so policies change.
        let writer = scope.spawn(move || {
            start.wait();
            for interval in 0..problem().n_intervals() {
                let outcome = registry
                    .observe(
                        id,
                        CampaignObservation::Deadline {
                            interval,
                            completions: 1,
                            posted: None,
                        },
                    )
                    .unwrap();
                // The swap is published before observe returns; no
                // reader may see an older generation from here on.
                min_generation.fetch_max(outcome.generation, Ordering::Release);
                if outcome.status == CampaignStatus::Exhausted {
                    break;
                }
            }
            stop.store(true, Ordering::Release);
        });

        // Churn: batch-register + solve other campaigns while the
        // readers run, so quotes race cache fills too.
        let churn = scope.spawn(move || {
            start.wait();
            let mut round = 0u64;
            loop {
                let other = registry.register(CampaignSpec::Budget {
                    problem: tiny_budget_problem(),
                });
                let solved = registry.solve_many(&[other]);
                assert!(solved[0].1.is_ok());
                registry.evict(other);
                registry.purge(other);
                round += 1;
                if stop.load(Ordering::Acquire) {
                    break;
                }
            }
            assert!(round > 0, "churn thread never ran");
        });

        // Readers: quote in a tight loop, checking both invariants.
        let mut readers = Vec::new();
        for _ in 0..3 {
            readers.push(scope.spawn(move || {
                start.wait();
                let mut seen: StdHashMap<u64, f64> = StdHashMap::new();
                let mut quotes = 0u64;
                loop {
                    let floor = min_generation.load(Ordering::Acquire);
                    let quote = registry.quote(id, probe).unwrap();
                    assert!(
                        quote.generation >= floor,
                        "stale generation {} served after swap to {floor}",
                        quote.generation
                    );
                    match seen.get(&quote.generation) {
                        None => {
                            seen.insert(quote.generation, quote.price);
                        }
                        Some(&price) => assert_eq!(
                            price.to_bits(),
                            quote.price.to_bits(),
                            "torn read: generation {} seen with two prices",
                            quote.generation
                        ),
                    }
                    quotes += 1;
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                }
                (seen, quotes)
            }));
        }

        writer.join().unwrap();
        churn.join().unwrap();
        // Cross-reader consistency: generation → price must agree
        // across threads too.
        let mut global: StdHashMap<u64, f64> = StdHashMap::new();
        let mut total_quotes = 0u64;
        for reader in readers {
            let (seen, quotes) = reader.join().unwrap();
            total_quotes += quotes;
            for (generation, price) in seen {
                if let Some(&prev) = global.get(&generation) {
                    assert_eq!(prev.to_bits(), price.to_bits());
                } else {
                    global.insert(generation, price);
                }
            }
        }
        assert!(total_quotes > 0, "readers never quoted");
        // The writer's swaps were visible: more than one generation
        // got served (resolve_every = 1 forces swaps).
        assert!(
            min_generation.load(Ordering::Acquire) > 1,
            "no recalibration swap happened during the stress run"
        );
    });
}

/// Budget recalibrations must not block concurrent quotes either: a
/// writer drives acceptance-drifted observes (each crossing the
/// cadence) while readers hammer the quote path on the same campaign.
/// Same two invariants as the deadline stress.
#[test]
fn budget_recalibration_does_not_block_quotes() {
    use std::collections::HashMap as StdHashMap;

    let registry = CampaignRegistry::with_registry_config(RegistryConfig {
        budget_drift: BudgetDriftOptions {
            resolve_every: 1, // attempt a re-solve on every drifted report
            threshold: 0.1,
            ..BudgetDriftOptions::default()
        },
        ..RegistryConfig::default()
    });
    let id = registry.register(CampaignSpec::Budget {
        problem: BudgetProblem::new(
            200,
            4000.0,
            ActionSet::from_grid(PriceGrid::new(1, 20), &LogitAcceptance::new(4.0, 0.0, 20.0)),
            100.0,
        ),
    });
    registry.solve(id).unwrap();
    let posted = registry
        .quote(
            id,
            ObservedState::Budget {
                remaining: 200,
                budget_cents: 4000,
            },
        )
        .unwrap()
        .price;

    let stop = AtomicBool::new(false);
    let min_generation = AtomicU64::new(1);
    let start = std::sync::Barrier::new(3);
    let probe = ObservedState::Budget {
        remaining: 5,
        budget_cents: 400,
    };

    std::thread::scope(|scope| {
        let registry = &registry;
        let stop = &stop;
        let min_generation = &min_generation;
        let start = &start;

        let writer = scope.spawn(move || {
            start.wait();
            let mut recalibrations = 0u64;
            for _ in 0..12 {
                let outcome = registry
                    .observe(
                        id,
                        CampaignObservation::Budget {
                            completions: 1,
                            spent_cents: posted as usize,
                            posted: Some(posted),
                            offers: Some(30),
                        },
                    )
                    .unwrap();
                min_generation.fetch_max(outcome.generation, Ordering::Release);
                recalibrations += u64::from(outcome.recalibrated);
                if outcome.status == CampaignStatus::Exhausted {
                    break;
                }
            }
            stop.store(true, Ordering::Release);
            recalibrations
        });

        let mut readers = Vec::new();
        for _ in 0..2 {
            readers.push(scope.spawn(move || {
                start.wait();
                let mut seen: StdHashMap<u64, f64> = StdHashMap::new();
                loop {
                    let floor = min_generation.load(Ordering::Acquire);
                    let quote = registry.quote(id, probe).unwrap();
                    assert!(
                        quote.generation >= floor,
                        "stale generation {} after swap to {floor}",
                        quote.generation
                    );
                    match seen.get(&quote.generation) {
                        None => {
                            seen.insert(quote.generation, quote.price);
                        }
                        Some(&price) => assert_eq!(
                            price.to_bits(),
                            quote.price.to_bits(),
                            "torn read: generation {} seen with two prices",
                            quote.generation
                        ),
                    }
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                }
            }));
        }

        let recalibrations = writer.join().unwrap();
        for reader in readers {
            reader.join().unwrap();
        }
        assert!(
            recalibrations >= 1,
            "no budget recalibration fired under sustained acceptance drift"
        );
        assert!(min_generation.load(Ordering::Acquire) > 1);
    });
}

/// Satellite: the counter-derived fleet totals (`/healthz`'s
/// `campaigns_total`) and the map-derived index total (`GET
/// /campaigns`) must agree under concurrent register/evict/purge
/// churn — transiently within the in-flight bound, exactly at
/// quiescence.
#[test]
fn status_counters_stay_consistent_under_churn() {
    let registry = CampaignRegistry::with_registry_config(RegistryConfig {
        shards: 4, // small enough that churn threads collide on shards
        ..RegistryConfig::default()
    });
    // A settled base fleet the churn runs around.
    let base_ids: Vec<_> = (0..6).map(|_| registry.register(deadline_spec())).collect();
    let base = base_ids.len();

    const CHURNERS: usize = 4;
    const ROUNDS: usize = 120;
    let start = std::sync::Barrier::new(CHURNERS + 2);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let registry = &registry;
        let start = &start;
        let stop = &stop;

        // Each churner cycles its own ids through register → evict →
        // purge, so at any instant it owns at most one extra record.
        let churners: Vec<_> = (0..CHURNERS)
            .map(|worker| {
                scope.spawn(move || {
                    start.wait();
                    for round in 0..ROUNDS {
                        let id = 1_000 + (worker * ROUNDS + round) as u64;
                        registry.register_at(
                            id,
                            CampaignSpec::Budget {
                                problem: tiny_budget_problem(),
                            },
                        );
                        registry.evict(id);
                        registry.purge(id);
                    }
                })
            })
            .collect();

        // A re-registration churner on a *fixed* id exercises the
        // replace path (insert over an existing record).
        let replacer = scope.spawn(move || {
            start.wait();
            for _ in 0..ROUNDS {
                registry.register_at(999, deadline_spec());
            }
            registry.purge(999);
        });

        // Checker: both totals must stay within a bounded band around
        // the base fleet at every read. Neither aggregate is a single
        // atomic snapshot — a scan overlapping W in-flight
        // register/evict/purge cycles can over- or under-count by a
        // few — so the band allows a small multiple of the writer
        // count; the *exact* equality is asserted at quiescence below.
        // A leak (the bug class this pins) accumulates monotonically
        // across the hundreds of churn rounds and busts both checks.
        let checker = scope.spawn(move || {
            start.wait();
            let mut checks = 0u64;
            let slack = 3 * (CHURNERS + 1);
            while !stop.load(Ordering::Acquire) {
                let counts = registry.status_counts();
                let counted: usize = counts.iter().map(|(_, n)| n).sum();
                let listed = registry.ids().len();
                assert!(
                    counted <= base + slack && counted + slack >= base,
                    "counter total {counted} outside {base} ± {slack}"
                );
                assert!(
                    listed <= base + slack && listed + slack >= base,
                    "index total {listed} outside {base} ± {slack}"
                );
                checks += 1;
            }
            assert!(checks > 0, "checker never ran");
        });

        for churner in churners {
            churner.join().unwrap();
        }
        replacer.join().unwrap();
        stop.store(true, Ordering::Release);
        checker.join().unwrap();
    });

    // Quiescent: counters and map agree exactly; only the base fleet
    // remains, all drafts.
    assert_eq!(registry.total_records(), base);
    assert_eq!(registry.ids(), base_ids);
    let counts = registry.status_counts();
    assert_eq!(counts[CampaignStatus::Draft as usize].1, base);
    for (status, n) in counts {
        if status != CampaignStatus::Draft {
            assert_eq!(n, 0, "leaked {status:?} count");
        }
    }
}

/// Replacing a live campaign through `register_at` must retire the
/// outgoing record, not just drop it from the map: a handle fetched
/// just before the swap would otherwise keep serving (and even
/// recalibrating) an orphan whose acknowledged progress no request
/// can ever see again.
#[test]
fn replacing_a_live_campaign_retires_the_old_record() {
    let registry = CampaignRegistry::new();
    let id = registry.register(deadline_spec());
    registry.solve(id).unwrap();
    let old = registry.store().get(id).expect("record exists");
    assert!(old.generation().is_some());

    registry.register_at(id, deadline_spec());
    // The detached record is fully retired: policy gone, machinery
    // dropped, status Evicted — a stale handle can't serve from it.
    assert!(old.generation().is_none());
    assert_eq!(old.status(), CampaignStatus::Evicted);
    // The id now answers as the fresh draft…
    assert_eq!(registry.report(id).unwrap().status, CampaignStatus::Draft);
    assert!(matches!(
        registry.observe(
            id,
            CampaignObservation::Deadline {
                interval: 0,
                completions: 1,
                posted: None,
            }
        ),
        Err(PricingError::NotServable { .. })
    ));
    // …and the counters track exactly one record, a draft.
    assert_eq!(registry.total_records(), 1);
    let counts = registry.status_counts();
    assert_eq!(counts[CampaignStatus::Draft as usize].1, 1);
    assert_eq!(counts[CampaignStatus::Evicted as usize].1, 0);
}

#[test]
fn single_shard_config_reproduces_historical_behavior() {
    let registry = CampaignRegistry::with_registry_config(RegistryConfig {
        shards: 1,
        ..RegistryConfig::default()
    });
    assert_eq!(registry.shards(), 1);
    let id = registry.register(deadline_spec());
    registry.solve(id).unwrap();
    assert!(registry
        .quote(
            id,
            ObservedState::Deadline {
                remaining: 20,
                interval: 0
            }
        )
        .is_ok());
    assert_eq!(registry.len(), 1);
    // Zero shards clamps to one instead of dividing by it.
    let clamped = CampaignRegistry::with_registry_config(RegistryConfig {
        shards: 0,
        ..RegistryConfig::default()
    });
    assert_eq!(clamped.shards(), 1);
}

/// Sequential ids must spread across shards — a fleet that lands on
/// one shard would silently reintroduce the global lock.
#[test]
fn sequential_ids_spread_across_shards() {
    let registry = CampaignRegistry::new();
    let n_shards = registry.shards();
    let mut per_shard = vec![0usize; n_shards];
    for _ in 0..256 {
        let id = registry.register(CampaignSpec::Budget {
            problem: tiny_budget_problem(),
        });
        let mixed = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        per_shard[(mixed as usize) % n_shards] += 1;
    }
    let occupied = per_shard.iter().filter(|&&n| n > 0).count();
    assert!(
        occupied >= per_shard.len() / 2,
        "256 sequential ids occupy only {occupied}/{} shards: {per_shard:?}",
        per_shard.len()
    );
}
