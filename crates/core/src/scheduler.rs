//! Wave admission for campaign solves: cross-campaign batched solving
//! over a shared pmf-row cache.
//!
//! A fleet-wide recalibration storm is N near-identical solves: every
//! campaign pricing the same arrival regime re-derives the same
//! Poisson pmf/transition rows that the per-worker
//! [`PmfCache`](crate::kernel::PmfCache)
//! already deduplicates *within* one solve (ROADMAP item 2 measured
//! that win at 2.6×). The [`SolveScheduler`] extends the sharing
//! *across* solves: every solve is admitted into the current **wave**,
//! and all solves of a wave resolve pmf misses through one
//! [`SharedPmfCache`] keyed by the exact `(λ_t, acceptance)` bit
//! patterns (the truncation length is handled by longest-row upgrade)
//! — so N concurrent re-solves pay for each distinct row once instead
//! of N times. On a multicore box the wave also schedules as one
//! fan-out of cooperating solves on the work-stealing pool rather than
//! N contending pool entries; on the 1-core CI container the solves
//! serialize but still share the wave's rows, which is what the
//! storm profile's cache-hit-rate gate measures.
//!
//! Waves are **count-capped**, not concurrency-scoped: a wave closes
//! after [`SolveScheduler::wave_size`] admissions and the next one
//! starts with a fresh cache. That keeps memory bounded, keeps the
//! hit-rate statistic meaningful per burst, and — deliberately — lets
//! a *serial* stream of recalibrations (the only shape a 1-core
//! container can produce) share rows exactly like a concurrent burst
//! would.
//!
//! Sharing is bitwise-invisible to results: rows are pure functions of
//! their key and prefix-stable across lengths (pinned by
//! `shared_cache_solve_is_bitwise_identical`), so a solve admitted to
//! a warm wave returns the same bits as a cold private solve.
//!
//! ## Locking
//!
//! The wave state sits behind one mutex, routed through the
//! `lockcheck` witness as the `SOLVE_SCHEDULER` class. The documented
//! order is **scheduler → campaign-mutex → shard-map**: admission
//! happens *before* (or outside) any campaign writer lock, never
//! inside one — `CampaignRegistry::observe` drops the campaign lock
//! around admission on its recalibration path. Holding a
//! [`WaveTicket`] is not holding the lock; the ticket only pins the
//! wave's cache.

use crate::kernel::{KernelConfig, SharedPmfCache};
use crate::lockcheck;
use ft_metrics::Counter;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Default solves per wave. Sized for a "storm": large enough that a
/// fleet-wide burst shares one cache, small enough that a long-running
/// process keeps rotating caches out.
pub const DEFAULT_WAVE_SIZE: usize = 32;

/// How many closed waves' statistics are retained for reporting.
const RECENT_WAVES: usize = 64;

/// Per-wave accounting, reported by [`SolveScheduler::stats`] (and
/// surfaced per-wave in the `ft-load` storm report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveStats {
    /// Wave sequence number, from 0.
    pub wave: u64,
    /// Solves admitted to this wave.
    pub solves: u64,
    /// Shared-cache row lookups made by this wave's solves.
    pub lookups: u64,
    /// Lookups served from a row another solve (or worker) built.
    pub hits: u64,
}

/// Cumulative scheduler statistics: closed waves plus the live one.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerStats {
    /// Waves started (closed + the current one, once used).
    pub waves: u64,
    /// Total solves admitted.
    pub solves: u64,
    /// Total shared-cache lookups.
    pub lookups: u64,
    /// Total shared-cache hits.
    pub hits: u64,
    /// Per-wave breakdown, oldest first, bounded to the most recent
    /// waves (the live wave is included with its counts so far).
    pub per_wave: Vec<WaveStats>,
}

impl SchedulerStats {
    /// Hits over lookups, 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

struct WaveState {
    /// Sequence number of the current wave.
    seq: u64,
    /// Solves admitted to the current wave so far.
    admitted: u64,
    /// The current wave's shared row store.
    cache: Arc<SharedPmfCache>,
    /// Totals accumulated from closed waves.
    closed_solves: u64,
    closed_lookups: u64,
    closed_hits: u64,
    /// Closed waves' stats, oldest first, bounded.
    recent: VecDeque<WaveStats>,
}

/// Admission control batching concurrent campaign solves into waves
/// over a shared pmf cache. See the module docs.
pub struct SolveScheduler {
    wave_size: u64,
    state: Mutex<WaveState>,
    /// `ft_core_batched_solves_total`: one per admission.
    batched_solves: Option<Arc<Counter>>,
    /// `ft_core_pmf_cache_hits_total`, threaded into each wave's cache.
    hit_counter: Option<Arc<Counter>>,
}

/// One admitted solve's handle on its wave: carries the wave's shared
/// cache for the solver to resolve pmf rows through. Dropping the
/// ticket ends the solve's participation (the cache itself lives as
/// long as any ticket or the wave needs it).
pub struct WaveTicket {
    wave: u64,
    cache: Arc<SharedPmfCache>,
}

impl WaveTicket {
    /// The wave this solve was admitted to.
    pub fn wave(&self) -> u64 {
        self.wave
    }

    /// The wave's shared pmf-row cache.
    pub fn cache(&self) -> &Arc<SharedPmfCache> {
        &self.cache
    }
}

/// Everything a campaign engine's re-solve needs from the registry:
/// the kernel parallelism config plus the wave's shared pmf cache when
/// the solve was admitted to one (`None` = private rows, e.g. tests
/// driving an engine directly).
#[derive(Clone)]
pub struct SolveContext {
    /// Thread-count / grain config forwarded to the solver kernel.
    pub kernel: KernelConfig,
    /// The admitting wave's shared pmf-row cache, if any.
    pub pmf_cache: Option<Arc<SharedPmfCache>>,
}

impl SolveContext {
    /// A context with no wave cache — solves build private rows.
    pub fn new(kernel: KernelConfig) -> Self {
        Self {
            kernel,
            pmf_cache: None,
        }
    }

    /// A context resolving pmf rows through `ticket`'s wave cache.
    pub fn with_wave(kernel: KernelConfig, ticket: &WaveTicket) -> Self {
        Self {
            kernel,
            pmf_cache: Some(Arc::clone(ticket.cache())),
        }
    }
}

impl Default for SolveScheduler {
    fn default() -> Self {
        Self::new(DEFAULT_WAVE_SIZE)
    }
}

impl SolveScheduler {
    /// A scheduler closing waves after `wave_size` admissions (min 1).
    pub fn new(wave_size: usize) -> Self {
        Self {
            wave_size: wave_size.max(1) as u64,
            state: Mutex::new(WaveState {
                seq: 0,
                admitted: 0,
                cache: Arc::new(SharedPmfCache::new()),
                closed_solves: 0,
                closed_lookups: 0,
                closed_hits: 0,
                recent: VecDeque::new(),
            }),
            batched_solves: None,
            hit_counter: None,
        }
    }

    /// Mirror admissions onto `batched` (`ft_core_batched_solves_total`)
    /// and every wave cache's hits onto `hits`
    /// (`ft_core_pmf_cache_hits_total`). The registry wires these from
    /// its telemetry.
    pub fn with_counters(mut self, batched: Arc<Counter>, hits: Arc<Counter>) -> Self {
        self.batched_solves = Some(batched);
        // The live wave's cache was created before the counter arrived;
        // swap in a counted one (the scheduler is not yet shared at
        // construction time, so no tickets exist).
        {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            s.cache = Arc::new(SharedPmfCache::with_hit_counter(Arc::clone(&hits)));
        }
        self.hit_counter = Some(hits);
        self
    }

    /// Solves per wave.
    pub fn wave_size(&self) -> usize {
        self.wave_size as usize
    }

    /// Admit one solve into the current wave (opening the next wave if
    /// this one is full) and return its ticket. The brief wave-state
    /// critical section is the only lock involved; the documented order
    /// requires no campaign or shard lock be held when calling this.
    pub fn admit(&self) -> WaveTicket {
        let _span = ft_trace::span("core.service.batch_wait");
        let _witness = lockcheck::acquire(lockcheck::SOLVE_SCHEDULER, "wave");
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.admitted >= self.wave_size {
            self.close_wave(&mut s);
        }
        s.admitted += 1;
        if let Some(c) = &self.batched_solves {
            c.inc();
        }
        WaveTicket {
            wave: s.seq,
            cache: Arc::clone(&s.cache),
        }
    }

    /// Roll the current wave into the closed totals and start a fresh
    /// one. Caller holds the state lock.
    fn close_wave(&self, s: &mut WaveState) {
        let stats = WaveStats {
            wave: s.seq,
            solves: s.admitted,
            lookups: s.cache.lookups(),
            hits: s.cache.hits(),
        };
        s.closed_solves += stats.solves;
        s.closed_lookups += stats.lookups;
        s.closed_hits += stats.hits;
        if s.recent.len() >= RECENT_WAVES {
            s.recent.pop_front();
        }
        s.recent.push_back(stats);
        s.seq += 1;
        s.admitted = 0;
        s.cache = Arc::new(match &self.hit_counter {
            Some(hits) => SharedPmfCache::with_hit_counter(Arc::clone(hits)),
            None => SharedPmfCache::new(),
        });
    }

    /// Cumulative statistics: closed waves plus the live wave's counts
    /// so far.
    pub fn stats(&self) -> SchedulerStats {
        let _witness = lockcheck::acquire(lockcheck::SOLVE_SCHEDULER, "wave");
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut per_wave: Vec<WaveStats> = s.recent.iter().cloned().collect();
        let live_used = s.admitted > 0 || s.cache.lookups() > 0;
        if live_used {
            per_wave.push(WaveStats {
                wave: s.seq,
                solves: s.admitted,
                lookups: s.cache.lookups(),
                hits: s.cache.hits(),
            });
        }
        SchedulerStats {
            waves: s.seq + u64::from(live_used),
            solves: s.closed_solves + s.admitted,
            lookups: s.closed_lookups + s.cache.lookups(),
            hits: s.closed_hits + s.cache.hits(),
            per_wave,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waves_rotate_at_wave_size() {
        let sched = SolveScheduler::new(2);
        let t1 = sched.admit();
        let t2 = sched.admit();
        assert_eq!((t1.wave(), t2.wave()), (0, 0));
        assert!(
            Arc::ptr_eq(t1.cache(), t2.cache()),
            "same wave shares one cache"
        );
        let t3 = sched.admit();
        assert_eq!(t3.wave(), 1, "third admission opens the next wave");
        assert!(
            !Arc::ptr_eq(t1.cache(), t3.cache()),
            "a new wave gets a fresh cache"
        );
        let stats = sched.stats();
        assert_eq!(stats.waves, 2);
        assert_eq!(stats.solves, 3);
        assert_eq!(stats.per_wave.len(), 2);
        assert_eq!(stats.per_wave[0].solves, 2);
        assert_eq!(stats.per_wave[1].solves, 1);
    }

    #[test]
    fn counters_mirror_admissions_and_hits() {
        let registry = ft_metrics::MetricsRegistry::new();
        let batched = registry.counter("ft_core_batched_solves_total");
        let hits = registry.counter("ft_core_pmf_cache_hits_total");
        let sched = SolveScheduler::new(4).with_counters(Arc::clone(&batched), Arc::clone(&hits));
        let t = sched.admit();
        let _ = sched.admit();
        assert_eq!(batched.get(), 2);
        // Two solves of the same problem through the wave cache: the
        // second's lookups are hits, mirrored to the metrics counter.
        let p = crate::testkit::varied_problems().remove(0);
        let trunc = crate::kernel::TruncationTable::with_eps(&p, 1e-9);
        for _ in 0..2 {
            crate::kernel::deadline::solve_deadline_with_cache(
                &p,
                &trunc,
                crate::kernel::Sweep::Dense,
                &crate::kernel::KernelConfig::serial(),
                Some(Arc::clone(t.cache())),
            )
            .unwrap();
        }
        assert!(t.cache().hits() > 0);
        assert_eq!(hits.get(), t.cache().hits());
        let stats = sched.stats();
        assert_eq!(stats.waves, 1);
        assert_eq!(stats.solves, 2);
        assert_eq!(stats.hits, t.cache().hits());
        assert!(stats.hit_rate() > 0.0);
    }
}
