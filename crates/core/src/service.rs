//! The multi-campaign pricing service: solve many heterogeneous
//! campaigns concurrently on the solver kernel, cache the resulting
//! policies, and answer `reprice` queries from the cached tables.
//!
//! This is the serving layer the ROADMAP's production north-star asks
//! for. The design splits work into a *solve path* (expensive, batched,
//! parallel) and a *reprice hot path* (a table lookup behind a read
//! lock):
//!
//! - [`PricingService::solve_batch`] fans campaigns out on the shared
//!   `ft-exec` pool. When the batch itself saturates the cores, each
//!   solver kernel runs single-threaded (outer parallelism); a small
//!   batch lets the kernels keep their inner parallel sweeps, so the
//!   hardware stays busy either way.
//! - [`PricingService::reprice`] maps an observed campaign state to the
//!   policy's price — `O(1)` per call, no allocation, shared (`RwLock`
//!   read) access from any number of serving threads.
//!
//! Deadline campaigns are solved with Algorithm 2 + truncation (the
//! paper's fastest exact-quality solver); budget campaigns with the
//! Theorem 4 worker-arrival MDP, whose `(remaining, budget)` table can
//! answer repricing at *any* observed state, not just the planned path.

use crate::budget::{solve_budget_mdp_with, BudgetMdpPolicy, BudgetProblem};
use crate::error::{PricingError, Result};
use crate::kernel::deadline::solve_deadline;
use crate::kernel::{KernelConfig, Sweep, TruncationTable};
use crate::policy::{DeadlinePolicy, PriceController};
use crate::problem::DeadlineProblem;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Truncation mass used when a deadline campaign doesn't specify one.
pub const DEFAULT_EPS: f64 = 1e-9;

/// Identifier for a campaign within the service.
pub type CampaignId = u64;

/// What a campaign asks the service to optimise.
#[derive(Debug, Clone)]
pub enum CampaignSpec {
    /// Fixed deadline (Section 3): minimise expected cost.
    Deadline {
        problem: DeadlineProblem,
        /// Poisson-tail truncation mass; `None` = [`DEFAULT_EPS`].
        eps: Option<f64>,
    },
    /// Fixed budget (Section 4): minimise expected latency.
    Budget { problem: BudgetProblem },
}

/// A solved campaign policy held by the service cache.
#[derive(Debug, Clone)]
pub enum CampaignPolicy {
    Deadline(DeadlinePolicy),
    Budget(BudgetMdpPolicy),
}

/// The live state a campaign reports when asking for a fresh price.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservedState {
    /// Deadline campaign: tasks remaining at the given interval index.
    Deadline { remaining: u32, interval: usize },
    /// Budget campaign: tasks remaining with the given cents unspent.
    Budget { remaining: u32, budget_cents: usize },
}

/// A concurrent multi-campaign policy server.
pub struct PricingService {
    cfg: KernelConfig,
    policies: RwLock<HashMap<CampaignId, Arc<CampaignPolicy>>>,
}

impl Default for PricingService {
    fn default() -> Self {
        Self::new()
    }
}

impl PricingService {
    pub fn new() -> Self {
        Self::with_config(KernelConfig::default())
    }

    /// Use an explicit kernel configuration for all solves (e.g.
    /// [`KernelConfig::serial`] in latency-sensitive embedders).
    pub fn with_config(cfg: KernelConfig) -> Self {
        Self {
            cfg,
            policies: RwLock::new(HashMap::new()),
        }
    }

    /// Solve a batch of campaigns concurrently and cache every success.
    /// Returns per-campaign results in input order; failed campaigns are
    /// reported and not cached, without failing the batch.
    pub fn solve_batch(
        &self,
        batch: Vec<(CampaignId, CampaignSpec)>,
    ) -> Vec<(CampaignId, Result<Arc<CampaignPolicy>>)> {
        let outer_threads = ft_exec::resolve_threads(self.cfg.threads);
        // Outer×inner ≈ the worker budget: a full batch runs serial
        // kernels side by side, a single campaign gets the whole pool.
        let inner = KernelConfig {
            threads: (outer_threads / batch.len().max(1)).max(1),
            grain: self.cfg.grain,
        };
        let solved = ft_exec::par_map(batch.len(), 1, self.cfg.threads, |i| {
            Self::solve_spec(&batch[i].1, &inner)
        });
        let out: Vec<(CampaignId, Result<Arc<CampaignPolicy>>)> = batch
            .iter()
            .zip(solved)
            .map(|((id, _), policy)| (*id, policy.map(Arc::new)))
            .collect();
        // One write-guard scope for the whole batch so concurrent
        // reprice readers stall at most once during cache fill.
        let mut cache = self
            .policies
            .write()
            .expect("pricing-service lock poisoned");
        for (id, result) in &out {
            if let Ok(arc) = result {
                cache.insert(*id, Arc::clone(arc));
            }
        }
        drop(cache);
        out
    }

    fn solve_spec(spec: &CampaignSpec, cfg: &KernelConfig) -> Result<CampaignPolicy> {
        match spec {
            CampaignSpec::Deadline { problem, eps } => {
                let trunc = TruncationTable::with_eps(problem, eps.unwrap_or(DEFAULT_EPS));
                solve_deadline(problem, &trunc, Sweep::MonotoneDivide, cfg)
                    .map(CampaignPolicy::Deadline)
            }
            CampaignSpec::Budget { problem } => {
                solve_budget_mdp_with(problem, cfg).map(CampaignPolicy::Budget)
            }
        }
    }

    /// The reprice hot path: look the campaign's policy up and read the
    /// price for the observed state. Errors distinguish "unknown
    /// campaign" from "state kind doesn't match the campaign type" from
    /// "state outside the feasible region".
    pub fn reprice(&self, id: CampaignId, state: ObservedState) -> Result<f64> {
        let policy = self
            .policy(id)
            .ok_or_else(|| PricingError::InvalidProblem(format!("unknown campaign {id}")))?;
        match (policy.as_ref(), state) {
            (
                CampaignPolicy::Deadline(p),
                ObservedState::Deadline {
                    remaining,
                    interval,
                },
            ) => Ok(p.price(remaining, interval)),
            (
                CampaignPolicy::Budget(p),
                ObservedState::Budget {
                    remaining,
                    budget_cents,
                },
            ) => p
                // Clamp onto the solved table like the deadline arm
                // does: more reported tasks/cents than the campaign was
                // solved for answers from the nearest table edge.
                .price(
                    remaining.min(p.n_tasks()),
                    budget_cents.min(p.budget_cents()),
                )
                .map(f64::from)
                .ok_or_else(|| {
                    PricingError::Infeasible(format!(
                        "campaign {id}: no feasible price with {remaining} tasks and \
                         {budget_cents} cents"
                    ))
                }),
            _ => Err(PricingError::InvalidProblem(format!(
                "campaign {id}: observed state kind does not match the campaign type"
            ))),
        }
    }

    /// Fetch a cached policy (cheap `Arc` clone).
    pub fn policy(&self, id: CampaignId) -> Option<Arc<CampaignPolicy>> {
        self.policies
            .read()
            .expect("pricing-service lock poisoned")
            .get(&id)
            .cloned()
    }

    /// Drop a campaign's policy. Returns whether it existed.
    pub fn evict(&self, id: CampaignId) -> bool {
        self.policies
            .write()
            .expect("pricing-service lock poisoned")
            .remove(&id)
            .is_some()
    }

    /// Number of cached campaign policies.
    pub fn len(&self) -> usize {
        self.policies
            .read()
            .expect("pricing-service lock poisoned")
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::solve_budget_mdp;
    use crate::dp::solve_efficient;
    use crate::testkit::{tiny_budget_problem, varied_problems};

    fn mixed_batch() -> Vec<(CampaignId, CampaignSpec)> {
        let mut batch: Vec<(CampaignId, CampaignSpec)> = varied_problems()
            .into_iter()
            .enumerate()
            .map(|(i, problem)| {
                (
                    i as CampaignId,
                    CampaignSpec::Deadline { problem, eps: None },
                )
            })
            .collect();
        batch.push((
            100,
            CampaignSpec::Budget {
                problem: tiny_budget_problem(),
            },
        ));
        batch
    }

    #[test]
    fn batch_solve_matches_direct_solvers() {
        let service = PricingService::new();
        let results = service.solve_batch(mixed_batch());
        assert_eq!(results.len(), varied_problems().len() + 1);
        for (id, result) in &results {
            result
                .as_ref()
                .unwrap_or_else(|e| panic!("campaign {id} failed: {e}"));
        }
        // Deadline campaigns must agree with the standalone solver.
        for (i, problem) in varied_problems().into_iter().enumerate() {
            let direct = solve_efficient(&problem, DEFAULT_EPS).unwrap();
            let cached = service.policy(i as CampaignId).unwrap();
            let CampaignPolicy::Deadline(p) = cached.as_ref() else {
                panic!("campaign {i} is not a deadline policy");
            };
            for t in 0..problem.n_intervals() {
                for m in 1..=problem.n_tasks {
                    assert_eq!(p.action_index(m, t), direct.action_index(m, t));
                }
            }
        }
        // The budget campaign must agree with the standalone MDP.
        let direct = solve_budget_mdp(&tiny_budget_problem()).unwrap();
        let cached = service.policy(100).unwrap();
        let CampaignPolicy::Budget(p) = cached.as_ref() else {
            panic!("campaign 100 is not a budget policy");
        };
        assert_eq!(p.expected_arrivals(), direct.expected_arrivals());
    }

    #[test]
    fn reprice_hot_path() {
        let service = PricingService::new();
        service.solve_batch(mixed_batch());
        let problem = &varied_problems()[0];
        let direct = solve_efficient(problem, DEFAULT_EPS).unwrap();
        let got = service
            .reprice(
                0,
                ObservedState::Deadline {
                    remaining: problem.n_tasks,
                    interval: 0,
                },
            )
            .unwrap();
        assert_eq!(got, direct.price(problem.n_tasks, 0));

        // Budget repricing at an off-path state.
        let mdp = solve_budget_mdp(&tiny_budget_problem()).unwrap();
        let got = service
            .reprice(
                100,
                ObservedState::Budget {
                    remaining: 4,
                    budget_cents: 30,
                },
            )
            .unwrap();
        assert_eq!(got, f64::from(mdp.price(4, 30).unwrap()));

        // Oversized budget clamps onto the table instead of panicking.
        let got = service
            .reprice(
                100,
                ObservedState::Budget {
                    remaining: 4,
                    budget_cents: 10_000,
                },
            )
            .unwrap();
        assert_eq!(got, f64::from(mdp.price(4, mdp.budget_cents()).unwrap()));

        // Oversized remaining-task counts clamp too (regression: this
        // used to panic in BudgetMdpPolicy::idx).
        let got = service
            .reprice(
                100,
                ObservedState::Budget {
                    remaining: 12,
                    budget_cents: 10_000,
                },
            )
            .unwrap();
        assert_eq!(
            got,
            f64::from(mdp.price(mdp.n_tasks(), mdp.budget_cents()).unwrap())
        );
    }

    #[test]
    fn reprice_error_paths() {
        let service = PricingService::new();
        service.solve_batch(mixed_batch());
        // Unknown campaign.
        assert!(matches!(
            service.reprice(
                999,
                ObservedState::Deadline {
                    remaining: 1,
                    interval: 0
                }
            ),
            Err(PricingError::InvalidProblem(_))
        ));
        // Kind mismatch.
        assert!(matches!(
            service.reprice(
                0,
                ObservedState::Budget {
                    remaining: 1,
                    budget_cents: 5
                }
            ),
            Err(PricingError::InvalidProblem(_))
        ));
        // Infeasible budget state.
        assert!(matches!(
            service.reprice(
                100,
                ObservedState::Budget {
                    remaining: 10,
                    budget_cents: 5
                }
            ),
            Err(PricingError::Infeasible(_))
        ));
    }

    #[test]
    fn failed_campaigns_reported_not_cached() {
        let service = PricingService::new();
        let mut p = tiny_budget_problem();
        p.budget = 4.0; // below N · c_min
        let results = service.solve_batch(vec![(7, CampaignSpec::Budget { problem: p })]);
        assert!(matches!(results[0].1, Err(PricingError::Infeasible(_))));
        assert!(service.policy(7).is_none());
        assert!(service.is_empty());
    }

    #[test]
    fn evict_and_len() {
        let service = PricingService::new();
        service.solve_batch(mixed_batch());
        let n = service.len();
        assert!(n >= 2);
        assert!(service.evict(100));
        assert!(!service.evict(100));
        assert_eq!(service.len(), n - 1);
    }
}
