//! The multi-campaign pricing service — now a thin facade over the
//! campaign lifecycle registry ([`crate::registry`]).
//!
//! Historically this module owned a bare `HashMap<CampaignId,
//! Arc<CampaignPolicy>>`; campaigns are now first-class versioned records
//! in a [`CampaignRegistry`] (statuses, policy generations, observation
//! histories, snapshot persistence). `PricingService` keeps the original
//! batch-oriented surface for in-process embedders:
//!
//! - [`PricingService::solve_batch`] registers + solves campaigns
//!   concurrently on the shared `ft-exec` pool, dividing the worker
//!   budget between batch-level and kernel-level parallelism (resolved
//!   **once** — see `registry::split_threads`).
//! - [`PricingService::reprice`] answers from the campaign's current
//!   policy generation — `O(1)`, never blocked by a concurrent solve or
//!   recalibration.
//!
//! Network embedders should use the registry directly (or `ft-server`,
//! which serves it over HTTP): [`PricingService::registry`] exposes it.

use crate::error::Result;
use crate::kernel::KernelConfig;
use crate::registry::CampaignRegistry;
use std::sync::Arc;

pub use crate::error::CampaignId;
pub use crate::registry::{CampaignPolicy, CampaignSpec, ObservedState, DEFAULT_EPS};

/// A concurrent multi-campaign policy server (facade over
/// [`CampaignRegistry`]).
pub struct PricingService {
    registry: CampaignRegistry,
}

impl Default for PricingService {
    fn default() -> Self {
        Self::new()
    }
}

impl PricingService {
    pub fn new() -> Self {
        Self::with_config(KernelConfig::default())
    }

    /// Use an explicit kernel configuration for all solves (e.g.
    /// [`KernelConfig::serial`] in latency-sensitive embedders).
    pub fn with_config(cfg: KernelConfig) -> Self {
        Self {
            registry: CampaignRegistry::with_config(cfg, Default::default()),
        }
    }

    /// Wrap an existing registry (e.g. one restored from a snapshot).
    pub fn from_registry(registry: CampaignRegistry) -> Self {
        Self { registry }
    }

    /// The underlying campaign lifecycle registry: statuses, policy
    /// generations, observations, persistence.
    pub fn registry(&self) -> &CampaignRegistry {
        &self.registry
    }

    /// Register and solve a batch of campaigns concurrently. Returns
    /// per-campaign results in input order, without failing the batch:
    /// a campaign that fails to solve stays a draft if it was new, and
    /// keeps serving its previous policy if it was a re-solve of a live
    /// campaign (readers never see a gap during re-solves).
    pub fn solve_batch(
        &self,
        batch: Vec<(CampaignId, CampaignSpec)>,
    ) -> Vec<(CampaignId, Result<Arc<CampaignPolicy>>)> {
        self.registry
            .submit_many(batch)
            .into_iter()
            .map(|(id, result)| (id, result.map(|generation| Arc::clone(&generation.policy))))
            .collect()
    }

    /// The reprice hot path: look the campaign's current policy
    /// generation up and read the price for the observed state. Errors
    /// distinguish unknown campaigns, state-kind mismatches, and states
    /// outside the feasible region.
    pub fn reprice(&self, id: CampaignId, state: ObservedState) -> Result<f64> {
        self.registry.quote(id, state).map(|quote| quote.price)
    }

    /// The reprice hot path over a batch: campaign handles are resolved
    /// once per unique id, then every observed state prices against the
    /// resolved generation — the routing/lookup cost is paid per
    /// campaign, not per quote. Results come back in input order;
    /// per-item failures don't fail the batch. This is what the
    /// server's `POST /campaigns/quotes` endpoint answers from.
    pub fn quote_many(
        &self,
        batch: &[(CampaignId, ObservedState)],
    ) -> Vec<Result<crate::registry::PriceQuote>> {
        self.registry.quote_many(batch)
    }

    /// Fetch the campaign's current policy (cheap `Arc` clone).
    pub fn policy(&self, id: CampaignId) -> Option<Arc<CampaignPolicy>> {
        self.registry
            .generation(id)
            .map(|generation| Arc::clone(&generation.policy))
    }

    /// Drop a campaign's policy. Returns whether a solved policy was
    /// actually dropped — `false` for unknown ids *and* for drafts with
    /// nothing solved, matching the historical cache semantics. (The
    /// record itself becomes a registry tombstone either way; use
    /// [`CampaignRegistry::purge`] to remove it entirely.)
    pub fn evict(&self, id: CampaignId) -> bool {
        let had_policy = self.registry.generation(id).is_some();
        self.registry.evict(id) && had_policy
    }

    /// Number of campaigns currently holding a solved policy.
    pub fn len(&self) -> usize {
        self.registry.live_len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::solve_budget_mdp;
    use crate::dp::solve_efficient;
    use crate::error::PricingError;
    use crate::testkit::{tiny_budget_problem, varied_problems};

    fn mixed_batch() -> Vec<(CampaignId, CampaignSpec)> {
        let mut batch: Vec<(CampaignId, CampaignSpec)> = varied_problems()
            .into_iter()
            .enumerate()
            .map(|(i, problem)| {
                (
                    i as CampaignId,
                    CampaignSpec::Deadline { problem, eps: None },
                )
            })
            .collect();
        batch.push((
            100,
            CampaignSpec::Budget {
                problem: tiny_budget_problem(),
            },
        ));
        batch
    }

    #[test]
    fn batch_solve_matches_direct_solvers() {
        let service = PricingService::new();
        let results = service.solve_batch(mixed_batch());
        assert_eq!(results.len(), varied_problems().len() + 1);
        for (id, result) in &results {
            result
                .as_ref()
                .unwrap_or_else(|e| panic!("campaign {id} failed: {e}"));
        }
        // Deadline campaigns must agree with the standalone solver.
        for (i, problem) in varied_problems().into_iter().enumerate() {
            let direct = solve_efficient(&problem, DEFAULT_EPS).unwrap();
            let cached = service.policy(i as CampaignId).unwrap();
            let CampaignPolicy::Deadline(p) = cached.as_ref() else {
                panic!("campaign {i} is not a deadline policy");
            };
            for t in 0..problem.n_intervals() {
                for m in 1..=problem.n_tasks {
                    assert_eq!(p.action_index(m, t), direct.action_index(m, t));
                }
            }
        }
        // The budget campaign must agree with the standalone MDP.
        let direct = solve_budget_mdp(&tiny_budget_problem()).unwrap();
        let cached = service.policy(100).unwrap();
        let CampaignPolicy::Budget(p) = cached.as_ref() else {
            panic!("campaign 100 is not a budget policy");
        };
        assert_eq!(p.expected_arrivals(), direct.expected_arrivals());
    }

    #[test]
    fn reprice_hot_path() {
        let service = PricingService::new();
        service.solve_batch(mixed_batch());
        let problem = &varied_problems()[0];
        let direct = solve_efficient(problem, DEFAULT_EPS).unwrap();
        let got = service
            .reprice(
                0,
                ObservedState::Deadline {
                    remaining: problem.n_tasks,
                    interval: 0,
                },
            )
            .unwrap();
        use crate::policy::PriceController;
        assert_eq!(got, direct.price(problem.n_tasks, 0));

        // Budget repricing at an off-path state.
        let mdp = solve_budget_mdp(&tiny_budget_problem()).unwrap();
        let got = service
            .reprice(
                100,
                ObservedState::Budget {
                    remaining: 4,
                    budget_cents: 30,
                },
            )
            .unwrap();
        assert_eq!(got, f64::from(mdp.price(4, 30).unwrap()));

        // Oversized budget clamps onto the table instead of panicking.
        let got = service
            .reprice(
                100,
                ObservedState::Budget {
                    remaining: 4,
                    budget_cents: 10_000,
                },
            )
            .unwrap();
        assert_eq!(got, f64::from(mdp.price(4, mdp.budget_cents()).unwrap()));

        // Oversized remaining-task counts clamp too (regression: this
        // used to panic in BudgetMdpPolicy::idx).
        let got = service
            .reprice(
                100,
                ObservedState::Budget {
                    remaining: 12,
                    budget_cents: 10_000,
                },
            )
            .unwrap();
        assert_eq!(
            got,
            f64::from(mdp.price(mdp.n_tasks(), mdp.budget_cents()).unwrap())
        );
    }

    #[test]
    fn reprice_error_paths() {
        let service = PricingService::new();
        service.solve_batch(mixed_batch());
        // Unknown campaign: structured, names the id.
        assert_eq!(
            service.reprice(
                999,
                ObservedState::Deadline {
                    remaining: 1,
                    interval: 0
                }
            ),
            Err(PricingError::UnknownCampaign(999))
        );
        // Kind mismatch: structured, names both kinds.
        assert_eq!(
            service.reprice(
                0,
                ObservedState::Budget {
                    remaining: 1,
                    budget_cents: 5
                }
            ),
            Err(PricingError::StateKindMismatch {
                id: 0,
                expected: "deadline",
                got: "budget"
            })
        );
        // Infeasible budget state.
        assert!(matches!(
            service.reprice(
                100,
                ObservedState::Budget {
                    remaining: 10,
                    budget_cents: 5
                }
            ),
            Err(PricingError::Infeasible(_))
        ));
    }

    #[test]
    fn failed_campaigns_reported_not_cached() {
        let service = PricingService::new();
        let mut p = tiny_budget_problem();
        p.budget = 4.0; // below N · c_min
        let results = service.solve_batch(vec![(7, CampaignSpec::Budget { problem: p })]);
        assert!(matches!(results[0].1, Err(PricingError::Infeasible(_))));
        assert!(service.policy(7).is_none());
        assert!(service.is_empty());
        // The failed campaign stays registered as a draft.
        use crate::registry::CampaignStatus;
        assert_eq!(
            service.registry().report(7).unwrap().status,
            CampaignStatus::Draft
        );
    }

    #[test]
    fn evict_and_len() {
        let service = PricingService::new();
        service.solve_batch(mixed_batch());
        let n = service.len();
        assert!(n >= 2);
        assert!(service.evict(100));
        assert!(!service.evict(100));
        assert_eq!(service.len(), n - 1);
    }

    /// Regression for the double-resolution bug: the outer/inner split
    /// must be derived from ONE `resolve_threads` call, so the inner
    /// kernels can never over-subscribe the budget the outer fan-out was
    /// planned against.
    #[test]
    fn thread_split_resolves_once() {
        use crate::registry::split_threads;
        for requested in [1usize, 2, 3, 6, 8, 32] {
            for batch_len in [1usize, 2, 3, 5, 16, 100] {
                let (outer, inner) = split_threads(requested, batch_len);
                assert_eq!(
                    outer,
                    ft_exec::resolve_threads(requested),
                    "outer must be the resolved budget"
                );
                assert_eq!(
                    inner,
                    (outer / batch_len.max(1)).max(1),
                    "inner must be derived from the same resolved outer"
                );
                // Over-subscription bound: when the batch saturates the
                // budget the kernels go serial; otherwise outer×inner
                // stays within one budget of the pool.
                assert!(
                    inner == 1 || batch_len * inner <= outer,
                    "requested={requested} batch={batch_len}: outer={outer} inner={inner}"
                );
            }
        }
        // Zero means "machine budget" — both sides must still agree.
        let (outer, inner) = split_threads(0, 4);
        assert_eq!(outer, ft_exec::resolve_threads(0));
        assert_eq!(inner, (outer / 4).max(1));
    }
}
