//! The registry's view into the `ft-metrics` observability plane.
//!
//! Instruments are resolved from the shared [`MetricsRegistry`] once,
//! at construction, and kept as `Arc`s — the quote hot path pays one
//! relaxed `fetch_add` on a striped counter, never a name lookup or a
//! lock. Embedders (notably `ft-server`) can pass their own
//! `Arc<MetricsRegistry>` so one `/metrics` export covers both layers.
//!
//! Metric names (see `ARCHITECTURE.md` for the full convention):
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `ft_core_quotes_total` | counter | price quotes served (`quote`/`reprice`) |
//! | `ft_core_quote_errors_total` | counter | quotes answered with an error |
//! | `ft_core_observes_total` | counter | accepted completion observations |
//! | `ft_core_observe_errors_total` | counter | rejected observations |
//! | `ft_core_solves_total` | counter | successful campaign solves |
//! | `ft_core_solve_errors_total` | counter | failed solves |
//! | `ft_core_recalibrations_total` | counter | drift-triggered re-solves (all kinds) |
//! | `ft_core_recalibrations_by_kind_total{kind=..}` | counter | re-solves split by campaign kind (`deadline` / `budget`) |
//! | `ft_core_generation_swaps_total` | counter | policy-generation pointer swaps |
//! | `ft_core_batched_solves_total` | counter | solves admitted to a scheduler wave |
//! | `ft_core_pmf_cache_hits_total` | counter | wave-cache pmf rows served without rebuilding |
//! | `ft_core_solve_ns` | histogram | wall time of each solve |

use ft_metrics::{Counter, Histogram, MetricsRegistry};
use std::sync::Arc;

/// Pre-resolved instruments for the campaign registry.
pub struct RegistryTelemetry {
    metrics: Arc<MetricsRegistry>,
    pub quotes: Arc<Counter>,
    pub quote_errors: Arc<Counter>,
    pub observes: Arc<Counter>,
    pub observe_errors: Arc<Counter>,
    pub solves: Arc<Counter>,
    pub solve_errors: Arc<Counter>,
    pub recalibrations: Arc<Counter>,
    /// Kind-split recalibration counters — budget recalibrations (the
    /// drift-aware budget extension) are visible separately from the
    /// deadline ones they historically shadowed.
    pub recalibrations_deadline: Arc<Counter>,
    pub recalibrations_budget: Arc<Counter>,
    pub generation_swaps: Arc<Counter>,
    /// Solves admitted to a [`crate::scheduler::SolveScheduler`] wave.
    pub batched_solves: Arc<Counter>,
    /// Pmf rows served from a wave's shared cache instead of rebuilt.
    pub pmf_cache_hits: Arc<Counter>,
    pub solve_ns: Arc<Histogram>,
}

impl RegistryTelemetry {
    /// Resolve (registering on first use) every instrument in `metrics`.
    pub fn new(metrics: Arc<MetricsRegistry>) -> Self {
        Self {
            quotes: metrics.counter("ft_core_quotes_total"),
            quote_errors: metrics.counter("ft_core_quote_errors_total"),
            observes: metrics.counter("ft_core_observes_total"),
            observe_errors: metrics.counter("ft_core_observe_errors_total"),
            solves: metrics.counter("ft_core_solves_total"),
            solve_errors: metrics.counter("ft_core_solve_errors_total"),
            recalibrations: metrics.counter("ft_core_recalibrations_total"),
            recalibrations_deadline: metrics
                .counter("ft_core_recalibrations_by_kind_total{kind=\"deadline\"}"),
            recalibrations_budget: metrics
                .counter("ft_core_recalibrations_by_kind_total{kind=\"budget\"}"),
            generation_swaps: metrics.counter("ft_core_generation_swaps_total"),
            batched_solves: metrics.counter("ft_core_batched_solves_total"),
            pmf_cache_hits: metrics.counter("ft_core_pmf_cache_hits_total"),
            solve_ns: metrics.histogram("ft_core_solve_ns"),
            metrics,
        }
    }

    /// The shared plane these instruments live in (what `/metrics`
    /// exports).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }
}

impl Default for RegistryTelemetry {
    fn default() -> Self {
        Self::new(Arc::new(MetricsRegistry::new()))
    }
}
