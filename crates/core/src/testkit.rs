//! Shared problem families for tests and benchmarks.
//!
//! These used to live behind `#[cfg(test)]` inside the solver modules;
//! they are public so the workspace-level suites (`tests/props.rs`) and
//! the criterion benches can exercise cross-solver agreement on exactly
//! the same instances the unit tests pin down.

use crate::actions::ActionSet;
use crate::budget::BudgetProblem;
use crate::penalty::PenaltyModel;
use crate::problem::DeadlineProblem;
use ft_market::{AcceptanceFn, LogitAcceptance, PriceGrid};

/// Small instance solvable by the naive DP in test (debug) builds.
pub fn small_problem(n_tasks: u32, n_intervals: usize) -> DeadlineProblem {
    let acc = LogitAcceptance::new(5.0, -1.0, 50.0);
    DeadlineProblem::new(
        n_tasks,
        vec![40.0; n_intervals],
        ActionSet::from_grid(PriceGrid::new(0, 20), &acc),
        PenaltyModel::Linear { per_task: 200.0 },
    )
}

/// A family of varied deadline instances for cross-solver agreement
/// tests: different batch sizes, horizons, arrival masses, penalties,
/// penalty shapes, and an acceptance-saturated marketplace.
pub fn varied_problems() -> Vec<DeadlineProblem> {
    let mut out = Vec::new();
    for (n, nt, lam, pen) in [
        (5u32, 3usize, 10.0, 50.0),
        (12, 6, 25.0, 200.0),
        (20, 4, 60.0, 500.0),
        (8, 8, 5.0, 1000.0),
    ] {
        let acc = LogitAcceptance::new(4.0, 0.0, 30.0);
        out.push(DeadlineProblem::new(
            n,
            (0..nt)
                .map(|i| lam * (1.0 + 0.3 * (i as f64).sin()))
                .collect(),
            ActionSet::from_grid(PriceGrid::new(0, 15), &acc),
            PenaltyModel::Linear { per_task: pen },
        ));
    }
    // One with an extended penalty.
    let acc = LogitAcceptance::new(6.0, -0.5, 40.0);
    out.push(DeadlineProblem::new(
        10,
        vec![30.0, 15.0, 45.0],
        ActionSet::from_grid(PriceGrid::new(2, 18), &acc),
        PenaltyModel::Extended {
            per_task: 300.0,
            alpha: 3.0,
        },
    ));
    // One that hits acceptance saturation: very attractive task.
    let acc = LogitAcceptance::new(2.0, -2.0, 5.0);
    assert!(acc.p(18) > 0.9);
    out.push(DeadlineProblem::new(
        6,
        vec![8.0, 8.0],
        ActionSet::from_grid(PriceGrid::new(0, 18), &acc),
        PenaltyModel::Linear { per_task: 100.0 },
    ));
    out
}

/// Section 5.3's budget scenario: N = 200, B = 2500 cents, Eq. 13
/// acceptance, λ̄ ≈ 5100 workers/hour.
pub fn paper_budget_problem() -> BudgetProblem {
    BudgetProblem::new(
        200,
        2500.0,
        ActionSet::from_grid(PriceGrid::new(1, 40), &LogitAcceptance::paper_eq13()),
        5100.0,
    )
}

/// A tiny budget instance solvable instantly by the exact DP.
pub fn tiny_budget_problem() -> BudgetProblem {
    let acc = LogitAcceptance::new(4.0, 0.0, 20.0);
    BudgetProblem::new(
        10,
        60.0,
        ActionSet::from_grid(PriceGrid::new(1, 12), &acc),
        100.0,
    )
}

/// A family of varied budget instances (budget sweep over the tiny
/// problem plus the paper scenario) for hull-vs-exact agreement tests.
pub fn varied_budget_problems() -> Vec<BudgetProblem> {
    let mut out = Vec::new();
    for budget in [30.0, 45.0, 60.0, 80.0, 120.0] {
        let mut p = tiny_budget_problem();
        p.budget = budget;
        out.push(p);
    }
    out.push(paper_budget_problem());
    out
}
