//! Lock-order witness tests — compiled only under
//! `RUSTFLAGS="--cfg lockcheck"` (the dedicated CI leg). On default
//! builds this file is an empty test binary.
//!
//! The witness's contract: an acquisition that inverts the documented
//! campaign-mutex → shard-map order, or that closes a cycle in the
//! observed acquisition graph, panics **before blocking**, naming both
//! lock classes and both held-lock stacks. Correct-order traffic —
//! including the full registry churn the stress suite drives — records
//! edges silently.

#![cfg(lockcheck)]

use ft_core::lockcheck;
use ft_core::registry::{CampaignObservation, CampaignRegistry, CampaignSpec, ObservedState};
use ft_core::{ActionSet, DeadlineProblem, PenaltyModel};
use ft_market::{LogitAcceptance, PriceGrid};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn deadline_spec() -> CampaignSpec {
    let acc = LogitAcceptance::new(4.0, 0.0, 30.0);
    CampaignSpec::Deadline {
        problem: DeadlineProblem::new(
            8,
            vec![20.0; 6],
            ActionSet::from_grid(PriceGrid::new(0, 20), &acc),
            PenaltyModel::Linear { per_task: 200.0 },
        ),
        eps: None,
    }
}

/// The documented order is pre-seeded: taking the campaign mutex while
/// holding a shard-map lock panics even in a fresh process where the
/// correct path never ran, and the report names both classes and the
/// offending held stack.
#[test]
fn inverted_acquisition_panics_with_both_stacks() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _map = lockcheck::acquire(lockcheck::SHARD_MAP, "write");
        let _campaign = lockcheck::acquire(lockcheck::CAMPAIGN_STATE, "state");
    }))
    .expect_err("inverted acquisition must panic");
    let msg = err
        .downcast_ref::<String>()
        .expect("panic payload is the witness report")
        .clone();
    assert!(
        msg.contains("campaign-state") && msg.contains("shard-map"),
        "report must name both lock classes: {msg}"
    );
    assert!(
        msg.contains("shard-map[write]"),
        "report must include the offending thread's held stack: {msg}"
    );
    assert!(
        msg.contains("campaign-state -> shard-map"),
        "report must include the conflicting recorded order: {msg}"
    );
}

/// A cycle assembled from edges the witness *observed* (not
/// pre-seeded) is caught on the closing acquisition, and the report
/// carries the stack recorded when the conflicting edge was first
/// seen.
#[test]
fn observed_cycle_is_detected_on_the_closing_edge() {
    // Record wa → wb on this thread.
    {
        let _a = lockcheck::acquire("witness-test-a", "1");
        let _b = lockcheck::acquire("witness-test-b", "2");
    }
    // wb → wa now closes a cycle.
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _b = lockcheck::acquire("witness-test-b", "3");
        let _a = lockcheck::acquire("witness-test-a", "4");
    }))
    .expect_err("cycle-closing acquisition must panic");
    let msg = err
        .downcast_ref::<String>()
        .expect("panic payload is the witness report")
        .clone();
    assert!(
        msg.contains("witness-test-a") && msg.contains("witness-test-b"),
        "report must name both classes: {msg}"
    );
    assert!(
        msg.contains("witness-test-b[3]"),
        "report must show the closing thread's held stack: {msg}"
    );
    assert!(
        msg.contains("first seen on") || msg.contains("witness-test-a ->"),
        "report must show the first-witness side: {msg}"
    );
}

/// Same-class nesting (two campaign mutexes at once) is a self-cycle.
#[test]
fn same_class_nesting_is_flagged() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _one = lockcheck::acquire("witness-test-same", "c1");
        let _two = lockcheck::acquire("witness-test-same", "c2");
    }))
    .expect_err("same-class nesting must panic");
    let msg = err
        .downcast_ref::<String>()
        .expect("string payload")
        .clone();
    assert!(msg.contains("same-class nesting"), "{msg}");
}

/// Witness tokens can release out of acquisition order (the store's
/// retry path drops the map guard before the campaign guard) without
/// corrupting the held stack.
#[test]
fn out_of_order_release_keeps_the_stack_consistent() {
    let a = lockcheck::acquire("witness-test-ooo-a", "a");
    let b = lockcheck::acquire("witness-test-ooo-b", "b");
    drop(a); // release the *outer* lock first
    assert_eq!(lockcheck::held_stack(), "witness-test-ooo-b[b]");
    drop(b);
    assert_eq!(lockcheck::held_stack(), "");
}

/// The batched-solving extension of the documented order is pre-seeded
/// too: the solve scheduler's wave mutex sits *above* the campaign
/// mutex (scheduler → campaign-mutex → shard-map), so admitting a
/// solve while holding a campaign writer lock — the bug the
/// `observe_on` drop-reacquire pattern exists to avoid — panics even
/// if the correct path never ran in this process. And transitively:
/// holding a shard-map lock while admitting closes the three-class
/// cycle through both seeded edges.
#[test]
fn campaign_held_wave_admission_panics() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _campaign = lockcheck::acquire(lockcheck::CAMPAIGN_STATE, "state");
        let _wave = lockcheck::acquire(lockcheck::SOLVE_SCHEDULER, "wave");
    }))
    .expect_err("campaign-held admission must panic");
    let msg = err
        .downcast_ref::<String>()
        .expect("panic payload is the witness report")
        .clone();
    assert!(
        msg.contains("solve-scheduler") && msg.contains("campaign-state"),
        "report must name both lock classes: {msg}"
    );
    assert!(
        msg.contains("campaign-state[state]"),
        "report must include the offending held stack: {msg}"
    );

    let err = catch_unwind(AssertUnwindSafe(|| {
        let _map = lockcheck::acquire(lockcheck::SHARD_MAP, "write");
        let _wave = lockcheck::acquire(lockcheck::SOLVE_SCHEDULER, "wave");
    }))
    .expect_err("shard-held admission closes the transitive cycle");
    let msg = err
        .downcast_ref::<String>()
        .expect("panic payload is the witness report")
        .clone();
    assert!(
        msg.contains("solve-scheduler") && msg.contains("shard-map"),
        "report must name both ends of the transitive cycle: {msg}"
    );
}

/// The correct order — admission first, campaign lock after — records
/// its edges silently, including through the real scheduler.
#[test]
fn scheduler_first_admission_runs_clean() {
    let sched = ft_core::SolveScheduler::new(4);
    let ticket = sched.admit();
    {
        let _campaign = lockcheck::acquire(lockcheck::CAMPAIGN_STATE, "state");
        let _map = lockcheck::acquire(lockcheck::SHARD_MAP, "write");
    }
    drop(ticket);
    assert_eq!(lockcheck::held_stack(), "");
}

/// The real registry paths run clean under the witness: register,
/// solve, quote, observe-driven recalibration, replacement and
/// eviction all follow the documented order, so a full lifecycle
/// records edges without tripping anything.
#[test]
fn registry_lifecycle_runs_clean_under_the_witness() {
    let registry = CampaignRegistry::new();
    let id = registry.register(deadline_spec());
    registry.solve(id).expect("solve");
    let quote = registry
        .quote(
            id,
            ObservedState::Deadline {
                remaining: 3,
                interval: 1,
            },
        )
        .expect("quote");
    assert!(quote.price.is_finite());
    registry
        .observe(
            id,
            CampaignObservation::Deadline {
                interval: 1,
                completions: 1,
                posted: None,
            },
        )
        .expect("observe");
    // Replacement exercises with_entry's campaign→map write path.
    registry
        .submit_at(id, deadline_spec(), &ft_core::KernelConfig::default())
        .expect("replace");
    assert!(registry.evict(id));
    assert!(registry.purge(id));
    assert_eq!(
        lockcheck::held_stack(),
        "",
        "no witness tokens may leak past the lifecycle"
    );
}
