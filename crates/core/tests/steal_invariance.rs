//! Bitwise invariance of all five public solvers under forced work
//! stealing on the global executor pool.
//!
//! The kernel's determinism contract says a policy's every bit is a
//! function of the problem alone — never of thread count, sweep order,
//! or *which* worker executed a chunk. The kernel-level tests pin the
//! first two; this suite pins the last one at the public-API layer:
//! each solver is fingerprinted normally, then re-run from inside a
//! pool worker with the dispatch-delay test knob set, which holds the
//! dispatching worker between pushing its chunks and starting work so
//! sibling workers *steal* them (the slow-worker harness from
//! `ft-exec`'s own tests). The CI matrix runs this file under
//! `FT_EXEC_THREADS ∈ {1, 4}`; serial kernel references inside the
//! test extend the sweep to explicit 1/2/4/auto decompositions.
//!
//! Also here: panic propagation stays deterministic when the panicking
//! chunk is executed by a thief — the payload is the lowest panicking
//! chunk index, as in serial order, no matter who ran it.

use ft_core::budget::{solve_budget_exact, solve_budget_mdp, solve_budget_mdp_with};
use ft_core::dp::{solve_efficient, solve_simple, solve_truncated};
use ft_core::kernel::deadline::solve_deadline;
use ft_core::kernel::{KernelConfig, Sweep, TruncationTable};
use ft_core::problem::DeadlineProblem;
use ft_core::testkit::{small_problem, tiny_budget_problem};
use ft_core::{BudgetProblem, DeadlinePolicy};
use ft_exec::{set_dispatch_delay_for_tests, Pool};
use std::sync::Mutex;

/// Tests in this file share the global dispatch-delay knob; serialize
/// them so one test's forced-steal window never leaks into another.
static DELAY_KNOB: Mutex<()> = Mutex::new(());

const EPS: f64 = 1e-9;

fn fnv1a64(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn fp_deadline(policy: &DeadlinePolicy, p: &DeadlineProblem) -> u64 {
    let mut words = Vec::new();
    for t in 0..p.n_intervals() {
        for m in 1..=p.n_tasks {
            words.push(policy.cost_to_go(m, t).to_bits());
            words.push(policy.action_index(m, t) as u64);
        }
    }
    fnv1a64(words)
}

/// Every solver's full output, fingerprinted: the three deadline
/// algorithms and both budget solvers.
fn five_fingerprints(p: &DeadlineProblem, b: &BudgetProblem) -> [u64; 5] {
    let simple = solve_simple(p).expect("solve_simple");
    let truncated = solve_truncated(p, EPS).expect("solve_truncated");
    let efficient = solve_efficient(p, EPS).expect("solve_efficient");
    let exact = solve_budget_exact(b).expect("solve_budget_exact");
    let mdp = solve_budget_mdp(b).expect("solve_budget_mdp");

    let fp_exact = fnv1a64(
        exact
            .counts()
            .iter()
            .flat_map(|&(c, n)| [u64::from(c), u64::from(n)]),
    );
    let budget_cents = mdp.budget_cents();
    let mut mdp_words = Vec::new();
    for n in 0..=mdp.n_tasks() {
        for cents in 0..=budget_cents {
            mdp_words.push(mdp.value(n, cents).to_bits());
            mdp_words.push(u64::from(mdp.price(n, cents).unwrap_or(u32::MAX)));
        }
    }
    [
        fp_deadline(&simple, p),
        fp_deadline(&truncated, p),
        fp_deadline(&efficient, p),
        fp_exact,
        fnv1a64(mdp_words),
    ]
}

/// All five public solvers produce bitwise-identical results when their
/// chunks are forcibly stolen by sibling workers, and match the serial
/// kernel reference (so the CI legs at `FT_EXEC_THREADS=1` and `=4`
/// fingerprint the same bits).
#[test]
fn five_solvers_bitwise_invariant_under_forced_steals() {
    let _serialize = DELAY_KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let p = small_problem(20, 6);
    let b = tiny_budget_problem();

    // Baseline: normal dispatch from the test thread.
    let baseline = five_fingerprints(&p, &b);

    // The serial kernel must agree with each public deadline solver —
    // and with explicit 1/2/4/auto decompositions — independent of this
    // process's FT_EXEC_THREADS budget.
    let none = TruncationTable::none(&p);
    let trunc = TruncationTable::with_eps(&p, EPS);
    let serial_refs = [
        (&none, Sweep::Dense, baseline[0]),
        (&trunc, Sweep::Dense, baseline[1]),
        (&trunc, Sweep::MonotoneDivide, baseline[2]),
    ];
    for (table, sweep, expected) in serial_refs {
        for threads in [1, 2, 4, 0] {
            let cfg = KernelConfig {
                threads,
                ..KernelConfig::default()
            };
            let got = solve_deadline(&p, table, sweep, &cfg).expect("kernel reference");
            assert_eq!(
                fp_deadline(&got, &p),
                expected,
                "kernel reference diverged from the public solver \
                 (sweep {sweep:?}, {threads} threads)"
            );
        }
    }
    for threads in [1, 2, 4, 0] {
        let cfg = KernelConfig {
            threads,
            ..KernelConfig::default()
        };
        let mdp = solve_budget_mdp_with(&b, &cfg).expect("mdp reference");
        let mut words = Vec::new();
        for n in 0..=mdp.n_tasks() {
            for cents in 0..=mdp.budget_cents() {
                words.push(mdp.value(n, cents).to_bits());
                words.push(u64::from(mdp.price(n, cents).unwrap_or(u32::MAX)));
            }
        }
        assert_eq!(
            fnv1a64(words),
            baseline[4],
            "budget MDP diverged at {threads} threads"
        );
    }

    // Forced steals: run the whole battery from inside a pool worker
    // with the dispatch delay set, so every fan-out's chunks sit in the
    // worker's deque long enough for siblings to steal them.
    let pool = Pool::global();
    let steals_before = pool.steals();
    set_dispatch_delay_for_tests(200_000); // 200µs per dispatch
    let stolen = pool.run_on_worker(|| five_fingerprints(&p, &b));
    set_dispatch_delay_for_tests(0);
    assert_eq!(
        stolen, baseline,
        "a solver's bits changed under forced work stealing"
    );
    if pool.workers() >= 2 {
        assert!(
            pool.steals() > steals_before,
            "the slow-worker harness must actually force steals \
             ({} workers, steals {} -> {})",
            pool.workers(),
            steals_before,
            pool.steals()
        );
    }
}

/// A panicking chunk executed by a thief propagates exactly like the
/// serial loop: the payload of the lowest panicking index wins, and
/// the global pool stays usable afterwards.
#[test]
fn thief_executed_chunk_panic_is_deterministic() {
    let _serialize = DELAY_KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let pool = Pool::global();
    set_dispatch_delay_for_tests(200_000);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.run_on_worker(|| {
            let mut data = vec![0u32; 64];
            // 8 chunks of 8; chunks 0–1 are fine, chunks 2..8 panic
            // with distinct payloads. Whoever executes them — owner or
            // thief, in whatever order — the propagated payload must be
            // chunk 2's, as in serial order.
            pool.par_chunks_mut(&mut data, 8, 8, |start, chunk| {
                if start >= 16 {
                    panic!("chunk {} boom", start / 8);
                }
                chunk.iter_mut().for_each(|x| *x = 1);
            });
        })
    }));
    set_dispatch_delay_for_tests(0);
    let payload = result.expect_err("panicking region must propagate");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("formatted panic payload");
    assert_eq!(
        msg, "chunk 2 boom",
        "propagated payload must be the lowest panicking chunk's"
    );
    // The pool survives a panicked region.
    let sum: u64 = ft_exec::par_map(100, 1, 0, |i| i as u64).into_iter().sum();
    assert_eq!(sum, 4950);
}
