//! # ft-exec
//!
//! Structured parallelism for the `finish-them` workspace, built only on
//! `std::thread::scope` — the container has no network access, so `rayon`
//! is replaced by this deliberately small executor. One module is shared
//! by the solver kernel (`ft-core::kernel`), the pricing service
//! (`ft-core::service`) and the Monte-Carlo harness (`ft-sim::mc`), so
//! every layer draws from the same worker budget.
//!
//! Design points:
//!
//! - **Deterministic decomposition**: all helpers split work into
//!   contiguous chunks whose per-element computation is independent, so
//!   results are identical to the serial loop regardless of thread count.
//! - **Grain control**: callers pass the number of *elements* below which
//!   spawning is not worth it; tiny inputs run inline with zero overhead.
//! - **No global mutable state**: thread counts come from
//!   [`available_threads`] (override with the `FT_EXEC_THREADS` env var,
//!   e.g. to pin CI to one core).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker budget: `FT_EXEC_THREADS` if set, else available parallelism,
/// capped at 32 (the solvers' rows don't benefit beyond that).
pub fn available_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("FT_EXEC_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
        .min(32);
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Resolve a requested thread count: `0` means "use the machine budget".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested.min(32)
    }
}

/// Run two closures, possibly in parallel, and return both results —
/// the fork-join primitive behind the divide-and-conquer solver path.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("ft-exec: joined task panicked"))
    })
}

/// Split `data` into at most `threads` contiguous chunks of at least
/// `grain` elements and run `f(start_index, chunk)` on each, in parallel.
///
/// Falls back to one inline call when the input is below the grain or
/// only one thread is available. `f` must treat elements independently —
/// chunk boundaries are a performance decision, not a semantic one.
pub fn par_chunks_mut<T, F>(data: &mut [T], grain: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let threads = resolve_threads(threads);
    let len = data.len();
    if threads <= 1 || len <= grain.max(1) {
        f(0, data);
        return;
    }
    let n_chunks = threads.min(len.div_ceil(grain.max(1)));
    let chunk_len = len.div_ceil(n_chunks);
    std::thread::scope(|s| {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            s.spawn(move || f(i * chunk_len, chunk));
        }
    });
}

/// Like [`par_chunks_mut`] over two equal-length slices chunked in
/// lockstep — the solver kernel writes a value row and a policy row for
/// the same states in one pass.
pub fn par_chunks2_mut<A, B, F>(a: &mut [A], b: &mut [B], grain: usize, threads: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert_eq!(a.len(), b.len(), "lockstep slices must match");
    let threads = resolve_threads(threads);
    let len = a.len();
    if threads <= 1 || len <= grain.max(1) {
        f(0, a, b);
        return;
    }
    let n_chunks = threads.min(len.div_ceil(grain.max(1)));
    let chunk_len = len.div_ceil(n_chunks);
    std::thread::scope(|s| {
        for (i, (ca, cb)) in a
            .chunks_mut(chunk_len)
            .zip(b.chunks_mut(chunk_len))
            .enumerate()
        {
            let f = &f;
            s.spawn(move || f(i * chunk_len, ca, cb));
        }
    });
}

/// Compute `f(i)` for every `i` in `0..len` into a fresh `Vec`, in
/// parallel chunks — the batch-solve primitive of the pricing service.
pub fn par_map<R, F>(len: usize, grain: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut out: Vec<Option<R>> = (0..len).map(|_| None).collect();
    par_chunks_mut(&mut out, grain, threads, |start, chunk| {
        for (j, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(start + j));
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("ft-exec: par_map slot left unfilled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_chunks_matches_serial() {
        let mut parallel: Vec<u64> = (0..10_000).collect();
        let mut serial = parallel.clone();
        par_chunks_mut(&mut parallel, 64, 8, |start, chunk| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = ((start + j) as u64).wrapping_mul(2654435761);
            }
        });
        for (i, x) in serial.iter_mut().enumerate() {
            *x = (i as u64).wrapping_mul(2654435761);
        }
        assert_eq!(parallel, serial);
    }

    #[test]
    fn par_chunks2_lockstep_offsets_agree() {
        let n = 5000;
        let mut vals = vec![0f64; n];
        let mut idxs = vec![0u32; n];
        par_chunks2_mut(&mut vals, &mut idxs, 16, 0, |start, va, ia| {
            for j in 0..va.len() {
                va[j] = (start + j) as f64;
                ia[j] = (start + j) as u32;
            }
        });
        for i in 0..n {
            assert_eq!(vals[i], i as f64);
            assert_eq!(idxs[i], i as u32);
        }
    }

    #[test]
    fn small_inputs_run_inline() {
        let mut data = vec![1u8; 3];
        par_chunks_mut(&mut data, 64, 8, |start, chunk| {
            assert_eq!(start, 0);
            assert_eq!(chunk.len(), 3);
            chunk.iter_mut().for_each(|x| *x = 2);
        });
        assert_eq!(data, vec![2, 2, 2]);
    }

    #[test]
    fn par_map_orders_results() {
        let out = par_map(1000, 10, 4, |i| i * i);
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, i * i);
        }
    }

    #[test]
    fn resolve_threads_semantics() {
        assert!(available_threads() >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(0), available_threads());
    }
}
