//! # ft-exec
//!
//! Structured parallelism for the `finish-them` workspace, built only on
//! `std` — the container has no network access, so `rayon` is replaced
//! by this deliberately small executor. One module is shared by the
//! solver kernel (`ft-core::kernel`), the pricing service
//! (`ft-core::service`) and the Monte-Carlo harness (`ft-sim::mc`), so
//! every layer draws from the same worker budget.
//!
//! Since PR 4 the executor is a **persistent worker pool** ([`Pool`]):
//! worker threads are spawned lazily on the first parallel region and
//! then parked, so `join`, the chunked `for_each`/`map` sweeps, and the
//! kernel's per-layer fan-out reuse parked workers instead of paying a
//! thread spawn/join per region (the kernel opens one region per
//! induction layer — the difference is measured by the `exec_pool`
//! bench).
//!
//! Design points:
//!
//! - **Deterministic decomposition**: all helpers split work into
//!   contiguous chunks whose per-element computation is independent, so
//!   results are identical to the serial loop regardless of thread
//!   count; the propagated panic payload is deterministic too, and a
//!   panicking region short-circuits its remaining chunks (see the
//!   dispatch-model notes on [`Pool`]).
//! - **Grain control**: callers pass the number of *elements* below which
//!   dispatching is not worth it; tiny inputs run inline with zero
//!   overhead.
//! - **No global mutable state beyond the pool**: thread counts come
//!   from [`available_threads`] (override with the `FT_EXEC_THREADS` env
//!   var, e.g. to pin CI to one core — the CI matrix runs both `1` and
//!   `4`). The free functions below dispatch on [`Pool::global`];
//!   callers that want explicit scoping can own a [`Pool`].

//! - **Work-stealing dispatch**: each worker owns a lock-free
//!   Chase–Lev-style deque (owner LIFO at the bottom, thieves FIFO at
//!   the top); the mutex-guarded injector is only the submission
//!   channel for non-worker threads and the overflow for full deques.
//!   Steal and overflow counts are observable per pool
//!   ([`Pool::steals`], [`Pool::deque_overflows`]) and exportable as
//!   `ft_exec_steals_total` / `ft_exec_deque_overflow_total` via
//!   [`register_metrics`].

mod metrics;
mod pool;

pub use metrics::register_metrics;
#[doc(hidden)]
pub use pool::set_dispatch_delay_for_tests;
pub use pool::Pool;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker budget: `FT_EXEC_THREADS` if set, else available parallelism,
/// capped at 32 (the solvers' rows don't benefit beyond that).
pub fn available_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    // ORDERING: Relaxed is enough for a write-once value cache — every
    // racing writer computes the same figure from the same env/machine,
    // so readers need the value itself, not any ordering around it.
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("FT_EXEC_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
        .min(32);
    // ORDERING: Relaxed — see the load above; duplicate stores write
    // the same value.
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Resolve a requested thread count: `0` means "use the machine budget".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested.min(32)
    }
}

/// Current thread count of this process, from `/proc/self/status`
/// (`None` off Linux or if unreadable). The observability hook behind
/// the pool's thread-stability guarantee: warm the pool, read this,
/// dispatch repeatedly, read again — the count must not grow
/// (`crates/exec/tests/pool.rs`, `ft-server`'s flood test and the
/// workspace `exec_pool` test all assert exactly that).
pub fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Run two closures, possibly in parallel, and return both results —
/// the fork-join primitive behind the divide-and-conquer solver path.
/// Dispatches on the global [`Pool`] (steal-back join: the second
/// closure is offered to the pool and reclaimed by the caller if no
/// worker has started it — see [`Pool::join`]).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    // Recorded on the calling thread: a traced solve shows its fork-join
    // structure even though pool workers carry no trace context.
    let _span = ft_trace::span("exec.pool.join");
    Pool::global().join(a, b)
}

/// Run `f` as one executor region under the `exec.pool.dispatch`
/// span. For callers that drive their own decomposition (the kernel's
/// monotone divide-and-conquer forks through [`join`] only when a
/// segment is large enough) this attributes the region to the executor
/// in a trace even when every fork ran inline.
pub fn region<R>(f: impl FnOnce() -> R) -> R {
    let _span = ft_trace::span("exec.pool.dispatch");
    f()
}

/// Split `data` into at most `threads` contiguous chunks of at least
/// `grain` elements and run `f(start_index, chunk)` on each, on the
/// global [`Pool`].
///
/// Falls back to one inline call when the input is below the grain or
/// only one thread is available. `f` must treat elements independently —
/// chunk boundaries are a performance decision, not a semantic one.
pub fn par_chunks_mut<T, F>(data: &mut [T], grain: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    Pool::global().par_chunks_mut(data, grain, threads, f)
}

/// Like [`par_chunks_mut`] over two equal-length slices chunked in
/// lockstep — the solver kernel writes a value row and a policy row for
/// the same states in one pass.
pub fn par_chunks2_mut<A, B, F>(a: &mut [A], b: &mut [B], grain: usize, threads: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    Pool::global().par_chunks2_mut(a, b, grain, threads, f)
}

/// Compute `f(i)` for every `i` in `0..len` into a fresh `Vec`, in
/// parallel chunks — the batch-solve primitive of the pricing service.
pub fn par_map<R, F>(len: usize, grain: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    Pool::global().par_map(len, grain, threads, f)
}

/// A raw pointer that may cross threads. Soundness is argued at each
/// use site: the chunk decomposition hands every element to exactly one
/// job, and the dispatch blocks until all jobs finish.
struct SendPtr<T>(*mut T);
// Manual impls: the derive would demand `T: Copy`, but copying the
// *pointer* never copies the pointee.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: `SendPtr` only crosses threads inside the dispatch protocol,
// which hands each worker a disjoint chunk of the pointee (`T: Send`)
// and joins every job before the borrow ends — the pointer is shared,
// the pointees are not.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the
    /// whole `Send + Sync` wrapper, not the raw pointer field.
    fn get(self) -> *mut T {
        self.0
    }
}

/// The shared chunk decomposition: `None` means "run inline" (input
/// below grain or one thread); otherwise the chunk length such that
/// chunks are contiguous, at least `grain` long, and at most `threads`
/// many — identical to the serial loop's element order.
fn chunk_len_for(len: usize, grain: usize, threads: usize) -> Option<usize> {
    if threads <= 1 || len <= grain.max(1) {
        return None;
    }
    let n_chunks = threads.min(len.div_ceil(grain.max(1)));
    Some(len.div_ceil(n_chunks))
}

impl Pool {
    /// Resolve a requested thread count against **this pool**: `0`
    /// means "use this pool's parallelism" (`workers() + 1`), so an
    /// explicitly sized `Pool::new(8)` decomposes for 8 threads even
    /// when the global `FT_EXEC_THREADS`/machine budget says otherwise.
    /// For [`Pool::global`] this coincides with [`resolve_threads`].
    fn resolve_own_threads(&self, requested: usize) -> usize {
        if requested == 0 {
            self.workers() + 1
        } else {
            requested.min(32)
        }
    }

    /// [`par_chunks_mut`] on this specific pool.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], grain: usize, threads: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        // The span brackets the whole region — fan-out through
        // join-back, or the inline fallback: "ran on the caller" is a
        // dispatch decision worth seeing in a trace too.
        let _span = ft_trace::span("exec.pool.dispatch");
        let threads = self.resolve_own_threads(threads);
        let len = data.len();
        let Some(chunk_len) = chunk_len_for(len, grain, threads) else {
            f(0, data);
            return;
        };
        let base = SendPtr(data.as_mut_ptr());
        self.for_each(len.div_ceil(chunk_len), |i| {
            let start = i * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: chunks are disjoint and each index is claimed
            // exactly once; the dispatch outlives every job.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            f(start, chunk);
        });
    }

    /// [`par_chunks2_mut`] on this specific pool.
    pub fn par_chunks2_mut<A, B, F>(
        &self,
        a: &mut [A],
        b: &mut [B],
        grain: usize,
        threads: usize,
        f: F,
    ) where
        A: Send,
        B: Send,
        F: Fn(usize, &mut [A], &mut [B]) + Sync,
    {
        // Same bracketing as `par_chunks_mut`.
        let _span = ft_trace::span("exec.pool.dispatch");
        assert_eq!(a.len(), b.len(), "lockstep slices must match");
        let threads = self.resolve_own_threads(threads);
        let len = a.len();
        let Some(chunk_len) = chunk_len_for(len, grain, threads) else {
            f(0, a, b);
            return;
        };
        let base_a = SendPtr(a.as_mut_ptr());
        let base_b = SendPtr(b.as_mut_ptr());
        self.for_each(len.div_ceil(chunk_len), |i| {
            let start = i * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: as in `par_chunks_mut`, for both slices in lockstep.
            let (ca, cb) = unsafe {
                (
                    std::slice::from_raw_parts_mut(base_a.get().add(start), end - start),
                    std::slice::from_raw_parts_mut(base_b.get().add(start), end - start),
                )
            };
            f(start, ca, cb);
        });
    }

    /// [`par_map`] on this specific pool.
    pub fn par_map<R, F>(&self, len: usize, grain: usize, threads: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut out: Vec<Option<R>> = (0..len).map(|_| None).collect();
        self.par_chunks_mut(&mut out, grain, threads, |start, chunk| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(f(start + j));
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("ft-exec: par_map slot left unfilled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_chunks_matches_serial() {
        let mut parallel: Vec<u64> = (0..10_000).collect();
        let mut serial = parallel.clone();
        par_chunks_mut(&mut parallel, 64, 8, |start, chunk| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = ((start + j) as u64).wrapping_mul(2654435761);
            }
        });
        for (i, x) in serial.iter_mut().enumerate() {
            *x = (i as u64).wrapping_mul(2654435761);
        }
        assert_eq!(parallel, serial);
    }

    #[test]
    fn par_chunks2_lockstep_offsets_agree() {
        let n = 5000;
        let mut vals = vec![0f64; n];
        let mut idxs = vec![0u32; n];
        par_chunks2_mut(&mut vals, &mut idxs, 16, 0, |start, va, ia| {
            for j in 0..va.len() {
                va[j] = (start + j) as f64;
                ia[j] = (start + j) as u32;
            }
        });
        for i in 0..n {
            assert_eq!(vals[i], i as f64);
            assert_eq!(idxs[i], i as u32);
        }
    }

    #[test]
    fn small_inputs_run_inline() {
        let mut data = vec![1u8; 3];
        par_chunks_mut(&mut data, 64, 8, |start, chunk| {
            assert_eq!(start, 0);
            assert_eq!(chunk.len(), 3);
            chunk.iter_mut().for_each(|x| *x = 2);
        });
        assert_eq!(data, vec![2, 2, 2]);
    }

    #[test]
    fn par_map_orders_results() {
        let out = par_map(1000, 10, 4, |i| i * i);
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, i * i);
        }
    }

    #[test]
    fn resolve_threads_semantics() {
        assert!(available_threads() >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(0), available_threads());
    }

    #[test]
    fn owned_pool_decomposes_by_its_own_size() {
        // An explicitly sized pool must not be silently capped by the
        // global FT_EXEC_THREADS/machine budget: threads = 0 resolves
        // to *this* pool's parallelism.
        let pool = Pool::new(4);
        let starts = std::sync::Mutex::new(Vec::new());
        let mut data = vec![0u8; 100];
        pool.par_chunks_mut(&mut data, 1, 0, |start, _chunk| {
            starts.lock().unwrap().push(start);
        });
        let mut starts = starts.into_inner().unwrap();
        starts.sort_unstable();
        assert_eq!(starts, vec![0, 25, 50, 75]);
    }

    #[test]
    fn chunk_decomposition_is_stable() {
        // The decomposition is part of the determinism contract: it
        // must depend only on (len, grain, threads), never on pool
        // occupancy.
        assert_eq!(chunk_len_for(100, 200, 8), None);
        assert_eq!(chunk_len_for(100, 10, 1), None);
        assert_eq!(chunk_len_for(100, 10, 4), Some(25));
        assert_eq!(chunk_len_for(100, 30, 8), Some(25)); // grain-limited: 4 chunks
        assert_eq!(chunk_len_for(7, 1, 3), Some(3));
    }
}
