//! Optional export of the executor's counters through `ft-metrics`.
//!
//! `ft-exec` sits below the serving stack and owns no registry; the
//! embedder (normally `ft-server` at startup) calls
//! [`register_metrics`] once to mirror the pool's internal counters
//! onto its [`MetricsRegistry`]. Until then the `note_*` hooks are
//! no-ops, so the executor stays metrics-free in bare library use.
//!
//! Registration is latest-wins: a second call (a new server instance
//! in the same process, a test with its own registry) replaces the
//! exported handles, which keeps counts flowing to the registry that
//! is actually being scraped.

use ft_metrics::{Counter, MetricsRegistry};
use std::sync::{Arc, RwLock};

struct Exported {
    steals: Arc<Counter>,
    overflows: Arc<Counter>,
}

static EXPORTED: RwLock<Option<Exported>> = RwLock::new(None);

/// Create (or look up) the executor's counters on `registry` and start
/// mirroring pool activity onto them:
///
/// - `ft_exec_steals_total` — jobs executed by a worker that stole
///   them from another worker's deque;
/// - `ft_exec_deque_overflow_total` — publishes rerouted to the
///   injector because the publishing worker's deque was full.
pub fn register_metrics(registry: &MetricsRegistry) {
    let exported = Exported {
        steals: registry.counter("ft_exec_steals_total"),
        overflows: registry.counter("ft_exec_deque_overflow_total"),
    };
    *EXPORTED.write().unwrap_or_else(|e| e.into_inner()) = Some(exported);
}

pub(crate) fn note_steal() {
    if let Some(e) = EXPORTED.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
        e.steals.inc();
    }
}

pub(crate) fn note_deque_overflow() {
    if let Some(e) = EXPORTED.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
        e.overflows.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_counters_mirror_pool_activity() {
        let registry = MetricsRegistry::new();
        register_metrics(&registry);
        note_steal();
        note_steal();
        note_deque_overflow();
        let text = registry.to_prometheus();
        assert!(
            text.contains("ft_exec_steals_total 2"),
            "steal counter missing from export:\n{text}"
        );
        assert!(
            text.contains("ft_exec_deque_overflow_total 1"),
            "overflow counter missing from export:\n{text}"
        );
        // Latest-wins: a fresh registry takes over.
        let second = MetricsRegistry::new();
        register_metrics(&second);
        note_steal();
        assert!(second.to_prometheus().contains("ft_exec_steals_total 1"));
    }
}
