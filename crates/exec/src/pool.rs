//! The persistent worker pool behind every `ft-exec` dispatch.
//!
//! The first parallel region used to pay a full `std::thread` spawn and
//! join per chunk — and the solver kernel opens one parallel region *per
//! induction layer*, so a 24-layer solve paid 24 rounds of spawn/join.
//! The pool spawns its workers **once**, lazily, and parks them on a
//! condvar; a dispatch is then an `Arc` allocation, a queue push and a
//! wakeup — cheap enough that even the budget DPs' ~40-flop cells can
//! fan out (see `default_grain` in `ft-core::kernel::budget`).
//!
//! ## Dispatch model
//!
//! Two primitives cover every caller:
//!
//! - **Fan-out** ([`Pool::for_each`]): `n` independent index jobs. The
//!   caller pushes up to `workers` handles to one shared [`Batch`],
//!   then *participates*, claiming indices from an atomic counter
//!   alongside any workers that picked the batch up. Idle workers help;
//!   busy workers are not waited for. The caller blocks only until
//!   every claimed index has finished.
//! - **Steal-back join** ([`Pool::join`]): `b` is published to the
//!   queue, `a` runs on the caller. When `a` finishes the caller races
//!   the pool with a CAS: whoever claims `b` runs it, so the caller
//!   never blocks on work nobody has started — the only thing ever
//!   waited on is a job actively running on another thread.
//!
//! Both primitives may be invoked from *inside* a pooled job (the
//! kernel's monotone divide recursion nests joins; the registry's batch
//! solve nests whole kernel sweeps). Nesting cannot deadlock: every
//! blocked dispatcher first exhausts the work it is waiting for, so any
//! wait is on a job currently executing, and the wait graph bottoms out
//! at a running leaf.
//!
//! ## Determinism and panics
//!
//! The pool executes exactly the jobs the caller enumerated; which
//! thread runs a job is invisible because jobs are data-disjoint by
//! API contract. If jobs panic, the propagated payload is deterministic:
//! the **lowest-indexed** failing job's payload for a fan-out (the one
//! the serial loop would have hit first), and `a`-before-`b` for a join.
//! A fan-out short-circuits like the serial loop: once an index has
//! panicked, higher indices claimed afterwards are skipped (indices
//! already in flight complete — they cannot be recalled), so a panic
//! early in a large batch does not burn the rest of it. A panic is
//! caught on the worker, recorded, and re-raised on the dispatching
//! thread **after** the region completes — workers survive, the pool
//! is never poisoned, and later dispatches run normally.
//!
//! ## Safety
//!
//! Jobs reference the dispatcher's stack through lifetime-erased raw
//! pointers. The erasure is sound because a dispatch does not return
//! (or unwind) until every claimed job has finished, and unclaimed
//! handles left in the queue only touch the `Arc`-owned control block —
//! a worker that pops a stale handle sees the batch exhausted (or the
//! join cell claimed) and drops it without dereferencing the task.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on pool threads (matches `resolve_threads`' cap).
const MAX_THREADS: usize = 32;

/// A queued unit of work. `run` must never unwind — implementations
/// catch panics and surrender them to the dispatcher.
trait PoolJob: Send + Sync {
    fn run(&self);
}

struct JobQueue {
    jobs: VecDeque<Arc<dyn PoolJob>>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<JobQueue>,
    work_available: Condvar,
}

/// A persistent set of parked worker threads with scoped job dispatch.
///
/// [`Pool::global`] is the process-wide pool every free function in
/// this crate dispatches to; embedders that want explicit scoping (a
/// dedicated pool per tenant, a bounded pool in a test) can own one via
/// [`Pool::new`] — its workers are joined when the handle drops.
pub struct Pool {
    shared: Arc<Shared>,
    workers: usize,
    /// Join handles for owned pools; empty for the global pool (its
    /// workers are detached — the pool lives for the whole process).
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Build a pool with `threads` total parallelism: the dispatching
    /// thread plus `threads − 1` parked workers. `threads <= 1` builds
    /// a pool with no workers at all — every dispatch runs inline,
    /// which is the deterministic serial baseline.
    pub fn new(threads: usize) -> Self {
        let workers = threads.clamp(1, MAX_THREADS) - 1;
        let shared = Arc::new(Shared {
            queue: Mutex::new(JobQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_available: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ft-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("ft-exec: failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            handles,
        }
    }

    /// The lazily-initialized process-wide pool, sized from
    /// [`crate::available_threads`] (so `FT_EXEC_THREADS` governs it).
    /// First use spawns the workers; every later dispatch reuses them.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let mut pool = Pool::new(crate::available_threads());
            // The global pool is never dropped; detach the workers so
            // the handles don't sit in a static for no reason.
            pool.handles = Vec::new();
            pool
        })
    }

    /// Parked worker threads owned by this pool (total parallelism is
    /// `workers() + 1`: the dispatching thread participates).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f(i)` for every `i` in `0..n`, in parallel with the pool's
    /// workers. Blocks until all `n` calls have finished; panics are
    /// re-raised here (lowest index wins) after the region completes.
    pub fn for_each<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.fan_out(n, &f);
    }

    fn fan_out(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        if self.workers == 0 || n == 1 {
            // Serial baseline: run inline, panics flow straight out —
            // exactly the plain loop.
            for i in 0..n {
                f(i);
            }
            return;
        }
        let raw = f as *const (dyn Fn(usize) + Sync);
        // SAFETY: the erased closure outlives the batch — fan_out does
        // not return (or unwind) until `finished == n`, and stale queue
        // handles never dereference `task` (module docs).
        let task = RawTask(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(raw)
        });
        let batch = Arc::new(Batch {
            task,
            n,
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            first_panic: AtomicUsize::new(usize::MAX),
            panic: Mutex::new(None),
            complete: Mutex::new(false),
            completed: Condvar::new(),
        });
        // One handle per worker that could usefully help; the caller
        // takes the place of the remaining chunk.
        let helpers = self.workers.min(n - 1);
        {
            let mut queue = self.shared.queue.lock().expect("ft-exec queue poisoned");
            for _ in 0..helpers {
                queue.jobs.push_back(Arc::clone(&batch) as Arc<dyn PoolJob>);
            }
        }
        // Wake exactly as many workers as there are handles to claim —
        // notify_all would wake every parked worker once per induction
        // layer just to have most of them re-park.
        for _ in 0..helpers {
            self.shared.work_available.notify_one();
        }
        batch.work();
        let mut done = batch.complete.lock().expect("ft-exec batch poisoned");
        while !*done {
            done = batch.completed.wait(done).expect("ft-exec batch poisoned");
        }
        drop(done);
        let panic = batch.take_panic();
        if let Some((_, payload)) = panic {
            resume_unwind(payload);
        }
    }

    /// Run two closures, possibly in parallel, and return both results.
    ///
    /// `b` is offered to the pool while `a` runs on the caller; if no
    /// worker has picked `b` up by the time `a` finishes, the caller
    /// steals it back and runs it inline — so `join` never blocks on
    /// unstarted work, which is what makes nesting deadlock-free.
    ///
    /// Panic order is serial: a panic in `a` is re-raised first (and if
    /// `b` was never claimed, `b` does not run at all, exactly like the
    /// serial `a(); b()` sequence).
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.workers == 0 {
            let ra = a();
            let rb = b();
            return (ra, rb);
        }
        let mut b_slot = Some(b);
        let mut rb_slot: Option<RB> = None;
        let mut call_b = || {
            rb_slot = Some((b_slot.take().expect("ft-exec: join task ran twice"))());
        };
        let raw = &mut call_b as &mut (dyn FnMut() + Send) as *mut (dyn FnMut() + Send);
        // SAFETY: same argument as fan_out — `join` does not return (or
        // unwind) before the cell is either claimed by the caller or
        // observed complete, and only the claimant dereferences `task`.
        let task = RawMutTask(unsafe {
            std::mem::transmute::<*mut (dyn FnMut() + Send), *mut (dyn FnMut() + Send + 'static)>(
                raw,
            )
        });
        let cell = Arc::new(JoinCell {
            task,
            claimed: AtomicBool::new(false),
            panic: Mutex::new(None),
            complete: Mutex::new(false),
            completed: Condvar::new(),
        });
        {
            let mut queue = self.shared.queue.lock().expect("ft-exec queue poisoned");
            queue.jobs.push_back(Arc::clone(&cell) as Arc<dyn PoolJob>);
        }
        self.shared.work_available.notify_one();

        let ra = catch_unwind(AssertUnwindSafe(a));
        // ORDERING: AcqRel pairs with the identical swap in
        // `JoinCell::run` — exactly one side wins the claim, and the
        // winner's subsequent access to the task/result slots must not
        // be reordered before the swap that granted exclusivity.
        if !cell.claimed.swap(true, Ordering::AcqRel) {
            // Steal-back: nobody started `b`; it is ours now, and any
            // worker that later pops the stale handle drops it.
            match ra {
                Ok(ra) => {
                    call_b();
                    let rb = rb_slot
                        .take()
                        .expect("ft-exec: stolen join task left no result");
                    (ra, rb)
                }
                // Serial semantics: `a` panicked, `b` never ran.
                Err(payload) => resume_unwind(payload),
            }
        } else {
            // A worker owns `b`; wait for it to finish.
            let mut done = cell.complete.lock().expect("ft-exec join poisoned");
            while !*done {
                done = cell.completed.wait(done).expect("ft-exec join poisoned");
            }
            drop(done);
            let b_panic = cell.take_panic();
            match ra {
                Err(payload) => resume_unwind(payload),
                Ok(ra) => match b_panic {
                    Some(payload) => resume_unwind(payload),
                    None => {
                        let rb = rb_slot
                            .take()
                            .expect("ft-exec: pooled join task left no result");
                        (ra, rb)
                    }
                },
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        self.shared
            .queue
            .lock()
            .expect("ft-exec queue poisoned")
            .shutdown = true;
        self.shared.work_available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("ft-exec queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .work_available
                    .wait(queue)
                    .expect("ft-exec queue poisoned");
            }
        };
        // `run` never unwinds (panics are captured into the batch/cell),
        // so a panicking job cannot kill the worker or poison the pool.
        job.run();
    }
}

// ---- fan-out batch ---------------------------------------------------

/// Lifetime-erased `&(dyn Fn(usize) + Sync)`.
struct RawTask(*const (dyn Fn(usize) + Sync + 'static));
// SAFETY: the pointee is `Sync` (shared calls from any thread are fine)
// and the dispatch protocol guarantees it outlives every dereference.
unsafe impl Send for RawTask {}
unsafe impl Sync for RawTask {}

type PanicPayload = Box<dyn Any + Send>;

struct Batch {
    task: RawTask,
    n: usize,
    /// Next unclaimed index.
    next: AtomicUsize,
    /// Indices fully finished (task returned, panicked, or was skipped
    /// after the batch was poisoned).
    finished: AtomicUsize,
    /// Lowest index that has panicked so far (`usize::MAX` = none).
    /// Indices **above** it are skipped, approximating the serial
    /// loop's stop-at-first-panic; indices below it still run — the
    /// serial loop would have reached them first, and one of them may
    /// be the true first failure.
    first_panic: AtomicUsize,
    /// Lowest-indexed captured panic (payload for `first_panic`).
    panic: Mutex<Option<(usize, PanicPayload)>>,
    complete: Mutex<bool>,
    completed: Condvar,
}

impl Batch {
    /// Claim and run indices until the batch is exhausted. Called by
    /// the dispatcher and by any worker that popped a handle.
    fn work(&self) {
        loop {
            // ORDERING: Relaxed — `next` is only an index dispenser;
            // each value is handed out once and nothing is published
            // through it (task results flow through `panic`/`finished`).
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            // Short-circuit after a panic: skip indices above the
            // lowest failure seen so far (the serial loop would never
            // reach them), but still run indices below it — one of
            // them may be the true first failure, which keeps the
            // propagated payload deterministic regardless of timing.
            if i < self.first_panic.load(Ordering::Acquire) {
                // SAFETY: `i < n` is claimed exactly once, and the
                // dispatch has not returned (it waits for
                // `finished == n`).
                let task = unsafe { &*self.task.0 };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                    let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                    match &*slot {
                        Some((first, _)) if *first < i => {}
                        _ => *slot = Some((i, payload)),
                    }
                    self.first_panic.fetch_min(i, Ordering::AcqRel);
                }
            }
            // AcqRel chains every participant's writes into the final
            // increment, which publishes them to the dispatcher through
            // the completion mutex.
            if self.finished.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                *self.complete.lock().expect("ft-exec batch poisoned") = true;
                self.completed.notify_all();
            }
        }
    }

    fn take_panic(&self) -> Option<(usize, PanicPayload)> {
        self.panic.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

impl PoolJob for Batch {
    fn run(&self) {
        self.work();
    }
}

// ---- steal-back join cell --------------------------------------------

/// Lifetime-erased `&mut (dyn FnMut() + Send)`.
struct RawMutTask(*mut (dyn FnMut() + Send + 'static));
// SAFETY: exclusive access is arbitrated by `JoinCell::claimed`; the
// pointee is `Send` and outlives every dereference (dispatch protocol).
unsafe impl Send for RawMutTask {}
unsafe impl Sync for RawMutTask {}

struct JoinCell {
    task: RawMutTask,
    claimed: AtomicBool,
    panic: Mutex<Option<PanicPayload>>,
    complete: Mutex<bool>,
    completed: Condvar,
}

impl JoinCell {
    fn take_panic(&self) -> Option<PanicPayload> {
        self.panic.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

impl PoolJob for JoinCell {
    fn run(&self) {
        // ORDERING: AcqRel pairs with the steal-back swap in `join` —
        // the loser of the race must see it lost, and the winner's
        // later use of the `RawMutTask` pointee must stay after the
        // claim that made it exclusive.
        if self.claimed.swap(true, Ordering::AcqRel) {
            return; // stolen back (or already run) — stale handle
        }
        // SAFETY: the CAS gave us exclusive access to the task.
        let task = unsafe { &mut *self.task.0 };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            *self.panic.lock().unwrap_or_else(|e| e.into_inner()) = Some(payload);
        }
        *self.complete.lock().expect("ft-exec join poisoned") = true;
        self.completed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn owned_pool_runs_every_index_once() {
        let pool = Pool::new(4);
        assert_eq!(pool.workers(), 3);
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        pool.for_each(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, hit) in hits.iter().enumerate() {
            assert_eq!(hit.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn zero_worker_pool_is_serial() {
        let pool = Pool::new(1);
        assert_eq!(pool.workers(), 0);
        let mut order = Vec::new();
        let cell = Mutex::new(&mut order);
        pool.for_each(5, |i| cell.lock().unwrap().push(i));
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn join_steals_back_or_waits() {
        let pool = Pool::new(2);
        for _ in 0..100 {
            let (a, b) = pool.join(|| 1 + 1, || "b");
            assert_eq!((a, b), (2, "b"));
        }
    }

    #[test]
    fn nested_joins_terminate() {
        fn fib(pool: &Pool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        let pool = Pool::new(4);
        assert_eq!(fib(&pool, 16), 987);
    }

    #[test]
    fn fan_out_propagates_lowest_index_panic() {
        let pool = Pool::new(4);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each(64, |i| {
                if i % 7 == 3 {
                    panic!("boom at {i}");
                }
            });
        }))
        .unwrap_err();
        let message = err.downcast_ref::<String>().expect("string payload");
        assert_eq!(message, "boom at 3");
        // The pool is not poisoned: the next dispatch works.
        let count = AtomicUsize::new(0);
        pool.for_each(32, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn join_panic_order_is_serial() {
        let pool = Pool::new(2);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(
                || -> u32 { panic!("a first") },
                || -> u32 { panic!("b second") },
            )
        }))
        .unwrap_err();
        let message = err.downcast_ref::<&'static str>().expect("str payload");
        assert_eq!(*message, "a first");
        // Reusable afterwards.
        assert_eq!(pool.join(|| 3, || 4), (3, 4));
    }
}
