//! The persistent work-stealing pool behind every `ft-exec` dispatch.
//!
//! The first parallel region used to pay a full `std::thread` spawn and
//! join per chunk — and the solver kernel opens one parallel region *per
//! induction layer*, so a 24-layer solve paid 24 rounds of spawn/join.
//! The pool spawns its workers **once**, lazily, and parks them on a
//! condvar; a dispatch is then an `Arc` allocation, a lock-free deque
//! push and (at most) a wakeup.
//!
//! ## Queueing model: per-worker deques + an injector
//!
//! Since this PR each worker owns a fixed-capacity **Chase–Lev-style
//! deque**: the owner pushes and pops at the *bottom* (LIFO, newest
//! first — the cache-hot end), while idle workers *steal* from the
//! *top* (FIFO, oldest first). A job published from inside a pooled job
//! (the kernel's monotone divide nests joins; a worker's chunk may fan
//! out again) goes straight onto the publishing worker's own deque with
//! two atomic stores — no lock, no contention with the other workers'
//! dispatches.
//!
//! The old mutex-guarded queue survives as the **injector**: the
//! submission channel for threads that are not pool workers (the main
//! thread, server handlers) and the overflow channel for the rare deque
//! that fills up (`ft_exec_deque_overflow_total` counts those). Workers
//! look for work in a fixed order — own deque (LIFO), injector, then a
//! steal sweep over the other deques — and only park when all three
//! come up empty.
//!
//! ### Deque lifecycle and the steal protocol
//!
//! Each deque is a power-of-two ring of `AtomicPtr` slots indexed by two
//! monotonically increasing `u64` counters, `top` (next index to steal)
//! and `bottom` (next index to push). Only the owner writes `bottom`;
//! thieves advance `top` by CAS. A push stores the job pointer into
//! `slots[bottom & mask]` and then publishes it with the `bottom`
//! increment; a steal reads `top`, then `bottom`, then the slot, and
//! claims it by CAS on `top`. The owner's pop reserves the bottom slot
//! by decrementing `bottom` *before* re-reading `top` (a store-load
//! ordering both sides enforce with `SeqCst`, Dekker-style), so the
//! owner and a thief can only race on the *last* element — and that
//! race is settled by a single CAS on `top` that exactly one side wins.
//! Slot reuse is safe for the same reason growth is unnecessary: a push
//! may only overwrite slot `i & mask` after `top` has advanced past
//! `i`, which the thief's claiming CAS makes visible to the owner's
//! full-check. Every popped or stolen pointer is boxed exactly once and
//! freed exactly once (pop, steal, or the owner's shutdown drain).
//!
//! ## Dispatch model
//!
//! Two primitives cover every caller:
//!
//! - **Fan-out** ([`Pool::for_each`]): `n` independent index jobs. The
//!   caller publishes up to `workers` handles to one shared [`Batch`],
//!   then *participates*, claiming indices from an atomic counter
//!   alongside any workers that picked the batch up. Idle workers help;
//!   busy workers are not waited for. The caller blocks only until
//!   every claimed index has finished.
//! - **Steal-back join** ([`Pool::join`]): `b` is published (to the
//!   caller's own deque if the caller is a worker, else to the
//!   injector), `a` runs on the caller. When `a` finishes the caller
//!   races the pool with a CAS: whoever claims `b` runs it, so the
//!   caller never blocks on work nobody has started — the only thing
//!   ever waited on is a job actively running on another thread.
//!
//! Both primitives may be invoked from *inside* a pooled job. Nesting
//! cannot deadlock: every blocked dispatcher first exhausts the work it
//! is waiting for, so any wait is on a job currently executing, and the
//! wait graph bottoms out at a running leaf.
//!
//! ## Determinism and panics
//!
//! Work-stealing changes **where** a job runs, never **what** runs: the
//! chunk decomposition is a pure function of `(len, grain, threads)`
//! (see `chunk_len_for`), fan-out indices are claimed from one shared
//! counter whichever thread does the claiming, and jobs are
//! data-disjoint by API contract — so results are bitwise identical to
//! the serial loop at any thread count, steals or no steals (pinned by
//! the forced-steal fingerprint tests in `ft-core`). If jobs panic, the
//! propagated payload is deterministic too: the **lowest-indexed**
//! failing job's payload for a fan-out (the one the serial loop would
//! have hit first), and `a`-before-`b` for a join — even when the
//! panicking branch was executed by a thief. A fan-out short-circuits
//! like the serial loop: once an index has panicked, higher indices
//! claimed afterwards are skipped. A panic is caught on the worker,
//! recorded, and re-raised on the dispatching thread **after** the
//! region completes — workers survive, the pool is never poisoned.
//!
//! ## Safety
//!
//! Jobs reference the dispatcher's stack through lifetime-erased raw
//! pointers. The erasure is sound because a dispatch does not return
//! (or unwind) until every claimed job has finished, and unclaimed
//! handles left in a deque or the injector only touch the `Arc`-owned
//! control block — a worker that pops a stale handle sees the batch
//! exhausted (or the join cell claimed) and drops it without
//! dereferencing the task.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on pool threads (matches `resolve_threads`' cap).
const MAX_THREADS: usize = 32;

/// Slots per worker deque. Power of two so the ring index is a mask.
/// Depth is bounded in practice by nesting depth (a fan-out publishes at
/// most `workers` handles; a join one cell), so 256 is generous — a full
/// deque overflows to the injector rather than growing.
const DEQUE_CAP: usize = 256;
const DEQUE_MASK: u64 = DEQUE_CAP as u64 - 1;

/// A queued unit of work. `run` must never unwind — implementations
/// catch panics and surrender them to the dispatcher.
trait PoolJob: Send + Sync {
    fn run(&self);
}

/// Outcome of one steal attempt.
enum StealResult {
    /// The deque looked empty.
    Empty,
    /// Lost a race (another thief or the owner claimed concurrently);
    /// worth retrying the sweep.
    Retry,
    /// Got one.
    Taken(Arc<dyn PoolJob>),
}

/// One worker's Chase–Lev-style deque (see module docs for the
/// protocol). Indices are monotone `u64`s, so wraparound is a
/// non-issue; the ring index is `counter & DEQUE_MASK`.
struct Deque {
    /// Next index to steal. Thieves advance it by CAS; the owner's pop
    /// CASes it too, but only for the final element.
    top: AtomicU64,
    /// Next index to push. Written by the owner only; read by thieves.
    bottom: AtomicU64,
    /// Job slots. Each non-garbage pointer is a `Box<Arc<dyn PoolJob>>`
    /// (boxed so the fat `Arc` travels behind one thin pointer).
    slots: Box<[AtomicPtr<Arc<dyn PoolJob>>]>,
}

impl Deque {
    fn new() -> Self {
        Self {
            top: AtomicU64::new(0),
            bottom: AtomicU64::new(0),
            slots: (0..DEQUE_CAP)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }
    }

    /// Owner-only push at the bottom. `Err` hands the job back when the
    /// ring is full (the caller overflows it to the injector).
    fn push(&self, job: Arc<dyn PoolJob>) -> Result<(), Arc<dyn PoolJob>> {
        // ORDERING: Relaxed — only the owner writes `bottom`, so its own
        // load needs no synchronization.
        let b = self.bottom.load(Ordering::Relaxed);
        // ORDERING: Acquire pairs with the thieves' claiming CAS on
        // `top`: observing an advanced `top` is what licenses reusing
        // slot `b & mask`, and the acquire makes the thief's slot read
        // happen-before our overwrite. A stale (smaller) `top` only
        // makes the full-check conservative — we overflow to the
        // injector instead of overwriting, which is always safe.
        let t = self.top.load(Ordering::Acquire);
        if b - t >= DEQUE_CAP as u64 {
            return Err(job);
        }
        let ptr = Box::into_raw(Box::new(job));
        // ORDERING: Relaxed — the slot write is published by the SeqCst
        // `bottom` store below; nobody reads slot `b` until they observe
        // `bottom > b`.
        self.slots[(b & DEQUE_MASK) as usize].store(ptr, Ordering::Relaxed);
        // ORDERING: SeqCst publishes the slot write (release half, read
        // by the thief's `bottom` acquire) *and* keeps the push in the
        // single total order that `take`'s Dekker-style store-load on
        // (`bottom`, `top`) relies on.
        self.bottom.store(b + 1, Ordering::SeqCst);
        Ok(())
    }

    /// Owner-only LIFO pop at the bottom.
    fn take(&self) -> Option<Arc<dyn PoolJob>> {
        // ORDERING: Relaxed — owner-private counter, see `push`.
        let b = self.bottom.load(Ordering::Relaxed);
        // ORDERING: Relaxed — fast-path emptiness check only: `top` is
        // monotone and never exceeds `bottom`, so a stale read can only
        // under-estimate it; `b == t` then implies truly empty, and any
        // other value falls through to the fenced re-check below.
        let t = self.top.load(Ordering::Relaxed);
        if b == t {
            return None;
        }
        let b = b - 1;
        // ORDERING: SeqCst — the reservation store must be ordered
        // *before* the `top` re-load below in the single total order
        // (Dekker): a thief orders its `top` CAS against its `bottom`
        // read the same way, so either we see the thief's claim or the
        // thief sees our reservation — both claiming the same slot is
        // impossible except through the final-element CAS.
        self.bottom.store(b, Ordering::SeqCst);
        // ORDERING: SeqCst — see the reservation store above.
        let t = self.top.load(Ordering::SeqCst);
        if t > b {
            // Thieves emptied the deque while we reserved; undo.
            // ORDERING: Relaxed — restoring to the empty state
            // (`bottom == top`) publishes no slot.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        // ORDERING: Relaxed — the owner wrote this slot itself.
        let ptr = self.slots[(b & DEQUE_MASK) as usize].load(Ordering::Relaxed);
        if t == b {
            // Last element: race any thief for it with one CAS on `top`.
            // ORDERING: SeqCst success pairs with the thieves' claiming
            // CAS — exactly one side advances `top` past the final
            // index; Relaxed failure is fine, losing publishes nothing.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            // ORDERING: Relaxed — either way the deque is now empty at
            // `b + 1 == top`; no slot is published by this store.
            self.bottom.store(b + 1, Ordering::Relaxed);
            if !won {
                return None;
            }
        }
        // SAFETY: the protocol above hands index `b` to exactly one
        // claimant (us), and the pointer was created by `Box::into_raw`
        // in `push`.
        Some(*unsafe { Box::from_raw(ptr) })
    }

    /// Thief-side FIFO steal from the top.
    fn steal(&self) -> StealResult {
        // ORDERING: SeqCst — the `top` read must precede the `bottom`
        // read in the single total order (mirror of `take`'s
        // store-load), so a non-empty observation is not a stale
        // illusion crossing the owner's reservation.
        let t = self.top.load(Ordering::SeqCst);
        // ORDERING: SeqCst — see above; also the acquire half pairs
        // with `push`'s `bottom` store, making the slot write for every
        // index below `bottom` visible before we read it.
        let b = self.bottom.load(Ordering::SeqCst);
        if t >= b {
            return StealResult::Empty;
        }
        // ORDERING: Relaxed — the slot write for index `t` is visible
        // via the acquire on `bottom` above; if the owner has since
        // overwritten the slot (possible only after `top` moved past
        // `t`), the CAS below fails and the value is discarded unread.
        let ptr = self.slots[(t & DEQUE_MASK) as usize].load(Ordering::Relaxed);
        // ORDERING: SeqCst success claims index `t` in the same total
        // order the owner's pop participates in; Relaxed failure — a
        // lost race publishes nothing.
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: the successful CAS hands index `t` to us alone,
            // and the pointer came from `Box::into_raw` in `push`.
            StealResult::Taken(*unsafe { Box::from_raw(ptr) })
        } else {
            StealResult::Retry
        }
    }
}

impl Drop for Deque {
    fn drop(&mut self) {
        // Defensive: the owning worker drains on shutdown, so this is
        // normally empty — but leftover boxes must still be freed.
        while self.take().is_some() {}
    }
}

/// The injector: submission channel for non-worker threads, overflow
/// channel for full deques, and the shutdown flag's home.
struct Injector {
    jobs: VecDeque<Arc<dyn PoolJob>>,
    shutdown: bool,
}

struct Shared {
    injector: Mutex<Injector>,
    work_available: Condvar,
    /// One deque per worker, indexed by worker id.
    deques: Box<[Deque]>,
    /// Jobs currently sitting in worker deques (not the injector). The
    /// parking protocol's "is there anything to steal?" hint: a worker
    /// only parks after observing `pending == 0` *after* registering as
    /// a sleeper (see `worker_loop` and `wake_one`).
    pending: AtomicU64,
    /// Workers currently parked (or committing to park) on the condvar.
    sleepers: AtomicUsize,
    /// Successful steals from worker deques, over the pool's lifetime.
    steals: AtomicU64,
    /// Deque-full overflows rerouted to the injector.
    overflows: AtomicU64,
}

thread_local! {
    /// `(Shared address, worker index)` of the pool this thread works
    /// for, if any — how a dispatch from inside a pooled job finds its
    /// own deque.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Artificial dispatcher delay in nanoseconds — the slow-worker test
/// harness. A non-zero value makes every dispatcher dawdle between
/// publishing work and racing to run it (fan-out: before claiming
/// indices; join: before the steal-back CAS), which reliably hands the
/// published jobs to thieves. Scheduling perturbation only: results
/// must be bitwise identical with it on, which is exactly what the
/// forced-steal fingerprint tests assert.
static DISPATCH_DELAY_NS: AtomicU64 = AtomicU64::new(0);

/// Test-only global knob; see [`DISPATCH_DELAY_NS`]. Not part of the
/// public API contract.
#[doc(hidden)]
pub fn set_dispatch_delay_for_tests(nanos: u64) {
    // ORDERING: Relaxed — a test knob carrying no data but itself.
    DISPATCH_DELAY_NS.store(nanos, Ordering::Relaxed);
}

#[inline]
fn dispatch_delay() {
    // ORDERING: Relaxed — see `set_dispatch_delay_for_tests`.
    let ns = DISPATCH_DELAY_NS.load(Ordering::Relaxed);
    if ns > 0 {
        std::thread::sleep(std::time::Duration::from_nanos(ns));
    }
}

impl Shared {
    /// Worker index of the current thread *on this pool*, if any.
    fn own_worker_index(self: &Arc<Self>) -> Option<usize> {
        let addr = Arc::as_ptr(self) as usize;
        WORKER.with(|w| match w.get() {
            Some((a, idx)) if a == addr => Some(idx),
            _ => None,
        })
    }

    /// Publish one job: the caller's own deque when the caller is a
    /// worker of this pool (lock-free fast path), else the injector;
    /// full deques overflow to the injector. Always leaves a wakeup
    /// behind so a parked worker can come claim it.
    fn submit(self: &Arc<Self>, job: Arc<dyn PoolJob>) {
        if let Some(idx) = self.own_worker_index() {
            match self.deques[idx].push(job) {
                Ok(()) => {
                    // ORDERING: SeqCst — the pending increment must
                    // precede the `sleepers` read in `wake_one` in the
                    // single total order; the parking side orders its
                    // `sleepers` increment before its `pending` read
                    // the same way (Dekker), so a parking worker and a
                    // publishing worker can never miss each other.
                    self.pending.fetch_add(1, Ordering::SeqCst);
                    self.wake_one();
                    return;
                }
                Err(job) => {
                    // ORDERING: Relaxed — a monotonic statistic; readers
                    // tolerate staleness.
                    self.overflows.fetch_add(1, Ordering::Relaxed);
                    crate::metrics::note_deque_overflow();
                    self.inject(job);
                    return;
                }
            }
        }
        self.inject(job);
    }

    /// Push to the injector and wake one worker. The push happens under
    /// the injector mutex — the same mutex parked workers re-check the
    /// queue under — so no wakeup can be lost.
    fn inject(&self, job: Arc<dyn PoolJob>) {
        let mut q = self.injector.lock().expect("ft-exec injector poisoned");
        q.jobs.push_back(job);
        drop(q);
        self.work_available.notify_one();
    }

    /// Wake one parked worker after a deque push, if anyone is parked.
    /// Taking (and immediately releasing) the injector mutex before
    /// notifying serializes with the park-side check-then-wait, so a
    /// worker that decided to sleep just before our `pending` increment
    /// is either still holding the mutex (we block until it actually
    /// waits) or already waiting (the notify lands).
    fn wake_one(&self) {
        // ORDERING: SeqCst — see the `pending` increment in `submit`.
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        drop(self.injector.lock().expect("ft-exec injector poisoned"));
        self.work_available.notify_one();
    }

    /// One steal sweep over every other worker's deque, starting just
    /// past `me` and wrapping. Retries while any victim reports a lost
    /// race; returns `None` only after a clean all-empty pass.
    fn steal_sweep(&self, me: usize) -> Option<Arc<dyn PoolJob>> {
        let n = self.deques.len();
        if n <= 1 {
            return None;
        }
        loop {
            let mut contended = false;
            for k in 1..n {
                let victim = (me + k) % n;
                match self.deques[victim].steal() {
                    StealResult::Taken(job) => {
                        // ORDERING: SeqCst — mirrors the increment in
                        // `submit` (the counter gates parking).
                        self.pending.fetch_sub(1, Ordering::SeqCst);
                        // ORDERING: Relaxed — monotonic statistic.
                        self.steals.fetch_add(1, Ordering::Relaxed);
                        crate::metrics::note_steal();
                        return Some(job);
                    }
                    StealResult::Retry => contended = true,
                    StealResult::Empty => {}
                }
            }
            if !contended {
                return None;
            }
            std::thread::yield_now();
        }
    }
}

/// A persistent set of parked worker threads with scoped job dispatch.
///
/// [`Pool::global`] is the process-wide pool every free function in
/// this crate dispatches to; embedders that want explicit scoping (a
/// dedicated pool per tenant, a bounded pool in a test) can own one via
/// [`Pool::new`] — its workers are joined when the handle drops.
pub struct Pool {
    shared: Arc<Shared>,
    workers: usize,
    /// Join handles for owned pools; empty for the global pool (its
    /// workers are detached — the pool lives for the whole process).
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Build a pool with `threads` total parallelism: the dispatching
    /// thread plus `threads − 1` parked workers. `threads <= 1` builds
    /// a pool with no workers at all — every dispatch runs inline,
    /// which is the deterministic serial baseline.
    pub fn new(threads: usize) -> Self {
        let workers = threads.clamp(1, MAX_THREADS) - 1;
        let shared = Arc::new(Shared {
            injector: Mutex::new(Injector {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_available: Condvar::new(),
            deques: (0..workers).map(|_| Deque::new()).collect(),
            pending: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            overflows: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ft-exec-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("ft-exec: failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            handles,
        }
    }

    /// The lazily-initialized process-wide pool, sized from
    /// [`crate::available_threads`] (so `FT_EXEC_THREADS` governs it).
    /// First use spawns the workers; every later dispatch reuses them.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let mut pool = Pool::new(crate::available_threads());
            // The global pool is never dropped; detach the workers so
            // the handles don't sit in a static for no reason.
            pool.handles = Vec::new();
            pool
        })
    }

    /// Parked worker threads owned by this pool (total parallelism is
    /// `workers() + 1`: the dispatching thread participates).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Successful steals from this pool's worker deques since creation.
    pub fn steals(&self) -> u64 {
        // ORDERING: Relaxed — monotonic statistic, staleness is fine.
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Deque-full overflows rerouted to the injector since creation.
    pub fn deque_overflows(&self) -> u64 {
        // ORDERING: Relaxed — monotonic statistic, staleness is fine.
        self.shared.overflows.load(Ordering::Relaxed)
    }

    /// Run `f` **on a pool worker** (not the calling thread) and return
    /// its result; panics propagate to the caller. Falls back to an
    /// inline call when the pool has no workers. Test harness for
    /// exercising the worker-side dispatch paths (a job run this way
    /// publishes its nested work to a worker deque, where it can be
    /// stolen); not part of the public API contract.
    #[doc(hidden)]
    pub fn run_on_worker<R, F>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if self.workers == 0 {
            return f();
        }
        let mut f_slot = Some(f);
        let mut r_slot: Option<R> = None;
        let mut call = || {
            r_slot = Some((f_slot.take().expect("ft-exec: probe ran twice"))());
        };
        let raw = &mut call as &mut (dyn FnMut() + Send) as *mut (dyn FnMut() + Send);
        // SAFETY: same protocol as `join` — we do not return (or
        // unwind) before the cell reports complete, and only the
        // claiming worker dereferences `task`.
        let task = RawMutTask(unsafe {
            std::mem::transmute::<*mut (dyn FnMut() + Send), *mut (dyn FnMut() + Send + 'static)>(
                raw,
            )
        });
        let cell = Arc::new(JoinCell {
            task,
            claimed: AtomicBool::new(false),
            panic: Mutex::new(None),
            complete: Mutex::new(false),
            completed: Condvar::new(),
        });
        // Straight to the injector — the point is that a *worker* runs
        // it, so no steal-back race from this side.
        self.shared.inject(Arc::clone(&cell) as Arc<dyn PoolJob>);
        let mut done = cell.complete.lock().expect("ft-exec probe poisoned");
        while !*done {
            done = cell.completed.wait(done).expect("ft-exec probe poisoned");
        }
        drop(done);
        if let Some(payload) = cell.take_panic() {
            resume_unwind(payload);
        }
        r_slot.take().expect("ft-exec: probe left no result")
    }

    /// Run `f(i)` for every `i` in `0..n`, in parallel with the pool's
    /// workers. Blocks until all `n` calls have finished; panics are
    /// re-raised here (lowest index wins) after the region completes.
    pub fn for_each<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.fan_out(n, &f);
    }

    fn fan_out(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        if self.workers == 0 || n == 1 {
            // Serial baseline: run inline, panics flow straight out —
            // exactly the plain loop.
            for i in 0..n {
                f(i);
            }
            return;
        }
        let raw = f as *const (dyn Fn(usize) + Sync);
        // SAFETY: the erased closure outlives the batch — fan_out does
        // not return (or unwind) until `finished == n`, and stale queue
        // handles never dereference `task` (module docs).
        let task = RawTask(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(raw)
        });
        let batch = Arc::new(Batch {
            task,
            n,
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            first_panic: AtomicUsize::new(usize::MAX),
            panic: Mutex::new(None),
            complete: Mutex::new(false),
            completed: Condvar::new(),
        });
        // One handle per worker that could usefully help; the caller
        // takes the place of the remaining chunk. From a worker these
        // land on its own deque (thieves claim them); from elsewhere
        // they go through the injector.
        let helpers = self.workers.min(n - 1);
        for _ in 0..helpers {
            self.shared.submit(Arc::clone(&batch) as Arc<dyn PoolJob>);
        }
        dispatch_delay();
        batch.work();
        let mut done = batch.complete.lock().expect("ft-exec batch poisoned");
        while !*done {
            done = batch.completed.wait(done).expect("ft-exec batch poisoned");
        }
        drop(done);
        let panic = batch.take_panic();
        if let Some((_, payload)) = panic {
            resume_unwind(payload);
        }
    }

    /// Run two closures, possibly in parallel, and return both results.
    ///
    /// `b` is offered to the pool while `a` runs on the caller; if no
    /// worker has picked `b` up by the time `a` finishes, the caller
    /// steals it back and runs it inline — so `join` never blocks on
    /// unstarted work, which is what makes nesting deadlock-free.
    ///
    /// Panic order is serial: a panic in `a` is re-raised first (and if
    /// `b` was never claimed, `b` does not run at all, exactly like the
    /// serial `a(); b()` sequence).
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.workers == 0 {
            let ra = a();
            let rb = b();
            return (ra, rb);
        }
        let mut b_slot = Some(b);
        let mut rb_slot: Option<RB> = None;
        let mut call_b = || {
            rb_slot = Some((b_slot.take().expect("ft-exec: join task ran twice"))());
        };
        let raw = &mut call_b as &mut (dyn FnMut() + Send) as *mut (dyn FnMut() + Send);
        // SAFETY: same argument as fan_out — `join` does not return (or
        // unwind) before the cell is either claimed by the caller or
        // observed complete, and only the claimant dereferences `task`.
        let task = RawMutTask(unsafe {
            std::mem::transmute::<*mut (dyn FnMut() + Send), *mut (dyn FnMut() + Send + 'static)>(
                raw,
            )
        });
        let cell = Arc::new(JoinCell {
            task,
            claimed: AtomicBool::new(false),
            panic: Mutex::new(None),
            complete: Mutex::new(false),
            completed: Condvar::new(),
        });
        self.shared.submit(Arc::clone(&cell) as Arc<dyn PoolJob>);

        let ra = catch_unwind(AssertUnwindSafe(a));
        dispatch_delay();
        // ORDERING: AcqRel pairs with the identical swap in
        // `JoinCell::run` — exactly one side wins the claim, and the
        // winner's subsequent access to the task/result slots must not
        // be reordered before the swap that granted exclusivity.
        if !cell.claimed.swap(true, Ordering::AcqRel) {
            // Steal-back: nobody started `b`; it is ours now, and any
            // worker that later pops the stale handle drops it.
            match ra {
                Ok(ra) => {
                    call_b();
                    let rb = rb_slot
                        .take()
                        .expect("ft-exec: stolen join task left no result");
                    (ra, rb)
                }
                // Serial semantics: `a` panicked, `b` never ran.
                Err(payload) => resume_unwind(payload),
            }
        } else {
            // A worker owns `b`; wait for it to finish.
            let mut done = cell.complete.lock().expect("ft-exec join poisoned");
            while !*done {
                done = cell.completed.wait(done).expect("ft-exec join poisoned");
            }
            drop(done);
            let b_panic = cell.take_panic();
            match ra {
                Err(payload) => resume_unwind(payload),
                Ok(ra) => match b_panic {
                    Some(payload) => resume_unwind(payload),
                    None => {
                        let rb = rb_slot
                            .take()
                            .expect("ft-exec: pooled join task left no result");
                        (ra, rb)
                    }
                },
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        self.shared
            .injector
            .lock()
            .expect("ft-exec injector poisoned")
            .shutdown = true;
        self.shared.work_available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, me: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(shared) as usize, me))));
    loop {
        // 1. Own deque, newest first — the cache-hot end.
        if let Some(job) = shared.deques[me].take() {
            // ORDERING: SeqCst — mirrors the increment in `submit` (the
            // counter gates parking).
            shared.pending.fetch_sub(1, Ordering::SeqCst);
            job.run();
            continue;
        }
        // 2. The injector: external submissions and deque overflow.
        let injected = {
            let mut q = shared.injector.lock().expect("ft-exec injector poisoned");
            q.jobs.pop_front()
        };
        if let Some(job) = injected {
            job.run();
            continue;
        }
        // 3. Steal sweep over the other workers' deques, oldest first.
        if let Some(job) = shared.steal_sweep(me) {
            let _span = ft_trace::span("exec.pool.steal");
            job.run();
            continue;
        }
        // 4. Nothing anywhere: park. Re-check everything under the
        // injector mutex, registering as a sleeper *before* the final
        // `pending` look (Dekker against `submit`/`wake_one`) so a
        // concurrent deque push either sees our registration and
        // notifies, or we see its `pending` increment and rescan.
        let mut q = shared.injector.lock().expect("ft-exec injector poisoned");
        loop {
            if q.shutdown {
                drop(q);
                drain_on_shutdown(shared, me);
                return;
            }
            if !q.jobs.is_empty() {
                break;
            }
            // ORDERING: SeqCst — the sleeper registration must precede
            // the `pending` read in the single total order; see
            // `Shared::submit`.
            shared.sleepers.fetch_add(1, Ordering::SeqCst);
            // ORDERING: SeqCst — see above.
            if shared.pending.load(Ordering::SeqCst) != 0 {
                // Work appeared in some deque: withdraw and rescan.
                // ORDERING: SeqCst — symmetric with the registration.
                shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                break;
            }
            q = shared
                .work_available
                .wait(q)
                .expect("ft-exec injector poisoned");
            // ORDERING: SeqCst — symmetric with the registration.
            shared.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Free whatever is left in this worker's own deque at shutdown. Only
/// stale handles can remain (every dispatch waits for its jobs, and the
/// owner is the only pusher), but the boxes must still be reclaimed.
fn drain_on_shutdown(shared: &Arc<Shared>, me: usize) {
    while shared.deques[me].take().is_some() {
        // ORDERING: SeqCst — mirrors the increment in `submit`.
        shared.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

// ---- fan-out batch ---------------------------------------------------

/// Lifetime-erased `&(dyn Fn(usize) + Sync)`.
struct RawTask(*const (dyn Fn(usize) + Sync + 'static));
// SAFETY: the pointee is `Sync` (shared calls from any thread are fine)
// and the dispatch protocol guarantees it outlives every dereference.
unsafe impl Send for RawTask {}
unsafe impl Sync for RawTask {}

type PanicPayload = Box<dyn Any + Send>;

struct Batch {
    task: RawTask,
    n: usize,
    /// Next unclaimed index.
    next: AtomicUsize,
    /// Indices fully finished (task returned, panicked, or was skipped
    /// after the batch was poisoned).
    finished: AtomicUsize,
    /// Lowest index that has panicked so far (`usize::MAX` = none).
    /// Indices **above** it are skipped, approximating the serial
    /// loop's stop-at-first-panic; indices below it still run — the
    /// serial loop would have reached them first, and one of them may
    /// be the true first failure.
    first_panic: AtomicUsize,
    /// Lowest-indexed captured panic (payload for `first_panic`).
    panic: Mutex<Option<(usize, PanicPayload)>>,
    complete: Mutex<bool>,
    completed: Condvar,
}

impl Batch {
    /// Claim and run indices until the batch is exhausted. Called by
    /// the dispatcher and by any worker that popped (or stole) a
    /// handle — which thread claims an index is invisible to the
    /// result, because the index dispenser is this one shared counter.
    fn work(&self) {
        loop {
            // ORDERING: Relaxed — `next` is only an index dispenser;
            // each value is handed out once and nothing is published
            // through it (task results flow through `panic`/`finished`).
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            // Short-circuit after a panic: skip indices above the
            // lowest failure seen so far (the serial loop would never
            // reach them), but still run indices below it — one of
            // them may be the true first failure, which keeps the
            // propagated payload deterministic regardless of timing.
            if i < self.first_panic.load(Ordering::Acquire) {
                // SAFETY: `i < n` is claimed exactly once, and the
                // dispatch has not returned (it waits for
                // `finished == n`).
                let task = unsafe { &*self.task.0 };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                    let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                    match &*slot {
                        Some((first, _)) if *first < i => {}
                        _ => *slot = Some((i, payload)),
                    }
                    self.first_panic.fetch_min(i, Ordering::AcqRel);
                }
            }
            // AcqRel chains every participant's writes into the final
            // increment, which publishes them to the dispatcher through
            // the completion mutex.
            if self.finished.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                *self.complete.lock().expect("ft-exec batch poisoned") = true;
                self.completed.notify_all();
            }
        }
    }

    fn take_panic(&self) -> Option<(usize, PanicPayload)> {
        self.panic.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

impl PoolJob for Batch {
    fn run(&self) {
        self.work();
    }
}

// ---- steal-back join cell --------------------------------------------

/// Lifetime-erased `&mut (dyn FnMut() + Send)`.
struct RawMutTask(*mut (dyn FnMut() + Send + 'static));
// SAFETY: exclusive access is arbitrated by `JoinCell::claimed`; the
// pointee is `Send` and outlives every dereference (dispatch protocol).
unsafe impl Send for RawMutTask {}
unsafe impl Sync for RawMutTask {}

struct JoinCell {
    task: RawMutTask,
    claimed: AtomicBool,
    panic: Mutex<Option<PanicPayload>>,
    complete: Mutex<bool>,
    completed: Condvar,
}

impl JoinCell {
    fn take_panic(&self) -> Option<PanicPayload> {
        self.panic.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

impl PoolJob for JoinCell {
    fn run(&self) {
        // ORDERING: AcqRel pairs with the steal-back swap in `join` —
        // the loser of the race must see it lost, and the winner's
        // later use of the `RawMutTask` pointee must stay after the
        // claim that made it exclusive.
        if self.claimed.swap(true, Ordering::AcqRel) {
            return; // stolen back (or already run) — stale handle
        }
        // SAFETY: the CAS gave us exclusive access to the task.
        let task = unsafe { &mut *self.task.0 };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            *self.panic.lock().unwrap_or_else(|e| e.into_inner()) = Some(payload);
        }
        *self.complete.lock().expect("ft-exec join poisoned") = true;
        self.completed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Tests that toggle the process-global dispatch-delay knob
    /// serialize on this lock so they don't perturb each other.
    static DELAY_KNOB: Mutex<()> = Mutex::new(());

    #[test]
    fn owned_pool_runs_every_index_once() {
        let pool = Pool::new(4);
        assert_eq!(pool.workers(), 3);
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        pool.for_each(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, hit) in hits.iter().enumerate() {
            assert_eq!(hit.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn zero_worker_pool_is_serial() {
        let pool = Pool::new(1);
        assert_eq!(pool.workers(), 0);
        let mut order = Vec::new();
        let cell = Mutex::new(&mut order);
        pool.for_each(5, |i| cell.lock().unwrap().push(i));
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn join_steals_back_or_waits() {
        let pool = Pool::new(2);
        for _ in 0..100 {
            let (a, b) = pool.join(|| 1 + 1, || "b");
            assert_eq!((a, b), (2, "b"));
        }
    }

    #[test]
    fn nested_joins_terminate() {
        fn fib(pool: &Pool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        let pool = Pool::new(4);
        assert_eq!(fib(&pool, 16), 987);
    }

    #[test]
    fn fan_out_propagates_lowest_index_panic() {
        let pool = Pool::new(4);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each(64, |i| {
                if i % 7 == 3 {
                    panic!("boom at {i}");
                }
            });
        }))
        .unwrap_err();
        let message = err.downcast_ref::<String>().expect("string payload");
        assert_eq!(message, "boom at 3");
        // The pool is not poisoned: the next dispatch works.
        let count = AtomicUsize::new(0);
        pool.for_each(32, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn join_panic_order_is_serial() {
        let pool = Pool::new(2);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(
                || -> u32 { panic!("a first") },
                || -> u32 { panic!("b second") },
            )
        }))
        .unwrap_err();
        let message = err.downcast_ref::<&'static str>().expect("str payload");
        assert_eq!(*message, "a first");
        // Reusable afterwards.
        assert_eq!(pool.join(|| 3, || 4), (3, 4));
    }

    /// The raw deque protocol: owner LIFO, thief FIFO, every element
    /// delivered exactly once under concurrent stealing.
    #[test]
    fn deque_delivers_each_job_exactly_once() {
        let deque = Arc::new(Deque::new());
        let hits: Arc<Vec<AtomicU64>> =
            Arc::new((0..DEQUE_CAP).map(|_| AtomicU64::new(0)).collect());
        // Two thieves hammer the top while the owner pushes and pops
        // at the bottom.
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let deque = Arc::clone(&deque);
                let stop = &stop;
                s.spawn(move || loop {
                    match deque.steal() {
                        StealResult::Taken(job) => job.run(),
                        StealResult::Retry => std::thread::yield_now(),
                        // ORDERING: Relaxed — test-local stop flag.
                        StealResult::Empty => {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            // Owner: push every index, interleaving pops.
            for i in 0..DEQUE_CAP {
                struct Counted(Arc<Vec<AtomicU64>>, usize);
                impl PoolJob for Counted {
                    fn run(&self) {
                        self.0[self.1].fetch_add(1, Ordering::Relaxed);
                    }
                }
                let job: Arc<dyn PoolJob> = Arc::new(Counted(Arc::clone(&hits), i));
                let mut pending = Some(job);
                while let Some(j) = pending.take() {
                    if let Err(back) = deque.push(j) {
                        // Ring full: drain one and retry.
                        if let Some(popped) = deque.take() {
                            popped.run();
                        }
                        pending = Some(back);
                    }
                }
                if i % 3 == 0 {
                    if let Some(popped) = deque.take() {
                        popped.run();
                    }
                }
            }
            // Owner drains the rest.
            while let Some(popped) = deque.take() {
                popped.run();
            }
            // ORDERING: Relaxed — test-local stop flag.
            stop.store(true, Ordering::Relaxed);
        });
        for (i, hit) in hits.iter().enumerate() {
            assert_eq!(
                hit.load(Ordering::Relaxed),
                1,
                "job {i} ran {} times",
                hit.load(Ordering::Relaxed)
            );
        }
    }

    /// A join published from a worker whose dispatcher dawdles is
    /// executed by a thief — the steal counter moves and the result is
    /// still correct.
    #[test]
    fn forced_steal_executes_join_branch_on_thief() {
        let _knob = DELAY_KNOB.lock().unwrap_or_else(|e| e.into_inner());
        let pool = Pool::new(3); // 2 workers: one dispatcher, one thief
        let before = pool.steals();
        let test_thread = std::thread::current().id();
        set_dispatch_delay_for_tests(2_000_000); // 2ms: thieves win
        let out = pool.run_on_worker(|| {
            pool.join(
                || std::thread::current().id(),
                || std::thread::current().id(),
            )
        });
        set_dispatch_delay_for_tests(0);
        // `a` ran on the dispatching worker (not this test thread)...
        assert_ne!(
            out.0, test_thread,
            "join branch a must run on a pool worker"
        );
        // ...`b` was stolen by the *other* worker...
        assert_ne!(out.1, out.0, "join branch b should run on a thief");
        // ...and the steal counter shows the deque path was exercised.
        assert!(
            pool.steals() > before,
            "expected the delayed dispatcher's join branch to be stolen"
        );
    }

    /// A panic raised in a *stolen* join branch propagates to the
    /// dispatcher with the exact payload and serial ordering.
    #[test]
    fn thief_executed_panic_propagates_deterministically() {
        let _knob = DELAY_KNOB.lock().unwrap_or_else(|e| e.into_inner());
        let pool = Pool::new(3);
        let before = pool.steals();
        set_dispatch_delay_for_tests(2_000_000);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_on_worker(|| {
                pool.join(
                    || 40 + 2, // `a` succeeds on the dispatcher
                    || -> u32 { panic!("stolen branch boom") },
                )
            })
        }))
        .unwrap_err();
        set_dispatch_delay_for_tests(0);
        let message = err.downcast_ref::<&'static str>().expect("str payload");
        assert_eq!(*message, "stolen branch boom");
        assert!(
            pool.steals() > before,
            "the panicking branch was meant to be executed by a thief"
        );
        // Pool unharmed.
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
    }

    /// Deep nesting overflows a fixed-capacity deque into the injector
    /// without losing or duplicating work.
    #[test]
    fn deque_overflow_falls_back_to_injector() {
        let pool = Pool::new(2);
        fn nest(pool: &Pool, depth: usize) -> u64 {
            if depth == 0 {
                return 1;
            }
            let (a, b) = pool.join(|| nest(pool, depth - 1), || 1u64);
            a + b
        }
        let depth = DEQUE_CAP + 16;
        let total = pool.run_on_worker(|| nest(&pool, depth));
        assert_eq!(total as usize, depth + 1);
        assert!(
            pool.deque_overflows() > 0,
            "nesting {depth} joins must overflow a {DEQUE_CAP}-slot deque"
        );
    }
}
