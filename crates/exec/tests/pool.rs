//! Pool lifecycle guarantees, measured from the outside: workers are
//! **reused, not respawned** (the process thread count is stable across
//! repeated dispatches, per `/proc/self/status`), panicking jobs
//! neither kill workers nor poison later dispatches, and owned pools
//! return their threads on drop.
//!
//! Tests in this binary serialize on a lock: thread counting is a
//! process-global measurement, so concurrent pool-creating tests would
//! pollute each other's readings.

use ft_exec::{process_threads as thread_count, Pool};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

static PROCESS_LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    PROCESS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn workers_are_reused_not_respawned() {
    let _guard = serialized();
    let pool = Pool::new(4);
    // Warm-up dispatch (the pool spawns eagerly, but let every worker
    // run at least one job before measuring).
    let mut data = vec![0u64; 4096];
    pool.par_chunks_mut(&mut data, 16, 4, |start, chunk| {
        for (j, x) in chunk.iter_mut().enumerate() {
            *x = (start + j) as u64;
        }
    });
    let Some(before) = thread_count() else {
        return;
    };
    for round in 0..200 {
        pool.par_chunks_mut(&mut data, 16, 4, |start, chunk| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = ((start + j) as u64).wrapping_mul(round + 1);
            }
        });
        let (a, b) = pool.join(|| data[0], || data[1]);
        assert_eq!((a, b), (data[0], data[1]));
    }
    let after = thread_count().expect("thread count readable once means always");
    assert!(
        after <= before,
        "200 dispatches grew the thread count: {before} -> {after} \
         (workers must be parked and reused, not respawned per region)"
    );
}

#[test]
fn dropping_an_owned_pool_releases_its_threads() {
    let _guard = serialized();
    let Some(baseline) = thread_count() else {
        return;
    };
    for _ in 0..8 {
        let pool = Pool::new(4);
        let sum = AtomicUsize::new(0);
        pool.for_each(100, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
        drop(pool);
    }
    let after = thread_count().expect("thread count readable once means always");
    assert!(
        after <= baseline,
        "owned pools leaked threads: {baseline} -> {after}"
    );
}

#[test]
fn panicking_jobs_do_not_poison_the_pool() {
    let _guard = serialized();
    let pool = Pool::new(4);
    // Quiet the expected panic backtraces for this test only.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for round in 0..10 {
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each(32, |i| {
                if i == 5 {
                    panic!("round {round} fails at 5");
                }
            });
        }))
        .unwrap_err();
        let message = err.downcast_ref::<String>().expect("string payload");
        assert_eq!(message, &format!("round {round} fails at 5"));
        // The very next dispatch on the same pool must run all jobs.
        let count = AtomicUsize::new(0);
        pool.for_each(64, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
        // Joins keep working too, including a panicking side.
        let join_err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || -> u32 { panic!("b side") })
        }))
        .unwrap_err();
        assert_eq!(
            *join_err
                .downcast_ref::<&'static str>()
                .expect("str payload"),
            "b side"
        );
        assert_eq!(pool.join(|| "a", || "b"), ("a", "b"));
    }
    std::panic::set_hook(prev_hook);
}

#[test]
fn nested_dispatch_from_inside_workers_terminates() {
    let _guard = serialized();
    let pool = Pool::new(4);
    // A fan-out whose jobs each run a nested fan-out and a nested join
    // on the same pool — the shape of registry batch solves (outer
    // par_map over campaigns, inner kernel sweeps per layer).
    let total = AtomicUsize::new(0);
    pool.for_each(8, |outer| {
        let inner_sum = AtomicUsize::new(0);
        pool.for_each(16, |i| {
            inner_sum.fetch_add(i + outer, Ordering::Relaxed);
        });
        let (a, b) = pool.join(|| outer * 2, || outer * 3);
        total.fetch_add(inner_sum.load(Ordering::Relaxed) + a + b, Ordering::Relaxed);
    });
    // Σ_outer [ Σ_i (i + outer) + 5·outer ] = 8·120 + 16·28 + 5·28.
    assert_eq!(total.load(Ordering::Relaxed), 8 * 120 + 16 * 28 + 5 * 28);
}

#[test]
fn pooled_results_match_serial_bitwise() {
    let _guard = serialized();
    // f64 math distributed over the pool must be bit-identical to the
    // inline loop — the executor-level face of the kernel's contract.
    let serial_pool = Pool::new(1);
    let pooled = Pool::new(4);
    let compute = |start: usize, chunk: &mut [f64]| {
        for (j, x) in chunk.iter_mut().enumerate() {
            let i = (start + j) as f64;
            *x = (i * 1.000_000_3).sin() + i.sqrt();
        }
    };
    let mut a = vec![0f64; 10_000];
    let mut b = vec![0f64; 10_000];
    serial_pool.par_chunks_mut(&mut a, 8, 1, compute);
    pooled.par_chunks_mut(&mut b, 8, 4, compute);
    for i in 0..a.len() {
        assert_eq!(a[i].to_bits(), b[i].to_bits(), "bit mismatch at {i}");
    }
}
