//! The two ways a scenario can drive the serving path: straight into
//! an in-process [`CampaignRegistry`], or over real sockets against a
//! running `ft-server`. The closed-loop driver is generic over this
//! trait, so both modes run byte-identical workloads.

use ft_core::registry::{
    CampaignObservation, CampaignRegistry, CampaignSpec, CampaignStatus, ObservedState,
};
use ft_core::PricingError;
use serde::{map_get, Serialize, Value};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A price quote as the driver consumes it.
#[derive(Debug, Clone, Copy)]
pub struct PriceAnswer {
    pub price: f64,
    pub generation: u64,
}

/// An accepted observation as the driver consumes it.
#[derive(Debug, Clone, Copy)]
pub struct ObserveAnswer {
    pub recalibrated: bool,
    pub remaining: u32,
    pub exhausted: bool,
}

/// Why an operation didn't answer.
#[derive(Debug, Clone)]
pub enum OpError {
    /// A budget campaign reached a state its table calls infeasible —
    /// the campaign is done from the driver's perspective, not broken.
    BudgetExhausted,
    /// A real failure: transport error or an unexpected status.
    Failed(String),
}

pub type OpResult<T> = Result<T, OpError>;

/// One serving surface the generator can drive.
pub trait Backend: Sync {
    fn label(&self) -> &'static str;
    fn create(&self, spec: &CampaignSpec) -> OpResult<u64>;
    fn solve(&self, id: u64) -> OpResult<()>;
    fn price(&self, id: u64, state: ObservedState) -> OpResult<PriceAnswer>;
    fn observe(&self, id: u64, obs: CampaignObservation) -> OpResult<ObserveAnswer>;

    /// Answer a batch of quotes in one backend round trip, results in
    /// input order. The default loops over [`Backend::price`]; real
    /// backends override with their batched path (the registry's
    /// `quote_many`, the server's `POST /campaigns/quotes`).
    fn price_many(&self, batch: &[(u64, ObservedState)]) -> Vec<OpResult<PriceAnswer>> {
        batch
            .iter()
            .map(|&(id, state)| self.price(id, state))
            .collect()
    }

    /// Report a batch of observations in one round trip, results in
    /// input order. Default loops over [`Backend::observe`].
    fn observe_many(&self, batch: &[(u64, CampaignObservation)]) -> Vec<OpResult<ObserveAnswer>> {
        batch
            .iter()
            .map(|&(id, obs)| self.observe(id, obs))
            .collect()
    }
}

// ---- in-process ------------------------------------------------------

/// Drives the registry API directly — no sockets, no serialization.
pub struct InProcessBackend {
    pub registry: Arc<CampaignRegistry>,
}

fn pricing_failure(op: &str, e: &PricingError) -> OpError {
    OpError::Failed(format!("{op}: {e}"))
}

impl Backend for InProcessBackend {
    fn label(&self) -> &'static str {
        "in_process"
    }

    fn create(&self, spec: &CampaignSpec) -> OpResult<u64> {
        Ok(self.registry.register(spec.clone()))
    }

    fn solve(&self, id: u64) -> OpResult<()> {
        self.registry
            .solve(id)
            .map(|_| ())
            .map_err(|e| pricing_failure("solve", &e))
    }

    fn price(&self, id: u64, state: ObservedState) -> OpResult<PriceAnswer> {
        match self.registry.quote(id, state) {
            Ok(quote) => Ok(PriceAnswer {
                price: quote.price,
                generation: quote.generation,
            }),
            Err(PricingError::Infeasible(_)) => Err(OpError::BudgetExhausted),
            Err(e) => Err(pricing_failure("price", &e)),
        }
    }

    fn observe(&self, id: u64, obs: CampaignObservation) -> OpResult<ObserveAnswer> {
        self.registry
            .observe(id, obs)
            .map(|outcome| ObserveAnswer {
                recalibrated: outcome.recalibrated,
                remaining: outcome.remaining,
                exhausted: outcome.status == CampaignStatus::Exhausted,
            })
            .map_err(|e| pricing_failure("observe", &e))
    }

    fn price_many(&self, batch: &[(u64, ObservedState)]) -> Vec<OpResult<PriceAnswer>> {
        self.registry
            .quote_many(batch)
            .into_iter()
            .map(|result| match result {
                Ok(quote) => Ok(PriceAnswer {
                    price: quote.price,
                    generation: quote.generation,
                }),
                Err(PricingError::Infeasible(_)) => Err(OpError::BudgetExhausted),
                Err(e) => Err(pricing_failure("price", &e)),
            })
            .collect()
    }

    fn observe_many(&self, batch: &[(u64, CampaignObservation)]) -> Vec<OpResult<ObserveAnswer>> {
        self.registry
            .observe_many(batch.to_vec())
            .into_iter()
            .map(|result| {
                result
                    .map(|outcome| ObserveAnswer {
                        recalibrated: outcome.recalibrated,
                        remaining: outcome.remaining,
                        exhausted: outcome.status == CampaignStatus::Exhausted,
                    })
                    .map_err(|e| pricing_failure("observe", &e))
            })
            .collect()
    }
}

// ---- socket ----------------------------------------------------------

/// Drives a running `ft-server` over real TCP connections using the
/// same wire format any external client would — on **keep-alive**
/// connections: a checkout pool of persistent [`ft_server::Client`]s,
/// one handed to each request and returned afterwards, so the socket
/// numbers measure the serving tier instead of a TCP handshake per op.
pub struct SocketBackend {
    addr: SocketAddr,
    clients: Mutex<Vec<ft_server::Client>>,
    /// Total calls issued, for the 1-in-[`TRACE_EVERY`] trace tagging.
    calls: AtomicU64,
    /// The most recent ids this client tagged with `x-ft-trace` (a
    /// bounded window — the server's completed-trace store is bounded
    /// too, so only the newest ids are guaranteed resident). The
    /// harness resolves each one via `GET /trace/{id}` after the run.
    traced: Mutex<Vec<u64>>,
}

/// Tag every Nth socket call with a fresh trace id.
const TRACE_EVERY: u64 = 16;

/// How many tagged ids the backend retains for the harness crosscheck.
const TRACED_WINDOW: usize = 64;

impl SocketBackend {
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            clients: Mutex::new(Vec::new()),
            calls: AtomicU64::new(0),
            traced: Mutex::new(Vec::new()),
        }
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The retained window of ids this client traced (oldest first).
    pub fn traced_ids(&self) -> Vec<u64> {
        self.traced.lock().expect("traced ids poisoned").clone()
    }

    fn call(&self, method: &str, path: &str, body: Option<&str>) -> OpResult<(u16, Value)> {
        // Check a persistent connection out (or open a fresh one); the
        // client reconnects by itself if the server reaped it idle.
        let mut client = self
            .clients
            .lock()
            .expect("client pool poisoned")
            .pop()
            .unwrap_or_else(|| ft_server::Client::new(self.addr));
        // ORDERING: Relaxed — the counter only spreads trace tags over
        // the call stream; no memory is published through it.
        let trace = self
            .calls
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(TRACE_EVERY)
            .then(ft_trace::next_trace_id);
        let result = client.request_traced(method, path, body, trace);
        let (status, body) = match result {
            Ok((status, answer, _echoed)) => {
                self.clients
                    .lock()
                    .expect("client pool poisoned")
                    .push(client);
                if let Some(id) = trace {
                    let mut traced = self.traced.lock().expect("traced ids poisoned");
                    traced.push(id);
                    if traced.len() > TRACED_WINDOW {
                        let drop_n = traced.len() - TRACED_WINDOW;
                        traced.drain(..drop_n);
                    }
                }
                (status, answer)
            }
            // A failed client is dropped, not returned — the next call
            // starts from a clean connect.
            Err(e) => return Err(OpError::Failed(format!("{method} {path}: {e}"))),
        };
        let value = serde_json::from_str::<Value>(&body)
            .map_err(|e| OpError::Failed(format!("{method} {path}: bad JSON body: {e}")))?;
        Ok((status, value))
    }

    fn expect_2xx(&self, op: &str, status: u16, body: &Value) -> OpResult<()> {
        if (200..300).contains(&status) {
            Ok(())
        } else {
            Err(OpError::Failed(format!("{op}: HTTP {status}: {body:?}")))
        }
    }
}

fn field_num(value: &Value, key: &str) -> OpResult<f64> {
    map_get(value.as_map().unwrap_or(&[]), key)
        .ok()
        .and_then(Value::as_num)
        .ok_or_else(|| OpError::Failed(format!("missing numeric `{key}` in {value:?}")))
}

fn field_bool(value: &Value, key: &str) -> OpResult<bool> {
    match map_get(value.as_map().unwrap_or(&[]), key) {
        Ok(Value::Bool(b)) => Ok(*b),
        other => Err(OpError::Failed(format!("missing bool `{key}`: {other:?}"))),
    }
}

fn field_str<'v>(value: &'v Value, key: &str) -> OpResult<&'v str> {
    map_get(value.as_map().unwrap_or(&[]), key)
        .ok()
        .and_then(Value::as_str)
        .ok_or_else(|| OpError::Failed(format!("missing string `{key}` in {value:?}")))
}

/// The flattened wire form the router accepts (`{"kind": ...,
/// "problem": ..., "eps": ...}`).
pub fn spec_to_wire_json(spec: &CampaignSpec) -> String {
    match spec {
        CampaignSpec::Deadline { problem, eps } => {
            let problem = serde_json::to_string(&problem.to_value()).expect("problem json");
            match eps {
                Some(eps) => {
                    format!("{{\"kind\":\"deadline\",\"problem\":{problem},\"eps\":{eps}}}")
                }
                None => format!("{{\"kind\":\"deadline\",\"problem\":{problem}}}"),
            }
        }
        CampaignSpec::Budget { problem } => {
            let problem = serde_json::to_string(&problem.to_value()).expect("problem json");
            format!("{{\"kind\":\"budget\",\"problem\":{problem}}}")
        }
    }
}

impl Backend for SocketBackend {
    fn label(&self) -> &'static str {
        "socket"
    }

    fn create(&self, spec: &CampaignSpec) -> OpResult<u64> {
        let wire = spec_to_wire_json(spec);
        let (status, body) = self.call("POST", "/campaigns", Some(&wire))?;
        self.expect_2xx("create", status, &body)?;
        Ok(field_num(&body, "id")? as u64)
    }

    fn solve(&self, id: u64) -> OpResult<()> {
        let (status, body) = self.call("POST", &format!("/campaigns/{id}/solve"), None)?;
        self.expect_2xx("solve", status, &body)
    }

    fn price(&self, id: u64, state: ObservedState) -> OpResult<PriceAnswer> {
        let path = match state {
            ObservedState::Deadline {
                remaining,
                interval,
            } => format!("/campaigns/{id}/price?remaining={remaining}&interval={interval}"),
            ObservedState::Budget {
                remaining,
                budget_cents,
            } => format!("/campaigns/{id}/price?remaining={remaining}&budget_cents={budget_cents}"),
        };
        let (status, body) = self.call("GET", &path, None)?;
        if status == 422 && matches!(state, ObservedState::Budget { .. }) {
            return Err(OpError::BudgetExhausted);
        }
        self.expect_2xx("price", status, &body)?;
        Ok(PriceAnswer {
            price: field_num(&body, "price")?,
            generation: field_num(&body, "generation")? as u64,
        })
    }

    fn observe(&self, id: u64, obs: CampaignObservation) -> OpResult<ObserveAnswer> {
        let body = format!("{{{}}}", observation_fields(&obs));
        let (status, value) = self.call(
            "POST",
            &format!("/campaigns/{id}/observations"),
            Some(&body),
        )?;
        self.expect_2xx("observe", status, &value)?;
        Ok(ObserveAnswer {
            recalibrated: field_bool(&value, "recalibrated")?,
            remaining: field_num(&value, "remaining")? as u32,
            exhausted: field_str(&value, "status")? == "exhausted",
        })
    }

    fn price_many(&self, batch: &[(u64, ObservedState)]) -> Vec<OpResult<PriceAnswer>> {
        let items: Vec<String> = batch
            .iter()
            .map(|&(id, state)| match state {
                ObservedState::Deadline {
                    remaining,
                    interval,
                } => format!("{{\"id\":{id},\"remaining\":{remaining},\"interval\":{interval}}}"),
                ObservedState::Budget {
                    remaining,
                    budget_cents,
                } => format!(
                    "{{\"id\":{id},\"remaining\":{remaining},\"budget_cents\":{budget_cents}}}"
                ),
            })
            .collect();
        let body = format!("{{\"quotes\":[{}]}}", items.join(","));
        let reply = self
            .call("POST", "/campaigns/quotes", Some(&body))
            .and_then(|(status, value)| {
                self.expect_2xx("price_bulk", status, &value)?;
                Ok(value)
            });
        bulk_results(reply, batch.len(), |item| {
            Ok(PriceAnswer {
                price: field_num(item, "price")?,
                generation: field_num(item, "generation")? as u64,
            })
        })
    }

    fn observe_many(&self, batch: &[(u64, CampaignObservation)]) -> Vec<OpResult<ObserveAnswer>> {
        let items: Vec<String> = batch
            .iter()
            .map(|(id, obs)| format!("{{\"id\":{id},{}}}", observation_fields(obs)))
            .collect();
        let body = format!("{{\"observations\":[{}]}}", items.join(","));
        let reply = self
            .call("POST", "/campaigns/observations", Some(&body))
            .and_then(|(status, value)| {
                self.expect_2xx("observe_bulk", status, &value)?;
                Ok(value)
            });
        bulk_results(reply, batch.len(), |item| {
            Ok(ObserveAnswer {
                recalibrated: field_bool(item, "recalibrated")?,
                remaining: field_num(item, "remaining")? as u32,
                exhausted: field_str(item, "status")? == "exhausted",
            })
        })
    }
}

/// The inner fields of one observation's wire form (shared by the
/// single-campaign body `{fields}` and the bulk item `{"id":N,fields}`).
fn observation_fields(obs: &CampaignObservation) -> String {
    match *obs {
        CampaignObservation::Deadline {
            interval,
            completions,
            posted,
        } => match posted {
            Some(posted) => format!(
                "\"interval\":{interval},\"completions\":{completions},\"posted_cents\":{posted}"
            ),
            None => format!("\"interval\":{interval},\"completions\":{completions}"),
        },
        CampaignObservation::Budget {
            completions,
            spent_cents,
            posted,
            offers,
        } => {
            let mut fields = format!("\"completions\":{completions},\"spent_cents\":{spent_cents}");
            if let Some(posted) = posted {
                fields.push_str(&format!(",\"posted_cents\":{posted}"));
            }
            if let Some(offers) = offers {
                fields.push_str(&format!(",\"offers\":{offers}"));
            }
            fields
        }
    }
}

/// Unpack a bulk endpoint reply into per-item results: a transport or
/// request-level failure fails every item; inline error objects map to
/// [`OpError`] (`422` → exhausted, anything else a failure); success
/// objects go through `parse`.
fn bulk_results<T>(
    reply: OpResult<Value>,
    expected: usize,
    parse: impl Fn(&Value) -> OpResult<T>,
) -> Vec<OpResult<T>> {
    let value = match reply {
        Ok(value) => value,
        Err(e) => return (0..expected).map(|_| Err(e.clone())).collect(),
    };
    let results = match map_get(value.as_map().unwrap_or(&[]), "results")
        .ok()
        .and_then(Value::as_seq)
    {
        Some(results) if results.len() == expected => results,
        _ => {
            let e = OpError::Failed(format!(
                "bulk reply shape: expected {expected} results in {value:?}"
            ));
            return (0..expected).map(|_| Err(e.clone())).collect();
        }
    };
    results
        .iter()
        .map(|item| {
            if let Ok(error) = map_get(item.as_map().unwrap_or(&[]), "error") {
                let status = field_num(item, "status").unwrap_or(0.0) as u16;
                if status == 422 {
                    return Err(OpError::BudgetExhausted);
                }
                return Err(OpError::Failed(format!(
                    "bulk item error {error:?}: {item:?}"
                )));
            }
            parse(item)
        })
        .collect()
}
