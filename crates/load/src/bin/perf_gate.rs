//! `perf-gate` — the CI perf-regression gate over `BENCH_load_*.json`.
//!
//! ```text
//! cargo run --release -p ft-load --bin perf-gate -- \
//!     --floors scripts/perf_floors.json BENCH_load_inproc.json BENCH_load_socket.json
//! ```
//!
//! Every report is checked against the floors (see [`ft_load::gate`]);
//! all comparisons are printed — fresh value vs bound — and the
//! process exits non-zero if any regressed. Run it after the `ft-load`
//! smoke steps so the job fails on a perf regression, not just a
//! functional one.

use ft_load::gate::{check_reports, Floors};

const USAGE: &str = "\
perf-gate — fail CI when fresh ft-load numbers regress past the floors

USAGE:
    perf-gate --floors FILE REPORT.json [REPORT.json ...]
";

fn run() -> Result<bool, String> {
    let mut floors_path: Option<String> = None;
    let mut reports: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--floors" => floors_path = Some(args.next().ok_or("--floors needs a file path")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n\n{USAGE}"))
            }
            report => reports.push(report.to_string()),
        }
    }
    let floors_path = floors_path.ok_or(format!("--floors is required\n\n{USAGE}"))?;
    if reports.is_empty() {
        return Err(format!("no report files given\n\n{USAGE}"));
    }

    let floors_json =
        std::fs::read_to_string(&floors_path).map_err(|e| format!("read {floors_path}: {e}"))?;
    let floors = Floors::from_json(&floors_json)?;
    println!(
        "perf-gate: {} backend floor(s) from {floors_path}, tolerance {:.0}%",
        floors.backends.len(),
        floors.tolerance * 100.0
    );

    // The floors are checked against the union of runs across every
    // report: CI writes one file per --mode, so the in-process and
    // socket legs arrive separately.
    let mut report_jsons = Vec::new();
    for path in &reports {
        let report_json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        println!("  reading {path}");
        report_jsons.push(report_json);
    }
    let mut all_passed = true;
    for comparison in check_reports(
        &report_jsons.iter().map(String::as_str).collect::<Vec<_>>(),
        &floors,
    )? {
        let verdict = if comparison.passed { "ok  " } else { "FAIL" };
        println!("  {verdict} {}", comparison.label);
        all_passed &= comparison.passed;
    }
    Ok(all_passed)
}

fn main() {
    match run() {
        Ok(true) => println!("perf-gate: all floors held."),
        Ok(false) => {
            eprintln!("perf-gate: performance regressed past the checked-in floors.");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("perf-gate: {e}");
            std::process::exit(2);
        }
    }
}
