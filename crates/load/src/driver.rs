//! The closed-loop driver: registers and solves the fleet through a
//! [`Backend`], then runs the feedback loop the paper's serving story
//! needs — **quote a price, simulate the worker population's response
//! to that price, report the outcome back** — so recalibration fires
//! under load exactly as it would in production. Worker arrivals come
//! from `ft-market`'s thinned-NHPP sampler and acceptance from each
//! group's logit model; the loop is *closed* because the next request
//! for a campaign only goes out after the previous answer is in.
//!
//! Client-side latencies and counts flow through `ft-metrics`
//! instruments (the generator dogfoods the observability plane it
//! exists to exercise), and the run's self-checks — no dropped
//! samples, no torn merges, every op accounted — come from comparing
//! independent counters against histogram totals.

use crate::backend::{Backend, ObserveAnswer, OpError, OpResult};
use crate::scenario::{CampaignKind, FleetGroup, Scenario};
use ft_core::registry::{CampaignObservation, ObservedState};
use ft_market::nhpp::sample_thinned_count;
use ft_metrics::{Counter, Histogram, HistogramSnapshot, MetricsRegistry};
use ft_stats::seeded_rng;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How many error messages the report keeps verbatim.
const ERROR_SAMPLE_CAP: usize = 10;

/// The operations the driver distinguishes. The `*Bulk` ops count
/// **round trips** (one batched request each); the items they carried
/// ride in [`RunInstruments::bulk_quote_items`] /
/// [`RunInstruments::bulk_observe_items`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Create,
    Solve,
    Price,
    Observe,
    PriceBulk,
    ObserveBulk,
}

impl Op {
    pub const ALL: [Op; 6] = [
        Op::Create,
        Op::Solve,
        Op::Price,
        Op::Observe,
        Op::PriceBulk,
        Op::ObserveBulk,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Op::Create => "create",
            Op::Solve => "solve",
            Op::Price => "price",
            Op::Observe => "observe",
            Op::PriceBulk => "price_bulk",
            Op::ObserveBulk => "observe_bulk",
        }
    }
}

/// Client-side instruments for one run.
pub struct RunInstruments {
    plane: Arc<MetricsRegistry>,
    ops: Vec<Arc<Counter>>,
    latency: Vec<Arc<Histogram>>,
    pub errors: Arc<Counter>,
    pub recalibrations: Arc<Counter>,
    /// The subset of recalibrations that fired on budget campaigns
    /// (the acceptance-drift extension's gate).
    pub budget_recalibrations: Arc<Counter>,
    pub completions: Arc<Counter>,
    pub budget_exhaustions: Arc<Counter>,
    /// Quote items carried inside `price_bulk` round trips — the
    /// socket-mode `/metrics` crosscheck reconciles
    /// `ft_core_quotes_total == price + bulk_quote_items`.
    pub bulk_quote_items: Arc<Counter>,
    /// Observation items carried inside `observe_bulk` round trips.
    pub bulk_observe_items: Arc<Counter>,
    error_samples: Mutex<Vec<String>>,
}

impl Default for RunInstruments {
    fn default() -> Self {
        Self::new()
    }
}

impl RunInstruments {
    pub fn new() -> Self {
        let plane = Arc::new(MetricsRegistry::new());
        let ops = Op::ALL
            .iter()
            .map(|op| plane.counter(&format!("ft_load_requests_total{{op=\"{}\"}}", op.label())))
            .collect();
        let latency = Op::ALL
            .iter()
            .map(|op| plane.histogram(&format!("ft_load_request_ns{{op=\"{}\"}}", op.label())))
            .collect();
        Self {
            ops,
            latency,
            errors: plane.counter("ft_load_errors_total"),
            recalibrations: plane.counter("ft_load_recalibrations_total"),
            budget_recalibrations: plane.counter("ft_load_budget_recalibrations_total"),
            completions: plane.counter("ft_load_completions_total"),
            budget_exhaustions: plane.counter("ft_load_budget_exhaustions_total"),
            bulk_quote_items: plane.counter("ft_load_bulk_quote_items_total"),
            bulk_observe_items: plane.counter("ft_load_bulk_observe_items_total"),
            error_samples: Mutex::new(Vec::new()),
            plane,
        }
    }

    fn index(op: Op) -> usize {
        Op::ALL.iter().position(|o| *o == op).expect("op in ALL")
    }

    /// Count one real failure and keep a sample for the report.
    fn note_error(&self, message: &str) {
        self.errors.inc();
        let mut samples = self.error_samples.lock().expect("error samples poisoned");
        if samples.len() < ERROR_SAMPLE_CAP {
            samples.push(message.to_string());
        }
    }

    /// Run `f` as one timed `op`: latency into the histogram, the op
    /// counted, real failures sampled for the report.
    fn timed<T>(&self, op: Op, f: impl FnOnce() -> OpResult<T>) -> OpResult<T> {
        let started = Instant::now();
        let result = f();
        let i = Self::index(op);
        self.latency[i].record_duration(started.elapsed());
        self.ops[i].inc();
        if let Err(OpError::Failed(message)) = &result {
            self.note_error(message);
        }
        result
    }

    /// Run `f` as one timed bulk `op` (one latency sample, one op count
    /// for the whole round trip); per-item failures are counted and
    /// sampled here so the error gate sees them like per-op failures.
    fn timed_bulk<T>(&self, op: Op, f: impl FnOnce() -> Vec<OpResult<T>>) -> Vec<OpResult<T>> {
        let started = Instant::now();
        let results = f();
        let i = Self::index(op);
        self.latency[i].record_duration(started.elapsed());
        self.ops[i].inc();
        for result in &results {
            if let Err(OpError::Failed(message)) = result {
                self.note_error(message);
            }
        }
        results
    }

    pub fn op_count(&self, op: Op) -> u64 {
        self.ops[Self::index(op)].get()
    }

    pub fn latency_snapshot(&self, op: Op) -> HistogramSnapshot {
        self.latency[Self::index(op)].snapshot()
    }

    pub fn plane(&self) -> &Arc<MetricsRegistry> {
        &self.plane
    }
}

/// One campaign's driver-side state.
struct Flight {
    id: u64,
    group: usize,
    remaining: u32,
    /// Budget cents still unspent (budget campaigns).
    budget_left: usize,
    /// Next full-horizon interval to report (deadline campaigns).
    next_interval: usize,
    done: bool,
}

/// Everything the report needs about one completed run.
pub struct RunOutcome {
    pub backend: &'static str,
    pub duration_seconds: f64,
    pub campaigns: usize,
    pub requests: u64,
    pub errors: u64,
    pub error_samples: Vec<String>,
    pub recalibrations: u64,
    /// Recalibrations that fired on budget campaigns specifically.
    pub budget_recalibrations: u64,
    pub completions: u64,
    pub budget_exhaustions: u64,
    /// Quote items carried inside `price_bulk` round trips.
    pub bulk_quote_items: u64,
    /// Observation items carried inside `observe_bulk` round trips.
    pub bulk_observe_items: u64,
    /// Histogram samples clamped at the range cap (must be 0).
    pub dropped_samples: u64,
    /// Ops whose counter disagrees with the merged histogram count
    /// (must be 0 — a torn merge or lost increment would show here).
    pub torn_mismatches: u64,
    pub op_counts: Vec<(&'static str, u64)>,
    pub latency: Vec<(&'static str, HistogramSnapshot)>,
    /// The registry's batched-solving stats (waves, shared pmf-cache
    /// hit rate), read off `CampaignRegistry::scheduler()` after the
    /// drive. Only the in-process harness can see the registry; socket
    /// runs leave this `None`.
    pub pmf_cache: Option<ft_core::SchedulerStats>,
}

impl RunOutcome {
    pub fn throughput_rps(&self) -> f64 {
        if self.duration_seconds > 0.0 {
            self.requests as f64 / self.duration_seconds
        } else {
            0.0
        }
    }
}

/// Register + solve + drive the whole scenario against `backend`.
pub fn run(scenario: &Scenario, backend: &dyn Backend, instruments: &RunInstruments) -> RunOutcome {
    let started = Instant::now();

    // ---- setup: register and solve the fleet -------------------------
    let mut flights = Vec::with_capacity(scenario.campaign_count());
    for (group_index, group) in scenario.fleet.iter().enumerate() {
        for _ in 0..group.count {
            let spec = group.spec();
            let created = instruments.timed(Op::Create, || backend.create(&spec));
            let Ok(id) = created else { continue };
            if instruments.timed(Op::Solve, || backend.solve(id)).is_err() {
                continue;
            }
            flights.push(Flight {
                id,
                group: group_index,
                remaining: group.n_tasks,
                budget_left: group.budget_cents,
                next_interval: 0,
                done: false,
            });
        }
    }

    // ---- drive: closed loop, fleet partitioned across workers -------
    let workers = scenario.concurrency.min(flights.len().max(1));
    let mut partitions: Vec<Vec<Flight>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, flight) in flights.into_iter().enumerate() {
        partitions[i % workers].push(flight);
    }
    std::thread::scope(|s| {
        for (worker, mut partition) in partitions.into_iter().enumerate() {
            let seed = scenario.seed + worker as u64;
            s.spawn(move || {
                let mut rng = seeded_rng(seed);
                for _round in 0..scenario.intervals {
                    if scenario.bulk > 1 {
                        // Batched closed loop: each chunk's quotes go
                        // out as ONE `price_many` round trip, then its
                        // observations as one `observe_many`.
                        for chunk in partition.chunks_mut(scenario.bulk) {
                            drive_chunk(backend, instruments, scenario, chunk, &mut rng);
                        }
                    } else {
                        for flight in partition.iter_mut() {
                            if !flight.done {
                                drive_round(backend, instruments, scenario, flight, &mut rng);
                            }
                        }
                    }
                }
            });
        }
    });

    // ---- self-checks -------------------------------------------------
    let mut dropped = 0;
    let mut torn = 0;
    let mut op_counts = Vec::new();
    let mut latency = Vec::new();
    let mut requests = 0;
    for op in Op::ALL {
        let counted = instruments.op_count(op);
        let snapshot = instruments.latency_snapshot(op);
        dropped += snapshot.clamped;
        torn += counted.abs_diff(snapshot.count);
        requests += counted;
        op_counts.push((op.label(), counted));
        latency.push((op.label(), snapshot));
    }
    RunOutcome {
        backend: backend.label(),
        duration_seconds: started.elapsed().as_secs_f64(),
        campaigns: scenario.campaign_count(),
        requests,
        errors: instruments.errors.get(),
        error_samples: instruments
            .error_samples
            .lock()
            .expect("error samples poisoned")
            .clone(),
        recalibrations: instruments.recalibrations.get(),
        budget_recalibrations: instruments.budget_recalibrations.get(),
        completions: instruments.completions.get(),
        budget_exhaustions: instruments.budget_exhaustions.get(),
        bulk_quote_items: instruments.bulk_quote_items.get(),
        bulk_observe_items: instruments.bulk_observe_items.get(),
        dropped_samples: dropped,
        torn_mismatches: torn,
        op_counts,
        latency,
        pmf_cache: None,
    }
}

/// The observed state this flight's next quote should price — `None`
/// when a deadline campaign has run out of horizon (the flight is
/// done).
fn plan_state(group: &FleetGroup, flight: &Flight) -> Option<ObservedState> {
    match group.kind {
        CampaignKind::Deadline => {
            (flight.next_interval < group.n_intervals).then_some(ObservedState::Deadline {
                remaining: flight.remaining,
                interval: flight.next_interval,
            })
        }
        CampaignKind::Budget => Some(ObservedState::Budget {
            remaining: flight.remaining,
            budget_cents: flight.budget_left,
        }),
    }
}

/// Simulate the worker population's response to a posted price:
/// arrivals drifted off the trained model, thinned by the (possibly
/// drifted) acceptance. Returns `(completions, spent_cents, report)`
/// — `spent_cents` is 0 for deadline campaigns.
fn market_response(
    scenario: &Scenario,
    group: &FleetGroup,
    flight: &Flight,
    price: f64,
    rng: &mut rand::rngs::StdRng,
) -> (u64, usize, CampaignObservation) {
    let accept = (group.acceptance().p_f64(price) * scenario.acceptance_drift).clamp(0.0, 1.0);
    match group.kind {
        CampaignKind::Deadline => {
            let lambda_true = group.interval_arrivals() * scenario.drift;
            let completions =
                sample_thinned_count(lambda_true, accept, rng).min(u64::from(flight.remaining));
            let obs = CampaignObservation::Deadline {
                interval: flight.next_interval,
                completions,
                posted: Some(price),
            };
            (completions, 0, obs)
        }
        CampaignKind::Budget => {
            let tick_hours = group.horizon_hours / group.n_intervals as f64;
            let lambda_true = group.arrivals_per_hour * tick_hours * scenario.drift;
            let raw = sample_thinned_count(lambda_true, accept, rng);
            let completions = raw.min(u64::from(flight.remaining));
            // Thinned-Poisson decomposition: accepting and rejecting
            // arrivals are independent Poissons, so total exposure is
            // their sum. When the batch ran out mid-tick the exposure
            // behind the truncated count is unknowable — report the
            // progress without it (censored, like the deadline path).
            let rejected = sample_thinned_count(lambda_true, 1.0 - accept, rng);
            let offers = (raw == completions).then_some(raw + rejected);
            let spent = ((completions as f64 * price).round() as usize).min(flight.budget_left);
            let obs = CampaignObservation::Budget {
                completions,
                spent_cents: spent,
                posted: offers.is_some().then_some(price),
                offers,
            };
            (completions, spent, obs)
        }
    }
}

/// Fold an accepted observation back into the flight's bookkeeping.
fn apply_answer(
    instruments: &RunInstruments,
    group: &FleetGroup,
    flight: &mut Flight,
    completions: u64,
    spent: usize,
    answer: &ObserveAnswer,
) {
    instruments.completions.add(completions);
    if answer.recalibrated {
        instruments.recalibrations.inc();
        if group.kind == CampaignKind::Budget {
            instruments.budget_recalibrations.inc();
        }
    }
    flight.remaining = answer.remaining;
    match group.kind {
        CampaignKind::Deadline => {
            flight.next_interval += 1;
            flight.done = answer.exhausted;
        }
        CampaignKind::Budget => {
            flight.budget_left -= spent;
            flight.done = answer.exhausted || flight.budget_left == 0;
        }
    }
}

/// Mark a flight's fate after a failed quote.
fn quote_failed(
    instruments: &RunInstruments,
    group: &FleetGroup,
    flight: &mut Flight,
    e: &OpError,
) {
    if matches!(e, OpError::BudgetExhausted) && group.kind == CampaignKind::Budget {
        instruments.budget_exhaustions.inc();
    }
    flight.done = true;
}

/// One closed-loop round for one campaign: price → simulated market
/// response → observation fed back.
fn drive_round(
    backend: &dyn Backend,
    instruments: &RunInstruments,
    scenario: &Scenario,
    flight: &mut Flight,
    rng: &mut rand::rngs::StdRng,
) {
    let group = &scenario.fleet[flight.group];
    let Some(state) = plan_state(group, flight) else {
        flight.done = true;
        return;
    };
    let quote = match instruments.timed(Op::Price, || backend.price(flight.id, state)) {
        Ok(quote) => quote,
        Err(e) => {
            quote_failed(instruments, group, flight, &e);
            return;
        }
    };
    let (completions, spent, obs) = market_response(scenario, group, flight, quote.price, rng);
    match instruments.timed(Op::Observe, || backend.observe(flight.id, obs)) {
        Ok(answer) => apply_answer(instruments, group, flight, completions, spent, &answer),
        Err(_) => flight.done = true,
    }
}

/// One closed-loop round for a **chunk** of campaigns: every active
/// flight's quote goes out as a single `price_many` round trip, the
/// simulated market responds to each posted price, and the
/// observations return as one `observe_many`. The loop stays closed —
/// a campaign's next round only starts after this round's answer — the
/// batching is across campaigns, never across a campaign's own rounds.
fn drive_chunk(
    backend: &dyn Backend,
    instruments: &RunInstruments,
    scenario: &Scenario,
    chunk: &mut [Flight],
    rng: &mut rand::rngs::StdRng,
) {
    let mut quoted = Vec::with_capacity(chunk.len());
    let mut batch = Vec::with_capacity(chunk.len());
    for (i, flight) in chunk.iter_mut().enumerate() {
        if flight.done {
            continue;
        }
        match plan_state(&scenario.fleet[flight.group], flight) {
            Some(state) => {
                quoted.push(i);
                batch.push((flight.id, state));
            }
            None => flight.done = true,
        }
    }
    if batch.is_empty() {
        return;
    }
    let quotes = instruments.timed_bulk(Op::PriceBulk, || backend.price_many(&batch));
    instruments.bulk_quote_items.add(batch.len() as u64);

    let mut observed = Vec::with_capacity(quotes.len());
    let mut obs_batch = Vec::with_capacity(quotes.len());
    let mut outcomes = Vec::with_capacity(quotes.len());
    for (slot, result) in quotes.into_iter().enumerate() {
        let flight = &mut chunk[quoted[slot]];
        let group = &scenario.fleet[flight.group];
        match result {
            Ok(quote) => {
                let (completions, spent, obs) =
                    market_response(scenario, group, flight, quote.price, rng);
                observed.push(quoted[slot]);
                obs_batch.push((flight.id, obs));
                outcomes.push((completions, spent));
            }
            Err(e) => quote_failed(instruments, group, flight, &e),
        }
    }
    if obs_batch.is_empty() {
        return;
    }
    let answers = instruments.timed_bulk(Op::ObserveBulk, || backend.observe_many(&obs_batch));
    instruments.bulk_observe_items.add(obs_batch.len() as u64);
    for (slot, result) in answers.into_iter().enumerate() {
        let flight = &mut chunk[observed[slot]];
        let group = &scenario.fleet[flight.group];
        let (completions, spent) = outcomes[slot];
        match result {
            Ok(answer) => apply_answer(instruments, group, flight, completions, spent, &answer),
            Err(_) => flight.done = true,
        }
    }
}
