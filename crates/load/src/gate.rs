//! The CI perf-regression gate: compare a fresh `BENCH_load_*.json`
//! against checked-in floor values, so banked performance is
//! *enforced* on every PR instead of merely re-measured.
//!
//! Floors live in `scripts/perf_floors.json`:
//!
//! ```json
//! {"tolerance": 0.25,
//!  "backends": [
//!    {"backend": "in_process",
//!     "min_throughput_rps": 2000.0,
//!     "max_p99_ns": {"price": 2000000.0, "observe": 400000000.0}},
//!    {"backend": "in_process", "scenario": "budget-drift-fast", ...},
//!    {"backend": "socket", ...}]}
//! ```
//!
//! An entry with a `scenario` field gates only runs whose report
//! document carries that scenario name; entries without one gate every
//! run of their backend (the historical behavior).
//!
//! An entry may also carry a **relative** floor:
//!
//! ```json
//! {"backend": "socket", "scenario": "fast",
//!  "min_throughput_rps": 1000.0,
//!  "min_throughput_frac_of": {"backend": "in_process",
//!                             "scenario": "fast", "frac": 0.5}}
//! ```
//!
//! which additionally requires the gated run's throughput to stay
//! above `frac × reference throughput × (1 − tolerance)`, where the
//! reference is the **slowest** run matching the named
//! backend/scenario across the supplied reports (robust to the
//! reference leg having had an unusually fast run — the gate exists to
//! catch order-of-magnitude serving-tier regressions, not scheduler
//! jitter between two separately-invoked smokes). This is how the
//! serving tier's "socket within 2× of in-process" bar is enforced
//! without baking the host's absolute speed into the floor. A missing
//! reference run is a failure, like a missing floored backend.
//!
//! Semantics: a run regresses when its throughput drops below
//! `min_throughput_rps × (1 − tolerance)` or an op's p99 rises above
//! `max_p99_ns × (1 + tolerance)`. The floors are set conservatively
//! (shared CI runners are noisy); the tolerance absorbs run-to-run
//! jitter on top. A backend present in the floors but absent from the
//! report is itself a failure — a silently skipped leg must not pass
//! the gate.

use serde::{map_get, Value};

/// One backend's floor values.
#[derive(Debug, Clone)]
pub struct BackendFloor {
    /// Matches `runs[].backend` in the report (`in_process` / `socket`).
    pub backend: String,
    /// When set, the floor applies only to runs from the report
    /// document with this scenario name (e.g. `budget-drift-fast`);
    /// `None` matches every scenario — the historical behavior.
    pub scenario: Option<String>,
    /// Fresh throughput must stay above `this × (1 − tolerance)`.
    pub min_throughput_rps: f64,
    /// Per-op p99 ceilings in nanoseconds: fresh p99 must stay below
    /// `ceiling × (1 + tolerance)`.
    pub max_p99_ns: Vec<(String, f64)>,
    /// Relative floor: fresh throughput must also stay above
    /// `frac × reference × (1 − tolerance)`.
    pub min_throughput_frac_of: Option<FracOf>,
    /// Floor on the run's reported `pmf_cache.hit_rate` (the storm
    /// leg's batched-solving win): fresh rate must stay above
    /// `this × (1 − tolerance)`. A floored run without a `pmf_cache`
    /// block (e.g. a socket run, which cannot see the registry) is an
    /// error, like a missing p99.
    pub min_pmf_cache_hit_rate: Option<f64>,
}

/// A relative throughput floor's reference run selector.
#[derive(Debug, Clone)]
pub struct FracOf {
    /// Reference run's `runs[].backend`.
    pub backend: String,
    /// Reference scenario scope; `None` matches every scenario.
    pub scenario: Option<String>,
    /// Required fraction of the reference run's throughput.
    pub frac: f64,
}

/// The checked-in floor document.
#[derive(Debug, Clone)]
pub struct Floors {
    /// Allowed relative regression before the gate fails.
    pub tolerance: f64,
    pub backends: Vec<BackendFloor>,
}

impl Floors {
    /// Parse the floors document, validating shapes and ranges.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let value: Value = serde_json::from_str(json).map_err(|e| format!("floors parse: {e}"))?;
        let map = value
            .as_map()
            .ok_or_else(|| "floors: not a JSON object".to_string())?;
        let tolerance = map_get(map, "tolerance")
            .ok()
            .and_then(Value::as_num)
            .ok_or_else(|| "floors: missing numeric `tolerance`".to_string())?;
        if !(0.0..1.0).contains(&tolerance) {
            return Err(format!("floors: tolerance {tolerance} outside [0, 1)"));
        }
        let backends_value =
            map_get(map, "backends").map_err(|_| "floors: missing `backends`".to_string())?;
        let backends_seq = backends_value
            .as_seq()
            .ok_or_else(|| "floors: `backends` is not an array".to_string())?;
        let mut backends = Vec::new();
        for entry in backends_seq {
            let entry_map = entry
                .as_map()
                .ok_or_else(|| "floors: backend entry is not an object".to_string())?;
            let backend = map_get(entry_map, "backend")
                .ok()
                .and_then(Value::as_str)
                .ok_or_else(|| "floors: backend entry missing `backend`".to_string())?
                .to_string();
            let scenario = match map_get(entry_map, "scenario") {
                Ok(v) => Some(
                    v.as_str()
                        .ok_or_else(|| format!("floors[{backend}]: `scenario` is not a string"))?
                        .to_string(),
                ),
                Err(_) => None,
            };
            let min_throughput_rps = map_get(entry_map, "min_throughput_rps")
                .ok()
                .and_then(Value::as_num)
                .ok_or_else(|| format!("floors[{backend}]: missing `min_throughput_rps`"))?;
            if min_throughput_rps <= 0.0 {
                return Err(format!(
                    "floors[{backend}]: min_throughput_rps must be positive"
                ));
            }
            let mut max_p99_ns = Vec::new();
            if let Ok(ceilings) = map_get(entry_map, "max_p99_ns") {
                let ceilings = ceilings
                    .as_map()
                    .ok_or_else(|| format!("floors[{backend}]: `max_p99_ns` is not an object"))?;
                for (op, ceiling) in ceilings {
                    let ceiling = ceiling.as_num().ok_or_else(|| {
                        format!("floors[{backend}]: p99 ceiling for `{op}` is not a number")
                    })?;
                    if ceiling <= 0.0 {
                        return Err(format!(
                            "floors[{backend}]: p99 ceiling for `{op}` must be positive"
                        ));
                    }
                    max_p99_ns.push((op.clone(), ceiling));
                }
            }
            let min_throughput_frac_of = match map_get(entry_map, "min_throughput_frac_of") {
                Ok(v) => {
                    let frac_map = v.as_map().ok_or_else(|| {
                        format!("floors[{backend}]: `min_throughput_frac_of` is not an object")
                    })?;
                    let ref_backend = map_get(frac_map, "backend")
                        .ok()
                        .and_then(Value::as_str)
                        .ok_or_else(|| {
                            format!("floors[{backend}]: frac-of floor missing `backend`")
                        })?
                        .to_string();
                    let ref_scenario = match map_get(frac_map, "scenario") {
                        Ok(v) => Some(
                            v.as_str()
                                .ok_or_else(|| {
                                    format!("floors[{backend}]: frac-of `scenario` is not a string")
                                })?
                                .to_string(),
                        ),
                        Err(_) => None,
                    };
                    let frac = map_get(frac_map, "frac")
                        .ok()
                        .and_then(Value::as_num)
                        .ok_or_else(|| {
                            format!("floors[{backend}]: frac-of floor missing numeric `frac`")
                        })?;
                    if frac <= 0.0 {
                        return Err(format!(
                            "floors[{backend}]: frac-of `frac` must be positive"
                        ));
                    }
                    Some(FracOf {
                        backend: ref_backend,
                        scenario: ref_scenario,
                        frac,
                    })
                }
                Err(_) => None,
            };
            let min_pmf_cache_hit_rate = match map_get(entry_map, "min_pmf_cache_hit_rate") {
                Ok(v) => {
                    let rate = v.as_num().ok_or_else(|| {
                        format!("floors[{backend}]: `min_pmf_cache_hit_rate` is not a number")
                    })?;
                    if !(rate > 0.0 && rate <= 1.0) {
                        return Err(format!(
                            "floors[{backend}]: min_pmf_cache_hit_rate {rate} outside (0, 1]"
                        ));
                    }
                    Some(rate)
                }
                Err(_) => None,
            };
            backends.push(BackendFloor {
                backend,
                scenario,
                min_throughput_rps,
                max_p99_ns,
                min_throughput_frac_of,
                min_pmf_cache_hit_rate,
            });
        }
        if backends.is_empty() {
            return Err("floors: no backends — the gate would vacuously pass".to_string());
        }
        Ok(Self {
            tolerance,
            backends,
        })
    }
}

/// One gate comparison, kept for the success-path log so CI output
/// shows fresh-vs-floor numbers even when everything passes.
#[derive(Debug, Clone)]
pub struct Comparison {
    pub label: String,
    pub fresh: f64,
    pub bound: f64,
    pub passed: bool,
}

impl Comparison {
    fn throughput(backend: &str, fresh: f64, bound: f64) -> Self {
        Self {
            label: format!("[{backend}] throughput_rps {fresh:.0} ≥ {bound:.0}"),
            fresh,
            bound,
            passed: fresh >= bound,
        }
    }

    fn p99(backend: &str, op: &str, fresh: f64, bound: f64) -> Self {
        Self {
            label: format!("[{backend}] p99[{op}] {fresh:.0} ns ≤ {bound:.0} ns"),
            fresh,
            bound,
            passed: fresh <= bound,
        }
    }
}

/// Evaluate one report document against the floors — shorthand for
/// [`check_reports`] over a single document.
pub fn check_report(report_json: &str, floors: &Floors) -> Result<Vec<Comparison>, String> {
    check_reports(&[report_json], floors)
}

/// Evaluate the floors against the union of runs found across every
/// supplied report document (CI writes one report per `--mode`, so the
/// in-process and socket runs arrive in separate files). Returns every
/// comparison made (pass and fail); the gate fails if any comparison
/// failed or a floored backend appears in no report at all.
pub fn check_reports(report_jsons: &[&str], floors: &Floors) -> Result<Vec<Comparison>, String> {
    // Runs carry their document's scenario name so scenario-scoped
    // floors (e.g. the budget-drift leg) gate only their own runs.
    let mut runs: Vec<(Option<String>, Value)> = Vec::new();
    for report_json in report_jsons {
        let report: Value =
            serde_json::from_str(report_json).map_err(|e| format!("report parse: {e}"))?;
        let map = report
            .as_map()
            .ok_or_else(|| "report: not a JSON object".to_string())?;
        let scenario = map_get(map, "scenario")
            .ok()
            .and_then(Value::as_str)
            .map(str::to_string);
        let document_runs = map_get(map, "runs")
            .ok()
            .and_then(Value::as_seq)
            .ok_or_else(|| "report: missing `runs` array".to_string())?;
        runs.extend(
            document_runs
                .iter()
                .map(|run| (scenario.clone(), run.clone())),
        );
    }

    let select = |backend: &str, scenario: Option<&str>| -> Vec<&Value> {
        runs.iter()
            .filter(|(run_scenario, run)| {
                run.as_map()
                    .and_then(|m| map_get(m, "backend").ok())
                    .and_then(Value::as_str)
                    == Some(backend)
                    && scenario.is_none_or(|want| run_scenario.as_deref() == Some(want))
            })
            .map(|(_, run)| run)
            .collect()
    };

    let mut comparisons = Vec::new();
    for floor in &floors.backends {
        let floor_name = match &floor.scenario {
            Some(scenario) => format!("{}/{scenario}", floor.backend),
            None => floor.backend.clone(),
        };
        // Resolve a relative floor's reference once per floor: the
        // slowest matching run across the reports, so a lucky fast
        // reference leg can't flake the gated one.
        let frac_reference = floor.min_throughput_frac_of.as_ref().map(|frac_of| {
            let ref_name = match &frac_of.scenario {
                Some(scenario) => format!("{}/{scenario}", frac_of.backend),
                None => frac_of.backend.clone(),
            };
            let best = select(&frac_of.backend, frac_of.scenario.as_deref())
                .iter()
                .filter_map(|run| {
                    run.as_map()
                        .and_then(|m| map_get(m, "throughput_rps").ok())
                        .and_then(Value::as_num)
                })
                .fold(f64::INFINITY, f64::min);
            (frac_of, ref_name, best)
        });
        if let Some((_, ref_name, best)) = &frac_reference {
            if !best.is_finite() {
                // A relative floor with no reference run cannot pass.
                comparisons.push(Comparison {
                    label: format!("[{floor_name}] reference run {ref_name} present in report(s)"),
                    fresh: 0.0,
                    bound: 1.0,
                    passed: false,
                });
            }
        }
        let matching = select(&floor.backend, floor.scenario.as_deref());
        if matching.is_empty() {
            // A floored backend no report ran cannot pass.
            comparisons.push(Comparison {
                label: format!("[{floor_name}] run present in report(s)"),
                fresh: 0.0,
                bound: 1.0,
                passed: false,
            });
            continue;
        }
        // Every matching run must hold the floor — a stale passing run
        // in one report must not shadow a fresh regressed run in
        // another.
        let duplicates = matching.len() > 1;
        for (index, run) in matching.into_iter().enumerate() {
            let label = if duplicates {
                format!("{floor_name} (run {})", index + 1)
            } else {
                floor_name.clone()
            };
            let run_map = run.as_map().expect("matched runs are objects");
            let throughput = map_get(run_map, "throughput_rps")
                .ok()
                .and_then(Value::as_num)
                .ok_or_else(|| format!("report[{label}]: missing throughput_rps"))?;
            comparisons.push(Comparison::throughput(
                &label,
                throughput,
                floor.min_throughput_rps * (1.0 - floors.tolerance),
            ));
            if let Some((frac_of, ref_name, reference)) = &frac_reference {
                if reference.is_finite() {
                    let bound = frac_of.frac * reference * (1.0 - floors.tolerance);
                    comparisons.push(Comparison {
                        label: format!(
                            "[{label}] throughput_rps {throughput:.0} ≥ {}×{ref_name} ({bound:.0})",
                            frac_of.frac
                        ),
                        fresh: throughput,
                        bound,
                        passed: throughput >= bound,
                    });
                }
            }
            if let Some(min_rate) = floor.min_pmf_cache_hit_rate {
                let hit_rate = map_get(run_map, "pmf_cache")
                    .ok()
                    .and_then(|block| block.as_map().and_then(|m| map_get(m, "hit_rate").ok()))
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("report[{label}]: no pmf_cache.hit_rate"))?;
                let bound = min_rate * (1.0 - floors.tolerance);
                comparisons.push(Comparison {
                    label: format!("[{label}] pmf_cache.hit_rate {hit_rate:.3} ≥ {bound:.3}"),
                    fresh: hit_rate,
                    bound,
                    passed: hit_rate >= bound,
                });
            }
            let latency = map_get(run_map, "latency_ns_by_op")
                .ok()
                .and_then(Value::as_map)
                .ok_or_else(|| format!("report[{label}]: missing latency_ns_by_op"))?;
            for (op, ceiling) in &floor.max_p99_ns {
                let p99 = map_get(latency, op)
                    .ok()
                    .and_then(|entry| entry.as_map().and_then(|m| map_get(m, "p99").ok()))
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("report[{label}]: no p99 for op `{op}`"))?;
                comparisons.push(Comparison::p99(
                    &label,
                    op,
                    p99,
                    ceiling * (1.0 + floors.tolerance),
                ));
            }
        }
    }
    Ok(comparisons)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLOORS: &str = r#"{
        "tolerance": 0.2,
        "backends": [
            {"backend": "in_process",
             "min_throughput_rps": 1000.0,
             "max_p99_ns": {"price": 100000.0}}
        ]
    }"#;

    fn report(backend: &str, throughput: f64, price_p99: f64) -> String {
        format!(
            r#"{{"runs": [{{"backend": "{backend}",
                 "throughput_rps": {throughput},
                 "latency_ns_by_op": {{"price": {{"count": 10, "p99": {price_p99}}}}}}}]}}"#
        )
    }

    #[test]
    fn floors_parse_and_validate() {
        let floors = Floors::from_json(FLOORS).unwrap();
        assert_eq!(floors.tolerance, 0.2);
        assert_eq!(floors.backends.len(), 1);
        assert_eq!(floors.backends[0].max_p99_ns[0].0, "price");

        assert!(Floors::from_json("{}").is_err());
        assert!(Floors::from_json(r#"{"tolerance": 1.5, "backends": []}"#).is_err());
        assert!(Floors::from_json(r#"{"tolerance": 0.1, "backends": []}"#).is_err());
    }

    #[test]
    fn healthy_run_passes_with_tolerance() {
        let floors = Floors::from_json(FLOORS).unwrap();
        // Throughput 10% under the floor still passes at 20% tolerance;
        // p99 15% over the ceiling still passes too.
        let comparisons = check_report(&report("in_process", 900.0, 115_000.0), &floors).unwrap();
        assert!(comparisons.iter().all(|c| c.passed), "{comparisons:?}");
    }

    #[test]
    fn regressions_fail() {
        let floors = Floors::from_json(FLOORS).unwrap();
        let slow_throughput = check_report(&report("in_process", 700.0, 1.0), &floors).unwrap();
        assert!(!slow_throughput[0].passed, "{slow_throughput:?}");
        let slow_p99 = check_report(&report("in_process", 5000.0, 130_000.0), &floors).unwrap();
        assert!(!slow_p99[1].passed, "{slow_p99:?}");
    }

    #[test]
    fn floors_union_across_reports() {
        // CI hands the gate one report per --mode; a backend found in
        // *any* of them satisfies its floor.
        let floors = Floors::from_json(
            r#"{"tolerance": 0.2, "backends": [
                {"backend": "in_process", "min_throughput_rps": 1000.0},
                {"backend": "socket", "min_throughput_rps": 100.0}]}"#,
        )
        .unwrap();
        let inproc = report("in_process", 5000.0, 1.0);
        let socket = report("socket", 500.0, 1.0);
        let comparisons = check_reports(&[&inproc, &socket], &floors).unwrap();
        assert_eq!(comparisons.len(), 2);
        assert!(comparisons.iter().all(|c| c.passed), "{comparisons:?}");
        // One leg missing entirely still fails.
        let comparisons = check_reports(&[&inproc], &floors).unwrap();
        assert!(comparisons.iter().any(|c| !c.passed));
        // A stale passing run must not shadow a fresh regressed one:
        // every duplicate run of a backend is gated.
        let regressed = report("socket", 10.0, 1.0);
        let comparisons = check_reports(&[&inproc, &socket, &regressed], &floors).unwrap();
        assert_eq!(comparisons.len(), 3);
        assert!(
            comparisons.iter().any(|c| !c.passed),
            "regressed duplicate slipped through: {comparisons:?}"
        );
    }

    #[test]
    fn scenario_scoped_floors_gate_only_their_scenario() {
        let floors = Floors::from_json(
            r#"{"tolerance": 0.2, "backends": [
                {"backend": "in_process", "min_throughput_rps": 1000.0},
                {"backend": "in_process", "scenario": "budget-drift-fast",
                 "min_throughput_rps": 5000.0}]}"#,
        )
        .unwrap();
        let tagged = |scenario: &str, throughput: f64| {
            format!(
                r#"{{"scenario": "{scenario}",
                     "runs": [{{"backend": "in_process",
                       "throughput_rps": {throughput},
                       "latency_ns_by_op": {{}}}}]}}"#
            )
        };
        // The drift leg holds its own (higher) floor; both pass.
        let fast = tagged("fast", 2000.0);
        let drift = tagged("budget-drift-fast", 6000.0);
        let comparisons = check_reports(&[&fast, &drift], &floors).unwrap();
        assert!(comparisons.iter().all(|c| c.passed), "{comparisons:?}");

        // The drift leg regressing fails its scoped floor even though
        // the unscoped floor would still pass it.
        let slow_drift = tagged("budget-drift-fast", 2000.0);
        let comparisons = check_reports(&[&fast, &slow_drift], &floors).unwrap();
        let scoped: Vec<_> = comparisons
            .iter()
            .filter(|c| c.label.contains("budget-drift-fast"))
            .collect();
        assert!(scoped.iter().any(|c| !c.passed), "{comparisons:?}");

        // The scoped floor with no matching scenario in any report is a
        // failure — a silently skipped drift leg must not pass.
        let comparisons = check_reports(&[&fast], &floors).unwrap();
        assert!(
            comparisons
                .iter()
                .any(|c| !c.passed && c.label.contains("budget-drift-fast")),
            "{comparisons:?}"
        );
    }

    #[test]
    fn relative_floor_tracks_the_reference_run() {
        // socket must hold ≥ 0.5× the in-process run's throughput
        // (minus tolerance) — the host's absolute speed drops out.
        let floors = Floors::from_json(
            r#"{"tolerance": 0.2, "backends": [
                {"backend": "in_process", "min_throughput_rps": 100.0},
                {"backend": "socket", "min_throughput_rps": 100.0,
                 "min_throughput_frac_of": {"backend": "in_process", "frac": 0.5}}]}"#,
        )
        .unwrap();
        let frac_of = floors.backends[1].min_throughput_frac_of.as_ref().unwrap();
        assert_eq!(frac_of.backend, "in_process");
        assert_eq!(frac_of.frac, 0.5);

        // 10000 in-process → bound 0.5 × 10000 × 0.8 = 4000.
        let inproc = report("in_process", 10_000.0, 1.0);
        let fast_socket = report("socket", 5000.0, 1.0);
        let comparisons = check_reports(&[&inproc, &fast_socket], &floors).unwrap();
        assert!(comparisons.iter().all(|c| c.passed), "{comparisons:?}");

        let slow_socket = report("socket", 3000.0, 1.0);
        let comparisons = check_reports(&[&inproc, &slow_socket], &floors).unwrap();
        let relative: Vec<_> = comparisons
            .iter()
            .filter(|c| c.label.contains("0.5×in_process"))
            .collect();
        assert_eq!(relative.len(), 1);
        assert!(!relative[0].passed, "{comparisons:?}");

        // No reference run at all → the relative floor fails loudly.
        let comparisons = check_reports(&[&slow_socket], &floors).unwrap();
        assert!(
            comparisons
                .iter()
                .any(|c| !c.passed && c.label.contains("reference run")),
            "{comparisons:?}"
        );

        // Malformed frac-of entries are parse errors.
        assert!(Floors::from_json(
            r#"{"tolerance": 0.2, "backends": [
                {"backend": "socket", "min_throughput_rps": 1.0,
                 "min_throughput_frac_of": {"backend": "in_process", "frac": 0.0}}]}"#,
        )
        .is_err());
        assert!(Floors::from_json(
            r#"{"tolerance": 0.2, "backends": [
                {"backend": "socket", "min_throughput_rps": 1.0,
                 "min_throughput_frac_of": {"frac": 0.5}}]}"#,
        )
        .is_err());
    }

    #[test]
    fn pmf_cache_hit_rate_floor_gates_the_storm_leg() {
        let floors = Floors::from_json(
            r#"{"tolerance": 0.2, "backends": [
                {"backend": "in_process", "scenario": "storm-fast",
                 "min_throughput_rps": 100.0,
                 "min_pmf_cache_hit_rate": 0.5}]}"#,
        )
        .unwrap();
        assert_eq!(floors.backends[0].min_pmf_cache_hit_rate, Some(0.5));
        let storm = |hit_rate: f64| {
            format!(
                r#"{{"scenario": "storm-fast",
                     "runs": [{{"backend": "in_process",
                       "throughput_rps": 5000.0,
                       "pmf_cache": {{"hit_rate": {hit_rate}, "waves": 3}},
                       "latency_ns_by_op": {{}}}}]}}"#
            )
        };
        // 0.45 ≥ 0.5 × 0.8 = 0.4 → passes inside the tolerance.
        let comparisons = check_report(&storm(0.45), &floors).unwrap();
        assert!(comparisons.iter().all(|c| c.passed), "{comparisons:?}");
        // A collapsed cache fails.
        let comparisons = check_report(&storm(0.1), &floors).unwrap();
        assert!(
            comparisons
                .iter()
                .any(|c| !c.passed && c.label.contains("pmf_cache.hit_rate")),
            "{comparisons:?}"
        );
        // A floored run without the block is an error, not a pass.
        let no_block = r#"{"scenario": "storm-fast",
            "runs": [{"backend": "in_process", "throughput_rps": 5000.0,
                      "latency_ns_by_op": {}}]}"#;
        assert!(check_report(no_block, &floors).is_err());
        // Out-of-range floors are parse errors.
        for bad in ["0.0", "1.5", "\"high\""] {
            let text = format!(
                r#"{{"tolerance": 0.2, "backends": [
                    {{"backend": "in_process", "min_throughput_rps": 1.0,
                      "min_pmf_cache_hit_rate": {bad}}}]}}"#
            );
            assert!(Floors::from_json(&text).is_err(), "{bad}");
        }
    }

    #[test]
    fn missing_backend_fails() {
        let floors = Floors::from_json(FLOORS).unwrap();
        let comparisons = check_report(&report("socket", 1e9, 1.0), &floors).unwrap();
        assert!(comparisons.iter().any(|c| !c.passed));
    }

    #[test]
    fn malformed_report_is_an_error() {
        let floors = Floors::from_json(FLOORS).unwrap();
        assert!(check_report("not json", &floors).is_err());
        assert!(check_report(r#"{"no_runs": true}"#, &floors).is_err());
        // A run without the op's p99 is an error, not a silent pass.
        let no_p99 = r#"{"runs": [{"backend": "in_process", "throughput_rps": 9999,
                         "latency_ns_by_op": {}}]}"#;
        assert!(check_report(no_p99, &floors).is_err());
    }
}
