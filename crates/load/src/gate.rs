//! The CI perf-regression gate: compare a fresh `BENCH_load_*.json`
//! against checked-in floor values, so banked performance is
//! *enforced* on every PR instead of merely re-measured.
//!
//! Floors live in `scripts/perf_floors.json`:
//!
//! ```json
//! {"tolerance": 0.25,
//!  "backends": [
//!    {"backend": "in_process",
//!     "min_throughput_rps": 2000.0,
//!     "max_p99_ns": {"price": 2000000.0, "observe": 400000000.0}},
//!    {"backend": "in_process", "scenario": "budget-drift-fast", ...},
//!    {"backend": "socket", ...}]}
//! ```
//!
//! An entry with a `scenario` field gates only runs whose report
//! document carries that scenario name; entries without one gate every
//! run of their backend (the historical behavior).
//!
//! Semantics: a run regresses when its throughput drops below
//! `min_throughput_rps × (1 − tolerance)` or an op's p99 rises above
//! `max_p99_ns × (1 + tolerance)`. The floors are set conservatively
//! (shared CI runners are noisy); the tolerance absorbs run-to-run
//! jitter on top. A backend present in the floors but absent from the
//! report is itself a failure — a silently skipped leg must not pass
//! the gate.

use serde::{map_get, Value};

/// One backend's floor values.
#[derive(Debug, Clone)]
pub struct BackendFloor {
    /// Matches `runs[].backend` in the report (`in_process` / `socket`).
    pub backend: String,
    /// When set, the floor applies only to runs from the report
    /// document with this scenario name (e.g. `budget-drift-fast`);
    /// `None` matches every scenario — the historical behavior.
    pub scenario: Option<String>,
    /// Fresh throughput must stay above `this × (1 − tolerance)`.
    pub min_throughput_rps: f64,
    /// Per-op p99 ceilings in nanoseconds: fresh p99 must stay below
    /// `ceiling × (1 + tolerance)`.
    pub max_p99_ns: Vec<(String, f64)>,
}

/// The checked-in floor document.
#[derive(Debug, Clone)]
pub struct Floors {
    /// Allowed relative regression before the gate fails.
    pub tolerance: f64,
    pub backends: Vec<BackendFloor>,
}

impl Floors {
    /// Parse the floors document, validating shapes and ranges.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let value: Value = serde_json::from_str(json).map_err(|e| format!("floors parse: {e}"))?;
        let map = value
            .as_map()
            .ok_or_else(|| "floors: not a JSON object".to_string())?;
        let tolerance = map_get(map, "tolerance")
            .ok()
            .and_then(Value::as_num)
            .ok_or_else(|| "floors: missing numeric `tolerance`".to_string())?;
        if !(0.0..1.0).contains(&tolerance) {
            return Err(format!("floors: tolerance {tolerance} outside [0, 1)"));
        }
        let backends_value =
            map_get(map, "backends").map_err(|_| "floors: missing `backends`".to_string())?;
        let backends_seq = backends_value
            .as_seq()
            .ok_or_else(|| "floors: `backends` is not an array".to_string())?;
        let mut backends = Vec::new();
        for entry in backends_seq {
            let entry_map = entry
                .as_map()
                .ok_or_else(|| "floors: backend entry is not an object".to_string())?;
            let backend = map_get(entry_map, "backend")
                .ok()
                .and_then(Value::as_str)
                .ok_or_else(|| "floors: backend entry missing `backend`".to_string())?
                .to_string();
            let scenario = match map_get(entry_map, "scenario") {
                Ok(v) => Some(
                    v.as_str()
                        .ok_or_else(|| format!("floors[{backend}]: `scenario` is not a string"))?
                        .to_string(),
                ),
                Err(_) => None,
            };
            let min_throughput_rps = map_get(entry_map, "min_throughput_rps")
                .ok()
                .and_then(Value::as_num)
                .ok_or_else(|| format!("floors[{backend}]: missing `min_throughput_rps`"))?;
            if min_throughput_rps <= 0.0 {
                return Err(format!(
                    "floors[{backend}]: min_throughput_rps must be positive"
                ));
            }
            let mut max_p99_ns = Vec::new();
            if let Ok(ceilings) = map_get(entry_map, "max_p99_ns") {
                let ceilings = ceilings
                    .as_map()
                    .ok_or_else(|| format!("floors[{backend}]: `max_p99_ns` is not an object"))?;
                for (op, ceiling) in ceilings {
                    let ceiling = ceiling.as_num().ok_or_else(|| {
                        format!("floors[{backend}]: p99 ceiling for `{op}` is not a number")
                    })?;
                    if ceiling <= 0.0 {
                        return Err(format!(
                            "floors[{backend}]: p99 ceiling for `{op}` must be positive"
                        ));
                    }
                    max_p99_ns.push((op.clone(), ceiling));
                }
            }
            backends.push(BackendFloor {
                backend,
                scenario,
                min_throughput_rps,
                max_p99_ns,
            });
        }
        if backends.is_empty() {
            return Err("floors: no backends — the gate would vacuously pass".to_string());
        }
        Ok(Self {
            tolerance,
            backends,
        })
    }
}

/// One gate comparison, kept for the success-path log so CI output
/// shows fresh-vs-floor numbers even when everything passes.
#[derive(Debug, Clone)]
pub struct Comparison {
    pub label: String,
    pub fresh: f64,
    pub bound: f64,
    pub passed: bool,
}

impl Comparison {
    fn throughput(backend: &str, fresh: f64, bound: f64) -> Self {
        Self {
            label: format!("[{backend}] throughput_rps {fresh:.0} ≥ {bound:.0}"),
            fresh,
            bound,
            passed: fresh >= bound,
        }
    }

    fn p99(backend: &str, op: &str, fresh: f64, bound: f64) -> Self {
        Self {
            label: format!("[{backend}] p99[{op}] {fresh:.0} ns ≤ {bound:.0} ns"),
            fresh,
            bound,
            passed: fresh <= bound,
        }
    }
}

/// Evaluate one report document against the floors — shorthand for
/// [`check_reports`] over a single document.
pub fn check_report(report_json: &str, floors: &Floors) -> Result<Vec<Comparison>, String> {
    check_reports(&[report_json], floors)
}

/// Evaluate the floors against the union of runs found across every
/// supplied report document (CI writes one report per `--mode`, so the
/// in-process and socket runs arrive in separate files). Returns every
/// comparison made (pass and fail); the gate fails if any comparison
/// failed or a floored backend appears in no report at all.
pub fn check_reports(report_jsons: &[&str], floors: &Floors) -> Result<Vec<Comparison>, String> {
    // Runs carry their document's scenario name so scenario-scoped
    // floors (e.g. the budget-drift leg) gate only their own runs.
    let mut runs: Vec<(Option<String>, Value)> = Vec::new();
    for report_json in report_jsons {
        let report: Value =
            serde_json::from_str(report_json).map_err(|e| format!("report parse: {e}"))?;
        let map = report
            .as_map()
            .ok_or_else(|| "report: not a JSON object".to_string())?;
        let scenario = map_get(map, "scenario")
            .ok()
            .and_then(Value::as_str)
            .map(str::to_string);
        let document_runs = map_get(map, "runs")
            .ok()
            .and_then(Value::as_seq)
            .ok_or_else(|| "report: missing `runs` array".to_string())?;
        runs.extend(
            document_runs
                .iter()
                .map(|run| (scenario.clone(), run.clone())),
        );
    }

    let mut comparisons = Vec::new();
    for floor in &floors.backends {
        let floor_name = match &floor.scenario {
            Some(scenario) => format!("{}/{scenario}", floor.backend),
            None => floor.backend.clone(),
        };
        let matching: Vec<&Value> = runs
            .iter()
            .filter(|(scenario, run)| {
                run.as_map()
                    .and_then(|m| map_get(m, "backend").ok())
                    .and_then(Value::as_str)
                    == Some(&floor.backend)
                    && floor
                        .scenario
                        .as_ref()
                        .is_none_or(|want| scenario.as_deref() == Some(want.as_str()))
            })
            .map(|(_, run)| run)
            .collect();
        if matching.is_empty() {
            // A floored backend no report ran cannot pass.
            comparisons.push(Comparison {
                label: format!("[{floor_name}] run present in report(s)"),
                fresh: 0.0,
                bound: 1.0,
                passed: false,
            });
            continue;
        }
        // Every matching run must hold the floor — a stale passing run
        // in one report must not shadow a fresh regressed run in
        // another.
        let duplicates = matching.len() > 1;
        for (index, run) in matching.into_iter().enumerate() {
            let label = if duplicates {
                format!("{floor_name} (run {})", index + 1)
            } else {
                floor_name.clone()
            };
            let run_map = run.as_map().expect("matched runs are objects");
            let throughput = map_get(run_map, "throughput_rps")
                .ok()
                .and_then(Value::as_num)
                .ok_or_else(|| format!("report[{label}]: missing throughput_rps"))?;
            comparisons.push(Comparison::throughput(
                &label,
                throughput,
                floor.min_throughput_rps * (1.0 - floors.tolerance),
            ));
            let latency = map_get(run_map, "latency_ns_by_op")
                .ok()
                .and_then(Value::as_map)
                .ok_or_else(|| format!("report[{label}]: missing latency_ns_by_op"))?;
            for (op, ceiling) in &floor.max_p99_ns {
                let p99 = map_get(latency, op)
                    .ok()
                    .and_then(|entry| entry.as_map().and_then(|m| map_get(m, "p99").ok()))
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("report[{label}]: no p99 for op `{op}`"))?;
                comparisons.push(Comparison::p99(
                    &label,
                    op,
                    p99,
                    ceiling * (1.0 + floors.tolerance),
                ));
            }
        }
    }
    Ok(comparisons)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLOORS: &str = r#"{
        "tolerance": 0.2,
        "backends": [
            {"backend": "in_process",
             "min_throughput_rps": 1000.0,
             "max_p99_ns": {"price": 100000.0}}
        ]
    }"#;

    fn report(backend: &str, throughput: f64, price_p99: f64) -> String {
        format!(
            r#"{{"runs": [{{"backend": "{backend}",
                 "throughput_rps": {throughput},
                 "latency_ns_by_op": {{"price": {{"count": 10, "p99": {price_p99}}}}}}}]}}"#
        )
    }

    #[test]
    fn floors_parse_and_validate() {
        let floors = Floors::from_json(FLOORS).unwrap();
        assert_eq!(floors.tolerance, 0.2);
        assert_eq!(floors.backends.len(), 1);
        assert_eq!(floors.backends[0].max_p99_ns[0].0, "price");

        assert!(Floors::from_json("{}").is_err());
        assert!(Floors::from_json(r#"{"tolerance": 1.5, "backends": []}"#).is_err());
        assert!(Floors::from_json(r#"{"tolerance": 0.1, "backends": []}"#).is_err());
    }

    #[test]
    fn healthy_run_passes_with_tolerance() {
        let floors = Floors::from_json(FLOORS).unwrap();
        // Throughput 10% under the floor still passes at 20% tolerance;
        // p99 15% over the ceiling still passes too.
        let comparisons = check_report(&report("in_process", 900.0, 115_000.0), &floors).unwrap();
        assert!(comparisons.iter().all(|c| c.passed), "{comparisons:?}");
    }

    #[test]
    fn regressions_fail() {
        let floors = Floors::from_json(FLOORS).unwrap();
        let slow_throughput = check_report(&report("in_process", 700.0, 1.0), &floors).unwrap();
        assert!(!slow_throughput[0].passed, "{slow_throughput:?}");
        let slow_p99 = check_report(&report("in_process", 5000.0, 130_000.0), &floors).unwrap();
        assert!(!slow_p99[1].passed, "{slow_p99:?}");
    }

    #[test]
    fn floors_union_across_reports() {
        // CI hands the gate one report per --mode; a backend found in
        // *any* of them satisfies its floor.
        let floors = Floors::from_json(
            r#"{"tolerance": 0.2, "backends": [
                {"backend": "in_process", "min_throughput_rps": 1000.0},
                {"backend": "socket", "min_throughput_rps": 100.0}]}"#,
        )
        .unwrap();
        let inproc = report("in_process", 5000.0, 1.0);
        let socket = report("socket", 500.0, 1.0);
        let comparisons = check_reports(&[&inproc, &socket], &floors).unwrap();
        assert_eq!(comparisons.len(), 2);
        assert!(comparisons.iter().all(|c| c.passed), "{comparisons:?}");
        // One leg missing entirely still fails.
        let comparisons = check_reports(&[&inproc], &floors).unwrap();
        assert!(comparisons.iter().any(|c| !c.passed));
        // A stale passing run must not shadow a fresh regressed one:
        // every duplicate run of a backend is gated.
        let regressed = report("socket", 10.0, 1.0);
        let comparisons = check_reports(&[&inproc, &socket, &regressed], &floors).unwrap();
        assert_eq!(comparisons.len(), 3);
        assert!(
            comparisons.iter().any(|c| !c.passed),
            "regressed duplicate slipped through: {comparisons:?}"
        );
    }

    #[test]
    fn scenario_scoped_floors_gate_only_their_scenario() {
        let floors = Floors::from_json(
            r#"{"tolerance": 0.2, "backends": [
                {"backend": "in_process", "min_throughput_rps": 1000.0},
                {"backend": "in_process", "scenario": "budget-drift-fast",
                 "min_throughput_rps": 5000.0}]}"#,
        )
        .unwrap();
        let tagged = |scenario: &str, throughput: f64| {
            format!(
                r#"{{"scenario": "{scenario}",
                     "runs": [{{"backend": "in_process",
                       "throughput_rps": {throughput},
                       "latency_ns_by_op": {{}}}}]}}"#
            )
        };
        // The drift leg holds its own (higher) floor; both pass.
        let fast = tagged("fast", 2000.0);
        let drift = tagged("budget-drift-fast", 6000.0);
        let comparisons = check_reports(&[&fast, &drift], &floors).unwrap();
        assert!(comparisons.iter().all(|c| c.passed), "{comparisons:?}");

        // The drift leg regressing fails its scoped floor even though
        // the unscoped floor would still pass it.
        let slow_drift = tagged("budget-drift-fast", 2000.0);
        let comparisons = check_reports(&[&fast, &slow_drift], &floors).unwrap();
        let scoped: Vec<_> = comparisons
            .iter()
            .filter(|c| c.label.contains("budget-drift-fast"))
            .collect();
        assert!(scoped.iter().any(|c| !c.passed), "{comparisons:?}");

        // The scoped floor with no matching scenario in any report is a
        // failure — a silently skipped drift leg must not pass.
        let comparisons = check_reports(&[&fast], &floors).unwrap();
        assert!(
            comparisons
                .iter()
                .any(|c| !c.passed && c.label.contains("budget-drift-fast")),
            "{comparisons:?}"
        );
    }

    #[test]
    fn missing_backend_fails() {
        let floors = Floors::from_json(FLOORS).unwrap();
        let comparisons = check_report(&report("socket", 1e9, 1.0), &floors).unwrap();
        assert!(comparisons.iter().any(|c| !c.passed));
    }

    #[test]
    fn malformed_report_is_an_error() {
        let floors = Floors::from_json(FLOORS).unwrap();
        assert!(check_report("not json", &floors).is_err());
        assert!(check_report(r#"{"no_runs": true}"#, &floors).is_err());
        // A run without the op's p99 is an error, not a silent pass.
        let no_p99 = r#"{"runs": [{"backend": "in_process", "throughput_rps": 9999,
                         "latency_ns_by_op": {}}]}"#;
        assert!(check_report(no_p99, &floors).is_err());
    }
}
