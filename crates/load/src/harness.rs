//! Mode orchestration: run a scenario against an in-process registry,
//! or spin up a real `ft-server`, drive it over sockets, flood it, and
//! cross-check the server's `/metrics` against the client's own
//! counts.

use crate::backend::{InProcessBackend, SocketBackend};
use crate::driver::{self, Op, RunInstruments, RunOutcome};
use crate::scenario::Scenario;
use ft_core::adaptive::AdaptiveOptions;
use ft_core::registry::{BudgetDriftOptions, CampaignRegistry, RegistryConfig};
use ft_server::{Server, ServerConfig};
use serde::{map_get, Value};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Socket-mode extras: the connection-flood phase and (when the
/// harness spawned the server itself) the server-vs-client metrics
/// reconciliation.
pub struct SocketExtras {
    pub flood: FloodOutcome,
    /// `None` when driving an external `--target` server: its metrics
    /// plane may carry traffic from other clients or earlier runs, so
    /// exact reconciliation against this client's counts is undefined.
    pub crosscheck: Option<CrosscheckOutcome>,
    /// Trace resolution check: every id this client tagged (within the
    /// retained window) must come back from `GET /trace/{id}` as a
    /// well-formed span tree. `None` for an external target (it may be
    /// a `trace-off` build).
    pub trace: Option<TraceCheckOutcome>,
    /// The server's Chrome trace-event dump (`GET /trace/export`),
    /// captured before shutdown so `--trace-out` can write it. `None`
    /// for an external target.
    pub trace_export: Option<String>,
    /// Pool sizing of the spawned server; `None` for an external
    /// target (its configuration is not ours to know).
    pub server_pool: Option<ServerPool>,
    /// Fleet-mode checks (`--fleet-nodes` driving an `ft-router`):
    /// zero-lost census, per-campaign report sweep, membership, and
    /// the merged-`/metrics`-vs-per-node-truth crosscheck. `None` for
    /// every other mode.
    pub fleet: Option<FleetCheckOutcome>,
}

/// What the fleet-mode epilogue established about the run: nothing was
/// lost across the ring flip, and the router's merged telemetry is the
/// sum of per-node truth.
pub struct FleetCheckOutcome {
    /// Fleet size per the router's `GET /fleet` rows.
    pub nodes_total: usize,
    pub nodes_alive: usize,
    /// A `--kill-pid` was armed for this run.
    pub kill_requested: bool,
    /// ... and the SIGKILL actually fired mid-drive.
    pub killed: bool,
    /// Campaigns the scenario registered vs the router's merged census
    /// (the census sweep itself fails a dead node over, so this is
    /// post-flip truth).
    pub campaigns_expected: usize,
    pub campaigns_listed: usize,
    /// Per-campaign `GET /campaigns/{id}` sweep: every id must answer.
    pub reports_attempted: usize,
    pub reports_ok: usize,
    /// Router-merged `/metrics` vs the sum of direct per-node scrapes,
    /// campaign-plane names only (the scrape traffic itself moves the
    /// serving-plane counters, which would never reconcile).
    pub metrics: Vec<FleetMetricEntry>,
    pub metrics_matched: bool,
}

/// One reconciled fleet metric: the router's merged value vs the sum
/// over direct per-node scrapes.
pub struct FleetMetricEntry {
    pub name: String,
    pub merged: u64,
    pub node_sum: u64,
}

/// Did the ids this client traced resolve into well-formed span trees?
pub struct TraceCheckOutcome {
    /// Ids checked (the backend's retained window).
    pub checked: usize,
    /// Ids that resolved with a well-formed tree.
    pub resolved: usize,
    /// Human-readable description per failed id.
    pub failures: Vec<String>,
}

/// Acceptor-pool sizing of the harness-spawned server.
#[derive(Debug, Clone, Copy)]
pub struct ServerPool {
    pub workers: usize,
    pub queue_depth: usize,
}

/// What happened when `connections` clients hit the server at once.
pub struct FloodOutcome {
    pub connections: usize,
    /// Served normally (200).
    pub ok: usize,
    /// Cleanly rejected at capacity (503).
    pub busy: usize,
    /// Anything else — a hung or dropped connection. Must be 0.
    pub failed: usize,
}

/// One reconciled counter: what the client did vs what the server saw.
pub struct CrosscheckEntry {
    pub name: String,
    pub client: u64,
    pub server: u64,
}

pub struct CrosscheckOutcome {
    pub entries: Vec<CrosscheckEntry>,
    pub matched: bool,
}

fn registry_for(scenario: &Scenario) -> Arc<CampaignRegistry> {
    Arc::new(CampaignRegistry::with_registry_config(RegistryConfig {
        adaptive: AdaptiveOptions {
            resolve_every: scenario.resolve_every,
            ..AdaptiveOptions::default()
        },
        budget_drift: BudgetDriftOptions {
            resolve_every: scenario.resolve_every,
            ..BudgetDriftOptions::default()
        },
        ..RegistryConfig::default()
    }))
}

/// Drive the registry directly, no sockets.
pub fn run_in_process(scenario: &Scenario) -> RunOutcome {
    let backend = InProcessBackend {
        registry: registry_for(scenario),
    };
    let instruments = RunInstruments::new();
    let mut outcome = driver::run(scenario, &backend, &instruments);
    // The in-process harness holds the registry, so the report can
    // carry the batched-solving tier's own accounting (waves, shared
    // pmf-cache hit rate) — the storm profile's perf gate reads it.
    outcome.pmf_cache = Some(backend.registry.scheduler().stats());
    outcome
}

/// Spin up `ft-server` on an ephemeral port, drive it over real
/// sockets, flood it, reconcile `/metrics`, and shut it down.
pub fn run_socket(scenario: &Scenario) -> Result<(RunOutcome, SocketExtras), String> {
    let config = ServerConfig {
        workers: scenario.server_workers.max(1),
        queue_depth: scenario.server_queue_depth.max(1),
        ..ServerConfig::default()
    };
    let (handle, join) = Server::spawn_with("127.0.0.1:0", registry_for(scenario), config)
        .map_err(|e| format!("bind server: {e}"))?;
    let addr = handle.addr();

    let backend = SocketBackend::new(addr);
    let instruments = RunInstruments::new();
    let outcome = driver::run(scenario, &backend, &instruments);
    let flood = flood(addr, scenario.flood_connections);
    let crosscheck = crosscheck(addr, &instruments);
    let trace = trace_check(addr, &backend.traced_ids());
    let trace_export = fetch_trace_export(addr);

    // Shut the server down before propagating a crosscheck failure —
    // an early `?` above this point would leak the serving threads and
    // their listener for the rest of the process.
    handle.shutdown();
    join.join()
        .map_err(|_| "server thread panicked".to_string())?;
    Ok((
        outcome,
        SocketExtras {
            flood,
            crosscheck: Some(crosscheck?),
            trace: Some(trace?),
            trace_export: Some(trace_export?),
            server_pool: Some(ServerPool {
                workers: config.workers,
                queue_depth: config.queue_depth,
            }),
            fleet: None,
        },
    ))
}

/// Drive an **external** server at `target` (`host:port`) over real
/// sockets — the same workload and flood phase as [`run_socket`], but
/// nothing is spawned in-process and the `/metrics` reconciliation is
/// skipped (an external server's counters may include traffic this
/// client never sent).
pub fn run_socket_target(
    scenario: &Scenario,
    target: &str,
) -> Result<(RunOutcome, SocketExtras), String> {
    let addr = probe_target(target)?;
    let backend = SocketBackend::new(addr);
    let instruments = RunInstruments::new();
    let outcome = driver::run(scenario, &backend, &instruments);
    let flood = flood(addr, scenario.flood_connections);
    Ok((
        outcome,
        SocketExtras {
            flood,
            crosscheck: None,
            trace: None,
            trace_export: None,
            server_pool: None,
            fleet: None,
        },
    ))
}

/// Drive an external **`ft-router`** fronting `nodes` backend
/// `ft-server` processes: the same closed-loop workload as
/// [`run_socket_target`], plus the fleet epilogue — a zero-lost
/// census, a per-campaign report sweep, and a reconciliation of the
/// router's merged `/metrics` against the sum of direct per-node
/// scrapes. With `kill_pid`, a watcher thread SIGKILLs that process
/// once the run is mid-drive (every campaign created, solved and
/// quoted at least once), so the epilogue exercises unplanned failover
/// from the router's checkpoints.
pub fn run_socket_fleet(
    scenario: &Scenario,
    target: &str,
    nodes: &[String],
    kill_pid: Option<u32>,
) -> Result<(RunOutcome, SocketExtras), String> {
    let router = probe_target(target)?;
    let node_addrs: Vec<SocketAddr> = nodes
        .iter()
        .map(|node| {
            node.to_socket_addrs()
                .map_err(|e| format!("cannot resolve fleet node {node}: {e}"))?
                .next()
                .ok_or_else(|| format!("fleet node {node} resolved to no address"))
        })
        .collect::<Result<_, _>>()?;

    let backend = SocketBackend::new(router);
    let instruments = RunInstruments::new();
    let done = AtomicBool::new(false);
    let killed = AtomicBool::new(false);
    let mut outcome = std::thread::scope(|s| {
        if let Some(pid) = kill_pid {
            let (instruments, done, killed) = (&instruments, &done, &killed);
            s.spawn(move || kill_watcher(pid, scenario, instruments, done, killed));
        }
        let outcome = driver::run(scenario, &backend, &instruments);
        done.store(true, Ordering::Release);
        outcome
    });
    // The report's leg label: this run went through the front tier,
    // not straight at one server.
    outcome.backend = "fleet";

    let flood = flood(router, scenario.flood_connections);
    let fleet = fleet_check(
        router,
        &node_addrs,
        scenario.campaign_count(),
        kill_pid.is_some(),
        killed.load(Ordering::Acquire),
    )?;
    Ok((
        outcome,
        SocketExtras {
            flood,
            crosscheck: None,
            trace: None,
            trace_export: None,
            server_pool: None,
            fleet: Some(fleet),
        },
    ))
}

/// SIGKILL `pid` once the run is provably mid-drive: every campaign
/// created **and solved** (so the router holds a failover checkpoint
/// for each) and every campaign quoted at least once. If the driver
/// finishes first the watcher exits without firing and the fleet gate
/// fails loudly on `killed == false` — a profile too small to be
/// killable must not pass silently.
fn kill_watcher(
    pid: u32,
    scenario: &Scenario,
    instruments: &RunInstruments,
    done: &AtomicBool,
    killed: &AtomicBool,
) {
    let total = scenario.campaign_count() as u64;
    loop {
        let solved = instruments.op_count(Op::Solve) >= total;
        let quoted = instruments.op_count(Op::Price) + instruments.bulk_quote_items.get() >= total;
        if solved && quoted {
            // No libc in the tree: shell out for the signal. `-KILL`
            // specifically — the backend must die without a goodbye so
            // the router's unplanned-failover path (checkpoint
            // restores) is what the gates exercise.
            let status = std::process::Command::new("kill")
                .args(["-KILL", &pid.to_string()])
                .status();
            if matches!(status, Ok(s) if s.success()) {
                // ORDERING: Release pairs with the harness's Acquire
                // load after the scope joins this thread.
                killed.store(true, Ordering::Release);
            }
            return;
        }
        if done.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

/// The fleet epilogue. Order matters: the census and report sweep go
/// first (their traffic triggers failover of a killed node and bumps
/// campaign-plane counters), then the router's merged `/metrics` is
/// captured, then the per-node scrapes — by then the campaign plane is
/// quiescent, so merged-vs-sum must reconcile exactly.
fn fleet_check(
    router: SocketAddr,
    nodes: &[SocketAddr],
    campaigns_expected: usize,
    kill_requested: bool,
    killed: bool,
) -> Result<FleetCheckOutcome, String> {
    let get = |addr: SocketAddr, path: &str| -> Result<Value, String> {
        let (status, body) = ft_server::client::request(addr, "GET", path, None)
            .map_err(|e| format!("GET {path}: {e}"))?;
        if status != 200 {
            return Err(format!("GET {path}: HTTP {status}"));
        }
        serde_json::from_str(&body).map_err(|e| format!("GET {path}: bad JSON: {e}"))
    };

    // Zero-lost census through the router (merged across live nodes;
    // the sweep fails dead nodes over before counting).
    let census = get(router, "/campaigns")?;
    let census_fields = census.as_map().ok_or("census: not an object")?;
    let campaigns_listed = map_get(census_fields, "total")
        .ok()
        .and_then(Value::as_num)
        .ok_or("census: missing `total`")? as usize;
    let ids: Vec<u64> = map_get(census_fields, "campaigns")
        .ok()
        .and_then(Value::as_seq)
        .ok_or("census: missing `campaigns`")?
        .iter()
        .filter_map(|c| map_get(c.as_map()?, "id").ok()?.as_num())
        .map(|id| id as u64)
        .collect();

    // Every listed campaign must still answer its report — across the
    // flip, off a survivor.
    let mut reports_ok = 0;
    for &id in &ids {
        if get(router, &format!("/campaigns/{id}")).is_ok() {
            reports_ok += 1;
        }
    }

    // Membership per the router, pinned against the launcher's own
    // node list (per-node truth must not depend on asking the router
    // where its nodes are).
    let membership = get(router, "/fleet")?;
    let rows = membership
        .as_map()
        .and_then(|m| map_get(m, "nodes").ok())
        .and_then(Value::as_seq)
        .ok_or("GET /fleet: missing `nodes`")?;
    if rows.len() != nodes.len() {
        return Err(format!(
            "GET /fleet reports {} nodes; --fleet-nodes listed {}",
            rows.len(),
            nodes.len()
        ));
    }
    let mut alive = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let fields = row.as_map().ok_or("GET /fleet: row not an object")?;
        let is_alive = matches!(map_get(fields, "alive"), Ok(Value::Bool(true)));
        let addr = map_get(fields, "addr")
            .ok()
            .and_then(Value::as_str)
            .ok_or("GET /fleet: row without addr")?;
        if addr != nodes[i].to_string() {
            return Err(format!(
                "GET /fleet node {i} is {addr}; --fleet-nodes said {}",
                nodes[i]
            ));
        }
        alive.push(is_alive);
    }
    let nodes_alive = alive.iter().filter(|&&a| a).count();

    // Merged first, node scrapes second (see ordering note above).
    let merged = get(router, "/metrics?buckets=1")?;
    let merged_entries = merged.as_map().ok_or("merged /metrics: not an object")?;
    let mut sums: Vec<(String, u64)> = Vec::new();
    for (&addr, &is_alive) in nodes.iter().zip(&alive) {
        if !is_alive {
            continue;
        }
        let scrape = get(addr, "/metrics?buckets=1")?;
        for (name, value) in scrape.as_map().ok_or("node /metrics: not an object")? {
            if !campaign_plane_metric(name) {
                continue;
            }
            let Some(v) = metric_count(value) else {
                continue;
            };
            match sums.iter_mut().find(|(n, _)| n == name) {
                Some((_, total)) => *total += v,
                None => sums.push((name.clone(), v)),
            }
        }
    }
    let mut metrics: Vec<FleetMetricEntry> = Vec::new();
    for (name, value) in merged_entries {
        if !campaign_plane_metric(name) {
            continue;
        }
        let Some(merged_value) = metric_count(value) else {
            continue;
        };
        let node_sum = sums
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, total)| *total);
        metrics.push(FleetMetricEntry {
            name: name.clone(),
            merged: merged_value,
            node_sum,
        });
    }
    // Symmetric: a campaign-plane name the nodes carry but the merge
    // dropped must fail the match too.
    for (name, total) in &sums {
        if !metrics.iter().any(|e| &e.name == name) {
            metrics.push(FleetMetricEntry {
                name: name.clone(),
                merged: 0,
                node_sum: *total,
            });
        }
    }
    let metrics_matched = !metrics.is_empty() && metrics.iter().all(|e| e.merged == e.node_sum);

    Ok(FleetCheckOutcome {
        nodes_total: nodes.len(),
        nodes_alive,
        kill_requested,
        killed,
        campaigns_expected,
        campaigns_listed,
        reports_attempted: ids.len(),
        reports_ok,
        metrics,
        metrics_matched,
    })
}

/// Names whose merged value must equal the per-node sum at
/// quiescence: the campaign plane only. Serving-plane counters
/// (`endpoint="metrics"`, `healthz`, connection gauges) move with the
/// crosscheck's own scrape traffic and can never reconcile.
fn campaign_plane_metric(name: &str) -> bool {
    name.starts_with("ft_core_")
        || name.starts_with("ft_server_requests_total{endpoint=\"campaign")
        || name.starts_with("ft_server_request_ns{endpoint=\"campaign")
}

/// A metric's comparable magnitude: the value itself for scalars, the
/// sample count for histograms.
fn metric_count(value: &Value) -> Option<u64> {
    match value {
        Value::Num(n) if n.is_finite() => Some(*n as u64),
        Value::Map(fields) => map_get(fields, "count")
            .ok()
            .and_then(Value::as_num)
            .map(|n| n as u64),
        _ => None,
    }
}

/// Resolve `host:port` and probe `/healthz` on each resolved address
/// in turn (a dual-stack hostname can resolve `::1` first while the
/// server listens on `127.0.0.1` only), returning the first address
/// that answers 200 — or a readable error naming every failure.
fn probe_target(target: &str) -> Result<SocketAddr, String> {
    let addrs: Vec<SocketAddr> = target
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve --target {target}: {e}"))?
        .collect();
    if addrs.is_empty() {
        return Err(format!("--target {target} resolved to no address"));
    }
    let mut failures = Vec::new();
    for addr in addrs {
        match ft_server::client::request(addr, "GET", "/healthz", None) {
            Ok((200, _)) => return Ok(addr),
            Ok((status, _)) => failures.push(format!("{addr}: /healthz answered HTTP {status}")),
            Err(e) => failures.push(format!("{addr}: {e}")),
        }
    }
    Err(format!(
        "target {target}: no resolved address answered /healthz ({})",
        failures.join("; ")
    ))
}

/// Open `connections` concurrent connections, each making one request.
/// The server must answer every one — 200 when a worker is free, 503
/// when the bounded queue is full — and never hang or drop one.
fn flood(addr: SocketAddr, connections: usize) -> FloodOutcome {
    let mut statuses = Vec::with_capacity(connections);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                s.spawn(
                    move || match ft_server::client::request(addr, "GET", "/healthz", None) {
                        Ok((status, _)) => status,
                        Err(_) => 0,
                    },
                )
            })
            .collect();
        for handle in handles {
            statuses.push(handle.join().unwrap_or(0));
        }
    });
    FloodOutcome {
        connections,
        ok: statuses.iter().filter(|&&s| s == 200).count(),
        busy: statuses.iter().filter(|&&s| s == 503).count(),
        failed: statuses.iter().filter(|&&s| s != 200 && s != 503).count(),
    }
}

/// Fetch `/metrics` and reconcile the server's request accounting
/// against what this client actually sent.
fn crosscheck(addr: SocketAddr, instruments: &RunInstruments) -> Result<CrosscheckOutcome, String> {
    let (status, body) = ft_server::client::request(addr, "GET", "/metrics", None)
        .map_err(|e| format!("GET /metrics: {e}"))?;
    if status != 200 {
        return Err(format!("GET /metrics: HTTP {status}"));
    }
    let metrics: Value =
        serde_json::from_str(&body).map_err(|e| format!("GET /metrics: bad JSON: {e}"))?;
    let map = metrics
        .as_map()
        .ok_or_else(|| "GET /metrics: not an object".to_string())?;
    let server_num = |name: &str| -> u64 {
        map_get(map, name)
            .ok()
            .and_then(Value::as_num)
            .map_or(0, |v| v as u64)
    };

    let pairs = [
        (Op::Create, "campaign_create"),
        (Op::Solve, "campaign_solve"),
        (Op::Price, "campaign_price"),
        (Op::Observe, "campaign_observe"),
        (Op::PriceBulk, "campaigns_quotes"),
        (Op::ObserveBulk, "campaigns_observations"),
    ];
    let mut entries: Vec<CrosscheckEntry> = pairs
        .iter()
        .map(|&(op, endpoint)| CrosscheckEntry {
            name: format!("requests[{}]", op.label()),
            client: instruments.op_count(op),
            server: server_num(&format!(
                "ft_server_requests_total{{endpoint=\"{endpoint}\"}}"
            )),
        })
        .collect();
    // The registry's own plane rides on the same export: quotes must
    // match price requests (single ops plus the items carried inside
    // bulk round trips), and the recalibrations the client saw in
    // observation responses must match the registry's counter.
    entries.push(CrosscheckEntry {
        name: "quotes".into(),
        client: instruments.op_count(Op::Price) + instruments.bulk_quote_items.get(),
        server: server_num("ft_core_quotes_total"),
    });
    entries.push(CrosscheckEntry {
        name: "recalibrations".into(),
        client: instruments.recalibrations.get(),
        server: server_num("ft_core_recalibrations_total"),
    });
    let matched = entries.iter().all(|e| e.client == e.server);
    Ok(CrosscheckOutcome { entries, matched })
}

/// Resolve every id this client tagged with `x-ft-trace` via
/// `GET /trace/{id}` and validate the span tree — the tracing plane's
/// equivalent of the `/metrics` crosscheck: a trace the server echoed
/// must actually be openable.
fn trace_check(addr: SocketAddr, ids: &[u64]) -> Result<TraceCheckOutcome, String> {
    let mut resolved = 0;
    let mut failures = Vec::new();
    for &id in ids {
        let path = format!("/trace/{id:016x}");
        match ft_server::client::request(addr, "GET", &path, None) {
            Ok((200, body)) => match validate_trace_body(id, &body) {
                Ok(()) => resolved += 1,
                Err(e) => failures.push(format!("{id:016x}: {e}")),
            },
            Ok((status, _)) => failures.push(format!("{id:016x}: HTTP {status}")),
            Err(e) => return Err(format!("GET {path}: {e}")),
        }
    }
    Ok(TraceCheckOutcome {
        checked: ids.len(),
        resolved,
        failures,
    })
}

/// A stored trace must be a well-formed tree: a non-empty span list
/// with exactly one root (`parent_id == 0`) and every other parent
/// resolving to a span in the same trace, all within the root's
/// interval.
fn validate_trace_body(id: u64, body: &str) -> Result<(), String> {
    let value: Value = serde_json::from_str(body).map_err(|e| format!("bad JSON: {e}"))?;
    let map = value.as_map().ok_or("not an object")?;
    let wire_id = map_get(map, "trace_id")
        .ok()
        .and_then(Value::as_str)
        .ok_or("missing trace_id")?;
    if wire_id != format!("{id:016x}") {
        return Err(format!("trace_id {wire_id} is not the id requested"));
    }
    let spans = map_get(map, "spans")
        .ok()
        .and_then(Value::as_seq)
        .ok_or("missing spans array")?;
    if spans.is_empty() {
        return Err("empty span list".into());
    }
    let field = |span: &Value, key: &str| -> Result<f64, String> {
        map_get(span.as_map().unwrap_or(&[]), key)
            .ok()
            .and_then(Value::as_num)
            .ok_or_else(|| format!("span missing numeric `{key}`"))
    };
    let mut span_ids = Vec::with_capacity(spans.len());
    for span in spans {
        span_ids.push(field(span, "span_id")?);
    }
    let mut roots = 0;
    for span in spans {
        let parent = field(span, "parent_id")?;
        if parent == 0.0 {
            roots += 1;
        } else if !span_ids.contains(&parent) {
            return Err(format!("parent {parent} not in trace"));
        }
        if field(span, "end_ns")? < field(span, "start_ns")? {
            return Err("span interval inverted".into());
        }
    }
    if roots != 1 {
        return Err(format!("{roots} roots (expected 1)"));
    }
    Ok(())
}

/// Capture the server's Chrome trace-event dump (must happen before
/// shutdown; `--trace-out` writes it to disk afterwards).
fn fetch_trace_export(addr: SocketAddr) -> Result<String, String> {
    let (status, body) = ft_server::client::request(addr, "GET", "/trace/export", None)
        .map_err(|e| format!("GET /trace/export: {e}"))?;
    if status != 200 {
        return Err(format!("GET /trace/export: HTTP {status}"));
    }
    Ok(body)
}
