//! Mode orchestration: run a scenario against an in-process registry,
//! or spin up a real `ft-server`, drive it over sockets, flood it, and
//! cross-check the server's `/metrics` against the client's own
//! counts.

use crate::backend::{InProcessBackend, SocketBackend};
use crate::driver::{self, Op, RunInstruments, RunOutcome};
use crate::scenario::Scenario;
use ft_core::adaptive::AdaptiveOptions;
use ft_core::registry::{BudgetDriftOptions, CampaignRegistry, RegistryConfig};
use ft_server::{Server, ServerConfig};
use serde::{map_get, Value};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;

/// Socket-mode extras: the connection-flood phase and (when the
/// harness spawned the server itself) the server-vs-client metrics
/// reconciliation.
pub struct SocketExtras {
    pub flood: FloodOutcome,
    /// `None` when driving an external `--target` server: its metrics
    /// plane may carry traffic from other clients or earlier runs, so
    /// exact reconciliation against this client's counts is undefined.
    pub crosscheck: Option<CrosscheckOutcome>,
    /// Trace resolution check: every id this client tagged (within the
    /// retained window) must come back from `GET /trace/{id}` as a
    /// well-formed span tree. `None` for an external target (it may be
    /// a `trace-off` build).
    pub trace: Option<TraceCheckOutcome>,
    /// The server's Chrome trace-event dump (`GET /trace/export`),
    /// captured before shutdown so `--trace-out` can write it. `None`
    /// for an external target.
    pub trace_export: Option<String>,
    /// Pool sizing of the spawned server; `None` for an external
    /// target (its configuration is not ours to know).
    pub server_pool: Option<ServerPool>,
}

/// Did the ids this client traced resolve into well-formed span trees?
pub struct TraceCheckOutcome {
    /// Ids checked (the backend's retained window).
    pub checked: usize,
    /// Ids that resolved with a well-formed tree.
    pub resolved: usize,
    /// Human-readable description per failed id.
    pub failures: Vec<String>,
}

/// Acceptor-pool sizing of the harness-spawned server.
#[derive(Debug, Clone, Copy)]
pub struct ServerPool {
    pub workers: usize,
    pub queue_depth: usize,
}

/// What happened when `connections` clients hit the server at once.
pub struct FloodOutcome {
    pub connections: usize,
    /// Served normally (200).
    pub ok: usize,
    /// Cleanly rejected at capacity (503).
    pub busy: usize,
    /// Anything else — a hung or dropped connection. Must be 0.
    pub failed: usize,
}

/// One reconciled counter: what the client did vs what the server saw.
pub struct CrosscheckEntry {
    pub name: String,
    pub client: u64,
    pub server: u64,
}

pub struct CrosscheckOutcome {
    pub entries: Vec<CrosscheckEntry>,
    pub matched: bool,
}

fn registry_for(scenario: &Scenario) -> Arc<CampaignRegistry> {
    Arc::new(CampaignRegistry::with_registry_config(RegistryConfig {
        adaptive: AdaptiveOptions {
            resolve_every: scenario.resolve_every,
            ..AdaptiveOptions::default()
        },
        budget_drift: BudgetDriftOptions {
            resolve_every: scenario.resolve_every,
            ..BudgetDriftOptions::default()
        },
        ..RegistryConfig::default()
    }))
}

/// Drive the registry directly, no sockets.
pub fn run_in_process(scenario: &Scenario) -> RunOutcome {
    let backend = InProcessBackend {
        registry: registry_for(scenario),
    };
    let instruments = RunInstruments::new();
    driver::run(scenario, &backend, &instruments)
}

/// Spin up `ft-server` on an ephemeral port, drive it over real
/// sockets, flood it, reconcile `/metrics`, and shut it down.
pub fn run_socket(scenario: &Scenario) -> Result<(RunOutcome, SocketExtras), String> {
    let config = ServerConfig {
        workers: scenario.server_workers.max(1),
        queue_depth: scenario.server_queue_depth.max(1),
        ..ServerConfig::default()
    };
    let (handle, join) = Server::spawn_with("127.0.0.1:0", registry_for(scenario), config)
        .map_err(|e| format!("bind server: {e}"))?;
    let addr = handle.addr();

    let backend = SocketBackend::new(addr);
    let instruments = RunInstruments::new();
    let outcome = driver::run(scenario, &backend, &instruments);
    let flood = flood(addr, scenario.flood_connections);
    let crosscheck = crosscheck(addr, &instruments);
    let trace = trace_check(addr, &backend.traced_ids());
    let trace_export = fetch_trace_export(addr);

    // Shut the server down before propagating a crosscheck failure —
    // an early `?` above this point would leak the serving threads and
    // their listener for the rest of the process.
    handle.shutdown();
    join.join()
        .map_err(|_| "server thread panicked".to_string())?;
    Ok((
        outcome,
        SocketExtras {
            flood,
            crosscheck: Some(crosscheck?),
            trace: Some(trace?),
            trace_export: Some(trace_export?),
            server_pool: Some(ServerPool {
                workers: config.workers,
                queue_depth: config.queue_depth,
            }),
        },
    ))
}

/// Drive an **external** server at `target` (`host:port`) over real
/// sockets — the same workload and flood phase as [`run_socket`], but
/// nothing is spawned in-process and the `/metrics` reconciliation is
/// skipped (an external server's counters may include traffic this
/// client never sent).
pub fn run_socket_target(
    scenario: &Scenario,
    target: &str,
) -> Result<(RunOutcome, SocketExtras), String> {
    let addr = probe_target(target)?;
    let backend = SocketBackend::new(addr);
    let instruments = RunInstruments::new();
    let outcome = driver::run(scenario, &backend, &instruments);
    let flood = flood(addr, scenario.flood_connections);
    Ok((
        outcome,
        SocketExtras {
            flood,
            crosscheck: None,
            trace: None,
            trace_export: None,
            server_pool: None,
        },
    ))
}

/// Resolve `host:port` and probe `/healthz` on each resolved address
/// in turn (a dual-stack hostname can resolve `::1` first while the
/// server listens on `127.0.0.1` only), returning the first address
/// that answers 200 — or a readable error naming every failure.
fn probe_target(target: &str) -> Result<SocketAddr, String> {
    let addrs: Vec<SocketAddr> = target
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve --target {target}: {e}"))?
        .collect();
    if addrs.is_empty() {
        return Err(format!("--target {target} resolved to no address"));
    }
    let mut failures = Vec::new();
    for addr in addrs {
        match ft_server::client::request(addr, "GET", "/healthz", None) {
            Ok((200, _)) => return Ok(addr),
            Ok((status, _)) => failures.push(format!("{addr}: /healthz answered HTTP {status}")),
            Err(e) => failures.push(format!("{addr}: {e}")),
        }
    }
    Err(format!(
        "target {target}: no resolved address answered /healthz ({})",
        failures.join("; ")
    ))
}

/// Open `connections` concurrent connections, each making one request.
/// The server must answer every one — 200 when a worker is free, 503
/// when the bounded queue is full — and never hang or drop one.
fn flood(addr: SocketAddr, connections: usize) -> FloodOutcome {
    let mut statuses = Vec::with_capacity(connections);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                s.spawn(
                    move || match ft_server::client::request(addr, "GET", "/healthz", None) {
                        Ok((status, _)) => status,
                        Err(_) => 0,
                    },
                )
            })
            .collect();
        for handle in handles {
            statuses.push(handle.join().unwrap_or(0));
        }
    });
    FloodOutcome {
        connections,
        ok: statuses.iter().filter(|&&s| s == 200).count(),
        busy: statuses.iter().filter(|&&s| s == 503).count(),
        failed: statuses.iter().filter(|&&s| s != 200 && s != 503).count(),
    }
}

/// Fetch `/metrics` and reconcile the server's request accounting
/// against what this client actually sent.
fn crosscheck(addr: SocketAddr, instruments: &RunInstruments) -> Result<CrosscheckOutcome, String> {
    let (status, body) = ft_server::client::request(addr, "GET", "/metrics", None)
        .map_err(|e| format!("GET /metrics: {e}"))?;
    if status != 200 {
        return Err(format!("GET /metrics: HTTP {status}"));
    }
    let metrics: Value =
        serde_json::from_str(&body).map_err(|e| format!("GET /metrics: bad JSON: {e}"))?;
    let map = metrics
        .as_map()
        .ok_or_else(|| "GET /metrics: not an object".to_string())?;
    let server_num = |name: &str| -> u64 {
        map_get(map, name)
            .ok()
            .and_then(Value::as_num)
            .map_or(0, |v| v as u64)
    };

    let pairs = [
        (Op::Create, "campaign_create"),
        (Op::Solve, "campaign_solve"),
        (Op::Price, "campaign_price"),
        (Op::Observe, "campaign_observe"),
        (Op::PriceBulk, "campaigns_quotes"),
        (Op::ObserveBulk, "campaigns_observations"),
    ];
    let mut entries: Vec<CrosscheckEntry> = pairs
        .iter()
        .map(|&(op, endpoint)| CrosscheckEntry {
            name: format!("requests[{}]", op.label()),
            client: instruments.op_count(op),
            server: server_num(&format!(
                "ft_server_requests_total{{endpoint=\"{endpoint}\"}}"
            )),
        })
        .collect();
    // The registry's own plane rides on the same export: quotes must
    // match price requests (single ops plus the items carried inside
    // bulk round trips), and the recalibrations the client saw in
    // observation responses must match the registry's counter.
    entries.push(CrosscheckEntry {
        name: "quotes".into(),
        client: instruments.op_count(Op::Price) + instruments.bulk_quote_items.get(),
        server: server_num("ft_core_quotes_total"),
    });
    entries.push(CrosscheckEntry {
        name: "recalibrations".into(),
        client: instruments.recalibrations.get(),
        server: server_num("ft_core_recalibrations_total"),
    });
    let matched = entries.iter().all(|e| e.client == e.server);
    Ok(CrosscheckOutcome { entries, matched })
}

/// Resolve every id this client tagged with `x-ft-trace` via
/// `GET /trace/{id}` and validate the span tree — the tracing plane's
/// equivalent of the `/metrics` crosscheck: a trace the server echoed
/// must actually be openable.
fn trace_check(addr: SocketAddr, ids: &[u64]) -> Result<TraceCheckOutcome, String> {
    let mut resolved = 0;
    let mut failures = Vec::new();
    for &id in ids {
        let path = format!("/trace/{id:016x}");
        match ft_server::client::request(addr, "GET", &path, None) {
            Ok((200, body)) => match validate_trace_body(id, &body) {
                Ok(()) => resolved += 1,
                Err(e) => failures.push(format!("{id:016x}: {e}")),
            },
            Ok((status, _)) => failures.push(format!("{id:016x}: HTTP {status}")),
            Err(e) => return Err(format!("GET {path}: {e}")),
        }
    }
    Ok(TraceCheckOutcome {
        checked: ids.len(),
        resolved,
        failures,
    })
}

/// A stored trace must be a well-formed tree: a non-empty span list
/// with exactly one root (`parent_id == 0`) and every other parent
/// resolving to a span in the same trace, all within the root's
/// interval.
fn validate_trace_body(id: u64, body: &str) -> Result<(), String> {
    let value: Value = serde_json::from_str(body).map_err(|e| format!("bad JSON: {e}"))?;
    let map = value.as_map().ok_or("not an object")?;
    let wire_id = map_get(map, "trace_id")
        .ok()
        .and_then(Value::as_str)
        .ok_or("missing trace_id")?;
    if wire_id != format!("{id:016x}") {
        return Err(format!("trace_id {wire_id} is not the id requested"));
    }
    let spans = map_get(map, "spans")
        .ok()
        .and_then(Value::as_seq)
        .ok_or("missing spans array")?;
    if spans.is_empty() {
        return Err("empty span list".into());
    }
    let field = |span: &Value, key: &str| -> Result<f64, String> {
        map_get(span.as_map().unwrap_or(&[]), key)
            .ok()
            .and_then(Value::as_num)
            .ok_or_else(|| format!("span missing numeric `{key}`"))
    };
    let mut span_ids = Vec::with_capacity(spans.len());
    for span in spans {
        span_ids.push(field(span, "span_id")?);
    }
    let mut roots = 0;
    for span in spans {
        let parent = field(span, "parent_id")?;
        if parent == 0.0 {
            roots += 1;
        } else if !span_ids.contains(&parent) {
            return Err(format!("parent {parent} not in trace"));
        }
        if field(span, "end_ns")? < field(span, "start_ns")? {
            return Err("span interval inverted".into());
        }
    }
    if roots != 1 {
        return Err(format!("{roots} roots (expected 1)"));
    }
    Ok(())
}

/// Capture the server's Chrome trace-event dump (must happen before
/// shutdown; `--trace-out` writes it to disk afterwards).
fn fetch_trace_export(addr: SocketAddr) -> Result<String, String> {
    let (status, body) = ft_server::client::request(addr, "GET", "/trace/export", None)
        .map_err(|e| format!("GET /trace/export: {e}"))?;
    if status != 200 {
        return Err(format!("GET /trace/export: HTTP {status}"));
    }
    Ok(body)
}
