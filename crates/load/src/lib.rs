//! # ft-load
//!
//! The closed-loop traffic subsystem: a scenario-driven workload
//! generator that makes the serving stack face what the ROADMAP
//! promises it can take — a fleet of deadline and budget campaigns
//! priced live while a drifting worker population (NHPP arrivals from
//! `ft-market`, logit acceptance) responds to every posted price and
//! the outcomes are fed straight back through `observe()`, so
//! recalibration fires *under load*, not in a unit test.
//!
//! Two drive modes share one driver:
//!
//! - **in-process** — straight into [`ft_core::registry::CampaignRegistry`],
//!   measuring the raw serving path;
//! - **socket** — over real TCP against a spawned `ft-server`,
//!   measuring the full HTTP stack, then flooding it with concurrent
//!   connections (the bounded acceptor pool must answer every one with
//!   200 or a clean 503) and reconciling the server's `GET /metrics`
//!   against the client's own counts.
//!
//! Every run self-checks: zero request errors, zero clamped metric
//! samples, op counters exactly equal to merged histogram totals (a
//! torn merge would break that), at least one recalibration, and — in
//! socket mode — a matching `/metrics` reconciliation. The binary
//! writes `BENCH_load.json` and exits non-zero if any gate fails,
//! which is what CI runs:
//!
//! ```text
//! cargo run -p ft-load -- --fast                  # both modes, small fleet
//! cargo run -p ft-load -- --fast --mode socket    # socket only
//! cargo run -p ft-load -- --scenario my.json      # custom fleet spec
//! cargo run -p ft-load -- --target 10.0.0.5:8080  # external ft-server
//! ```
//!
//! With `--target host:port` the socket mode drives an **external**
//! server instead of spawning one in-process — the same workload and
//! connection flood, with the `/metrics` reconciliation gate skipped
//! (the external plane may carry traffic this client never sent).
//!
//! The companion `perf-gate` binary ([`gate`]) is the CI
//! perf-regression gate: it compares a fresh `BENCH_load_*.json`
//! against the checked-in floors in `scripts/perf_floors.json` and
//! fails on regression beyond the configured tolerance.
//!
//! See `ARCHITECTURE.md` for the scenario-spec schema.

pub mod backend;
pub mod driver;
pub mod gate;
pub mod harness;
pub mod report;
pub mod scenario;

pub use backend::{Backend, InProcessBackend, SocketBackend};
pub use driver::{Op, RunInstruments, RunOutcome};
pub use gate::{check_report, check_reports, Floors};
pub use harness::{run_in_process, run_socket, run_socket_fleet, run_socket_target, SocketExtras};
pub use scenario::{CampaignKind, FleetGroup, Scenario};
