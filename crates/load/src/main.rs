//! The `ft-load` binary: run a scenario, print a summary, write
//! `BENCH_load.json`, exit non-zero if any acceptance gate fails.

use ft_load::harness::SocketExtras;
use ft_load::{report, RunOutcome, Scenario};
use ft_metrics::QUANTILES;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    InProcess,
    Socket,
    Both,
}

struct Args {
    scenario: Scenario,
    mode: Mode,
    out: String,
    /// External server (`host:port`) for socket mode; `None` spawns an
    /// in-process `ft-server`.
    target: Option<String>,
    /// Write the socket run's Chrome trace-event dump here.
    trace_out: Option<String>,
    /// Fleet mode: the backend `ft-server` addresses behind the
    /// `--target` router, for the merged-vs-per-node crosscheck.
    fleet_nodes: Option<Vec<String>>,
    /// Fleet mode: SIGKILL this backend process mid-drive.
    kill_pid: Option<u32>,
}

const USAGE: &str = "\
ft-load — closed-loop workload generator for the campaign serving stack

USAGE:
    ft-load [--fast] [--profile NAME] [--scenario FILE]
            [--mode in-process|socket|both] [--target HOST:PORT] [--out FILE]

OPTIONS:
    --fast             seconds-scale variant of the selected profile
                       (default profile: standard)
    --profile NAME     built-in profile: standard | fast | bulk-fast |
                       budget-drift | storm | fleet (budget-drift +
                       --fast = budget-drift-fast; bulk-fast drives the
                       batched quote/observe plane; storm floods the
                       solve scheduler with identical deadline
                       campaigns so recalibration waves share pmf rows
                       — the in-process report carries the cache hit
                       rate the perf gate floors; fleet drives an
                       ft-router front tier — see --fleet-nodes)
    --scenario FILE    JSON scenario spec (overrides --fast/--profile)
    --mode MODE        which backend(s) to drive   [default: both]
    --target HOST:PORT drive an external ft-server instead of spawning
                       one (implies --mode socket; the /metrics
                       crosscheck gate is skipped — an external server
                       may carry traffic this client never sent)
    --out FILE         report path                 [default: BENCH_load.json]
    --trace-out FILE   write the spawned server's GET /trace/export
                       dump (Chrome trace-event JSON, loadable in
                       Perfetto) after the socket run
    --fleet-nodes LIST comma-separated HOST:PORT backends behind the
                       --target router (requires --target); enables the
                       fleet epilogue: zero-lost census, per-campaign
                       report sweep, and the router's merged /metrics
                       reconciled against direct per-node scrapes
    --kill-pid PID     SIGKILL this backend process once the run is
                       mid-drive (requires --fleet-nodes) — the gates
                       then demand zero lost campaigns and 100% quote
                       success across the unplanned ring flip
";

fn parse_args() -> Result<Args, String> {
    let mut fast = false;
    let mut profile: Option<String> = None;
    let mut scenario_path: Option<String> = None;
    let mut mode: Option<Mode> = None;
    let mut target: Option<String> = None;
    let mut out = "BENCH_load.json".to_string();
    let mut trace_out: Option<String> = None;
    let mut fleet_nodes: Option<Vec<String>> = None;
    let mut kill_pid: Option<u32> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--profile" => profile = Some(args.next().ok_or("--profile needs a name")?),
            "--scenario" => {
                scenario_path = Some(args.next().ok_or("--scenario needs a file path")?)
            }
            "--mode" => {
                mode = Some(match args.next().as_deref() {
                    Some("in-process") => Mode::InProcess,
                    Some("socket") => Mode::Socket,
                    Some("both") => Mode::Both,
                    other => return Err(format!("bad --mode {other:?} (in-process|socket|both)")),
                })
            }
            "--target" => target = Some(args.next().ok_or("--target needs HOST:PORT")?),
            "--out" => out = args.next().ok_or("--out needs a file path")?,
            "--trace-out" => trace_out = Some(args.next().ok_or("--trace-out needs a file path")?),
            "--fleet-nodes" => {
                let list = args.next().ok_or("--fleet-nodes needs HOST:PORT[,...]")?;
                let nodes: Vec<String> = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if nodes.is_empty() {
                    return Err("--fleet-nodes needs at least one HOST:PORT".into());
                }
                fleet_nodes = Some(nodes);
            }
            "--kill-pid" => {
                let raw = args.next().ok_or("--kill-pid needs a process id")?;
                kill_pid = Some(
                    raw.parse()
                        .map_err(|_| format!("--kill-pid: `{raw}` is not a pid"))?,
                );
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    let mode = match (&target, mode) {
        // An external target only makes sense for the socket surface.
        (Some(_), None) => Mode::Socket,
        (Some(_), Some(Mode::Socket)) => Mode::Socket,
        (Some(_), Some(_)) => {
            return Err("--target drives an external server; it requires --mode socket".into())
        }
        (None, mode) => mode.unwrap_or(Mode::Both),
    };
    let scenario = match (scenario_path, profile.as_deref()) {
        (Some(path), _) => {
            let json = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
            Scenario::from_json(&json)?
        }
        (None, Some("budget-drift")) => Scenario::budget_drift(fast),
        (None, Some("fast")) => Scenario::fast(),
        (None, Some("bulk-fast")) => Scenario::bulk_fast(),
        (None, Some("storm")) => Scenario::storm(fast),
        (None, Some("fleet")) => Scenario::fleet(fast),
        (None, Some("standard")) => {
            if fast {
                Scenario::fast()
            } else {
                Scenario::standard()
            }
        }
        (None, Some(other)) => {
            return Err(format!(
                "unknown --profile `{other}` (standard | fast | bulk-fast | \
                 budget-drift | storm | fleet)"
            ))
        }
        (None, None) if fast => Scenario::fast(),
        (None, None) => Scenario::standard(),
    };
    if trace_out.is_some() && target.is_some() {
        return Err(
            "--trace-out needs a spawned server (it cannot be combined with --target, \
                    which may point at a trace-off build)"
                .into(),
        );
    }
    if fleet_nodes.is_some() && target.is_none() {
        return Err(
            "--fleet-nodes describes the backends behind a router; it requires \
                    --target ROUTER_HOST:PORT"
                .into(),
        );
    }
    if kill_pid.is_some() && fleet_nodes.is_none() {
        return Err(
            "--kill-pid only makes sense with --fleet-nodes (the fleet gates \
                    are what assert the failover survived)"
                .into(),
        );
    }
    scenario.validate()?;
    Ok(Args {
        scenario,
        mode,
        out,
        target,
        trace_out,
        fleet_nodes,
        kill_pid,
    })
}

fn print_summary(outcome: &RunOutcome, extras: Option<&SocketExtras>) {
    println!(
        "[{}] {} campaigns, {} requests in {:.2}s → {:.0} req/s; \
         {} completions, {} recalibrations ({} budget), {} errors",
        outcome.backend,
        outcome.campaigns,
        outcome.requests,
        outcome.duration_seconds,
        outcome.throughput_rps(),
        outcome.completions,
        outcome.recalibrations,
        outcome.budget_recalibrations,
        outcome.errors,
    );
    for (op, snapshot) in &outcome.latency {
        if snapshot.count == 0 {
            continue;
        }
        let quantiles: Vec<String> = QUANTILES
            .iter()
            .map(|&(label, q)| {
                format!(
                    "{label}={:.1}µs",
                    snapshot.quantile(q).unwrap_or(0) as f64 / 1000.0
                )
            })
            .collect();
        println!(
            "  {op:<8} n={:<6} mean={:.1}µs {}",
            snapshot.count,
            snapshot.mean() / 1000.0,
            quantiles.join(" ")
        );
    }
    // The batched-solving tier's own accounting (in-process runs): how
    // the solves batched into waves and how hard each wave's shared
    // pmf cache worked — the storm profile's reason to exist.
    if let Some(stats) = &outcome.pmf_cache {
        let per_wave: Vec<String> = stats
            .per_wave
            .iter()
            .map(|w| format!("#{}:{}", w.wave, w.solves))
            .collect();
        println!(
            "  pmf cache: {} solves across {} waves, hit rate {:.3} ({}/{} row lookups); \
             per-wave solves [{}]",
            stats.solves,
            stats.waves,
            stats.hit_rate(),
            stats.hits,
            stats.lookups,
            per_wave.join(" ")
        );
    }
    // Clamped samples fell outside the histogram range, so the tail
    // quantiles above silently understate them — say so out loud (the
    // gate also fails the run).
    let clamped: u64 = outcome.latency.iter().map(|(_, s)| s.clamped).sum();
    if clamped > 0 {
        println!(
            "  WARNING: {clamped} latency sample(s) clamped to the histogram range — \
             tail quantiles above are underestimates"
        );
    }
    if let Some(extras) = extras {
        let pool = match &extras.server_pool {
            Some(pool) => format!(
                " (pool: {} workers, queue {})",
                pool.workers, pool.queue_depth
            ),
            None => " (external target)".to_string(),
        };
        println!(
            "  flood: {} connections → {} ok, {} busy-rejected, {} failed{pool}",
            extras.flood.connections, extras.flood.ok, extras.flood.busy, extras.flood.failed,
        );
        match &extras.crosscheck {
            None => println!("  /metrics crosscheck: skipped (external target)"),
            Some(crosscheck) if crosscheck.matched => println!("  /metrics crosscheck: matched"),
            Some(crosscheck) => println!(
                "  /metrics crosscheck: MISMATCH ({})",
                crosscheck
                    .entries
                    .iter()
                    .filter(|e| e.client != e.server)
                    .map(|e| format!("{} {}≠{}", e.name, e.client, e.server))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }
        if let Some(fleet) = &extras.fleet {
            println!(
                "  fleet: {}/{} nodes alive{}; census {}/{} campaigns, reports {}/{}; \
                 merged /metrics vs node truth: {}",
                fleet.nodes_alive,
                fleet.nodes_total,
                match (fleet.kill_requested, fleet.killed) {
                    (true, true) => " (one SIGKILLed mid-drive)",
                    (true, false) => " (kill armed but NEVER FIRED)",
                    (false, _) => "",
                },
                fleet.campaigns_listed,
                fleet.campaigns_expected,
                fleet.reports_ok,
                fleet.reports_attempted,
                if fleet.metrics_matched {
                    "matched".to_string()
                } else {
                    format!(
                        "MISMATCH ({})",
                        fleet
                            .metrics
                            .iter()
                            .filter(|e| e.merged != e.node_sum)
                            .map(|e| format!("{} {}≠{}", e.name, e.merged, e.node_sum))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                },
            );
        }
        match &extras.trace {
            None => println!("  trace crosscheck: skipped (external target)"),
            Some(trace) if trace.failures.is_empty() && trace.resolved == trace.checked => {
                println!(
                    "  trace crosscheck: {}/{} tagged ids resolved with well-formed span trees",
                    trace.resolved, trace.checked
                )
            }
            Some(trace) => println!(
                "  trace crosscheck: FAILED {}/{} resolved ({})",
                trace.resolved,
                trace.checked,
                trace.failures.join(", ")
            ),
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("ft-load: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "scenario `{}`: {} campaigns, {} workers, {} intervals, drift {}",
        args.scenario.name,
        args.scenario.campaign_count(),
        args.scenario.concurrency,
        args.scenario.intervals,
        args.scenario.drift,
    );

    let mut runs: Vec<(RunOutcome, Option<SocketExtras>)> = Vec::new();
    let mut failures = Vec::new();

    if matches!(args.mode, Mode::InProcess | Mode::Both) {
        let outcome = ft_load::run_in_process(&args.scenario);
        print_summary(&outcome, None);
        failures.extend(report::evaluate_gates(&args.scenario, &outcome, None));
        runs.push((outcome, None));
    }
    if matches!(args.mode, Mode::Socket | Mode::Both) {
        let socket_run = match (&args.target, &args.fleet_nodes) {
            (Some(target), Some(nodes)) => {
                ft_load::run_socket_fleet(&args.scenario, target, nodes, args.kill_pid)
            }
            (Some(target), None) => ft_load::run_socket_target(&args.scenario, target),
            (None, _) => ft_load::run_socket(&args.scenario),
        };
        match socket_run {
            Ok((outcome, extras)) => {
                print_summary(&outcome, Some(&extras));
                failures.extend(report::evaluate_gates(
                    &args.scenario,
                    &outcome,
                    Some(&extras),
                ));
                runs.push((outcome, Some(extras)));
            }
            Err(e) => failures.push(format!("[socket] harness: {e}")),
        }
    }

    let document = report::render(&args.scenario, &runs);
    let json = serde_json::to_string(&document).expect("render report");
    if let Err(e) = std::fs::write(&args.out, &json) {
        failures.push(format!("write {}: {e}", args.out));
    } else {
        println!("report written to {}", args.out);
    }

    if let Some(path) = &args.trace_out {
        let export = runs
            .iter()
            .find_map(|(_, extras)| extras.as_ref().and_then(|e| e.trace_export.clone()));
        match export {
            Some(export) => {
                if let Err(e) = std::fs::write(path, &export) {
                    failures.push(format!("write {path}: {e}"));
                } else {
                    println!("trace export written to {path}");
                }
            }
            None => failures.push(format!(
                "--trace-out {path}: no trace export captured (socket run missing or failed)"
            )),
        }
    }

    if !failures.is_empty() {
        eprintln!("\nFAILED gates:");
        for failure in &failures {
            eprintln!("  - {failure}");
        }
        std::process::exit(1);
    }
    println!("all gates passed.");
}
