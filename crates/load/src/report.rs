//! `BENCH_load.json` rendering and the acceptance gates a run must
//! clear before the binary exits 0.

use crate::driver::RunOutcome;
use crate::harness::SocketExtras;
use crate::scenario::Scenario;
use ft_metrics::{HistogramSnapshot, QUANTILES};
use serde::Value;

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(x: f64) -> Value {
    Value::Num(x)
}

fn latency_value(snapshot: &HistogramSnapshot) -> Value {
    let mut fields = vec![
        ("count", num(snapshot.count as f64)),
        ("mean_ns", num(snapshot.mean())),
        ("clamped", num(snapshot.clamped as f64)),
    ];
    for (label, q) in QUANTILES {
        fields.push((
            label,
            match snapshot.quantile(q) {
                Some(v) => num(v as f64),
                None => Value::Null,
            },
        ));
    }
    map(fields)
}

fn run_value(outcome: &RunOutcome, extras: Option<&SocketExtras>) -> Value {
    let mut fields = vec![
        ("backend", Value::Str(outcome.backend.into())),
        ("duration_seconds", num(outcome.duration_seconds)),
        ("campaigns", num(outcome.campaigns as f64)),
        ("requests_total", num(outcome.requests as f64)),
        ("throughput_rps", num(outcome.throughput_rps())),
        ("errors_total", num(outcome.errors as f64)),
        ("recalibrations", num(outcome.recalibrations as f64)),
        (
            "budget_recalibrations",
            num(outcome.budget_recalibrations as f64),
        ),
        ("completions_total", num(outcome.completions as f64)),
        ("budget_exhaustions", num(outcome.budget_exhaustions as f64)),
        ("bulk_quote_items", num(outcome.bulk_quote_items as f64)),
        ("bulk_observe_items", num(outcome.bulk_observe_items as f64)),
        ("dropped_samples", num(outcome.dropped_samples as f64)),
        ("torn_mismatches", num(outcome.torn_mismatches as f64)),
        (
            "requests_by_op",
            Value::Map(
                outcome
                    .op_counts
                    .iter()
                    .map(|(op, n)| (op.to_string(), num(*n as f64)))
                    .collect(),
            ),
        ),
        (
            "latency_ns_by_op",
            Value::Map(
                outcome
                    .latency
                    .iter()
                    .map(|(op, snapshot)| (op.to_string(), latency_value(snapshot)))
                    .collect(),
            ),
        ),
    ];
    if let Some(stats) = &outcome.pmf_cache {
        fields.push((
            "pmf_cache",
            map(vec![
                ("waves", num(stats.waves as f64)),
                ("batched_solves", num(stats.solves as f64)),
                ("row_lookups", num(stats.lookups as f64)),
                ("row_hits", num(stats.hits as f64)),
                ("hit_rate", num(stats.hit_rate())),
                (
                    "note",
                    Value::Str(
                        "hit_rate = shared pmf-cache row hits ÷ lookups across all \
                         scheduler waves; the checked-in capture comes from a 1-core \
                         container, where admissions serialize and waves fill from one \
                         stream — multicore hosts batch concurrent solves into the same \
                         waves and should see an equal or higher rate"
                            .into(),
                    ),
                ),
                (
                    "per_wave",
                    Value::Seq(
                        stats
                            .per_wave
                            .iter()
                            .map(|w| {
                                map(vec![
                                    ("wave", num(w.wave as f64)),
                                    ("solves", num(w.solves as f64)),
                                    ("row_lookups", num(w.lookups as f64)),
                                    ("row_hits", num(w.hits as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    if !outcome.error_samples.is_empty() {
        fields.push((
            "error_samples",
            Value::Seq(
                outcome
                    .error_samples
                    .iter()
                    .map(|e| Value::Str(e.clone()))
                    .collect(),
            ),
        ));
    }
    if let Some(extras) = extras {
        if let Some(pool) = &extras.server_pool {
            fields.push((
                "server_pool",
                map(vec![
                    ("workers", num(pool.workers as f64)),
                    ("queue_depth", num(pool.queue_depth as f64)),
                ]),
            ));
        }
        fields.push((
            "flood",
            map(vec![
                ("connections", num(extras.flood.connections as f64)),
                ("ok", num(extras.flood.ok as f64)),
                ("busy_rejected", num(extras.flood.busy as f64)),
                ("failed", num(extras.flood.failed as f64)),
            ]),
        ));
        if let Some(crosscheck) = &extras.crosscheck {
            fields.push((
                "metrics_crosscheck",
                map(vec![
                    ("matched", Value::Bool(crosscheck.matched)),
                    (
                        "entries",
                        Value::Seq(
                            crosscheck
                                .entries
                                .iter()
                                .map(|e| {
                                    map(vec![
                                        ("name", Value::Str(e.name.clone())),
                                        ("client", num(e.client as f64)),
                                        ("server", num(e.server as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(fleet) = &extras.fleet {
            fields.push((
                "fleet",
                map(vec![
                    ("nodes_total", num(fleet.nodes_total as f64)),
                    ("nodes_alive", num(fleet.nodes_alive as f64)),
                    ("kill_requested", Value::Bool(fleet.kill_requested)),
                    ("killed", Value::Bool(fleet.killed)),
                    ("campaigns_expected", num(fleet.campaigns_expected as f64)),
                    ("campaigns_listed", num(fleet.campaigns_listed as f64)),
                    ("reports_attempted", num(fleet.reports_attempted as f64)),
                    ("reports_ok", num(fleet.reports_ok as f64)),
                    ("metrics_merge_matched", Value::Bool(fleet.metrics_matched)),
                    (
                        "metrics_merge",
                        Value::Seq(
                            fleet
                                .metrics
                                .iter()
                                .map(|e| {
                                    map(vec![
                                        ("name", Value::Str(e.name.clone())),
                                        ("merged", num(e.merged as f64)),
                                        ("node_sum", num(e.node_sum as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(trace) = &extras.trace {
            fields.push((
                "trace_crosscheck",
                map(vec![
                    ("checked", num(trace.checked as f64)),
                    ("resolved", num(trace.resolved as f64)),
                    (
                        "failures",
                        Value::Seq(
                            trace
                                .failures
                                .iter()
                                .map(|f| Value::Str(f.clone()))
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
    }
    map(fields)
}

/// The full report document.
pub fn render(scenario: &Scenario, runs: &[(RunOutcome, Option<SocketExtras>)]) -> Value {
    let generated = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0.0, |d| d.as_secs_f64());
    let mut fields = vec![
        ("scenario", Value::Str(scenario.name.clone())),
        ("generated_unix", num(generated)),
        ("seed", num(scenario.seed as f64)),
        ("concurrency", num(scenario.concurrency as f64)),
        ("intervals", num(scenario.intervals as f64)),
        ("drift", num(scenario.drift)),
        ("bulk", num(scenario.bulk as f64)),
        ("campaigns", num(scenario.campaign_count() as f64)),
    ];
    // When the same document carries both backends, summarize the
    // socket tax directly: socket throughput as a fraction of the
    // in-process run's (1.0 = free sockets; the serving tier's target
    // is ≥ 0.5, i.e. within 2× of in-process).
    let find = |label: &str| {
        runs.iter()
            .find(|(outcome, _)| outcome.backend == label)
            .map(|(outcome, _)| outcome.throughput_rps())
    };
    if let (Some(socket), Some(in_process)) = (find("socket"), find("in_process")) {
        if in_process > 0.0 {
            fields.push(("socket_throughput_ratio", num(socket / in_process)));
            fields.push((
                "socket_throughput_ratio_note",
                Value::Str(
                    "socket ÷ in_process throughput from this invocation; the checked-in \
                     capture comes from a 1-core container, where reactor and client share \
                     the core — multicore hosts should see a higher ratio"
                        .into(),
                ),
            ));
        }
    }
    fields.push((
        "runs",
        Value::Seq(
            runs.iter()
                .map(|(outcome, extras)| run_value(outcome, extras.as_ref()))
                .collect(),
        ),
    ));
    map(fields)
}

/// The hard gates: a CI smoke run (and the acceptance bar) fails on
/// any of these. Returns human-readable failure descriptions. The
/// recalibration gate applies only when the scenario can trigger one
/// ([`Scenario::expects_recalibration`]) — a flawless budget-only or
/// no-drift run passes.
pub fn evaluate_gates(
    scenario: &Scenario,
    outcome: &RunOutcome,
    extras: Option<&SocketExtras>,
) -> Vec<String> {
    let mode = outcome.backend;
    let mut failures = Vec::new();
    if outcome.requests == 0 || outcome.throughput_rps() <= 0.0 {
        failures.push(format!("[{mode}] zero throughput"));
    }
    if outcome.errors > 0 {
        failures.push(format!(
            "[{mode}] {} request errors (first: {})",
            outcome.errors,
            outcome.error_samples.first().map_or("?", |s| s.as_str())
        ));
    }
    if outcome.dropped_samples > 0 {
        failures.push(format!(
            "[{mode}] {} dropped (clamped) metric samples",
            outcome.dropped_samples
        ));
    }
    if outcome.torn_mismatches > 0 {
        failures.push(format!(
            "[{mode}] {} torn-merge mismatches between op counters and histograms",
            outcome.torn_mismatches
        ));
    }
    if scenario.expects_recalibration() && outcome.recalibrations == 0 {
        failures.push(format!("[{mode}] no recalibration observed under drift"));
    }
    if scenario.expects_budget_recalibration() && outcome.budget_recalibrations == 0 {
        failures.push(format!(
            "[{mode}] no budget recalibration observed under acceptance drift"
        ));
    }
    for (op, snapshot) in &outcome.latency {
        if snapshot.count > 0 && snapshot.quantile(0.999).is_none() {
            failures.push(format!("[{mode}] no p999 for op {op}"));
        }
    }
    // When the run carries scheduler stats (in-process backend), every
    // solve must have been admitted through a wave — a zero here means
    // the registry stopped routing solves through the scheduler and the
    // storm leg's hit-rate floor would be gating a dead code path.
    if let Some(stats) = &outcome.pmf_cache {
        if stats.solves == 0 {
            failures.push(format!(
                "[{mode}] no batched solves admitted through the solve scheduler"
            ));
        }
        // Budget MDP solves never consult the pmf cache, so the lookup
        // gate only applies when the fleet has deadline campaigns.
        let has_deadline = scenario
            .fleet
            .iter()
            .any(|g| g.kind == crate::scenario::CampaignKind::Deadline && g.count > 0);
        if has_deadline && stats.lookups == 0 {
            failures.push(format!(
                "[{mode}] deadline solves recorded no shared pmf-cache lookups"
            ));
        }
    }
    if let Some(extras) = extras {
        if extras.flood.failed > 0 {
            failures.push(format!(
                "[{mode}] {} flood connections neither served nor cleanly rejected",
                extras.flood.failed
            ));
        }
        if extras.flood.ok + extras.flood.busy != extras.flood.connections {
            failures.push(format!("[{mode}] flood accounting does not add up"));
        }
        // The crosscheck gate applies only when the harness spawned the
        // server itself (an external --target's counters are not ours).
        if let Some(crosscheck) = &extras.crosscheck {
            if !crosscheck.matched {
                let detail: Vec<String> = crosscheck
                    .entries
                    .iter()
                    .filter(|e| e.client != e.server)
                    .map(|e| format!("{}: client {} vs server {}", e.name, e.client, e.server))
                    .collect();
                failures.push(format!(
                    "[{mode}] /metrics does not reconcile: {}",
                    detail.join("; ")
                ));
            }
        }
        // The fleet gates: nothing lost across the ring flip, the
        // SIGKILL actually happened (a run too short to be killable
        // must not pass vacuously), membership reflects it, and the
        // router's merged /metrics is the sum of per-node truth.
        if let Some(fleet) = &extras.fleet {
            if fleet.campaigns_listed != fleet.campaigns_expected {
                failures.push(format!(
                    "[{mode}] lost campaigns: fleet census lists {} of {} registered",
                    fleet.campaigns_listed, fleet.campaigns_expected
                ));
            }
            if fleet.reports_ok != fleet.reports_attempted {
                failures.push(format!(
                    "[{mode}] {}/{} campaigns answered their report after the flip",
                    fleet.reports_ok, fleet.reports_attempted
                ));
            }
            if fleet.kill_requested && !fleet.killed {
                failures.push(format!(
                    "[{mode}] --kill-pid was armed but the run finished before the \
                     SIGKILL could fire mid-drive (profile too small?)"
                ));
            }
            let expected_alive = fleet.nodes_total - usize::from(fleet.killed);
            if fleet.nodes_alive != expected_alive {
                failures.push(format!(
                    "[{mode}] {} of {} nodes alive (expected {expected_alive})",
                    fleet.nodes_alive, fleet.nodes_total
                ));
            }
            if !fleet.metrics_matched {
                let detail: Vec<String> = fleet
                    .metrics
                    .iter()
                    .filter(|e| e.merged != e.node_sum)
                    .map(|e| format!("{}: merged {} vs node sum {}", e.name, e.merged, e.node_sum))
                    .collect();
                failures.push(format!(
                    "[{mode}] merged /metrics does not reconcile with per-node truth: {}",
                    if detail.is_empty() {
                        "no campaign-plane metrics to compare".to_string()
                    } else {
                        detail.join("; ")
                    }
                ));
            }
        }
        // Same spirit for the tracing plane: every id this client
        // tagged must come back from GET /trace/{id} well-formed.
        if let Some(trace) = &extras.trace {
            if trace.checked == 0 {
                failures.push(format!("[{mode}] no traced requests to cross-check"));
            }
            if trace.resolved != trace.checked || !trace.failures.is_empty() {
                failures.push(format!(
                    "[{mode}] {}/{} traced ids resolved; failures: {}",
                    trace.resolved,
                    trace.checked,
                    trace.failures.join("; ")
                ));
            }
        }
    }
    failures
}
