//! The scenario spec: what fleet to run, how hard, and for how long.
//!
//! A scenario is a JSON document (or one of the built-in profiles)
//! describing a **campaign fleet mix** — groups of deadline and budget
//! campaigns with their marketplace models — plus the closed-loop
//! driver's shape: concurrency, simulated intervals, the drift factor
//! between the trained arrival model and the "real" worker population,
//! and the recalibration cadence. `ft-load` turns each group into
//! campaign specs, registers and solves them through the backend, then
//! drives them with arrivals sampled from `ft-market`'s NHPP machinery
//! and acceptances from the group's logit model.

use ft_core::registry::CampaignSpec;
use ft_core::{ActionSet, BudgetProblem, DeadlineProblem, PenaltyModel};
use ft_market::{ConstantRate, LogitAcceptance, PriceGrid};
use serde::{Deserialize, Serialize};

/// Which campaign family a fleet group runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignKind {
    Deadline,
    Budget,
}

/// A homogeneous slice of the fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetGroup {
    pub kind: CampaignKind,
    /// Campaigns in this group.
    pub count: usize,
    /// Batch size per campaign.
    pub n_tasks: u32,
    /// Horizon the trained model covers (deadline) / tick sizing
    /// (budget): one driven round simulates `horizon_hours /
    /// n_intervals` hours.
    pub horizon_hours: f64,
    pub n_intervals: usize,
    /// Trained worker arrival rate (per hour).
    pub arrivals_per_hour: f64,
    /// Price grid in cents.
    pub grid_min: u32,
    pub grid_max: u32,
    /// Logit acceptance parameters (Eq. 3).
    pub logit_s: f64,
    pub logit_b: f64,
    pub logit_m: f64,
    /// Deadline: terminal penalty per unfinished task.
    pub penalty_per_task: f64,
    /// Budget: total budget in cents.
    pub budget_cents: usize,
}

impl FleetGroup {
    pub fn acceptance(&self) -> LogitAcceptance {
        LogitAcceptance::new(self.logit_s, self.logit_b, self.logit_m)
    }

    /// Trained per-interval arrival mass `λ_t`.
    pub fn interval_arrivals(&self) -> f64 {
        self.arrivals_per_hour * self.horizon_hours / self.n_intervals as f64
    }

    /// The campaign spec this group registers for each of its members.
    pub fn spec(&self) -> CampaignSpec {
        let grid = PriceGrid::new(self.grid_min, self.grid_max);
        let acceptance = self.acceptance();
        match self.kind {
            CampaignKind::Deadline => CampaignSpec::Deadline {
                problem: DeadlineProblem::from_market(
                    self.n_tasks,
                    self.horizon_hours,
                    self.n_intervals,
                    &ConstantRate::new(self.arrivals_per_hour),
                    grid,
                    &acceptance,
                    PenaltyModel::Linear {
                        per_task: self.penalty_per_task,
                    },
                ),
                eps: None,
            },
            CampaignKind::Budget => CampaignSpec::Budget {
                problem: BudgetProblem::new(
                    self.n_tasks,
                    self.budget_cents as f64,
                    ActionSet::from_grid(grid, &acceptance),
                    self.arrivals_per_hour,
                ),
            },
        }
    }
}

/// A full workload description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    pub name: String,
    /// Base RNG seed; worker `w` derives `seed + w`.
    pub seed: u64,
    /// Closed-loop driver threads (each owns a fleet partition).
    pub concurrency: usize,
    /// Rounds driven per campaign (clamped to a deadline group's
    /// `n_intervals`).
    pub intervals: usize,
    /// True arrivals = trained × `drift` — below 1.0 the fleet under-
    /// delivers and deadline campaigns recalibrate under load.
    pub drift: f64,
    /// True acceptance = trained × `acceptance_drift` (clamped to 1) —
    /// away from 1.0 workers accept posted prices more/less often than
    /// the trained logit model says, which is the signal the budget
    /// acceptance-drift recalibrator detects from exposure-carrying
    /// observation reports.
    pub acceptance_drift: f64,
    /// Registry recalibration cadence (`AdaptiveOptions::resolve_every`
    /// for deadline campaigns, `BudgetDriftOptions::resolve_every` for
    /// budget ones).
    pub resolve_every: usize,
    /// Socket mode: server pool sizing.
    pub server_workers: usize,
    pub server_queue_depth: usize,
    /// Socket mode: concurrent connections in the flood phase.
    pub flood_connections: usize,
    /// Closed-loop batching width: `> 1` sends each worker partition's
    /// quotes as `price_many` batches of this size (one
    /// `POST /campaigns/quotes` round trip per chunk in socket mode)
    /// and the matching observations as `observe_many` batches. `0` or
    /// `1` keeps the one-request-per-campaign loop.
    pub bulk: usize,
    pub fleet: Vec<FleetGroup>,
}

impl Scenario {
    /// Seconds-not-minutes CI profile: a small mixed fleet, drifting
    /// hard enough that recalibration is guaranteed within the run.
    pub fn fast() -> Self {
        Self {
            name: "fast".into(),
            seed: 7,
            concurrency: 4,
            intervals: 8,
            drift: 0.35,
            acceptance_drift: 1.0,
            resolve_every: 2,
            server_workers: 4,
            server_queue_depth: 16,
            flood_connections: 32,
            bulk: 1,
            fleet: vec![
                FleetGroup {
                    kind: CampaignKind::Deadline,
                    count: 3,
                    n_tasks: 30,
                    horizon_hours: 4.0,
                    n_intervals: 8,
                    arrivals_per_hour: 400.0,
                    grid_min: 0,
                    grid_max: 20,
                    logit_s: 4.0,
                    logit_b: 0.0,
                    logit_m: 30.0,
                    penalty_per_task: 500.0,
                    budget_cents: 0,
                },
                FleetGroup {
                    kind: CampaignKind::Budget,
                    count: 2,
                    n_tasks: 15,
                    horizon_hours: 4.0,
                    n_intervals: 8,
                    arrivals_per_hour: 300.0,
                    grid_min: 1,
                    grid_max: 12,
                    logit_s: 4.0,
                    logit_b: 0.0,
                    logit_m: 20.0,
                    penalty_per_task: 0.0,
                    budget_cents: 120,
                },
            ],
        }
    }

    /// The default standing profile: a paper-scale fleet driven for a
    /// full horizon.
    pub fn standard() -> Self {
        Self {
            name: "standard".into(),
            seed: 42,
            concurrency: 8,
            intervals: 24,
            drift: 0.5,
            acceptance_drift: 1.0,
            resolve_every: 3,
            server_workers: 8,
            server_queue_depth: 64,
            flood_connections: 64,
            bulk: 1,
            fleet: vec![
                FleetGroup {
                    kind: CampaignKind::Deadline,
                    count: 8,
                    n_tasks: 200,
                    horizon_hours: 8.0,
                    n_intervals: 24,
                    arrivals_per_hour: 2000.0,
                    grid_min: 0,
                    grid_max: 40,
                    logit_s: 15.0,
                    logit_b: -0.39,
                    logit_m: 2000.0,
                    penalty_per_task: 1000.0,
                    budget_cents: 0,
                },
                FleetGroup {
                    kind: CampaignKind::Budget,
                    count: 4,
                    n_tasks: 60,
                    horizon_hours: 8.0,
                    n_intervals: 24,
                    arrivals_per_hour: 800.0,
                    grid_min: 1,
                    grid_max: 25,
                    logit_s: 6.0,
                    logit_b: 0.0,
                    logit_m: 50.0,
                    penalty_per_task: 0.0,
                    budget_cents: 900,
                },
            ],
        }
    }

    /// The batched-serving CI profile: the `fast` fleet driven through
    /// the bulk quote/observe plane — each worker's partition goes out
    /// as `price_many`/`observe_many` batches of 8, which in socket
    /// mode is one `POST /campaigns/quotes` round trip per chunk
    /// instead of one HTTP exchange per campaign. More campaigns per
    /// group (and one worker) so chunks actually fill.
    pub fn bulk_fast() -> Self {
        let mut scenario = Self::fast();
        scenario.name = "bulk-fast".into();
        scenario.concurrency = 1;
        scenario.bulk = 8;
        for group in &mut scenario.fleet {
            group.count *= 4;
        }
        scenario
    }

    /// The fleet/failover profile: the `fast` mix scaled up and driven
    /// through an `ft-router` front tier (`--target ROUTER
    /// --fleet-nodes ...`), sized so the harness can SIGKILL one
    /// backend mid-drive and still assert zero lost campaigns and 100%
    /// quote success after the ring flips. `resolve_every` is 3 to
    /// match the standalone `ft-server` binary's default registry
    /// cadence — the nodes are external processes, not
    /// harness-configured registries. Unbatched (`bulk: 1`) on
    /// purpose: the perf floor compares this leg's round-trip
    /// throughput against the direct-socket `fast` leg at ≥ 0.4×, and
    /// that ratio is only meaningful when both legs carry one quote
    /// per round trip (cross-backend bulk reassembly has its own
    /// coverage in `crates/router`'s tests).
    pub fn fleet(fast: bool) -> Self {
        let mut scenario = Self::fast();
        scenario.name = if fast { "fleet-fast" } else { "fleet" }.into();
        scenario.seed = 23;
        scenario.resolve_every = 3;
        for group in &mut scenario.fleet {
            group.count *= if fast { 4 } else { 12 };
        }
        scenario
    }

    /// The recalibration-storm profile: a large fleet of **identical**
    /// deadline campaigns under heavy negative drift, built to flood
    /// the registry's `SolveScheduler` with concurrent re-solves that
    /// share Poisson pmf rows through each wave's [`SharedPmfCache`].
    ///
    /// Two properties make the waves cache-friendly on purpose:
    ///
    /// - every campaign is the same spec, so the initial solve storm
    ///   re-derives one row universe `{(λ, accept(a))}`;
    /// - `drift` sits **below** the adaptive pricer's correction clamp
    ///   (`AdaptiveOptions::min_correction` = 0.25), so every
    ///   campaign's windowed ratio estimate clamps to exactly 0.25 and
    ///   the recalibration storm re-derives one *shared* corrected row
    ///   universe `{(0.25·λ, accept(a))}` instead of per-campaign
    ///   stochastic rates.
    ///
    /// The perf gate holds this leg's reported `pmf_cache.hit_rate` at
    /// ≥ 0.5 (`scripts/perf_floors.json`), which is the batched-solving
    /// tier's banked win.
    ///
    /// [`SharedPmfCache`]: ft_core::kernel::SharedPmfCache
    pub fn storm(fast: bool) -> Self {
        let mut scenario = Self::fast();
        scenario.name = if fast { "storm-fast" } else { "storm" }.into();
        scenario.seed = 29;
        scenario.drift = 0.2;
        scenario.resolve_every = 2;
        // Deadline-only: the budget MDP does not consume pmf rows.
        scenario.fleet.retain(|g| g.kind == CampaignKind::Deadline);
        for group in &mut scenario.fleet {
            group.count = if fast { 40 } else { 120 };
        }
        scenario
    }

    /// The budget-drift profile: a budget-only fleet whose workers
    /// accept posted prices far less often than the trained logit model
    /// says, with arrivals on-model — so *only* the acceptance-drift
    /// recalibrator can fire, and the gate asserts it does. `fast` is
    /// the seconds-scale CI variant.
    pub fn budget_drift(fast: bool) -> Self {
        // Arrivals are sized so one tick picks up only a few tasks:
        // exhausting a batch mid-tick censors that report's exposure
        // (offers are unknowable for a truncated count), and the drift
        // estimator needs several uncensored reports to act.
        let (name, count, n_tasks, budget_cents, intervals, arrivals_per_hour) = if fast {
            ("budget-drift-fast", 3, 40, 700, 10, 25.0)
        } else {
            ("budget-drift", 6, 120, 2400, 24, 70.0)
        };
        Self {
            name: name.into(),
            seed: 11,
            concurrency: 4,
            intervals,
            drift: 1.0,
            acceptance_drift: 0.45,
            resolve_every: 2,
            server_workers: 4,
            server_queue_depth: 16,
            flood_connections: 32,
            bulk: 1,
            fleet: vec![FleetGroup {
                kind: CampaignKind::Budget,
                count,
                n_tasks,
                horizon_hours: 4.0,
                n_intervals: intervals,
                arrivals_per_hour,
                grid_min: 1,
                grid_max: 20,
                logit_s: 4.0,
                logit_b: 0.0,
                logit_m: 20.0,
                penalty_per_task: 0.0,
                budget_cents,
            }],
        }
    }

    /// Parse a scenario from JSON (the serde encoding of this struct).
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("scenario parse: {e}"))
    }

    /// Structural sanity checks with readable errors.
    pub fn validate(&self) -> Result<(), String> {
        if self.fleet.is_empty() {
            return Err("scenario needs at least one fleet group".into());
        }
        if self.concurrency == 0 {
            return Err("concurrency must be ≥ 1".into());
        }
        if self.intervals == 0 {
            return Err("intervals must be ≥ 1".into());
        }
        if self.bulk > 1024 {
            return Err(format!(
                "bulk must be ≤ 1024 (the server's batch item cap), got {}",
                self.bulk
            ));
        }
        if !(self.drift > 0.0 && self.drift.is_finite()) {
            return Err(format!("drift must be positive, got {}", self.drift));
        }
        if !(self.acceptance_drift > 0.0 && self.acceptance_drift.is_finite()) {
            return Err(format!(
                "acceptance_drift must be positive, got {}",
                self.acceptance_drift
            ));
        }
        for (i, group) in self.fleet.iter().enumerate() {
            if group.count == 0 {
                return Err(format!("fleet group {i} has zero campaigns"));
            }
            if group.n_intervals == 0 || group.horizon_hours <= 0.0 {
                return Err(format!("fleet group {i} has an empty horizon"));
            }
            if group.kind == CampaignKind::Budget && group.budget_cents == 0 {
                return Err(format!("budget group {i} has zero budget"));
            }
            if group.grid_min > group.grid_max {
                return Err(format!(
                    "fleet group {i}: price grid [{}, {}] is inverted",
                    group.grid_min, group.grid_max
                ));
            }
            if !(group.logit_s > 0.0 && group.logit_m > 0.0) {
                return Err(format!("fleet group {i}: logit s and M must be positive"));
            }
            // Surface spec-level problems (bad grids, bad logit
            // parameters) as validation errors instead of panics.
            group
                .spec()
                .validate()
                .map_err(|e| format!("fleet group {i}: {e}"))?;
        }
        Ok(())
    }

    /// Total campaigns across the fleet.
    pub fn campaign_count(&self) -> usize {
        self.fleet.iter().map(|g| g.count).sum()
    }

    /// Whether this scenario can trigger recalibration at all: only
    /// deadline campaigns re-solve (budget MDP tables answer every
    /// state), and only when the observed arrivals drift off the
    /// trained model and enough intervals elapse to cross the resolve
    /// schedule. The recalibration gate is waived when this is false —
    /// a flawless budget-only or no-drift run must not fail.
    pub fn expects_recalibration(&self) -> bool {
        self.fleet
            .iter()
            .any(|g| g.kind == CampaignKind::Deadline && g.count > 0)
            && (self.drift - 1.0).abs() > 1e-9
            && self.intervals > self.resolve_every
    }

    /// Whether this scenario can trigger *budget* recalibration: a
    /// budget fleet whose acceptance drifts off the trained model hard
    /// enough to cross the registry's default threshold, with enough
    /// rounds to cross the resolve cadence. The budget-recalibration
    /// gate applies only when this is true.
    pub fn expects_budget_recalibration(&self) -> bool {
        self.fleet
            .iter()
            .any(|g| g.kind == CampaignKind::Budget && g.count > 0)
            && (self.acceptance_drift - 1.0).abs() > 0.25
            && self.intervals > self.resolve_every
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_in_profiles_validate() {
        Scenario::fast().validate().unwrap();
        Scenario::standard().validate().unwrap();
        Scenario::budget_drift(true).validate().unwrap();
        let bulk = Scenario::bulk_fast();
        bulk.validate().unwrap();
        assert!(bulk.bulk > 1, "bulk profile must actually batch");
        for storm in [Scenario::storm(true), Scenario::storm(false)] {
            storm.validate().unwrap();
            // Deadline-only: budget solves never consult the pmf cache,
            // so they would only dilute the storm's hit-rate signal.
            assert!(storm.fleet.iter().all(|g| g.kind == CampaignKind::Deadline));
            // Enough identical campaigns to fill waves, and drift below
            // the adaptive clamp so recalibration rows are shared too.
            assert!(storm.campaign_count() >= 32);
            assert!(storm.drift < 0.25);
            assert!(storm.expects_recalibration());
        }
        for fleet in [Scenario::fleet(true), Scenario::fleet(false)] {
            fleet.validate().unwrap();
            // One quote per round trip: the fleet perf floor is
            // relative to the unbatched direct-socket leg.
            assert_eq!(fleet.bulk, 1);
            // The kill watcher needs one full quote round to have fired
            // before the SIGKILL; a fleet this small would end first.
            assert!(fleet.campaign_count() >= 20);
            assert!(fleet.expects_recalibration());
        }
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let scenario = Scenario::fast();
        let json = serde_json::to_string(&scenario.to_value()).unwrap();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back.name, scenario.name);
        assert_eq!(back.fleet.len(), scenario.fleet.len());
        assert_eq!(back.fleet[0].kind, CampaignKind::Deadline);
        assert_eq!(back.fleet[1].budget_cents, scenario.fleet[1].budget_cents);
        back.validate().unwrap();
    }

    #[test]
    fn recalibration_expectation_tracks_fleet_shape() {
        assert!(Scenario::fast().expects_recalibration());
        // Budget-only fleets never recalibrate; the gate must waive.
        let mut s = Scenario::fast();
        s.fleet.retain(|g| g.kind == CampaignKind::Budget);
        assert!(!s.expects_recalibration());
        // No drift → trained model holds → no re-solve expected.
        let mut s = Scenario::fast();
        s.drift = 1.0;
        assert!(!s.expects_recalibration());
        // Too few intervals to cross the resolve schedule.
        let mut s = Scenario::fast();
        s.intervals = s.resolve_every;
        assert!(!s.expects_recalibration());
    }

    #[test]
    fn validation_catches_broken_groups() {
        let mut s = Scenario::fast();
        s.fleet[0].grid_min = 30; // > grid_max
        assert!(s.validate().is_err());

        let mut s = Scenario::fast();
        s.drift = 0.0;
        assert!(s.validate().is_err());

        let mut s = Scenario::fast();
        s.fleet.clear();
        assert!(s.validate().is_err());
    }
}
