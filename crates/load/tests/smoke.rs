//! End-to-end smoke: the built-in fast scenario must clear every
//! acceptance gate in both modes — zero errors, zero dropped/torn
//! samples, at least one recalibration under drift, a survived flood,
//! and a matching `/metrics` reconciliation.

use ft_load::{report, Scenario};

#[test]
fn fast_scenario_clears_gates_in_process() {
    let scenario = Scenario::fast();
    let outcome = ft_load::run_in_process(&scenario);
    let failures = report::evaluate_gates(&scenario, &outcome, None);
    assert!(failures.is_empty(), "gates failed: {failures:?}");
    assert!(outcome.requests > 0);
    assert!(outcome.recalibrations >= 1);
    assert_eq!(outcome.errors, 0);
    // Latency quantiles exist for every op that ran.
    for (op, snapshot) in &outcome.latency {
        assert!(snapshot.count > 0, "op {op} never ran");
        assert!(snapshot.quantile(0.999).is_some());
    }
}

#[test]
fn fast_scenario_clears_gates_over_a_real_socket() {
    let scenario = Scenario::fast();
    let (outcome, extras) = ft_load::run_socket(&scenario).expect("socket harness");
    let failures = report::evaluate_gates(&scenario, &outcome, Some(&extras));
    assert!(failures.is_empty(), "gates failed: {failures:?}");
    assert!(extras.crosscheck.matched, "metrics crosscheck mismatched");
    assert_eq!(
        extras.flood.ok + extras.flood.busy,
        extras.flood.connections,
        "flood connections unaccounted"
    );
    assert_eq!(extras.flood.failed, 0);
    // The report document renders and round-trips as JSON.
    let document = report::render(&scenario, &[(outcome, Some(extras))]);
    let json = serde_json::to_string(&document).expect("render");
    let parsed: serde::Value = serde_json::from_str(&json).expect("parse");
    assert!(parsed.as_map().is_some());
}
