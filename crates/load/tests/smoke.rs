//! End-to-end smoke: the built-in fast scenario must clear every
//! acceptance gate in both modes — zero errors, zero dropped/torn
//! samples, at least one recalibration under drift, a survived flood,
//! and a matching `/metrics` reconciliation — and `--target` mode must
//! drive a server the harness did not spawn.

use ft_load::{report, Scenario};

#[test]
fn fast_scenario_clears_gates_in_process() {
    let scenario = Scenario::fast();
    let outcome = ft_load::run_in_process(&scenario);
    let failures = report::evaluate_gates(&scenario, &outcome, None);
    assert!(failures.is_empty(), "gates failed: {failures:?}");
    assert!(outcome.requests > 0);
    assert!(outcome.recalibrations >= 1);
    assert_eq!(outcome.errors, 0);
    // Latency quantiles exist for every op that ran; the bulk ops are
    // the only ones a non-bulk profile legitimately leaves at zero.
    for (op, snapshot) in &outcome.latency {
        if matches!(*op, "price_bulk" | "observe_bulk") {
            assert_eq!(snapshot.count, 0, "bulk op {op} ran in a non-bulk profile");
            continue;
        }
        assert!(snapshot.count > 0, "op {op} never ran");
        assert!(snapshot.quantile(0.999).is_some());
    }
}

/// The drift-aware budget extension under load: the budget-drift
/// profile's workers accept posted prices far less often than the
/// trained model says (arrivals on-model), and the gate demands at
/// least one budget recalibration — with everything else still clean.
#[test]
fn budget_drift_scenario_recalibrates_budget_campaigns() {
    let scenario = Scenario::budget_drift(true);
    assert!(scenario.expects_budget_recalibration());
    assert!(
        !scenario.expects_recalibration(),
        "budget-only fleet must not arm the deadline gate"
    );
    let outcome = ft_load::run_in_process(&scenario);
    let failures = report::evaluate_gates(&scenario, &outcome, None);
    assert!(failures.is_empty(), "gates failed: {failures:?}");
    assert!(
        outcome.budget_recalibrations >= 1,
        "no budget recalibration under acceptance drift"
    );
    assert_eq!(outcome.errors, 0);
    // The report document carries the new counter.
    let document = report::render(&scenario, &[(outcome, None)]);
    let json = serde_json::to_string(&document).expect("render");
    assert!(json.contains("\"budget_recalibrations\""));
}

/// The inverted gate: a drift-free run must NOT demand budget
/// recalibrations (and should not produce spurious ones — the trained
/// model is correct, so the correction hovers near 1).
#[test]
fn no_acceptance_drift_waives_the_budget_gate() {
    let mut scenario = Scenario::budget_drift(true);
    scenario.acceptance_drift = 1.0;
    assert!(!scenario.expects_budget_recalibration());
    let outcome = ft_load::run_in_process(&scenario);
    let failures = report::evaluate_gates(&scenario, &outcome, None);
    assert!(failures.is_empty(), "gates failed: {failures:?}");
}

/// The batched serving plane end-to-end: the bulk-fast profile drives
/// `price_many`/`observe_many` in both modes. In socket mode that is
/// one `POST /campaigns/quotes` per chunk over a keep-alive
/// connection, and the `/metrics` crosscheck must still reconcile —
/// including `ft_core_quotes_total` against the items carried inside
/// bulk round trips.
#[test]
fn bulk_fast_scenario_batches_and_reconciles() {
    let scenario = Scenario::bulk_fast();
    assert!(scenario.bulk > 1);

    let outcome = ft_load::run_in_process(&scenario);
    let failures = report::evaluate_gates(&scenario, &outcome, None);
    assert!(failures.is_empty(), "gates failed: {failures:?}");
    assert!(
        outcome.bulk_quote_items > 0,
        "no quotes rode the bulk plane"
    );
    assert!(outcome.bulk_observe_items > 0);

    let (outcome, extras) = ft_load::run_socket(&scenario).expect("socket harness");
    let failures = report::evaluate_gates(&scenario, &outcome, Some(&extras));
    assert!(failures.is_empty(), "gates failed: {failures:?}");
    assert!(outcome.bulk_quote_items > 0);
    let crosscheck = extras.crosscheck.as_ref().expect("spawned-server runs");
    assert!(
        crosscheck.matched,
        "bulk metrics crosscheck mismatched: {:?}",
        crosscheck
            .entries
            .iter()
            .map(|e| format!("{} {}≠{}", e.name, e.client, e.server))
            .collect::<Vec<_>>()
    );
    // The report carries the item counters and the scenario's bulk
    // width.
    let document = report::render(&scenario, &[(outcome, Some(extras))]);
    let json = serde_json::to_string(&document).expect("render");
    assert!(json.contains("\"bulk_quote_items\""));
    assert!(json.contains("\"bulk\""));
}

#[test]
fn fast_scenario_clears_gates_over_a_real_socket() {
    let scenario = Scenario::fast();
    let (outcome, extras) = ft_load::run_socket(&scenario).expect("socket harness");
    let failures = report::evaluate_gates(&scenario, &outcome, Some(&extras));
    assert!(failures.is_empty(), "gates failed: {failures:?}");
    let crosscheck = extras
        .crosscheck
        .as_ref()
        .expect("spawned-server runs always crosscheck");
    assert!(crosscheck.matched, "metrics crosscheck mismatched");
    assert_eq!(
        extras.flood.ok + extras.flood.busy,
        extras.flood.connections,
        "flood connections unaccounted"
    );
    assert_eq!(extras.flood.failed, 0);
    // The report document renders and round-trips as JSON.
    let document = report::render(&scenario, &[(outcome, Some(extras))]);
    let json = serde_json::to_string(&document).expect("render");
    let parsed: serde::Value = serde_json::from_str(&json).expect("parse");
    assert!(parsed.as_map().is_some());
}

#[test]
fn target_mode_drives_an_external_server() {
    use ft_core::adaptive::AdaptiveOptions;
    use ft_core::registry::CampaignRegistry;
    use ft_core::KernelConfig;
    use std::sync::Arc;

    let scenario = Scenario::fast();
    // A server the harness knows nothing about — as far as ft-load is
    // concerned this is a remote deployment reachable only by address.
    let registry = Arc::new(CampaignRegistry::with_config(
        KernelConfig::default(),
        AdaptiveOptions {
            resolve_every: scenario.resolve_every,
            ..AdaptiveOptions::default()
        },
    ));
    let (handle, join) = ft_server::Server::spawn("127.0.0.1:0", registry).expect("bind");
    let target = handle.addr().to_string();

    let (outcome, extras) = ft_load::run_socket_target(&scenario, &target).expect("target harness");
    let failures = report::evaluate_gates(&scenario, &outcome, Some(&extras));
    assert!(failures.is_empty(), "gates failed: {failures:?}");
    assert!(outcome.requests > 0);
    assert_eq!(outcome.errors, 0);
    // External targets are driven and flooded, but not reconciled or
    // introspected — their metrics may include other clients' traffic.
    assert!(extras.crosscheck.is_none());
    assert!(extras.server_pool.is_none());
    assert_eq!(
        extras.flood.ok + extras.flood.busy,
        extras.flood.connections
    );
    assert_eq!(extras.flood.failed, 0);
    // The render path handles the reduced extras.
    let document = report::render(&scenario, &[(outcome, Some(extras))]);
    serde_json::to_string(&document).expect("render");

    // A dead target is a readable error, not a hang or a panic.
    let err = match ft_load::run_socket_target(&scenario, "127.0.0.1:1") {
        Err(err) => err,
        Ok(_) => panic!("a dead target must not produce a run"),
    };
    assert!(err.contains("127.0.0.1:1"), "unhelpful error: {err}");

    handle.shutdown();
    join.join().expect("server thread");
}
