//! Task acceptance probability functions `p(c)` (Section 2.2).
//!
//! The paper's parametric form (Eq. 3) is
//! `p(c) = exp(c/s − b) / (exp(c/s − b) + M)`, with the live calibration
//! (Eq. 13) being `s = 15, b = −0.39, M = 2000` (c in cents).

use crate::types::Cents;
use ft_stats::regression::Logistic;
use serde::{Deserialize, Serialize};

/// A map from task reward (cents) to acceptance probability.
pub trait AcceptanceFn: Send + Sync {
    /// Probability that an arriving worker picks up one of our tasks when
    /// the reward is `c` cents. Must be in `[0, 1]` and non-decreasing in
    /// `c`.
    fn p(&self, c: Cents) -> f64;

    /// Smallest grid price whose acceptance probability reaches `target`,
    /// searching `[lo, hi]`; `None` if even `hi` falls short.
    fn price_for(&self, target: f64, lo: Cents, hi: Cents) -> Option<Cents> {
        if self.p(hi) < target {
            return None;
        }
        let (mut lo, mut hi) = (lo, hi);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.p(mid) >= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }
}

/// The conditional-logit acceptance function of Eq. 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogitAcceptance {
    /// Price sensitivity scale `s` (cents per unit utility).
    pub s: f64,
    /// Intrinsic (dis)utility offset `b` of our task.
    pub b: f64,
    /// Aggregate attractiveness `M` of all competing tasks.
    pub m: f64,
}

impl LogitAcceptance {
    pub fn new(s: f64, b: f64, m: f64) -> Self {
        assert!(s > 0.0 && s.is_finite(), "s must be positive, got {s}");
        assert!(b.is_finite(), "b must be finite");
        assert!(m > 0.0 && m.is_finite(), "M must be positive, got {m}");
        Self { s, b, m }
    }

    /// The paper's live calibration (Eq. 13): a Data Collection task with a
    /// 2-minute completion time on a marketplace completing ≈6000 tasks/hr.
    pub fn paper_eq13() -> Self {
        Self::new(15.0, -0.39, 2000.0)
    }

    /// Acceptance probability at a real-valued price (used by calibration).
    pub fn p_f64(&self, c: f64) -> f64 {
        let e = (c / self.s - self.b).exp();
        e / (e + self.m)
    }

    /// Utility of our task at reward `c` (up to the shared logit scale).
    pub fn utility(&self, c: f64) -> f64 {
        c / self.s - self.b
    }
}

impl AcceptanceFn for LogitAcceptance {
    fn p(&self, c: Cents) -> f64 {
        self.p_f64(c as f64)
    }
}

/// Acceptance probabilities tabulated at integer prices, linearly
/// interpolated — the representation used when `p(c)` is estimated
/// empirically from fixed-price trials (Section 5.4.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableAcceptance {
    /// Sorted `(price, probability)` anchors.
    anchors: Vec<(Cents, f64)>,
}

impl TableAcceptance {
    pub fn new(mut anchors: Vec<(Cents, f64)>) -> Self {
        assert!(!anchors.is_empty(), "need at least one anchor");
        anchors.sort_by_key(|&(c, _)| c);
        for w in anchors.windows(2) {
            assert!(w[0].0 < w[1].0, "duplicate anchor price {}", w[0].0);
            assert!(
                w[0].1 <= w[1].1 + 1e-12,
                "acceptance must be non-decreasing in price"
            );
        }
        for &(_, p) in &anchors {
            assert!((0.0..=1.0).contains(&p), "probability out of [0,1]: {p}");
        }
        Self { anchors }
    }

    pub fn anchors(&self) -> &[(Cents, f64)] {
        &self.anchors
    }
}

impl AcceptanceFn for TableAcceptance {
    fn p(&self, c: Cents) -> f64 {
        let first = self.anchors[0];
        let last = self.anchors[self.anchors.len() - 1];
        if c <= first.0 {
            return first.1;
        }
        if c >= last.0 {
            return last.1;
        }
        let idx = self
            .anchors
            .partition_point(|&(ac, _)| ac <= c)
            .saturating_sub(1);
        let (c0, p0) = self.anchors[idx];
        let (c1, p1) = self.anchors[idx + 1];
        p0 + (p1 - p0) * (c - c0) as f64 / (c1 - c0) as f64
    }
}

/// Fit the logit form of Eq. 3 to `(price, empirical acceptance)` samples.
///
/// Writing `p = σ(c/s − b − ln M)` shows Eq. 3 is a logistic regression of
/// the acceptance indicator on the price with slope `1/s` and intercept
/// `−b − ln M`; `b` and `M` are not separately identifiable from acceptance
/// data alone, so the caller supplies `M` (the competing-task mass, known
/// from marketplace-wide throughput).
pub fn fit_logit_acceptance(
    samples: &[(Cents, f64)],
    weights: Option<&[f64]>,
    m: f64,
) -> Option<LogitAcceptance> {
    assert!(samples.len() >= 2, "need at least two samples");
    let feats: Vec<Vec<f64>> = samples.iter().map(|&(c, _)| vec![c as f64]).collect();
    let ys: Vec<f64> = samples.iter().map(|&(_, p)| p).collect();
    let fit = Logistic::fit_weighted(&feats, &ys, weights)?;
    let slope = fit.coefficients[0];
    let intercept = fit.coefficients[1];
    if slope <= 0.0 {
        return None; // acceptance must increase with price
    }
    let s = 1.0 / slope;
    let b = -intercept - m.ln();
    Some(LogitAcceptance::new(s, b, m))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn eq13_reference_values() {
        let a = LogitAcceptance::paper_eq13();
        // p(12) ≈ exp(1.19) / (exp(1.19) + 2000) ≈ 0.001641
        assert_close(a.p(12), 0.001641, 2e-5);
        // Monotone and in range.
        let mut prev = 0.0;
        for c in 0..=100 {
            let p = a.p(c);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn logit_saturates_at_one() {
        let a = LogitAcceptance::new(15.0, -0.39, 2000.0);
        assert!(a.p_f64(500.0) > 0.999_999);
        assert!(a.p_f64(0.0) > 0.0);
    }

    #[test]
    fn price_for_inverts_p() {
        let a = LogitAcceptance::paper_eq13();
        let target = a.p(37);
        let c = a.price_for(target, 0, 200).unwrap();
        assert_eq!(c, 37);
        // Unreachable target.
        assert!(a.price_for(0.9999999999, 0, 50).is_none());
    }

    #[test]
    fn table_acceptance_interpolates() {
        let t = TableAcceptance::new(vec![(10, 0.1), (20, 0.3), (40, 0.4)]);
        assert_close(t.p(10), 0.1, 1e-12);
        assert_close(t.p(15), 0.2, 1e-12);
        assert_close(t.p(30), 0.35, 1e-12);
        // Clamping outside the anchor range.
        assert_close(t.p(5), 0.1, 1e-12);
        assert_close(t.p(100), 0.4, 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn table_rejects_decreasing() {
        TableAcceptance::new(vec![(10, 0.5), (20, 0.3)]);
    }

    #[test]
    fn fit_recovers_eq13() {
        let truth = LogitAcceptance::paper_eq13();
        let samples: Vec<(Cents, f64)> = (5..=60).step_by(5).map(|c| (c, truth.p(c))).collect();
        let fit = fit_logit_acceptance(&samples, None, 2000.0).unwrap();
        assert_close(fit.s, 15.0, 0.5);
        assert_close(fit.b, -0.39, 0.1);
        for c in [8u32, 12, 20, 45] {
            assert_close(fit.p(c), truth.p(c), 1e-4);
        }
    }

    #[test]
    fn fit_rejects_decreasing_acceptance() {
        let samples = vec![(10u32, 0.9), (20u32, 0.5), (30u32, 0.1)];
        assert!(fit_logit_acceptance(&samples, None, 100.0).is_none());
    }
}
