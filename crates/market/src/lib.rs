//! # ft-market
//!
//! Crowdsourcing-marketplace substrate for the `finish-them` workspace:
//! everything the pricing algorithms of Gao & Parameswaran (VLDB 2014)
//! assume exists around them.
//!
//! - [`rate`]: NHPP arrival-rate functions λ(t) with exact interval
//!   integrals (Eq. 4).
//! - [`nhpp`]: exact NHPP samplers — event times by thinning, per-interval
//!   Poisson counts.
//! - [`acceptance`]: task acceptance probability functions `p(c)` (Eq. 3,
//!   empirical tables, and calibration from samples).
//! - [`logit`]: the conditional-logit discrete choice model and the
//!   utility-based simulation of Section 5.1.1.
//! - [`tracker`]: synthetic mturk-tracker traces (Fig. 1) and HIT-group
//!   snapshots (Fig. 6 / Table 2) — see DESIGN.md for the substitution
//!   rationale.
//! - [`worker`]: answer accuracy and session-length behavior models
//!   (Tables 3/4, Fig. 15).
//! - [`sim`]: the event-driven live-marketplace simulator used to
//!   reproduce the Section 5.4 Mechanical Turk deployment (Fig. 12).

pub mod acceptance;
pub mod logit;
pub mod nhpp;
pub mod rate;
pub mod sim;
pub mod tracker;
pub mod types;
pub mod worker;

pub use acceptance::{fit_logit_acceptance, AcceptanceFn, LogitAcceptance, TableAcceptance};
pub use rate::{ArrivalRate, ConstantRate, PiecewiseConstantRate, PiecewiseLinearRate};
pub use tracker::{TrackerConfig, TrackerTrace};
pub use types::{Cents, Hours, PriceGrid, TaskCount, TaskType};
